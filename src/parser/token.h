#ifndef ORDOPT_PARSER_TOKEN_H_
#define ORDOPT_PARSER_TOKEN_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ordopt {

/// Lexical token kinds for the SQL subset.
enum class TokenKind {
  kIdentifier,  ///< bare identifier or keyword (keywords resolved in parser)
  kInteger,
  kFloat,
  kString,    ///< 'quoted literal' (quotes stripped, '' unescaped)
  kSymbol,    ///< operators and punctuation: ( ) , . * + - / = <> <= >= < >
  kEndOfInput
};

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEndOfInput;
  std::string text;  ///< identifier lowercased; literals verbatim
  size_t offset = 0;

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// True when this is the (case-insensitive) keyword/identifier `kw`
  /// (callers pass lowercase).
  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kIdentifier && text == kw;
  }
};

/// Splits SQL text into tokens. Identifiers are lowercased (the SQL subset
/// is case-insensitive); string literals keep their exact contents.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace ordopt

#endif  // ORDOPT_PARSER_TOKEN_H_
