#ifndef ORDOPT_PARSER_PARSER_H_
#define ORDOPT_PARSER_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "parser/ast.h"

namespace ordopt {

/// Parses one SELECT statement of the supported SQL subset:
///
///   SELECT [DISTINCT] expr [AS alias], ...
///   FROM table [alias] | (subselect) alias, ...
///   [WHERE conjunct AND conjunct ...]
///   [GROUP BY expr, ...]
///   [ORDER BY expr [ASC|DESC], ...]
///
/// Expressions support column references (optionally qualified), integer /
/// decimal / string literals, DATE '...' literals and date('...') calls,
/// +,-,*,/ arithmetic, =,<>,<,<=,>,>= comparisons, AND, and the aggregates
/// sum/count/min/max/avg (with count(*) and agg(distinct x)).
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

}  // namespace ordopt

#endif  // ORDOPT_PARSER_PARSER_H_
