#include "parser/parser.h"

#include <set>

#include "common/str_util.h"
#include "parser/token.h"

namespace ordopt {

namespace {

// Words that cannot serve as bare aliases.
const std::set<std::string>& ReservedWords() {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "select", "distinct", "all",  "from",   "where", "group",
      "by",     "order",    "asc",  "desc",   "as",    "and",
      "date",   "having",   "join", "left",   "inner", "on",
      "outer",  "limit",  "union",  "or",   "in",    "between",
      "is",     "not",    "null"};
  return *kWords;
}

bool IsAggName(const std::string& name, AggFunc* out) {
  if (name == "sum") {
    *out = AggFunc::kSum;
  } else if (name == "count") {
    *out = AggFunc::kCount;
  } else if (name == "min") {
    *out = AggFunc::kMin;
  } else if (name == "max") {
    *out = AggFunc::kMax;
  } else if (name == "avg") {
    *out = AggFunc::kAvg;
  } else {
    return false;
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<SelectStmt>> Parse() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect());
    if (Peek().kind != TokenKind::kEndOfInput) {
      return Error("trailing input after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Accept(const char* symbol_or_kw) {
    if (Peek().IsSymbol(symbol_or_kw) || Peek().IsKeyword(symbol_or_kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    const Token& t = Peek();
    std::string got =
        t.kind == TokenKind::kEndOfInput ? "end of input" : "'" + t.text + "'";
    return Status::ParseError(
        StrFormat("%s (at offset %zu, got %s)", what.c_str(), t.offset,
                  got.c_str()));
  }
  Status Expect(const char* symbol_or_kw) {
    if (Accept(symbol_or_kw)) return Status::OK();
    return Error(StrFormat("expected '%s'", symbol_or_kw));
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    ORDOPT_RETURN_NOT_OK(Expect("select"));
    auto stmt = std::make_unique<SelectStmt>();
    if (Accept("distinct")) {
      stmt->distinct = true;
    } else {
      Accept("all");
    }

    // Select list.
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        Advance();
        item.star = true;
      } else {
        ORDOPT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("as")) {
          if (Peek().kind != TokenKind::kIdentifier) {
            return Error("expected alias after AS");
          }
          item.alias = Advance().text;
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   ReservedWords().count(Peek().text) == 0) {
          item.alias = Advance().text;
        }
      }
      stmt->items.push_back(std::move(item));
    } while (Accept(","));

    ORDOPT_RETURN_NOT_OK(Expect("from"));
    do {
      ORDOPT_RETURN_NOT_OK(ParseTableRef(stmt.get(), TableRef::JoinKind::kNone));
      // JOIN ... ON chains attach to everything parsed so far.
      while (true) {
        TableRef::JoinKind kind;
        if (Accept("left")) {
          Accept("outer");
          ORDOPT_RETURN_NOT_OK(Expect("join"));
          kind = TableRef::JoinKind::kLeft;
        } else if (Accept("inner")) {
          ORDOPT_RETURN_NOT_OK(Expect("join"));
          kind = TableRef::JoinKind::kInner;
        } else if (Accept("join")) {
          kind = TableRef::JoinKind::kInner;
        } else {
          break;
        }
        ORDOPT_RETURN_NOT_OK(ParseTableRef(stmt.get(), kind));
        ORDOPT_RETURN_NOT_OK(Expect("on"));
        ORDOPT_ASSIGN_OR_RETURN(stmt->from.back().on, ParseExpr());
      }
    } while (Accept(","));

    if (Accept("where")) {
      ORDOPT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (Accept("group")) {
      ORDOPT_RETURN_NOT_OK(Expect("by"));
      do {
        ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (Accept(","));
    }
    if (Accept("having")) {
      ORDOPT_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (Accept("order")) {
      ORDOPT_RETURN_NOT_OK(Expect("by"));
      do {
        OrderItem item;
        ORDOPT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (Accept("desc")) {
          item.dir = SortDirection::kDescending;
        } else {
          Accept("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Accept(","));
    }
    if (Accept("limit")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected row count after LIMIT");
      }
      stmt->limit = std::stoll(Advance().text);
    }
    if (Accept("union")) {
      if (!stmt->order_by.empty() || stmt->limit >= 0) {
        return Error(
            "ORDER BY / LIMIT may only appear on the last block of a UNION");
      }
      stmt->union_all = Accept("all");
      ORDOPT_ASSIGN_OR_RETURN(stmt->union_next, ParseSelect());
    }
    return stmt;
  }

  // One FROM item (base table or derived table), appended to stmt->from
  // with the given join kind.
  Status ParseTableRef(SelectStmt* stmt, TableRef::JoinKind kind) {
    TableRef ref;
    ref.join = kind;
    if (Accept("(")) {
      ORDOPT_ASSIGN_OR_RETURN(ref.derived, ParseSelect());
      ORDOPT_RETURN_NOT_OK(Expect(")"));
      Accept("as");
      if (Peek().kind != TokenKind::kIdentifier ||
          ReservedWords().count(Peek().text) > 0) {
        return Error("derived table requires an alias");
      }
      ref.alias = Advance().text;
    } else {
      if (Peek().kind != TokenKind::kIdentifier ||
          ReservedWords().count(Peek().text) > 0) {
        return Error("expected table name");
      }
      ref.table_name = Advance().text;
      ref.alias = ref.table_name;
      if (Accept("as")) {
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected alias after AS");
        }
        ref.alias = Advance().text;
      } else if (Peek().kind == TokenKind::kIdentifier &&
                 ReservedWords().count(Peek().text) == 0) {
        ref.alias = Advance().text;
      }
    }
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  // expr := and_expr (OR and_expr)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAnd());
    while (Accept("or")) {
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAnd());
      left = Expr::Binary(BinOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  // and_expr := cmp (AND cmp)*
  Result<std::unique_ptr<Expr>> ParseAnd() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseComparison());
    while (Accept("and")) {
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseComparison());
      left = Expr::Binary(BinOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseAdditive());
    // Postfix predicates: IS [NOT] NULL, BETWEEN lo AND hi, IN (v, ...).
    if (Accept("is")) {
      bool negated = Accept("not");
      ORDOPT_RETURN_NOT_OK(Expect("null"));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIsNull;
      e->is_null_negated = negated;
      e->arg = std::move(left);
      return e;
    }
    if (Accept("between")) {
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> lo, ParseAdditive());
      ORDOPT_RETURN_NOT_OK(Expect("and"));
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> hi, ParseAdditive());
      // Desugar to (left >= lo AND left <= hi); the copy of `left` is a
      // re-parse-free deep clone.
      std::unique_ptr<Expr> left2 = CloneExpr(*left);
      return Expr::Binary(
          BinOp::kAnd,
          Expr::Binary(BinOp::kGe, std::move(left), std::move(lo)),
          Expr::Binary(BinOp::kLe, std::move(left2), std::move(hi)));
    }
    if (Accept("in")) {
      ORDOPT_RETURN_NOT_OK(Expect("("));
      if (Peek().IsKeyword("select")) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kInSubquery;
        e->arg = std::move(left);
        ORDOPT_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
        ORDOPT_RETURN_NOT_OK(Expect(")"));
        return e;
      }
      // Value list: desugar to an OR chain of equalities.
      std::unique_ptr<Expr> chain;
      do {
        ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> v, ParseAdditive());
        std::unique_ptr<Expr> eq = Expr::Binary(
            BinOp::kEq, CloneExpr(*left), std::move(v));
        chain = chain == nullptr
                    ? std::move(eq)
                    : Expr::Binary(BinOp::kOr, std::move(chain),
                                   std::move(eq));
      } while (Accept(","));
      ORDOPT_RETURN_NOT_OK(Expect(")"));
      return chain;
    }
    static const std::pair<const char*, BinOp> kOps[] = {
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"<>", BinOp::kNe},
        {"=", BinOp::kEq},  {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [sym, op] : kOps) {
      if (Peek().IsSymbol(sym)) {
        Advance();
        ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseAdditive());
        return Expr::Binary(op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  // Deep copy of a parsed expression (used by BETWEEN / IN desugaring).
  static std::unique_ptr<Expr> CloneExpr(const Expr& e) {
    auto out = std::make_unique<Expr>();
    out->kind = e.kind;
    out->qualifier = e.qualifier;
    out->column = e.column;
    out->literal = e.literal;
    out->op = e.op;
    out->agg = e.agg;
    out->count_star = e.count_star;
    out->agg_distinct = e.agg_distinct;
    out->is_null_negated = e.is_null_negated;
    if (e.left != nullptr) out->left = CloneExpr(*e.left);
    if (e.right != nullptr) out->right = CloneExpr(*e.right);
    if (e.arg != nullptr) out->arg = CloneExpr(*e.arg);
    return out;
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseMultiplicative());
    while (true) {
      BinOp op;
      if (Peek().IsSymbol("+")) {
        op = BinOp::kAdd;
      } else if (Peek().IsSymbol("-")) {
        op = BinOp::kSub;
      } else {
        break;
      }
      Advance();
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right,
                              ParseMultiplicative());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseMultiplicative() {
    ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> left, ParseUnary());
    while (true) {
      BinOp op;
      if (Peek().IsSymbol("*")) {
        op = BinOp::kMul;
      } else if (Peek().IsSymbol("/")) {
        op = BinOp::kDiv;
      } else {
        break;
      }
      Advance();
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> right, ParseUnary());
      left = Expr::Binary(op, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseUnary());
      // Fold -literal, otherwise rewrite as (0 - inner).
      if (inner->kind == Expr::Kind::kLiteral &&
          inner->literal.type() == DataType::kInt64) {
        return Expr::Literal(Value::Int(-inner->literal.AsInt()));
      }
      if (inner->kind == Expr::Kind::kLiteral &&
          inner->literal.type() == DataType::kDouble) {
        return Expr::Literal(Value::Double(-inner->literal.AsDouble()));
      }
      return Expr::Binary(BinOp::kSub, Expr::Literal(Value::Int(0)),
                          std::move(inner));
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInteger) {
      Advance();
      return Expr::Literal(Value::Int(std::stoll(t.text)));
    }
    if (t.kind == TokenKind::kFloat) {
      Advance();
      return Expr::Literal(Value::Double(std::stod(t.text)));
    }
    if (t.kind == TokenKind::kString) {
      Advance();
      return Expr::Literal(Value::Str(t.text));
    }
    if (t.IsSymbol("(")) {
      Advance();
      ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Expr> inner, ParseExpr());
      ORDOPT_RETURN_NOT_OK(Expect(")"));
      return inner;
    }
    if (t.IsKeyword("null")) {
      Advance();
      return Expr::Literal(Value::Null());
    }
    if (t.kind == TokenKind::kIdentifier) {
      // DATE literal: date 'YYYY-MM-DD' or date('YYYY-MM-DD').
      if (t.text == "date") {
        if (Peek(1).kind == TokenKind::kString) {
          Advance();
          const Token& lit = Advance();
          return ParseDateLiteral(lit);
        }
        if (Peek(1).IsSymbol("(") && Peek(2).kind == TokenKind::kString &&
            Peek(3).IsSymbol(")")) {
          Advance();
          Advance();
          const Token& lit = Advance();
          Advance();
          return ParseDateLiteral(lit);
        }
      }
      // Aggregate call.
      AggFunc agg;
      if (IsAggName(t.text, &agg) && Peek(1).IsSymbol("(")) {
        Advance();
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kAggregate;
        e->agg = agg;
        if (Peek().IsSymbol("*")) {
          if (agg != AggFunc::kCount) {
            return Error("only count(*) may take '*'");
          }
          Advance();
          e->count_star = true;
        } else {
          if (Accept("distinct")) e->agg_distinct = true;
          ORDOPT_ASSIGN_OR_RETURN(e->arg, ParseExpr());
        }
        ORDOPT_RETURN_NOT_OK(Expect(")"));
        return e;
      }
      // Column reference.
      Advance();
      if (Peek().IsSymbol(".")) {
        Advance();
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected column name after '.'");
        }
        const Token& col = Advance();
        return Expr::Column(t.text, col.text);
      }
      return Expr::Column("", t.text);
    }
    return Error("expected expression");
  }

  Result<std::unique_ptr<Expr>> ParseDateLiteral(const Token& lit) {
    int64_t days = 0;
    if (!ParseDate(lit.text, &days)) {
      return Status::ParseError(
          StrFormat("malformed date literal '%s' at offset %zu",
                    lit.text.c_str(), lit.offset));
    }
    return Expr::Literal(Value::Date(days));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  ORDOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace ordopt
