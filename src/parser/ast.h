#ifndef ORDOPT_PARSER_AST_H_
#define ORDOPT_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "orderopt/order_spec.h"

namespace ordopt {

struct SelectStmt;

/// Binary operators in expressions and predicates.
enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// Returns the SQL spelling ("+", "<=", "AND", ...).
const char* BinOpName(BinOp op);

/// Aggregate functions of the subset.
enum class AggFunc { kSum, kCount, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc f);

/// Unbound expression tree produced by the parser.
struct Expr {
  enum class Kind { kColumn, kLiteral, kBinary, kAggregate, kIsNull, kInSubquery };

  Kind kind = Kind::kLiteral;

  // kColumn: `qualifier.column` or bare `column`.
  std::string qualifier;
  std::string column;

  // kLiteral
  Value literal;

  // kBinary
  BinOp op = BinOp::kAdd;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;

  // kAggregate: agg(arg), count(*), agg(distinct arg)
  AggFunc agg = AggFunc::kSum;
  bool count_star = false;
  bool agg_distinct = false;
  std::unique_ptr<Expr> arg;

  // kIsNull: arg IS [NOT] NULL (uses `arg`)
  bool is_null_negated = false;

  // kInSubquery: arg IN (subquery). Bound as a semi-join against the
  // subquery made DISTINCT.
  std::unique_ptr<SelectStmt> subquery;

  Expr();
  ~Expr();

  static std::unique_ptr<Expr> Column(std::string qual, std::string col);
  static std::unique_ptr<Expr> Literal(Value v);
  static std::unique_ptr<Expr> Binary(BinOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);

  std::string ToString() const;
};

/// One FROM item: a base table (possibly aliased) or a parenthesized
/// derived table with a mandatory alias. `join` says how this item
/// attaches to everything before it in the FROM list: plain comma
/// (kNone, implicit inner join via WHERE), INNER JOIN ... ON, or
/// LEFT [OUTER] JOIN ... ON (this item is the null-supplying side).
struct TableRef {
  enum class JoinKind { kNone, kInner, kLeft };

  std::string table_name;  ///< empty for derived tables
  std::string alias;       ///< defaults to table_name
  std::unique_ptr<SelectStmt> derived;
  JoinKind join = JoinKind::kNone;
  std::unique_ptr<Expr> on;  ///< required for kInner/kLeft
};

/// One SELECT-list item.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;  ///< empty when none; '*' expansion handled in binder
  bool star = false;  ///< bare `*`
};

/// One ORDER BY item.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  SortDirection dir = SortDirection::kAscending;
};

/// A parsed SELECT statement of the supported subset:
///   SELECT [DISTINCT] items FROM refs [WHERE conj] [GROUP BY exprs]
///   [HAVING conj] [ORDER BY items]
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  std::unique_ptr<Expr> where;  ///< null when absent; AND tree otherwise
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;  ///< null when absent
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no LIMIT

  /// UNION chaining: this block UNION [ALL] `union_next`. Only the last
  /// block of a chain may carry ORDER BY / LIMIT, which then apply to the
  /// whole union.
  std::unique_ptr<SelectStmt> union_next;
  bool union_all = false;  ///< kind of the link to union_next

  std::string ToString() const;
};

}  // namespace ordopt

#endif  // ORDOPT_PARSER_AST_H_
