#include "parser/ast.h"

#include "common/str_util.h"

namespace ordopt {

Expr::Expr() = default;
Expr::~Expr() = default;

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kAdd:
      return "+";
    case BinOp::kSub:
      return "-";
    case BinOp::kMul:
      return "*";
    case BinOp::kDiv:
      return "/";
    case BinOp::kEq:
      return "=";
    case BinOp::kNe:
      return "<>";
    case BinOp::kLt:
      return "<";
    case BinOp::kLe:
      return "<=";
    case BinOp::kGt:
      return ">";
    case BinOp::kGe:
      return ">=";
    case BinOp::kAnd:
      return "AND";
    case BinOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Column(std::string qual, std::string col) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->qualifier = std::move(qual);
  e->column = std::move(col);
  return e;
}

std::unique_ptr<Expr> Expr::Literal(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? column : qualifier + "." + column;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + left->ToString() + " " + BinOpName(op) + " " +
             right->ToString() + ")";
    case Kind::kAggregate: {
      std::string inner = count_star ? "*" : arg->ToString();
      if (agg_distinct) inner = "distinct " + inner;
      return std::string(AggFuncName(agg)) + "(" + inner + ")";
    }
    case Kind::kIsNull:
      return "(" + arg->ToString() + (is_null_negated ? " is not null)"
                                                      : " is null)");
    case Kind::kInSubquery:
      return "(" + arg->ToString() + " in (" + subquery->ToString() + "))";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "select ";
  if (distinct) out += "distinct ";
  std::vector<std::string> parts;
  for (const SelectItem& item : items) {
    std::string s = item.star ? "*" : item.expr->ToString();
    if (!item.alias.empty()) s += " as " + item.alias;
    parts.push_back(std::move(s));
  }
  out += Join(parts, ", ");
  out += " from ";
  for (size_t i = 0; i < from.size(); ++i) {
    const TableRef& ref = from[i];
    std::string s = ref.derived != nullptr
                        ? "(" + ref.derived->ToString() + ")"
                        : ref.table_name;
    if (!ref.alias.empty() && ref.alias != ref.table_name) {
      s += " " + ref.alias;
    }
    if (i == 0) {
      out += s;
    } else if (ref.join == TableRef::JoinKind::kNone) {
      out += ", " + s;
    } else {
      out += ref.join == TableRef::JoinKind::kLeft ? " left join "
                                                   : " join ";
      out += s + " on " + ref.on->ToString();
    }
  }
  if (where != nullptr) out += " where " + where->ToString();
  if (!group_by.empty()) {
    parts.clear();
    for (const auto& g : group_by) parts.push_back(g->ToString());
    out += " group by " + Join(parts, ", ");
  }
  if (having != nullptr) out += " having " + having->ToString();
  if (!order_by.empty()) {
    parts.clear();
    for (const OrderItem& o : order_by) {
      std::string s = o.expr->ToString();
      if (o.dir == SortDirection::kDescending) s += " desc";
      parts.push_back(std::move(s));
    }
    out += " order by " + Join(parts, ", ");
  }
  if (limit >= 0) out += StrFormat(" limit %lld", static_cast<long long>(limit));
  if (union_next != nullptr) {
    out += union_all ? " union all " : " union ";
    out += union_next->ToString();
  }
  return out;
}

}  // namespace ordopt
