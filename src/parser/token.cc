#include "parser/token.h"

#include <cctype>

#include "common/str_util.h"

namespace ordopt {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.kind = TokenKind::kIdentifier;
      tok.text = ToLower(sql.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tok.kind = is_float ? TokenKind::kFloat : TokenKind::kInteger;
      tok.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu",
                      tok.offset));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
    } else {
      // Two-char operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
          tok.kind = TokenKind::kSymbol;
          tok.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(tok));
          continue;
        }
      }
      static const char kSingles[] = "(),.*+-/=<>";
      bool known = false;
      for (const char* p = kSingles; *p != '\0'; ++p) {
        if (*p == c) {
          known = true;
          break;
        }
      }
      if (!known) {
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %zu", c, i));
      }
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.kind = TokenKind::kEndOfInput;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace ordopt
