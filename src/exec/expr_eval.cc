#include "exec/expr_eval.h"

#include "common/macros.h"
#include "common/str_util.h"
#include "exec/query_guard.h"

namespace ordopt {

ExprEvaluator::ExprEvaluator(const std::vector<ColumnId>& layout,
                             QueryGuard* guard)
    : guard_(guard) {
  for (size_t i = 0; i < layout.size(); ++i) {
    positions_.emplace(layout[i], static_cast<int>(i));
  }
}

int ExprEvaluator::PositionOf(const ColumnId& col) const {
  auto it = positions_.find(col);
  return it == positions_.end() ? -1 : it->second;
}

Value EvalBinary(BinOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinOp::kAnd: {
      // Two-valued folding: NULL acts as false.
      bool lt = !l.is_null() && l.Compare(Value::Int(0)) != 0;
      bool rt = !r.is_null() && r.Compare(Value::Int(0)) != 0;
      return Value::Int(lt && rt ? 1 : 0);
    }
    case BinOp::kOr: {
      bool lt = !l.is_null() && l.Compare(Value::Int(0)) != 0;
      bool rt = !r.is_null() && r.Compare(Value::Int(0)) != 0;
      return Value::Int(lt || rt ? 1 : 0);
    }
    default:
      break;
  }
  if (l.is_null() || r.is_null()) return Value::Null();
  switch (op) {
    case BinOp::kEq:
      return Value::Int(l.Compare(r) == 0 ? 1 : 0);
    case BinOp::kNe:
      return Value::Int(l.Compare(r) != 0 ? 1 : 0);
    case BinOp::kLt:
      return Value::Int(l.Compare(r) < 0 ? 1 : 0);
    case BinOp::kLe:
      return Value::Int(l.Compare(r) <= 0 ? 1 : 0);
    case BinOp::kGt:
      return Value::Int(l.Compare(r) > 0 ? 1 : 0);
    case BinOp::kGe:
      return Value::Int(l.Compare(r) >= 0 ? 1 : 0);
    case BinOp::kDiv: {
      double rv = r.AsDouble();
      if (rv == 0.0) return Value::Null();
      return Value::Double(l.AsDouble() / rv);
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul: {
      bool both_int = l.type() == DataType::kInt64 &&
                      r.type() == DataType::kInt64;
      if (both_int) {
        int64_t a = l.AsInt(), b = r.AsInt();
        switch (op) {
          case BinOp::kAdd:
            return Value::Int(a + b);
          case BinOp::kSub:
            return Value::Int(a - b);
          default:
            return Value::Int(a * b);
        }
      }
      double a = l.AsDouble(), b = r.AsDouble();
      switch (op) {
        case BinOp::kAdd:
          return Value::Double(a + b);
        case BinOp::kSub:
          return Value::Double(a - b);
        default:
          return Value::Double(a * b);
      }
    }
    default:
      break;
  }
  ORDOPT_CHECK_MSG(false, "unhandled binary op");
  return Value::Null();
}

Value ExprEvaluator::Eval(const BoundExpr& expr, const Row& row) const {
  switch (expr.kind()) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal();
    case BoundExpr::Kind::kColumn: {
      int pos = PositionOf(expr.column());
      if (pos < 0) {
        if (guard_ != nullptr) {
          guard_->Poison(Status::Internal(
              StrFormat("column %s not in row layout",
                        DefaultColumnName(expr.column()).c_str())));
          return Value::Null();
        }
        ORDOPT_CHECK_MSG(false, "column %s not in row layout",
                         DefaultColumnName(expr.column()).c_str());
      }
      return row[static_cast<size_t>(pos)];
    }
    case BoundExpr::Kind::kBinary: {
      Value l = Eval(expr.left(), row);
      Value r = Eval(expr.right(), row);
      return EvalBinary(expr.op(), l, r);
    }
    case BoundExpr::Kind::kIsNull: {
      bool is_null = Eval(expr.is_null_child(), row).is_null();
      return Value::Int(is_null != expr.is_null_negated() ? 1 : 0);
    }
  }
  return Value::Null();
}

bool ExprEvaluator::EvalPredicate(const Predicate& pred,
                                  const Row& row) const {
  Value v = Eval(pred.expr, row);
  return !v.is_null() && v.Compare(Value::Int(0)) != 0;
}

Value ExprEvaluator::EvalAt(const BoundExpr& expr, const RowBatch& batch,
                            int64_t row) const {
  switch (expr.kind()) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal();
    case BoundExpr::Kind::kColumn: {
      int pos = PositionOf(expr.column());
      if (pos < 0) {
        if (guard_ != nullptr) {
          guard_->Poison(Status::Internal(
              StrFormat("column %s not in row layout",
                        DefaultColumnName(expr.column()).c_str())));
          return Value::Null();
        }
        ORDOPT_CHECK_MSG(false, "column %s not in row layout",
                         DefaultColumnName(expr.column()).c_str());
      }
      return batch.At(static_cast<size_t>(pos), row);
    }
    case BoundExpr::Kind::kBinary: {
      Value l = EvalAt(expr.left(), batch, row);
      Value r = EvalAt(expr.right(), batch, row);
      return EvalBinary(expr.op(), l, r);
    }
    case BoundExpr::Kind::kIsNull: {
      bool is_null = EvalAt(expr.is_null_child(), batch, row).is_null();
      return Value::Int(is_null != expr.is_null_negated() ? 1 : 0);
    }
  }
  return Value::Null();
}

namespace {
// True when three-way comparison result `c` satisfies comparison op `op`.
bool CompareSatisfied(BinOp op, int c) {
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    case BinOp::kGe:
      return c >= 0;
    default:
      ORDOPT_CHECK_MSG(false, "non-comparison op in classified predicate");
      return false;
  }
}
}  // namespace

void ExprEvaluator::FilterBatch(const Predicate& pred, const RowBatch& batch,
                                SelectionVector* sel) const {
  size_t kept = 0;
  switch (pred.kind) {
    case Predicate::Kind::kColEqConst:
    case Predicate::Kind::kColCmpConst: {
      // A NULL literal never satisfies a comparison under two-valued
      // folding, regardless of the column side.
      if (pred.constant.is_null()) {
        sel->clear();
        return;
      }
      const int pos = PositionOf(pred.left_col);
      if (pos < 0) break;  // planner bug; generic path poisons the guard
      for (int32_t idx : *sel) {
        if (batch.IsNull(static_cast<size_t>(pos), idx)) continue;
        const int c =
            batch.At(static_cast<size_t>(pos), idx).Compare(pred.constant);
        if (CompareSatisfied(pred.cmp, c)) (*sel)[kept++] = idx;
      }
      sel->resize(kept);
      return;
    }
    case Predicate::Kind::kColEqCol:
    case Predicate::Kind::kColCmpCol: {
      const int lpos = PositionOf(pred.left_col);
      const int rpos = PositionOf(pred.right_col);
      if (lpos < 0 || rpos < 0) break;
      for (int32_t idx : *sel) {
        if (batch.IsNull(static_cast<size_t>(lpos), idx) ||
            batch.IsNull(static_cast<size_t>(rpos), idx)) {
          continue;
        }
        const int c = batch.At(static_cast<size_t>(lpos), idx)
                          .Compare(batch.At(static_cast<size_t>(rpos), idx));
        if (CompareSatisfied(pred.cmp, c)) (*sel)[kept++] = idx;
      }
      sel->resize(kept);
      return;
    }
    case Predicate::Kind::kGeneric:
      break;
  }
  for (int32_t idx : *sel) {
    Value v = EvalAt(pred.expr, batch, idx);
    if (!v.is_null() && v.Compare(Value::Int(0)) != 0) (*sel)[kept++] = idx;
  }
  sel->resize(kept);
}

void ExprEvaluator::EvalColumn(const BoundExpr& expr, const RowBatch& batch,
                               RowBatch* out, size_t out_col) const {
  const int64_t n = batch.size();
  if (expr.kind() == BoundExpr::Kind::kLiteral) {
    for (int64_t i = 0; i < n; ++i) {
      out->AppendColumnValue(out_col, expr.literal());
    }
    return;
  }
  if (expr.kind() == BoundExpr::Kind::kColumn) {
    const int pos = PositionOf(expr.column());
    if (pos >= 0) {
      for (int64_t i = 0; i < n; ++i) {
        out->AppendColumnValue(out_col, batch.At(static_cast<size_t>(pos), i));
      }
      return;
    }
    // Missing column: let EvalAt poison the guard below.
  }
  for (int64_t i = 0; i < n; ++i) {
    out->AppendColumnValue(out_col, EvalAt(expr, batch, i));
  }
}

}  // namespace ordopt
