#ifndef ORDOPT_EXEC_SPILL_H_
#define ORDOPT_EXEC_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/runtime_metrics.h"

namespace ordopt {

/// Knobs for the sort spill subsystem. `sort_memory_rows` is the one
/// number the cost model and the executor share: the planner prices a
/// two-pass spill above it (CostParams::sort_memory_rows), and SortOp
/// actually writes runs above it — QueryEngine copies the cost-model
/// value in so the two can never drift.
struct SpillConfig {
  /// Rows a sort may hold in memory before writing a sorted run to disk.
  /// Zero or negative disables spilling (pure in-memory sort).
  int64_t sort_memory_rows = 200000;
  /// Directory for run files. Empty resolves to $ORDOPT_TMPDIR, then the
  /// system temp directory (ResolveSpillTempDir).
  std::string temp_dir;
  /// Retry policy for run-file I/O: transient kIoError failures are
  /// retried with deterministic backoff before the query degrades to a
  /// clean error.
  RetryPolicy retry;
};

/// Resolves the effective spill directory: `configured` when non-empty,
/// else the ORDOPT_TMPDIR environment variable (read per call so tests
/// and sandboxed CI can override it), else the system temp directory.
std::string ResolveSpillTempDir(const std::string& configured);

/// One sorted run on disk. RAII: the destructor closes and unlinks the
/// file unconditionally, so no exit path — poisoned query, injected
/// fault, tripped guardrail — can leak a temp file. SpillManager performs
/// all I/O; this object only owns the handle and the name.
class SpillRun {
 public:
  SpillRun(const SpillRun&) = delete;
  SpillRun& operator=(const SpillRun&) = delete;
  ~SpillRun();

  const std::string& path() const { return path_; }
  int64_t rows() const { return rows_; }
  int64_t bytes() const { return bytes_; }

 private:
  friend class SpillManager;
  SpillRun() = default;
  /// Closes the handle and removes the file; idempotent.
  void CloseAndRemove();

  std::string path_;
  std::FILE* file_ = nullptr;
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
  int64_t read_rows_ = 0;  ///< rows consumed so far (read-pass page charge)
};

/// Per-query owner of sort spill files: writes sorted runs (retrying
/// transient I/O failures per the policy), streams them back for the
/// k-way merge, and removes them. Counts runs/rows/bytes and retries
/// into RuntimeMetrics, and charges the sequential page reads/writes the
/// cost model prices for an external sort. Fault sites:
/// exec.sort.spill.write, exec.sort.spill.read, exec.spill.cleanup
/// (exec.sort.spill.merge is probed by SortOp at merge startup).
class SpillManager {
 public:
  SpillManager(SpillConfig config, RuntimeMetrics* metrics);
  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  const SpillConfig& config() const { return config_; }
  /// The resolved directory run files are created in.
  const std::string& temp_dir() const { return temp_dir_; }

  /// Writes `rows` (already sorted) as one run file, open for reading on
  /// return. A failed attempt removes the partial file and is retried
  /// while transient; a permanent failure (or exhausted retries) returns
  /// the error with nothing left on disk.
  Result<std::unique_ptr<SpillRun>> WriteRun(const std::vector<Row>& rows);

  /// Reads the next row of `run` into `*out`; sets `*eof` instead at end
  /// of run. Failed reads are retried from the same offset while
  /// transient.
  Status ReadNext(SpillRun* run, Row* out, bool* eof);

  /// Closes and removes the run's file now (the accounted cleanup path —
  /// probes exec.spill.cleanup). The RAII destructor remains as the
  /// unconditional backstop for paths that cannot report a Status.
  Status ReleaseRun(std::unique_ptr<SpillRun> run);

 private:
  /// One write attempt: creates the file, writes every row, seals it for
  /// reading. Removes the partial file on failure.
  Status TryWriteRun(const std::vector<Row>& rows, SpillRun* run);

  SpillConfig config_;
  RuntimeMetrics* metrics_;
  std::string temp_dir_;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_SPILL_H_
