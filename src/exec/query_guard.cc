#include "exec/query_guard.h"

#include <algorithm>

#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row) {
    bytes += static_cast<int64_t>(sizeof(Value));
    if (v.type() == DataType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

void QueryGuard::Arm() {
  armed_ = true;
  start_time_ = std::chrono::steady_clock::now();
  events_until_check_ = 1;
}

void QueryGuard::ResetForRetry() {
  if (shared_budget_ != nullptr && shared_charged_bytes_ > 0) {
    shared_budget_->Release(shared_charged_bytes_);
  }
  shared_charged_bytes_ = 0;
  status_ = Status::OK();
  tripped_ = false;
  armed_ = false;
  events_until_check_ = 1;
  rows_scanned_ = 0;
  rows_produced_ = 0;
  buffered_rows_ = 0;
  buffered_bytes_ = 0;
  buffered_rows_peak_ = 0;
  buffered_bytes_peak_ = 0;
}

void QueryGuard::Poison(Status status) {
  if (tripped_) return;
  ORDOPT_CHECK_MSG(!status.ok(), "QueryGuard poisoned with OK status");
  status_ = std::move(status);
  tripped_ = true;
}

bool QueryGuard::TripScanLimit() {
  Poison(Status::ResourceExhausted(
      StrFormat("scan limit exceeded: %lld rows scanned, limit %lld",
                static_cast<long long>(rows_scanned_),
                static_cast<long long>(limits_.max_rows_scanned))));
  return false;
}

bool QueryGuard::TripProducedLimit() {
  Poison(Status::ResourceExhausted(
      StrFormat("output limit exceeded: %lld rows produced, limit %lld",
                static_cast<long long>(rows_produced_),
                static_cast<long long>(limits_.max_rows_produced))));
  return false;
}

bool QueryGuard::OnRowsBuffered(int64_t rows, int64_t bytes) {
  buffered_rows_ += rows;
  buffered_bytes_ += bytes;
  if (shared_budget_ != nullptr && bytes > 0) {
    if (shared_budget_->TryCharge(bytes)) {
      shared_charged_bytes_ += bytes;
    } else {
      Poison(Status::ResourceExhausted(StrFormat(
          "global memory budget exhausted: query holds ~%lld bytes, pool "
          "%lld/%lld bytes committed",
          static_cast<long long>(buffered_bytes_),
          static_cast<long long>(shared_budget_->used_bytes()),
          static_cast<long long>(shared_budget_->limit_bytes()))));
      return false;
    }
  }
  buffered_rows_peak_ = std::max(buffered_rows_peak_, buffered_rows_);
  buffered_bytes_peak_ = std::max(buffered_bytes_peak_, buffered_bytes_);
  if (limits_.max_buffered_rows > 0 &&
      buffered_rows_ > limits_.max_buffered_rows) {
    Poison(Status::ResourceExhausted(
        StrFormat("buffer limit exceeded: %lld rows buffered in blocking "
                  "operators, limit %lld",
                  static_cast<long long>(buffered_rows_),
                  static_cast<long long>(limits_.max_buffered_rows))));
    return false;
  }
  if (limits_.max_buffered_bytes > 0 &&
      buffered_bytes_ > limits_.max_buffered_bytes) {
    Poison(Status::ResourceExhausted(
        StrFormat("buffer limit exceeded: ~%lld bytes buffered in blocking "
                  "operators, limit %lld",
                  static_cast<long long>(buffered_bytes_),
                  static_cast<long long>(limits_.max_buffered_bytes))));
    return false;
  }
  return PeriodicCheck();
}

void QueryGuard::OnBufferReleased(int64_t rows, int64_t bytes) {
  buffered_rows_ -= rows;
  buffered_bytes_ -= bytes;
  if (shared_budget_ != nullptr && bytes > 0) {
    // Release at most what this guard actually managed to charge: a trip
    // mid-buffer leaves the failed charge uncounted.
    int64_t give_back = std::min(bytes, shared_charged_bytes_);
    shared_budget_->Release(give_back);
    shared_charged_bytes_ -= give_back;
  }
}

bool QueryGuard::ForceCheck() {
  if (tripped_) return false;
  events_until_check_ = kCheckIntervalRows;
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    Poison(Status::Cancelled("query cancelled by caller"));
    return false;
  }
  if (armed_ && limits_.deadline_seconds > 0.0) {
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
    if (elapsed > limits_.deadline_seconds) {
      Poison(Status::Timeout(
          StrFormat("query deadline of %.3fs exceeded (ran %.3fs)",
                    limits_.deadline_seconds, elapsed)));
      return false;
    }
  }
  return true;
}

void QueryGuard::ReportTo(RuntimeMetrics* metrics) const {
  if (metrics == nullptr) return;
  metrics->rows_buffered_peak =
      std::max(metrics->rows_buffered_peak, buffered_rows_peak_);
  metrics->bytes_buffered_peak =
      std::max(metrics->bytes_buffered_peak, buffered_bytes_peak_);
}

void ExecContext::Poison(Status status) const {
  if (guard != nullptr) {
    guard->Poison(std::move(status));
    return;
  }
  // No guard: this is a directly-constructed operator tree (tests,
  // benches); keep the historical fail-fast behavior for invariants.
  ORDOPT_CHECK_MSG(false, "executor error without a guard: %s",
                   status.ToString().c_str());
}

}  // namespace ordopt
