#include "exec/query_guard.h"

#include <algorithm>

#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

namespace {

/// Racy-monotonic maximum for peak counters: exact peaks would need a lock
/// on every buffered row; a CAS loop keeps the recorded peak monotone and
/// within one concurrent update of the true maximum.
void AtomicMax(std::atomic<int64_t>* target, int64_t candidate) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (candidate > cur &&
         !target->compare_exchange_weak(cur, candidate,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row) {
    bytes += static_cast<int64_t>(sizeof(Value));
    if (v.type() == DataType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

void QueryGuard::Arm() {
  armed_ = true;
  start_time_ = std::chrono::steady_clock::now();
  events_until_check_.store(1, std::memory_order_relaxed);
}

void QueryGuard::ResetForRetry() {
  int64_t charged = shared_charged_bytes_.load(std::memory_order_relaxed);
  if (shared_budget_ != nullptr && charged > 0) {
    shared_budget_->Release(charged);
  }
  shared_charged_bytes_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_ = Status::OK();
  }
  tripped_.store(false, std::memory_order_release);
  armed_ = false;
  events_until_check_.store(1, std::memory_order_relaxed);
  rows_scanned_.store(0, std::memory_order_relaxed);
  rows_produced_.store(0, std::memory_order_relaxed);
  buffered_rows_.store(0, std::memory_order_relaxed);
  buffered_bytes_.store(0, std::memory_order_relaxed);
  buffered_rows_peak_.store(0, std::memory_order_relaxed);
  buffered_bytes_peak_.store(0, std::memory_order_relaxed);
}

void QueryGuard::Poison(Status status) {
  ORDOPT_CHECK_MSG(!status.ok(), "QueryGuard poisoned with OK status");
  std::lock_guard<std::mutex> lock(status_mu_);
  if (tripped_.load(std::memory_order_relaxed)) return;
  status_ = std::move(status);
  // Release: workers observing tripped_ via ok() see the Status write.
  tripped_.store(true, std::memory_order_release);
}

bool QueryGuard::TripScanLimit(int64_t scanned) {
  Poison(Status::ResourceExhausted(
      StrFormat("scan limit exceeded: %lld rows scanned, limit %lld",
                static_cast<long long>(scanned),
                static_cast<long long>(limits_.max_rows_scanned))));
  return false;
}

bool QueryGuard::TripProducedLimit(int64_t produced) {
  Poison(Status::ResourceExhausted(
      StrFormat("output limit exceeded: %lld rows produced, limit %lld",
                static_cast<long long>(produced),
                static_cast<long long>(limits_.max_rows_produced))));
  return false;
}

bool QueryGuard::OnRowsBuffered(int64_t rows, int64_t bytes) {
  int64_t buffered_rows =
      buffered_rows_.fetch_add(rows, std::memory_order_relaxed) + rows;
  int64_t buffered_bytes =
      buffered_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (shared_budget_ != nullptr && bytes > 0) {
    if (shared_budget_->TryCharge(bytes)) {
      shared_charged_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    } else {
      Poison(Status::ResourceExhausted(StrFormat(
          "global memory budget exhausted: query holds ~%lld bytes, pool "
          "%lld/%lld bytes committed",
          static_cast<long long>(buffered_bytes),
          static_cast<long long>(shared_budget_->used_bytes()),
          static_cast<long long>(shared_budget_->limit_bytes()))));
      return false;
    }
  }
  AtomicMax(&buffered_rows_peak_, buffered_rows);
  AtomicMax(&buffered_bytes_peak_, buffered_bytes);
  if (limits_.max_buffered_rows > 0 &&
      buffered_rows > limits_.max_buffered_rows) {
    Poison(Status::ResourceExhausted(
        StrFormat("buffer limit exceeded: %lld rows buffered in blocking "
                  "operators, limit %lld",
                  static_cast<long long>(buffered_rows),
                  static_cast<long long>(limits_.max_buffered_rows))));
    return false;
  }
  if (limits_.max_buffered_bytes > 0 &&
      buffered_bytes > limits_.max_buffered_bytes) {
    Poison(Status::ResourceExhausted(
        StrFormat("buffer limit exceeded: ~%lld bytes buffered in blocking "
                  "operators, limit %lld",
                  static_cast<long long>(buffered_bytes),
                  static_cast<long long>(limits_.max_buffered_bytes))));
    return false;
  }
  return PeriodicCheck();
}

void QueryGuard::OnBufferReleased(int64_t rows, int64_t bytes) {
  buffered_rows_.fetch_sub(rows, std::memory_order_relaxed);
  buffered_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  if (shared_budget_ != nullptr && bytes > 0) {
    // Release at most what this guard actually managed to charge: a trip
    // mid-buffer leaves the failed charge uncounted. CAS-bounded so
    // concurrent worker releases cannot collectively over-release.
    int64_t cur = shared_charged_bytes_.load(std::memory_order_relaxed);
    int64_t give_back = 0;
    do {
      give_back = std::min(bytes, cur);
      if (give_back <= 0) return;
    } while (!shared_charged_bytes_.compare_exchange_weak(
        cur, cur - give_back, std::memory_order_relaxed));
    shared_budget_->Release(give_back);
  }
}

bool QueryGuard::ForceCheck() {
  if (tripped_.load(std::memory_order_acquire)) return false;
  events_until_check_.store(kCheckIntervalRows, std::memory_order_relaxed);
  if (cancel_requested_.load(std::memory_order_relaxed)) {
    Poison(Status::Cancelled("query cancelled by caller"));
    return false;
  }
  if (armed_ && limits_.deadline_seconds > 0.0) {
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_time_)
                         .count();
    if (elapsed > limits_.deadline_seconds) {
      Poison(Status::Timeout(
          StrFormat("query deadline of %.3fs exceeded (ran %.3fs)",
                    limits_.deadline_seconds, elapsed)));
      return false;
    }
  }
  return true;
}

void QueryGuard::ReportTo(RuntimeMetrics* metrics) const {
  if (metrics == nullptr) return;
  metrics->rows_buffered_peak =
      std::max(metrics->rows_buffered_peak, buffered_rows_peak());
  metrics->bytes_buffered_peak =
      std::max(metrics->bytes_buffered_peak, buffered_bytes_peak());
}

void ExecContext::Poison(Status status) const {
  if (guard != nullptr) {
    guard->Poison(std::move(status));
    return;
  }
  // No guard: this is a directly-constructed operator tree (tests,
  // benches); keep the historical fail-fast behavior for invariants.
  ORDOPT_CHECK_MSG(false, "executor error without a guard: %s",
                   status.ToString().c_str());
}

}  // namespace ordopt
