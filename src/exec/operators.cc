#include "exec/operators.h"

#include <algorithm>
#include <cstring>
#include <ctime>

#include "exec/sort_key.h"

#include "common/macros.h"
#include "common/str_util.h"
#include "exec/parallel/morsel.h"
#include "exec/spill.h"

namespace ordopt {

namespace {

// CPU time consumed by the calling thread, for parallel-run-generation job
// accounting (RuntimeMetrics::worker_busy_ns_*).
int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// Positions of `cols` within `layout`. A miss is a planner bug: with a
// guard the query degrades to Status::Internal (the poisoned tree is
// discarded by BuildOperatorTree before it can run); without one the
// historical abort stands.
std::vector<int> PositionsOf(const std::vector<ColumnId>& cols,
                             const std::vector<ColumnId>& layout,
                             const ExecContext& ctx) {
  ExprEvaluator eval(layout);
  std::vector<int> out;
  for (const ColumnId& c : cols) {
    int pos = eval.PositionOf(c);
    if (pos < 0) {
      ctx.Poison(Status::Internal(
          StrFormat("column %s missing from operator layout",
                    DefaultColumnName(c).c_str())));
      pos = 0;  // placeholder; the poisoned tree never executes
    }
    out.push_back(pos);
  }
  return out;
}

// Layout of a base-table stream, optionally pruned to `required` (build-time
// column pruning). `src_ordinals`, when given, receives the table-column
// ordinal backing each emitted column.
std::vector<ColumnId> TableLayout(const Table& table, int table_id,
                                  const ColumnSet* required = nullptr,
                                  std::vector<int32_t>* src_ordinals = nullptr) {
  std::vector<ColumnId> layout;
  for (size_t i = 0; i < table.def().columns.size(); ++i) {
    ColumnId col(table_id, static_cast<int32_t>(i));
    if (required != nullptr && !required->Contains(col)) continue;
    layout.push_back(col);
    if (src_ordinals != nullptr) {
      src_ordinals->push_back(static_cast<int32_t>(i));
    }
  }
  return layout;
}

// Stable normalized-key sort of `rows` (Graefe): encode each row's sort key
// once into a contiguous arena of memcmp-comparable bytes, sort an index
// vector with a branch-light comparator, then gather rows into the new
// order. The index tie-break reproduces std::stable_sort's stability. Free
// function so SortOp's parallel run-generation jobs can run it on their own
// threads against a job-private comparison counter.
void SortRowsNormalized(std::vector<Row>* rows,
                        const std::vector<int>& positions,
                        const std::vector<bool>& descending,
                        int64_t* cmp_counter) {
  const size_t n = rows->size();
  if (n < 2) return;
  std::string arena;
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    AppendNormalizedKey((*rows)[i], positions, descending, &arena);
    offsets[i + 1] = arena.size();
  }
  std::vector<uint32_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<uint32_t>(i);
  const char* data = arena.data();
  std::sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t b) {
    ++*cmp_counter;
    const size_t alen = offsets[a + 1] - offsets[a];
    const size_t blen = offsets[b + 1] - offsets[b];
    const int c = std::memcmp(data + offsets[a], data + offsets[b],
                              alen < blen ? alen : blen);
    if (c != 0) return c < 0;
    // Column encodings are self-delimiting, so equal-prefix keys of
    // different length cannot happen; the check is belt-and-braces.
    if (alen != blen) return alen < blen;
    return a < b;
  });
  std::vector<Row> sorted;
  sorted.reserve(n);
  for (uint32_t i : idx) sorted.push_back(std::move((*rows)[i]));
  *rows = std::move(sorted);
}

}  // namespace

// ---------------------------------------------------------------------------
// TableScanOp
// ---------------------------------------------------------------------------

TableScanOp::TableScanOp(const Table& table, int table_id, ExecContext ctx,
                         const ColumnSet* required_columns, bool morsel_driver,
                         bool emit_provenance)
    : Operator(ctx),
      table_(table),
      pages_(ctx.metrics, kRowsPerPage),
      morsel_driver_(morsel_driver && ctx.morsels != nullptr),
      emit_provenance_(emit_provenance) {
  layout_ = TableLayout(table, table_id, required_columns, &src_ordinals_);
  if (emit_provenance_) layout_.push_back(ProvenanceColumnId());
}

void TableScanOp::OpenImpl() {
  rid_ = 0;
  // Morsel mode starts with an empty range so the first NextBatch claims.
  limit_ = morsel_driver_ ? 0 : table_.row_count();
}

bool TableScanOp::NextBatchImpl(RowBatch* out) {
  out->Reset(layout_.size(), BatchCapacity());
  if (morsel_driver_ && rid_ >= limit_) {
    if (ctx_.InjectFault("exec.parallel.morsel")) return false;
    if (!ctx_.GuardOk()) return false;
    if (!ctx_.morsels->ClaimRange(table_.row_count(), &rid_, &limit_)) {
      return false;
    }
  }
  // Account pages and the guard for the rid range first, then fill column
  // at a time: sequential writes into each output column instead of
  // striding across the full row width per row. Batches never cross a
  // morsel boundary (the loop stops at limit_), so every emitted batch is
  // a contiguous, ascending rid range.
  const int64_t start = rid_;
  const int64_t cap = out->capacity();
  int64_t n = 0;
  while (n < cap && rid_ < limit_) {
    pages_.Access(rid_);
    ++ctx_.metrics->rows_scanned;
    if (!ctx_.OnRowScanned()) break;  // tripped row: counted, not emitted
    ++rid_;
    ++n;
  }
  const size_t width = src_ordinals_.size();
  for (size_t c = 0; c < width; ++c) {
    const size_t ord = static_cast<size_t>(src_ordinals_[c]);
    for (int64_t i = 0; i < n; ++i) {
      out->AppendColumnValue(c, table_.row(start + i)[ord]);
    }
  }
  if (emit_provenance_) {
    // The provenance of a heap-scan row is its rid: the ordinal at which
    // the serial scan would have emitted it.
    for (int64_t i = 0; i < n; ++i) {
      out->AppendColumnValue(width, Value::Int(start + i));
    }
  }
  out->SetRowCount(n);
  return !out->empty();
}

// ---------------------------------------------------------------------------
// IndexScanOp
// ---------------------------------------------------------------------------

IndexScanOp::IndexScanOp(const Table& table, int table_id, int index_ordinal,
                         bool reverse, std::vector<Predicate> range_predicates,
                         ExecContext ctx, const ColumnSet* required_columns,
                         bool morsel_driver, bool emit_provenance)
    : Operator(ctx),
      table_(table),
      index_ordinal_(index_ordinal),
      reverse_(reverse),
      range_predicates_(std::move(range_predicates)),
      pages_(ctx.metrics, kRowsPerPage),
      morsel_driver_(morsel_driver && ctx.morsels != nullptr),
      emit_provenance_(emit_provenance) {
  layout_ = TableLayout(table, table_id, required_columns, &src_ordinals_);
  if (emit_provenance_) layout_.push_back(ProvenanceColumnId());
  if (reverse_ && !range_predicates_.empty()) {
    ctx_.Poison(Status::Internal(
        "reverse index scans do not support range bounds"));
  }
}

void IndexScanOp::OpenImpl() {
  done_ = true;
  ordinal_ = 0;
  pos_ = 0;
  limit_ = 0;
  rids_ = nullptr;
  if (!ctx_.GuardOk()) return;
  if (ctx_.InjectFault("storage.btree.read")) return;
  const BTreeIndex* index =
      table_.index(static_cast<size_t>(index_ordinal_));
  if (index == nullptr) {
    ctx_.Poison(Status::Internal("index scan over unbuilt index on table '" +
                                 table_.name() + "'"));
    return;
  }
  done_ = false;
  eq_prefix_.clear();
  cmp_position_ = -1;

  // Decompose range predicates along the index key: a chain of equalities
  // then at most one comparison (the planner guarantees this shape).
  const IndexDef& def =
      table_.def().indexes[static_cast<size_t>(index_ordinal_)];
  for (const Predicate& p : range_predicates_) {
    // Position of the predicate column within the index key.
    int key_pos = -1;
    for (size_t k = 0; k < def.column_ordinals.size(); ++k) {
      if (p.left_col.column == def.column_ordinals[k]) {
        key_pos = static_cast<int>(k);
        break;
      }
    }
    if (key_pos < 0) {
      ctx_.Poison(Status::Internal("range predicate off the index key"));
      done_ = true;
      return;
    }
    if (p.kind == Predicate::Kind::kColEqConst) {
      if (key_pos != static_cast<int>(eq_prefix_.size())) {
        ctx_.Poison(Status::Internal(
            "index range predicates do not form an equality prefix"));
        done_ = true;
        return;
      }
      eq_prefix_.push_back(p.constant);
    } else {
      cmp_position_ = key_pos;
      cmp_op_ = p.cmp;
      cmp_bound_ = p.constant;
    }
  }

  if (reverse_) {
    cursor_ = index->SeekLast();
    return;
  }
  IndexKey seek = eq_prefix_;
  if (cmp_position_ >= 0 &&
      (cmp_op_ == BinOp::kGt || cmp_op_ == BinOp::kGe)) {
    seek.push_back(cmp_bound_);
    cursor_ = cmp_op_ == BinOp::kGt ? index->SeekAfter(seek)
                                    : index->SeekAtLeast(seek);
  } else if (!seek.empty()) {
    cursor_ = index->SeekAtLeast(seek);
  } else {
    cursor_ = index->SeekFirst();
  }
}

bool IndexScanOp::EntryQualifies() const {
  const IndexKey& key = cursor_.key();
  for (size_t i = 0; i < eq_prefix_.size(); ++i) {
    if (key[i].Compare(eq_prefix_[i]) != 0) return false;
  }
  if (cmp_position_ >= 0) {
    const Value& v = key[static_cast<size_t>(cmp_position_)];
    if (v.is_null()) return false;
    int c = v.Compare(cmp_bound_);
    switch (cmp_op_) {
      case BinOp::kLt:
        return c < 0;
      case BinOp::kLe:
        return c <= 0;
      case BinOp::kGt:
        return c > 0;
      case BinOp::kGe:
        return c >= 0;
      default:
        return false;
    }
  }
  return true;
}

void IndexScanOp::CollectRids(std::vector<int64_t>* rids) {
  while (!done_ && cursor_.Valid()) {
    if (!EntryQualifies()) {
      done_ = true;
      break;
    }
    rids->push_back(cursor_.rid());
    if (reverse_) {
      cursor_.Prev();
    } else {
      cursor_.Next();
    }
  }
}

bool IndexScanOp::NextBatchImpl(RowBatch* out) {
  out->Reset(layout_.size(), BatchCapacity());
  const int64_t cap = out->capacity();
  scratch_rids_.clear();
  int64_t first_ordinal = 0;
  if (morsel_driver_) {
    // The qualifying rids are materialized once, in index-walk order, into
    // the exchange's shared vector (the first worker to get here walks its
    // own cursor; the rest reuse). Workers then claim position ranges, so
    // a row's provenance ordinal is simply its walk position, and every
    // worker's stream stays ascending in it.
    if (pos_ >= limit_) {
      if (ctx_.InjectFault("exec.parallel.morsel")) return false;
      if (!ctx_.GuardOk()) return false;
      if (rids_ == nullptr) {
        rids_ = &ctx_.morsels->EnsureRids(
            [this](std::vector<int64_t>* rids) { CollectRids(rids); });
      }
      if (!ctx_.morsels->ClaimRange(static_cast<int64_t>(rids_->size()),
                                    &pos_, &limit_)) {
        return false;
      }
    }
    first_ordinal = pos_;
    while (static_cast<int64_t>(scratch_rids_.size()) < cap &&
           pos_ < limit_) {
      const int64_t rid = (*rids_)[static_cast<size_t>(pos_)];
      pages_.Access(rid);
      ++ctx_.metrics->rows_scanned;
      if (!ctx_.OnRowScanned()) break;  // tripped row: counted, not emitted
      scratch_rids_.push_back(rid);
      ++pos_;
    }
  } else {
    first_ordinal = ordinal_;
    while (static_cast<int64_t>(scratch_rids_.size()) < cap && !done_ &&
           cursor_.Valid()) {
      if (!EntryQualifies()) {
        // Keys are monotone: an equality-prefix mismatch or a violated
        // upper bound means no further entry qualifies; a violated lower
        // bound cannot happen (the seek skipped below-bound entries).
        done_ = true;
        break;
      }
      const int64_t rid = cursor_.rid();
      if (reverse_) {
        cursor_.Prev();
      } else {
        cursor_.Next();
      }
      pages_.Access(rid);
      ++ctx_.metrics->rows_scanned;
      if (!ctx_.OnRowScanned()) {
        done_ = true;
        break;
      }
      scratch_rids_.push_back(rid);
      ++ordinal_;
    }
  }
  // Materialize the gathered rids column at a time (cf. TableScanOp).
  const int64_t n = static_cast<int64_t>(scratch_rids_.size());
  const size_t width = src_ordinals_.size();
  for (size_t c = 0; c < width; ++c) {
    const size_t ord = static_cast<size_t>(src_ordinals_[c]);
    for (int64_t i = 0; i < n; ++i) {
      out->AppendColumnValue(c, table_.row(scratch_rids_[static_cast<size_t>(
                                    i)])[ord]);
    }
  }
  if (emit_provenance_) {
    for (int64_t i = 0; i < n; ++i) {
      out->AppendColumnValue(width, Value::Int(first_ordinal + i));
    }
  }
  out->SetRowCount(n);
  return !out->empty();
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
                   ExecContext ctx)
    : Operator(ctx), child_(std::move(child)),
      predicates_(std::move(predicates)) {
  layout_ = child_->layout();
}

void FilterOp::OpenImpl() {
  child_->Open();
  eval_ = std::make_unique<ExprEvaluator>(layout_, ctx_.guard);
}

bool FilterOp::NextBatchImpl(RowBatch* out) {
  if (ctx_.row_shim) {
    // Legacy row-at-a-time shape: pull materialized rows through the
    // child's compat shim and evaluate each predicate row-wise.
    return FillBatch(out, [this](Row* row) {
      while (ctx_.GuardOk() && child_->Next(row)) {
        bool pass = true;
        for (const Predicate& p : predicates_) {
          if (!eval_->EvalPredicate(p, *row)) {
            pass = false;
            break;
          }
        }
        if (pass) return true;
      }
      return false;
    });
  }
  while (ctx_.GuardOk() && child_->NextBatch(&input_)) {
    const int64_t n = input_.size();
    sel_.resize(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      sel_[static_cast<size_t>(i)] = static_cast<int32_t>(i);
    }
    for (const Predicate& p : predicates_) {
      if (sel_.empty()) break;
      eval_->FilterBatch(p, input_, &sel_);
    }
    if (sel_.empty()) continue;
    if (static_cast<int64_t>(sel_.size()) != n) {
      // Compact survivors in place (moves, no Value copies) — the child
      // batch is our scratch and is reset on the next pull anyway.
      input_.Compact(sel_);
    }
    swap(*out, input_);
    return true;
  }
  return false;
}

void FilterOp::Close() { child_->Close(); }

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

SortOp::SortOp(OperatorPtr child, OrderSpec spec, ExecContext ctx)
    : Operator(ctx), child_(std::move(child)), spec_(std::move(spec)),
      buffer_(ctx.guard, &stats_) {
  layout_ = child_->layout();
}

bool SortOp::ResolveComparator() {
  positions_.clear();
  descending_.clear();
  ExprEvaluator eval(layout_);
  for (const OrderElement& e : spec_) {
    int p = eval.PositionOf(e.col);
    if (p < 0) {
      ctx_.Poison(Status::Internal(
          StrFormat("sort column %s missing from layout",
                    DefaultColumnName(e.col).c_str())));
      return false;
    }
    positions_.push_back(p);
    descending_.push_back(e.dir == SortDirection::kDescending);
  }
  return true;
}

bool SortOp::RowLess(const Row& a, const Row& b) const {
  for (size_t i = 0; i < positions_.size(); ++i) {
    ++ctx_.metrics->comparisons;
    int c = a[static_cast<size_t>(positions_[i])].Compare(
        b[static_cast<size_t>(positions_[i])]);
    if (c != 0) return descending_[i] ? c > 0 : c < 0;
  }
  return false;
}

void SortOp::SortBuffer() {
  SortRowsNormalized(&rows_, positions_, descending_,
                     &ctx_.metrics->comparisons);
}

bool SortOp::SpillCurrentRun() {
  SortBuffer();
  Result<std::unique_ptr<SpillRun>> run = ctx_.spill->WriteRun(rows_);
  if (!run.ok()) {
    ctx_.Poison(run.status());
    return false;
  }
  runs_.push_back(std::move(run).value_unsafe());
  rows_.clear();
  buffer_.Release();
  return true;
}

bool SortOp::SpillRunAsync() {
  // Bound in-flight jobs by the worker knob; join oldest-first so the
  // collection thread blocks on the run most likely to have finished.
  while (jobs_.size() - jobs_joined_ >=
         static_cast<size_t>(ctx_.parallel_workers)) {
    JoinOneJob();
    if (!ctx_.GuardOk()) return false;
  }
  auto job = std::make_unique<RunJob>();
  job->rows = std::move(rows_);
  rows_.clear();
  job->metrics = std::make_unique<RuntimeMetrics>();
  job->spill = std::make_unique<SpillManager>(ctx_.spill->config(),
                                              job->metrics.get());
  // Reserve the run's slot now: runs_ keeps input order regardless of job
  // completion order, so merge tie-breaking (lowest run index wins) stays
  // identical to the serial spill order.
  job->slot = runs_.size();
  runs_.push_back(nullptr);
  // The job takes over the buffered rows' guard charge; it is released at
  // join, once the run is on disk and the rows are freed.
  job->charged_rows = buffer_.rows();
  job->charged_bytes = buffer_.bytes();
  buffer_.ForgetCharge();
  RunJob* j = job.get();
  j->thread = std::thread([this, j] {
    const int64_t start_ns = ThreadCpuNs();
    SortRowsNormalized(&j->rows, positions_, descending_,
                       &j->metrics->comparisons);
    Result<std::unique_ptr<SpillRun>> run = j->spill->WriteRun(j->rows);
    if (run.ok()) {
      j->run = std::move(run).value_unsafe();
    } else {
      j->status = run.status();
    }
    j->rows.clear();
    j->metrics->worker_busy_ns_max = ThreadCpuNs() - start_ns;
    j->metrics->worker_busy_ns_total = j->metrics->worker_busy_ns_max;
  });
  jobs_.push_back(std::move(job));
  return ctx_.GuardOk();
}

void SortOp::JoinOneJob() {
  RunJob* job = jobs_[jobs_joined_].get();
  if (job->thread.joinable()) job->thread.join();
  ++jobs_joined_;
  if (ctx_.metrics != nullptr) ctx_.metrics->MergeFrom(*job->metrics);
  if (ctx_.guard != nullptr) {
    ctx_.guard->OnBufferReleased(job->charged_rows, job->charged_bytes);
  }
  if (!job->status.ok()) {
    ctx_.Poison(job->status);
    return;
  }
  runs_[job->slot] = std::move(job->run);
}

void SortOp::JoinAllJobs() {
  while (jobs_joined_ < jobs_.size()) JoinOneJob();
  jobs_.clear();
  jobs_joined_ = 0;
}

void SortOp::Abandon() {
  JoinAllJobs();
  rows_.clear();
  buffer_.Release();
  heads_.clear();
  head_valid_.clear();
  merging_ = false;
  ReleaseRuns();
}

void SortOp::ReleaseRuns() {
  for (std::unique_ptr<SpillRun>& run : runs_) {
    // A failed/abandoned parallel job can leave its placeholder empty.
    if (run == nullptr) continue;
    // runs_ is only ever non-empty under an engine-provided SpillManager.
    Status st = ctx_.spill->ReleaseRun(std::move(run));
    if (!st.ok()) ctx_.Poison(std::move(st));
  }
  runs_.clear();
}

void SortOp::OpenImpl() {
  child_->Open();
  buffer_.Release();
  rows_.clear();
  ReleaseRuns();
  heads_.clear();
  head_valid_.clear();
  pos_ = 0;
  merging_ = false;
  if (!ResolveComparator()) return;
  const int64_t budget =
      ctx_.spill != nullptr ? ctx_.spill->config().sort_memory_rows : 0;
  // Parallel run generation (§5.2): with workers available, a full buffer
  // is sorted and spilled on a job thread while this thread keeps pulling
  // input — run formation overlaps input production. The row shim keeps
  // the historical strictly-serial shape (it is the baseline).
  const bool async_runs = ctx_.parallel_workers > 1 && !ctx_.row_shim;
  int64_t total_rows = 0;
  Row row;
  if (ctx_.row_shim) {
    // Legacy row-at-a-time collection through the child's compat shim.
    while (child_->Next(&row)) {
      if (!buffer_.Add(row)) return;  // buffer limit tripped: wind down
      rows_.push_back(std::move(row));
      ++total_rows;
      if (budget > 0 && static_cast<int64_t>(rows_.size()) >= budget) {
        if (!SpillCurrentRun()) {
          Abandon();
          return;
        }
      }
    }
  } else {
    RowBatch batch;
    while (child_->NextBatch(&batch)) {
      const int64_t n = batch.size();
      for (int64_t i = 0; i < n; ++i) {
        batch.TakeRowInto(i, &row);
        if (!buffer_.Add(row)) {  // buffer limit tripped: wind down
          JoinAllJobs();
          return;
        }
        rows_.push_back(std::move(row));
        ++total_rows;
        if (budget > 0 && static_cast<int64_t>(rows_.size()) >= budget) {
          if (!(async_runs ? SpillRunAsync() : SpillCurrentRun())) {
            Abandon();
            return;
          }
        }
      }
    }
  }
  JoinAllJobs();  // every reserved runs_ slot is installed past this point
  if (!ctx_.GuardOk()) {
    Abandon();
    return;
  }
  ++ctx_.metrics->sorts_performed;
  ctx_.metrics->rows_sorted += total_rows;
  SortBuffer();  // the tail — or the whole input when nothing spilled
  if (runs_.empty()) return;
  if (ctx_.InjectFault("exec.sort.spill.merge")) {
    Abandon();
    return;
  }
  heads_.resize(runs_.size());
  head_valid_.assign(runs_.size(), false);
  for (size_t i = 0; i < runs_.size(); ++i) {
    bool eof = false;
    Status st = ctx_.spill->ReadNext(runs_[i].get(), &heads_[i], &eof);
    if (!st.ok()) {
      ctx_.Poison(std::move(st));
      Abandon();
      return;
    }
    head_valid_[i] = !eof;
  }
  merging_ = true;
}

bool SortOp::NextBatchImpl(RowBatch* out) {
  if (merging_) {
    return FillBatch(out, [this](Row* row) { return MergeNext(row); });
  }
  out->Reset(layout_.size(), BatchCapacity());
  while (!out->full() && pos_ < rows_.size()) {
    out->AppendRow(std::move(rows_[pos_]));
    ++pos_;
  }
  return !out->empty();
}

bool SortOp::MergeNext(Row* out) {
  if (!ctx_.GuardOk()) return false;
  // Smallest run head wins; among equal heads the lowest run index (the
  // earliest rows in input order) wins, and the in-memory tail — the
  // newest rows — only wins strictly, which together preserve stability.
  int best = -1;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (!head_valid_[i]) continue;
    if (best < 0 || RowLess(heads_[i], heads_[static_cast<size_t>(best)])) {
      best = static_cast<int>(i);
    }
  }
  if (pos_ < rows_.size() &&
      (best < 0 || RowLess(rows_[pos_], heads_[static_cast<size_t>(best)]))) {
    *out = std::move(rows_[pos_++]);
    return true;
  }
  if (best < 0) return false;  // runs and tail both drained
  size_t b = static_cast<size_t>(best);
  *out = std::move(heads_[b]);
  bool eof = false;
  Status st = ctx_.spill->ReadNext(runs_[b].get(), &heads_[b], &eof);
  if (!st.ok()) {
    ctx_.Poison(std::move(st));
    Abandon();
    return false;
  }
  head_valid_[b] = !eof;
  return true;
}

void SortOp::Close() {
  child_->Close();
  JoinAllJobs();
  rows_.clear();
  heads_.clear();
  head_valid_.clear();
  merging_ = false;
  ReleaseRuns();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// MergeJoinOp
// ---------------------------------------------------------------------------

MergeJoinOp::MergeJoinOp(OperatorPtr outer, OperatorPtr inner,
                         std::vector<std::pair<ColumnId, ColumnId>> pairs,
                         ExecContext ctx)
    : Operator(ctx), outer_(std::move(outer)), inner_(std::move(inner)),
      group_buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
  std::vector<ColumnId> ocols, icols;
  for (const auto& [o, i] : pairs) {
    ocols.push_back(o);
    icols.push_back(i);
  }
  outer_positions_ = PositionsOf(ocols, outer_->layout(), ctx_);
  inner_positions_ = PositionsOf(icols, inner_->layout(), ctx_);
}

void MergeJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  outer_valid_ = outer_->Next(&outer_row_);
  inner_valid_ = inner_->Next(&inner_row_);
  group_valid_ = false;
  group_pos_ = 0;
}

int MergeJoinOp::CompareKeys(const Row& outer_row,
                             const Row& inner_row) const {
  for (size_t i = 0; i < outer_positions_.size(); ++i) {
    ++ctx_.metrics->comparisons;
    int c = outer_row[static_cast<size_t>(outer_positions_[i])].Compare(
        inner_row[static_cast<size_t>(inner_positions_[i])]);
    if (c != 0) return c;
  }
  return 0;
}

bool MergeJoinOp::OuterKeyEqualsGroup(const Row& outer_row) const {
  for (size_t i = 0; i < outer_positions_.size(); ++i) {
    if (outer_row[static_cast<size_t>(outer_positions_[i])].Compare(
            group_key_[i]) != 0) {
      return false;
    }
  }
  return true;
}

bool MergeJoinOp::FetchOuter() {
  outer_valid_ = outer_->Next(&outer_row_);
  return outer_valid_;
}

void MergeJoinOp::LoadInnerGroup() {
  group_.clear();
  group_buffer_.Release();
  group_key_.clear();
  for (int p : inner_positions_) {
    group_key_.push_back(inner_row_[static_cast<size_t>(p)]);
  }
  while (inner_valid_) {
    bool same = true;
    for (size_t i = 0; i < inner_positions_.size(); ++i) {
      if (inner_row_[static_cast<size_t>(inner_positions_[i])].Compare(
              group_key_[i]) != 0) {
        same = false;
        break;
      }
    }
    if (!same) break;
    if (!group_buffer_.Add(inner_row_)) {
      inner_valid_ = false;  // buffer limit tripped: wind down
      break;
    }
    group_.push_back(inner_row_);
    inner_valid_ = inner_->Next(&inner_row_);
  }
  group_valid_ = true;
  group_pos_ = 0;
}

bool MergeJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool MergeJoinOp::ProduceRow(Row* out) {
  while (true) {
    if (group_valid_ && outer_valid_ && OuterKeyEqualsGroup(outer_row_)) {
      if (group_pos_ < group_.size()) {
        *out = outer_row_;
        const Row& inner = group_[group_pos_++];
        out->insert(out->end(), inner.begin(), inner.end());
        return true;
      }
      group_pos_ = 0;
      FetchOuter();
      continue;
    }
    if (!outer_valid_) return false;

    // Skip outer rows with NULL join keys (they match nothing).
    bool outer_null = false;
    for (int p : outer_positions_) {
      if (outer_row_[static_cast<size_t>(p)].is_null()) outer_null = true;
    }
    if (outer_null) {
      FetchOuter();
      continue;
    }

    // Advance inner past smaller (or NULL) keys.
    while (inner_valid_) {
      bool inner_null = false;
      for (int p : inner_positions_) {
        if (inner_row_[static_cast<size_t>(p)].is_null()) inner_null = true;
      }
      if (inner_null || CompareKeys(outer_row_, inner_row_) > 0) {
        inner_valid_ = inner_->Next(&inner_row_);
        continue;
      }
      break;
    }
    if (!inner_valid_) {
      // Inner exhausted: no outer row can match any more. A still-loaded
      // group can only match the current outer, which we already checked.
      return false;
    }
    if (CompareKeys(outer_row_, inner_row_) == 0) {
      LoadInnerGroup();
      continue;
    }
    // inner key > outer key: advance outer.
    FetchOuter();
  }
}

void MergeJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  group_.clear();
  group_buffer_.Release();
}

// ---------------------------------------------------------------------------
// IndexNLJoinOp
// ---------------------------------------------------------------------------

IndexNLJoinOp::IndexNLJoinOp(OperatorPtr outer, const Table& table,
                             int table_id, int index_ordinal,
                             std::vector<std::pair<ColumnId, ColumnId>> pairs,
                             ExecContext ctx,
                             const ColumnSet* required_columns)
    : Operator(ctx),
      outer_(std::move(outer)),
      table_(table),
      index_ordinal_(index_ordinal),
      pairs_(std::move(pairs)),
      pages_(ctx.metrics, kRowsPerPage) {
  layout_ = outer_->layout();
  for (const ColumnId& c :
       TableLayout(table, table_id, required_columns, &inner_ordinals_)) {
    layout_.push_back(c);
  }
  std::vector<ColumnId> ocols;
  for (const auto& [o, i] : pairs_) ocols.push_back(o);
  outer_positions_ = PositionsOf(ocols, outer_->layout(), ctx_);
}

void IndexNLJoinOp::OpenImpl() {
  outer_->Open();
  probing_ = false;
  outer_batch_.Reset(outer_->layout().size(), 1);
  outer_pos_ = -1;  // Probe pre-increments
}

IndexNLJoinOp::ProbeResult IndexNLJoinOp::Probe() {
  const BTreeIndex* index =
      table_.index(static_cast<size_t>(index_ordinal_));
  if (index == nullptr) {
    ctx_.Poison(Status::Internal("index join probe into unbuilt index on "
                                 "table '" + table_.name() + "'"));
    return ProbeResult::kEnd;
  }
  while (true) {
    ++outer_pos_;
    if (outer_pos_ >= outer_batch_.size()) return ProbeResult::kNeedBatch;
    if (ctx_.InjectFault("storage.btree.read")) return ProbeResult::kEnd;
    probe_key_.clear();
    bool has_null = false;
    for (int p : outer_positions_) {
      const size_t c = static_cast<size_t>(p);
      if (outer_batch_.IsNull(c, outer_pos_)) {
        has_null = true;
        break;
      }
      probe_key_.push_back(outer_batch_.At(c, outer_pos_));
    }
    if (has_null) continue;
    ++ctx_.metrics->index_probes;
    cursor_ = index->SeekAtLeast(probe_key_);
    if (cursor_.Valid() && index->CompareKeys(cursor_.key(), probe_key_) == 0) {
      probing_ = true;
      return ProbeResult::kMatch;
    }
  }
}

// Legacy row-shim variants: outer rows are materialized one at a time
// through the compat shim and each output row is built as a Row — the
// engine's pre-vectorization shape, kept as the sweep baseline.
bool IndexNLJoinOp::RowProbe() {
  const BTreeIndex* index =
      table_.index(static_cast<size_t>(index_ordinal_));
  if (index == nullptr) {
    ctx_.Poison(Status::Internal("index join probe into unbuilt index on "
                                 "table '" + table_.name() + "'"));
    return false;
  }
  while (outer_->Next(&row_outer_)) {
    if (ctx_.InjectFault("storage.btree.read")) return false;
    probe_key_.clear();
    bool has_null = false;
    for (int p : outer_positions_) {
      const Value& v = row_outer_[static_cast<size_t>(p)];
      if (v.is_null()) has_null = true;
      probe_key_.push_back(v);
    }
    if (has_null) continue;
    ++ctx_.metrics->index_probes;
    cursor_ = index->SeekAtLeast(probe_key_);
    if (cursor_.Valid() && index->CompareKeys(cursor_.key(), probe_key_) == 0) {
      probing_ = true;
      return true;
    }
  }
  return false;
}

bool IndexNLJoinOp::RowProduce(Row* out) {
  const BTreeIndex* index =
      table_.index(static_cast<size_t>(index_ordinal_));
  while (true) {
    if (!probing_) {
      if (!RowProbe()) return false;
    }
    if (cursor_.Valid() &&
        index->CompareKeys(cursor_.key(), probe_key_) == 0) {
      int64_t rid = cursor_.rid();
      cursor_.Next();
      pages_.Access(rid);
      ++ctx_.metrics->rows_scanned;
      if (!ctx_.OnRowScanned()) return false;
      *out = row_outer_;
      const Row& inner = table_.row(rid);
      for (int32_t ord : inner_ordinals_) {
        out->push_back(inner[static_cast<size_t>(ord)]);
      }
      return true;
    }
    probing_ = false;
  }
}

bool IndexNLJoinOp::NextBatchImpl(RowBatch* out) {
  if (ctx_.row_shim) {
    return FillBatch(out, [this](Row* row) { return RowProduce(row); });
  }
  const BTreeIndex* index =
      table_.index(static_cast<size_t>(index_ordinal_));
  out->Reset(layout_.size(), BatchCapacity());
  const size_t outer_width = outer_->layout().size();
  const int64_t cap = out->capacity();

  // Gather phase: collect (outer row, inner rid) match pairs. The pairs
  // only ever reference the *current* outer batch — when the outer batch
  // is exhausted mid-build, the gathered rows are materialized and the
  // batch goes out short (consumers must not assume fullness).
  match_outer_.clear();
  match_rid_.clear();
  while (static_cast<int64_t>(match_rid_.size()) < cap) {
    if (!ctx_.GuardOk()) break;
    if (!probing_) {
      ProbeResult r = Probe();
      if (r == ProbeResult::kEnd) break;
      if (r == ProbeResult::kNeedBatch) {
        if (!match_rid_.empty()) break;  // flush rows of the old batch first
        if (!outer_->NextBatch(&outer_batch_)) break;
        outer_pos_ = -1;
        continue;
      }
    }
    // Invariant while probing_: the cursor sits on an entry matching
    // probe_key_. Advancing it tells us up front whether this is the last
    // match for the current outer row.
    const int64_t rid = cursor_.rid();
    cursor_.Next();
    const bool last_match =
        !(cursor_.Valid() &&
          index->CompareKeys(cursor_.key(), probe_key_) == 0);
    pages_.Access(rid);
    ++ctx_.metrics->rows_scanned;
    probing_ = !last_match;
    if (!ctx_.OnRowScanned()) break;
    match_outer_.push_back(static_cast<int32_t>(outer_pos_));
    match_rid_.push_back(rid);
  }

  // Materialize phase, column at a time: sequential writes into each
  // output column instead of striding across the full output width per
  // row. Outer values are copied per match (one outer row fans out to
  // every matching inner row) except at each outer row's last gathered
  // use, where they are moved — the slot is never read again (probe_key_
  // holds its own copies of the key, and probing_ tells us whether the
  // final gathered row still has matches pending in the next batch).
  const size_t n = match_rid_.size();
  for (size_t c = 0; c < outer_width; ++c) {
    for (size_t i = 0; i < n; ++i) {
      const int64_t pos = match_outer_[i];
      const bool last_use =
          (i + 1 < n) ? (match_outer_[i + 1] != pos) : !probing_;
      if (last_use) {
        out->AppendColumnValue(c, std::move(*outer_batch_.MutableAt(c, pos)));
      } else {
        out->AppendColumnValue(c, outer_batch_.At(c, pos));
      }
    }
  }
  for (size_t c = 0; c < inner_ordinals_.size(); ++c) {
    const size_t ord = static_cast<size_t>(inner_ordinals_[c]);
    for (size_t i = 0; i < n; ++i) {
      out->AppendColumnValue(outer_width + c, table_.row(match_rid_[i])[ord]);
    }
  }
  out->SetRowCount(static_cast<int64_t>(n));
  return !out->empty();
}

void IndexNLJoinOp::Close() { outer_->Close(); }

// ---------------------------------------------------------------------------
// NaiveNLJoinOp
// ---------------------------------------------------------------------------

NaiveNLJoinOp::NaiveNLJoinOp(OperatorPtr outer, OperatorPtr inner,
                             ExecContext ctx)
    : Operator(ctx), outer_(std::move(outer)), inner_(std::move(inner)),
      buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
}

void NaiveNLJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  inner_rows_.clear();
  buffer_.Release();
  Row row;
  while (inner_->Next(&row)) {
    if (!buffer_.Add(row)) {
      outer_valid_ = false;
      inner_pos_ = 0;
      return;
    }
    inner_rows_.push_back(std::move(row));
  }
  outer_valid_ = outer_->Next(&outer_row_);
  inner_pos_ = 0;
}

bool NaiveNLJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool NaiveNLJoinOp::ProduceRow(Row* out) {
  while (outer_valid_) {
    if (inner_pos_ < inner_rows_.size()) {
      *out = outer_row_;
      const Row& inner = inner_rows_[inner_pos_++];
      out->insert(out->end(), inner.begin(), inner.end());
      return true;
    }
    inner_pos_ = 0;
    outer_valid_ = outer_->Next(&outer_row_);
  }
  return false;
}

void NaiveNLJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  inner_rows_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

size_t HashJoinOp::KeyHash::operator()(const std::vector<Value>& key) const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : key) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool HashJoinOp::KeyEq::operator()(const std::vector<Value>& a,
                                   const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

HashJoinOp::HashJoinOp(OperatorPtr outer, OperatorPtr inner,
                       std::vector<std::pair<ColumnId, ColumnId>> pairs,
                       ExecContext ctx)
    : Operator(ctx), outer_(std::move(outer)), inner_(std::move(inner)),
      buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
  std::vector<ColumnId> ocols, icols;
  for (const auto& [o, i] : pairs) {
    ocols.push_back(o);
    icols.push_back(i);
  }
  outer_positions_ = PositionsOf(ocols, outer_->layout(), ctx_);
  inner_positions_ = PositionsOf(icols, inner_->layout(), ctx_);
}

void HashJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  hash_table_.clear();
  buffer_.Release();
  Row row;
  while (inner_->Next(&row)) {
    std::vector<Value> key;
    bool has_null = false;
    for (int p : inner_positions_) {
      if (row[static_cast<size_t>(p)].is_null()) has_null = true;
      key.push_back(row[static_cast<size_t>(p)]);
    }
    if (has_null) continue;
    if (!buffer_.Add(row)) break;  // buffer limit tripped: wind down
    hash_table_[std::move(key)].push_back(std::move(row));
  }
  matches_ = nullptr;
  match_pos_ = 0;
}

bool HashJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool HashJoinOp::ProduceRow(Row* out) {
  if (!ctx_.GuardOk()) return false;
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = outer_row_;
      const Row& inner = (*matches_)[match_pos_++];
      out->insert(out->end(), inner.begin(), inner.end());
      return true;
    }
    matches_ = nullptr;
    if (!outer_->Next(&outer_row_)) return false;
    std::vector<Value> key;
    bool has_null = false;
    for (int p : outer_positions_) {
      if (outer_row_[static_cast<size_t>(p)].is_null()) has_null = true;
      key.push_back(outer_row_[static_cast<size_t>(p)]);
    }
    if (has_null) continue;
    auto it = hash_table_.find(key);
    if (it != hash_table_.end()) {
      matches_ = &it->second;
      match_pos_ = 0;
    }
  }
}

void HashJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  hash_table_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// MergeLeftJoinOp
// ---------------------------------------------------------------------------

MergeLeftJoinOp::MergeLeftJoinOp(
    OperatorPtr outer, OperatorPtr inner,
    std::vector<std::pair<ColumnId, ColumnId>> pairs, ExecContext ctx)
    : Operator(ctx), outer_(std::move(outer)), inner_(std::move(inner)),
      group_buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  inner_width_ = inner_->layout().size();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
  std::vector<ColumnId> ocols, icols;
  for (const auto& [o, i] : pairs) {
    ocols.push_back(o);
    icols.push_back(i);
  }
  outer_positions_ = PositionsOf(ocols, outer_->layout(), ctx_);
  inner_positions_ = PositionsOf(icols, inner_->layout(), ctx_);
}

void MergeLeftJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  outer_valid_ = outer_->Next(&outer_row_);
  inner_valid_ = inner_->Next(&inner_row_);
  started_ = false;
  group_valid_ = false;
}

bool MergeLeftJoinOp::KeyEqualsGroup(const Row& outer_row) const {
  for (size_t i = 0; i < outer_positions_.size(); ++i) {
    if (outer_row[static_cast<size_t>(outer_positions_[i])].Compare(
            group_key_[i]) != 0) {
      return false;
    }
  }
  return true;
}

bool MergeLeftJoinOp::OuterKeyHasNull() const {
  for (int p : outer_positions_) {
    if (outer_row_[static_cast<size_t>(p)].is_null()) return true;
  }
  return false;
}

void MergeLeftJoinOp::AdvanceOuter() {
  outer_valid_ = outer_->Next(&outer_row_);
  started_ = false;
}

void MergeLeftJoinOp::LoadGroupFor(const Row& outer_row) {
  // Advance the inner past NULL keys and keys below the outer's.
  while (inner_valid_) {
    bool inner_null = false;
    int cmp = 0;
    for (size_t i = 0; i < inner_positions_.size() && cmp == 0; ++i) {
      const Value& iv = inner_row_[static_cast<size_t>(inner_positions_[i])];
      if (iv.is_null()) {
        inner_null = true;
        break;
      }
      ++ctx_.metrics->comparisons;
      cmp = iv.Compare(
          outer_row[static_cast<size_t>(outer_positions_[i])]);
    }
    if (inner_null || cmp < 0) {
      inner_valid_ = inner_->Next(&inner_row_);
      continue;
    }
    if (cmp > 0) {
      group_valid_ = false;
      return;
    }
    // Equal: buffer the whole group.
    group_.clear();
    group_buffer_.Release();
    group_key_.clear();
    for (int p : inner_positions_) {
      group_key_.push_back(inner_row_[static_cast<size_t>(p)]);
    }
    while (inner_valid_) {
      bool same = true;
      for (size_t i = 0; i < inner_positions_.size(); ++i) {
        if (inner_row_[static_cast<size_t>(inner_positions_[i])].Compare(
                group_key_[i]) != 0) {
          same = false;
          break;
        }
      }
      if (!same) break;
      if (!group_buffer_.Add(inner_row_)) {
        inner_valid_ = false;  // buffer limit tripped: wind down
        break;
      }
      group_.push_back(inner_row_);
      inner_valid_ = inner_->Next(&inner_row_);
    }
    group_valid_ = true;
    return;
  }
  group_valid_ = false;
}

Row MergeLeftJoinOp::Padded() const {
  Row out = outer_row_;
  for (size_t i = 0; i < inner_width_; ++i) out.push_back(Value::Null());
  return out;
}

bool MergeLeftJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool MergeLeftJoinOp::ProduceRow(Row* out) {
  while (outer_valid_) {
    if (!started_) {
      started_ = true;
      group_pos_ = 0;
      if (OuterKeyHasNull()) {
        match_ = false;
      } else {
        if (!(group_valid_ && KeyEqualsGroup(outer_row_))) {
          LoadGroupFor(outer_row_);
        }
        match_ = group_valid_ && KeyEqualsGroup(outer_row_);
      }
    }
    if (!match_) {
      *out = Padded();
      AdvanceOuter();
      return true;
    }
    if (group_pos_ < group_.size()) {
      *out = outer_row_;
      const Row& inner = group_[group_pos_++];
      out->insert(out->end(), inner.begin(), inner.end());
      return true;
    }
    AdvanceOuter();
  }
  return false;
}

void MergeLeftJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  group_.clear();
  group_buffer_.Release();
}

// ---------------------------------------------------------------------------
// HashLeftJoinOp
// ---------------------------------------------------------------------------

HashLeftJoinOp::HashLeftJoinOp(
    OperatorPtr outer, OperatorPtr inner,
    std::vector<std::pair<ColumnId, ColumnId>> pairs, ExecContext ctx)
    : Operator(ctx), outer_(std::move(outer)), inner_(std::move(inner)),
      buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  inner_width_ = inner_->layout().size();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
  std::vector<ColumnId> ocols, icols;
  for (const auto& [o, i] : pairs) {
    ocols.push_back(o);
    icols.push_back(i);
  }
  outer_positions_ = PositionsOf(ocols, outer_->layout(), ctx_);
  inner_positions_ = PositionsOf(icols, inner_->layout(), ctx_);
}

void HashLeftJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  hash_table_.clear();
  buffer_.Release();
  Row row;
  while (inner_->Next(&row)) {
    std::vector<Value> key;
    bool has_null = false;
    for (int p : inner_positions_) {
      if (row[static_cast<size_t>(p)].is_null()) has_null = true;
      key.push_back(row[static_cast<size_t>(p)]);
    }
    if (has_null) continue;
    if (!buffer_.Add(row)) break;  // buffer limit tripped: wind down
    hash_table_[std::move(key)].push_back(std::move(row));
  }
  matches_ = nullptr;
  match_pos_ = 0;
}

bool HashLeftJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool HashLeftJoinOp::ProduceRow(Row* out) {
  if (!ctx_.GuardOk()) return false;
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = outer_row_;
      const Row& inner = (*matches_)[match_pos_++];
      out->insert(out->end(), inner.begin(), inner.end());
      return true;
    }
    matches_ = nullptr;
    if (!outer_->Next(&outer_row_)) return false;
    std::vector<Value> key;
    bool has_null = false;
    for (int p : outer_positions_) {
      if (outer_row_[static_cast<size_t>(p)].is_null()) has_null = true;
      key.push_back(outer_row_[static_cast<size_t>(p)]);
    }
    auto it = has_null ? hash_table_.end() : hash_table_.find(key);
    if (it != hash_table_.end()) {
      matches_ = &it->second;
      match_pos_ = 0;
      continue;
    }
    // No match: null-padded output.
    *out = outer_row_;
    for (size_t i = 0; i < inner_width_; ++i) out->push_back(Value::Null());
    return true;
  }
}

void HashLeftJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  hash_table_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// NaiveLeftJoinOp
// ---------------------------------------------------------------------------

NaiveLeftJoinOp::NaiveLeftJoinOp(OperatorPtr outer, OperatorPtr inner,
                                 std::vector<Predicate> on_predicates,
                                 ExecContext ctx)
    : Operator(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      on_predicates_(std::move(on_predicates)),
      buffer_(ctx.guard, &stats_) {
  layout_ = outer_->layout();
  for (const ColumnId& c : inner_->layout()) layout_.push_back(c);
}

void NaiveLeftJoinOp::OpenImpl() {
  outer_->Open();
  inner_->Open();
  eval_ = std::make_unique<ExprEvaluator>(layout_, ctx_.guard);
  inner_rows_.clear();
  buffer_.Release();
  Row row;
  while (inner_->Next(&row)) {
    if (!buffer_.Add(row)) {
      outer_valid_ = false;
      inner_pos_ = 0;
      return;
    }
    inner_rows_.push_back(std::move(row));
  }
  outer_valid_ = outer_->Next(&outer_row_);
  matched_current_ = false;
  inner_pos_ = 0;
}

bool NaiveLeftJoinOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool NaiveLeftJoinOp::ProduceRow(Row* out) {
  while (outer_valid_) {
    while (inner_pos_ < inner_rows_.size()) {
      const Row& inner = inner_rows_[inner_pos_++];
      Row combined = outer_row_;
      combined.insert(combined.end(), inner.begin(), inner.end());
      bool pass = true;
      for (const Predicate& p : on_predicates_) {
        if (!eval_->EvalPredicate(p, combined)) {
          pass = false;
          break;
        }
      }
      if (pass) {
        matched_current_ = true;
        *out = std::move(combined);
        return true;
      }
    }
    bool emit_pad = !matched_current_;
    Row padded;
    if (emit_pad) {
      padded = outer_row_;
      size_t inner_width = layout_.size() - outer_row_.size();
      for (size_t i = 0; i < inner_width; ++i) {
        padded.push_back(Value::Null());
      }
    }
    outer_valid_ = outer_->Next(&outer_row_);
    matched_current_ = false;
    inner_pos_ = 0;
    if (emit_pad) {
      *out = std::move(padded);
      return true;
    }
  }
  return false;
}

void NaiveLeftJoinOp::Close() {
  outer_->Close();
  inner_->Close();
  inner_rows_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// StreamGroupByOp
// ---------------------------------------------------------------------------

StreamGroupByOp::StreamGroupByOp(OperatorPtr child,
                                 std::vector<ColumnId> group_columns,
                                 std::vector<AggregateSpec> aggregates,
                                 ExecContext ctx)
    : Operator(ctx),
      child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)),
      distinct_buffer_(ctx.guard, &stats_) {
  for (const ColumnId& c : group_columns_) layout_.push_back(c);
  for (const AggregateSpec& a : aggregates_) layout_.push_back(a.output);
  group_positions_ = PositionsOf(group_columns_, child_->layout(), ctx_);
}

void StreamGroupByOp::OpenImpl() {
  child_->Open();
  eval_ = std::make_unique<ExprEvaluator>(child_->layout(), ctx_.guard);
  distinct_buffer_.Release();
  pending_valid_ = child_->Next(&pending_row_);
  done_ = false;
  emitted_global_ = false;
}

void StreamGroupByOp::InitStates() {
  states_.assign(aggregates_.size(), State());
  distinct_buffer_.Release();  // previous group's DISTINCT sets are gone
}

void StreamGroupByOp::Accumulate(const Row& row) {
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateSpec& spec = aggregates_[i];
    State& st = states_[i];
    if (spec.count_star) {
      ++st.count;
      continue;
    }
    Value v = eval_->Eval(spec.arg, row);
    if (v.is_null()) continue;
    if (spec.distinct) {
      auto inserted = st.distinct_values.emplace(std::vector<Value>{v}, true);
      // Each retained distinct value is buffered state; a trip poisons
      // the guard and Next() winds the stream down.
      if (inserted.second && !distinct_buffer_.Add(inserted.first->first)) {
        return;
      }
      continue;
    }
    st.saw_value = true;
    ++st.count;
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.type() == DataType::kInt64 && st.sum_is_int) {
          st.sum_i += v.AsInt();
        } else {
          if (st.sum_is_int) {
            st.sum_d = static_cast<double>(st.sum_i);
            st.sum_is_int = false;
          }
          st.sum_d += v.AsDouble();
        }
        break;
      case AggFunc::kMin:
        if (st.min_v.is_null() || v.Compare(st.min_v) < 0) st.min_v = v;
        break;
      case AggFunc::kMax:
        if (st.max_v.is_null() || v.Compare(st.max_v) > 0) st.max_v = v;
        break;
      case AggFunc::kCount:
        break;  // count accumulated above
    }
  }
}

Row StreamGroupByOp::EmitGroup() {
  Row out = Row(current_key_.begin(), current_key_.end());
  for (size_t i = 0; i < aggregates_.size(); ++i) {
    const AggregateSpec& spec = aggregates_[i];
    State& st = states_[i];
    if (spec.distinct) {
      // Fold the collected distinct values.
      st.saw_value = !st.distinct_values.empty();
      st.count = 0;
      st.sum_is_int = true;
      st.sum_i = 0;
      st.sum_d = 0.0;
      st.min_v = Value::Null();
      st.max_v = Value::Null();
      for (const auto& [key, _] : st.distinct_values) {
        const Value& v = key[0];
        ++st.count;
        if (v.type() == DataType::kInt64 && st.sum_is_int) {
          st.sum_i += v.AsInt();
        } else {
          if (st.sum_is_int) {
            st.sum_d = static_cast<double>(st.sum_i);
            st.sum_is_int = false;
          }
          st.sum_d += v.AsDouble();
        }
        if (st.min_v.is_null() || v.Compare(st.min_v) < 0) st.min_v = v;
        if (st.max_v.is_null() || v.Compare(st.max_v) > 0) st.max_v = v;
      }
    }
    switch (spec.func) {
      case AggFunc::kCount:
        out.push_back(Value::Int(st.count));
        break;
      case AggFunc::kSum:
        if (!st.saw_value) {
          out.push_back(Value::Null());
        } else if (st.sum_is_int) {
          out.push_back(Value::Int(st.sum_i));
        } else {
          out.push_back(Value::Double(st.sum_d));
        }
        break;
      case AggFunc::kAvg:
        if (!st.saw_value || st.count == 0) {
          out.push_back(Value::Null());
        } else {
          double total = st.sum_is_int ? static_cast<double>(st.sum_i)
                                       : st.sum_d;
          out.push_back(Value::Double(total /
                                      static_cast<double>(st.count)));
        }
        break;
      case AggFunc::kMin:
        out.push_back(st.min_v);
        break;
      case AggFunc::kMax:
        out.push_back(st.max_v);
        break;
    }
  }
  ++ctx_.metrics->comparisons;  // group-boundary detection work
  return out;
}

bool StreamGroupByOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool StreamGroupByOp::ProduceRow(Row* out) {
  if (done_ || !ctx_.GuardOk()) return false;
  if (!pending_valid_) {
    // Empty input: a global aggregate still emits one row.
    if (group_columns_.empty() && !emitted_global_) {
      current_key_.clear();
      InitStates();
      emitted_global_ = true;
      done_ = true;
      *out = EmitGroup();
      return true;
    }
    done_ = true;
    return false;
  }
  // Start a new group from the pending row.
  current_key_.clear();
  for (int p : group_positions_) {
    current_key_.push_back(pending_row_[static_cast<size_t>(p)]);
  }
  InitStates();
  Accumulate(pending_row_);
  emitted_global_ = true;
  Row row;
  while (child_->Next(&row)) {
    bool same = true;
    for (size_t i = 0; i < group_positions_.size(); ++i) {
      ++ctx_.metrics->comparisons;
      if (row[static_cast<size_t>(group_positions_[i])].Compare(
              current_key_[i]) != 0) {
        same = false;
        break;
      }
    }
    if (same) {
      Accumulate(row);
      continue;
    }
    pending_row_ = std::move(row);
    *out = EmitGroup();
    return true;
  }
  pending_valid_ = false;
  *out = EmitGroup();
  return true;
}

void StreamGroupByOp::Close() {
  child_->Close();
  states_.clear();
  distinct_buffer_.Release();
}

// ---------------------------------------------------------------------------
// HashGroupByOp
// ---------------------------------------------------------------------------

HashGroupByOp::HashGroupByOp(OperatorPtr child,
                             std::vector<ColumnId> group_columns,
                             std::vector<AggregateSpec> aggregates,
                             ExecContext ctx)
    : Operator(ctx),
      child_(std::move(child)),
      group_columns_(std::move(group_columns)),
      aggregates_(std::move(aggregates)),
      buffer_(ctx.guard, &stats_),
      results_buffer_(ctx.guard, &stats_) {
  for (const ColumnId& c : group_columns_) layout_.push_back(c);
  for (const AggregateSpec& a : aggregates_) layout_.push_back(a.output);
}

void HashGroupByOp::OpenImpl() {
  // Implemented by delegation: hash grouping is sort-grouping with an
  // order-insensitive map. We materialize child rows grouped by key (an
  // ordered map for determinism), then stream-aggregate each bucket.
  child_->Open();
  results_.clear();
  buffer_.Release();
  results_buffer_.Release();
  pos_ = 0;

  std::vector<int> positions =
      PositionsOf(group_columns_, child_->layout(), ctx_);
  std::map<std::vector<Value>, std::vector<Row>> buckets;
  Row row;
  while (child_->Next(&row)) {
    if (!buffer_.Add(row)) return;  // buffer limit tripped: wind down
    std::vector<Value> key;
    for (int p : positions) key.push_back(row[static_cast<size_t>(p)]);
    buckets[std::move(key)].push_back(std::move(row));
  }
  if (!ctx_.GuardOk()) return;

  // Reuse the streaming accumulator per bucket via a tiny adapter.
  class BucketSource : public Operator {
   public:
    BucketSource(const std::vector<Row>* rows, std::vector<ColumnId> layout) {
      rows_ = rows;
      layout_ = std::move(layout);
    }
    void OpenImpl() override { pos_ = 0; }
    bool NextBatchImpl(RowBatch* out) override {
      out->Reset(layout_.size(), BatchCapacity());
      while (!out->full() && pos_ < rows_->size()) {
        out->AppendRow((*rows_)[pos_++]);
      }
      return !out->empty();
    }

   private:
    const std::vector<Row>* rows_;
    size_t pos_ = 0;
  };

  if (buckets.empty() && group_columns_.empty()) {
    // Global aggregate over empty input still emits one row; delegate to
    // the streaming accumulator over an empty source.
    static const std::vector<Row> kEmpty;
    StreamGroupByOp agg(
        std::make_unique<BucketSource>(&kEmpty, child_->layout()),
        group_columns_, aggregates_, ctx_);
    agg.Open();
    Row out;
    while (agg.Next(&out)) {
      if (!results_buffer_.Add(out)) return;  // limit tripped: wind down
      results_.push_back(std::move(out));
    }
    return;
  }

  for (const auto& [key, rows] : buckets) {
    StreamGroupByOp agg(std::make_unique<BucketSource>(&rows,
                                                       child_->layout()),
                        group_columns_, aggregates_, ctx_);
    agg.Open();
    Row out;
    while (agg.Next(&out)) {
      if (!results_buffer_.Add(out)) {  // limit tripped: wind down
        results_.clear();
        return;
      }
      results_.push_back(std::move(out));
    }
  }
  buffer_.Release();  // buckets die with this scope
}

bool HashGroupByOp::NextBatchImpl(RowBatch* out) {
  out->Reset(layout_.size(), BatchCapacity());
  while (!out->full() && pos_ < results_.size()) {
    out->AppendRow(std::move(results_[pos_]));
    ++pos_;
  }
  return !out->empty();
}

void HashGroupByOp::Close() {
  child_->Close();
  results_.clear();
  buffer_.Release();
  results_buffer_.Release();
}

// ---------------------------------------------------------------------------
// StreamDistinctOp / HashDistinctOp
// ---------------------------------------------------------------------------

StreamDistinctOp::StreamDistinctOp(OperatorPtr child,
                                   ColumnSet distinct_columns, ExecContext ctx)
    : Operator(ctx), child_(std::move(child)),
      distinct_columns_(std::move(distinct_columns)) {
  layout_ = child_->layout();
  std::vector<ColumnId> cols(distinct_columns_.begin(),
                             distinct_columns_.end());
  positions_ = PositionsOf(cols, layout_, ctx_);
}

void StreamDistinctOp::OpenImpl() {
  child_->Open();
  has_last_ = false;
}

bool StreamDistinctOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool StreamDistinctOp::ProduceRow(Row* out) {
  Row row;
  while (child_->Next(&row)) {
    std::vector<Value> key;
    for (int p : positions_) key.push_back(row[static_cast<size_t>(p)]);
    if (has_last_) {
      bool same = true;
      for (size_t i = 0; i < key.size(); ++i) {
        if (key[i].Compare(last_key_[i]) != 0) {
          same = false;
          break;
        }
      }
      if (same) continue;
    }
    last_key_ = std::move(key);
    has_last_ = true;
    *out = std::move(row);
    return true;
  }
  return false;
}

void StreamDistinctOp::Close() { child_->Close(); }

HashDistinctOp::HashDistinctOp(OperatorPtr child, ColumnSet distinct_columns,
                               ExecContext ctx)
    : Operator(ctx), child_(std::move(child)),
      distinct_columns_(std::move(distinct_columns)), buffer_(ctx.guard, &stats_) {
  layout_ = child_->layout();
  std::vector<ColumnId> cols(distinct_columns_.begin(),
                             distinct_columns_.end());
  positions_ = PositionsOf(cols, layout_, ctx_);
}

void HashDistinctOp::OpenImpl() {
  child_->Open();
  seen_.clear();
  buffer_.Release();
}

bool HashDistinctOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool HashDistinctOp::ProduceRow(Row* out) {
  Row row;
  while (child_->Next(&row)) {
    std::vector<Value> key;
    for (int p : positions_) key.push_back(row[static_cast<size_t>(p)]);
    auto inserted = seen_.emplace(std::move(key), true);
    if (!inserted.second) continue;
    // The seen-set retains every distinct key: charge it as buffered.
    if (!buffer_.Add(inserted.first->first)) return false;
    *out = std::move(row);
    return true;
  }
  return false;
}

void HashDistinctOp::Close() {
  child_->Close();
  seen_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// UnionAllOp / MergeUnionOp
// ---------------------------------------------------------------------------

UnionAllOp::UnionAllOp(std::vector<OperatorPtr> children,
                       std::vector<ColumnId> layout, ExecContext ctx)
    : Operator(ctx), children_(std::move(children)) {
  layout_ = std::move(layout);
}

void UnionAllOp::OpenImpl() {
  for (OperatorPtr& c : children_) c->Open();
  current_ = 0;
}

bool UnionAllOp::NextBatchImpl(RowBatch* out) {
  // Batches are positional; a child batch is forwarded untouched even
  // though this operator's layout carries the union's fresh ColumnIds.
  while (current_ < children_.size()) {
    if (children_[current_]->NextBatch(out)) return true;
    ++current_;
  }
  return false;
}

void UnionAllOp::Close() {
  for (OperatorPtr& c : children_) c->Close();
}

MergeUnionOp::MergeUnionOp(std::vector<OperatorPtr> children,
                           std::vector<ColumnId> layout, ExecContext ctx)
    : Operator(ctx), children_(std::move(children)) {
  layout_ = std::move(layout);
}

void MergeUnionOp::OpenImpl() {
  heads_.assign(children_.size(), Row());
  valid_.assign(children_.size(), false);
  for (size_t i = 0; i < children_.size(); ++i) {
    children_[i]->Open();
    valid_[i] = children_[i]->Next(&heads_[i]);
  }
}

int MergeUnionOp::CompareRows(const Row& a, const Row& b) const {
  for (size_t i = 0; i < a.size(); ++i) {
    ++ctx_.metrics->comparisons;
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

bool MergeUnionOp::NextBatchImpl(RowBatch* out) {
  return FillBatch(out, [this](Row* row) { return ProduceRow(row); });
}

bool MergeUnionOp::ProduceRow(Row* out) {
  int best = -1;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!valid_[i]) continue;
    if (best < 0 ||
        CompareRows(heads_[i], heads_[static_cast<size_t>(best)]) < 0) {
      best = static_cast<int>(i);
    }
  }
  if (best < 0) return false;
  size_t b = static_cast<size_t>(best);
  *out = std::move(heads_[b]);
  valid_[b] = children_[b]->Next(&heads_[b]);
  return true;
}

void MergeUnionOp::Close() {
  for (OperatorPtr& c : children_) c->Close();
}

// ---------------------------------------------------------------------------
// TopNOp
// ---------------------------------------------------------------------------

TopNOp::TopNOp(OperatorPtr child, OrderSpec spec, int64_t limit,
               ExecContext ctx)
    : Operator(ctx),
      child_(std::move(child)),
      spec_(std::move(spec)),
      limit_(limit),
      buffer_(ctx.guard, &stats_) {
  layout_ = child_->layout();
}

void TopNOp::OpenImpl() {
  child_->Open();
  rows_.clear();
  buffer_.Release();
  pos_ = 0;
  if (limit_ <= 0) return;

  std::vector<int> positions;
  std::vector<bool> descending;
  ExprEvaluator eval(layout_);
  for (const OrderElement& e : spec_) {
    int p = eval.PositionOf(e.col);
    if (p < 0) {
      ctx_.Poison(Status::Internal(
          StrFormat("top-n column %s missing from layout",
                    DefaultColumnName(e.col).c_str())));
      return;
    }
    positions.push_back(p);
    descending.push_back(e.dir == SortDirection::kDescending);
  }
  int64_t* cmp_counter = &ctx_.metrics->comparisons;
  auto less = [&positions, &descending, cmp_counter](const Row& a,
                                                     const Row& b) {
    for (size_t i = 0; i < positions.size(); ++i) {
      ++*cmp_counter;
      int c = a[static_cast<size_t>(positions[i])].Compare(
          b[static_cast<size_t>(positions[i])]);
      if (c != 0) return descending[i] ? c > 0 : c < 0;
    }
    return false;
  };

  // Max-heap of the current best `limit_` rows (heap top = worst kept).
  Row row;
  size_t cap = static_cast<size_t>(limit_);
  while (child_->Next(&row)) {
    if (rows_.size() < cap) {
      if (!buffer_.Add(row)) {
        rows_.clear();
        buffer_.Release();
        return;
      }
      rows_.push_back(std::move(row));
      std::push_heap(rows_.begin(), rows_.end(), less);
      continue;
    }
    if (less(row, rows_.front())) {
      std::pop_heap(rows_.begin(), rows_.end(), less);
      // Same row count, different payload: re-price the slot so string
      // growth across evictions can't drift away from the byte guardrail.
      if (!buffer_.Update(rows_.back(), row)) {
        rows_.clear();
        buffer_.Release();
        return;
      }
      rows_.back() = std::move(row);
      std::push_heap(rows_.begin(), rows_.end(), less);
    }
  }
  std::sort_heap(rows_.begin(), rows_.end(), less);
  ++ctx_.metrics->sorts_performed;
  ctx_.metrics->rows_sorted += static_cast<int64_t>(rows_.size());
}

bool TopNOp::NextBatchImpl(RowBatch* out) {
  out->Reset(layout_.size(), BatchCapacity());
  while (!out->full() && pos_ < rows_.size()) {
    out->AppendRow(std::move(rows_[pos_]));
    ++pos_;
  }
  return !out->empty();
}

void TopNOp::Close() {
  child_->Close();
  rows_.clear();
  buffer_.Release();
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

LimitOp::LimitOp(OperatorPtr child, int64_t limit, ExecContext ctx)
    : Operator(ctx), child_(std::move(child)), limit_(limit) {
  layout_ = child_->layout();
}

void LimitOp::OpenImpl() {
  child_->Open();
  emitted_ = 0;
}

bool LimitOp::NextBatchImpl(RowBatch* out) {
  while (emitted_ < limit_) {
    if (!child_->NextBatch(out)) return false;
    if (out->empty()) continue;
    const int64_t remaining = limit_ - emitted_;
    if (out->size() > remaining) out->Truncate(remaining);
    emitted_ += out->size();
    return true;
  }
  return false;
}

void LimitOp::Close() { child_->Close(); }

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(OperatorPtr child, std::vector<OutputColumn> projections,
                     ExecContext ctx)
    : Operator(ctx), child_(std::move(child)),
      projections_(std::move(projections)) {
  for (const OutputColumn& oc : projections_) layout_.push_back(oc.id);
}

void ProjectOp::OpenImpl() {
  child_->Open();
  eval_ = std::make_unique<ExprEvaluator>(child_->layout(), ctx_.guard);
}

bool ProjectOp::NextBatchImpl(RowBatch* out) {
  while (ctx_.GuardOk()) {
    if (!child_->NextBatch(&input_)) return false;
    out->Reset(projections_.size(),
               input_.size() > 0 ? input_.size() : int64_t{1});
    for (size_t j = 0; j < projections_.size(); ++j) {
      eval_->EvalColumn(projections_[j].expr, input_, out, j);
    }
    out->SetRowCount(input_.size());
    if (!out->empty()) return true;
  }
  return false;
}

void ProjectOp::Close() { child_->Close(); }

}  // namespace ordopt
