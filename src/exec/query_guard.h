#ifndef ORDOPT_EXEC_QUERY_GUARD_H_
#define ORDOPT_EXEC_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/runtime_metrics.h"
#include "exec/row_batch.h"

namespace ordopt {

/// Per-query resource limits. Zero means unlimited; every limit is
/// enforced cooperatively at row granularity inside the executor, so a
/// runaway query degrades to a clean non-OK Status instead of consuming
/// the machine.
struct QueryLimits {
  /// Wall-clock budget for execution, in seconds.
  double deadline_seconds = 0.0;
  /// Rows read from base tables (scans + index probes).
  int64_t max_rows_scanned = 0;
  /// Rows emitted by the plan root.
  int64_t max_rows_produced = 0;
  /// Rows held at once across all blocking operators (sorts, hash builds,
  /// materialized inners, group buffers).
  int64_t max_buffered_rows = 0;
  /// Approximate bytes held at once across all blocking operators.
  int64_t max_buffered_bytes = 0;

  bool Unlimited() const {
    return deadline_seconds <= 0.0 && max_rows_scanned <= 0 &&
           max_rows_produced <= 0 && max_buffered_rows <= 0 &&
           max_buffered_bytes <= 0;
  }
};

/// Approximate heap footprint of one row (inline Values plus string
/// payloads); used for the buffered-bytes guardrail.
int64_t ApproxRowBytes(const Row& row);

/// A memory budget shared by many concurrent queries (the QueryService
/// gives every session's guards one instance): each guard charges its
/// buffered bytes here in addition to its per-query limits, so one
/// spilling sort cannot buffer the whole process into the ground — the
/// query whose charge would cross the budget trips kResourceExhausted
/// while its neighbors keep their reservations and complete. All counters
/// are atomic; TryCharge is wait-free.
class SharedMemoryBudget {
 public:
  /// `limit_bytes <= 0` means unlimited (charges are still tracked).
  explicit SharedMemoryBudget(int64_t limit_bytes = 0)
      : limit_bytes_(limit_bytes) {}

  int64_t limit_bytes() const { return limit_bytes_; }
  int64_t used_bytes() const {
    return used_bytes_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  /// Charges that failed because they would cross the limit.
  int64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  /// True when the budget is fully committed (admission gate).
  bool Exhausted() const {
    return limit_bytes_ > 0 && used_bytes() >= limit_bytes_;
  }

  /// Reserves `bytes`; false (and nothing charged) when the reservation
  /// would exceed the limit.
  bool TryCharge(int64_t bytes) {
    if (bytes <= 0) return true;
    int64_t used = used_bytes_.fetch_add(bytes, std::memory_order_relaxed) +
                   bytes;
    if (limit_bytes_ > 0 && used > limit_bytes_) {
      used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Track the high-water mark (racy max: CAS loop keeps it monotonic).
    int64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (used > peak &&
           !peak_bytes_.compare_exchange_weak(peak, used,
                                              std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Returns a reservation made with TryCharge.
  void Release(int64_t bytes) {
    if (bytes > 0) used_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

 private:
  const int64_t limit_bytes_;
  std::atomic<int64_t> used_bytes_{0};
  std::atomic<int64_t> peak_bytes_{0};
  std::atomic<int64_t> rejections_{0};
};

/// Runtime safety net for one query execution: enforces QueryLimits,
/// carries a cooperative cancellation flag (safe to set from another
/// thread), and serves as the executor's error channel — operators whose
/// Next() cannot return Status poison the guard instead, and ExecutePlan
/// surfaces the poisoned Status to the caller.
///
/// The first violation wins: the guard latches a non-OK Status, every
/// subsequent check returns false, and operators wind down their streams.
///
/// Threading: one guard polices one query, but with morsel-parallel
/// execution that query spans several worker threads that all charge the
/// same guard. Every consumption counter is therefore atomic, the latched
/// Status is published under a mutex behind an atomic `tripped_` flag, and
/// the shared-budget charge bookkeeping uses CAS so concurrent releases
/// never give back more than was charged. The fast paths stay wait-free
/// relaxed atomics — exactness of the counters is preserved (fetch_add),
/// only the peaks are racy-monotonic maxima.
class QueryGuard {
 public:
  /// Unlimited guard: still usable for cancellation and poisoning.
  QueryGuard() = default;
  explicit QueryGuard(QueryLimits limits) : limits_(limits) {}
  ~QueryGuard() {
    // Backstop: a guard that dies with buffered charges outstanding (its
    // operators were torn down without releasing) must not leak budget
    // from the shared pool forever.
    int64_t charged = shared_charged_bytes_.load(std::memory_order_relaxed);
    if (shared_budget_ != nullptr && charged > 0) {
      shared_budget_->Release(charged);
    }
  }

  const QueryLimits& limits() const { return limits_; }

  /// Attaches a cross-query memory budget: every buffered byte is charged
  /// against it in addition to this guard's own limits, and a failed
  /// charge trips the guard with kResourceExhausted. Set before execution
  /// starts; `budget` must outlive the guard.
  void set_shared_budget(SharedMemoryBudget* budget) {
    shared_budget_ = budget;
  }
  SharedMemoryBudget* shared_budget() const { return shared_budget_; }

  /// End-to-end correlation id for the query this guard polices. The
  /// QueryService stamps the ticket's id here at admission; the engine
  /// reads it into QueryResult::query_id and every trace event. Survives
  /// ResetForRetry — the id names the *query*, not the attempt — so a
  /// retried ticket's trace lines join under one id. 0 = unassigned (the
  /// engine falls back to a process-wide sequence).
  void set_query_id(int64_t id) { query_id_ = id; }
  int64_t query_id() const { return query_id_; }

  /// Starts (or restarts) the wall-clock deadline. ExecutePlan arms the
  /// guard when execution begins; a pending cancellation survives Arm.
  void Arm();

  /// Clears a latched trip and all consumption counters so the same guard
  /// can police a fresh attempt of the same query (the QueryService
  /// re-admits transiently failed queries). A pending cancellation
  /// survives — a cancelled query must not be resurrected by retry — as
  /// does the attached shared budget; any stray shared charge left by the
  /// failed attempt's teardown is returned to the pool first.
  void ResetForRetry();

  /// Requests cooperative cancellation; the query trips with kCancelled
  /// at its next check. Thread-safe.
  void RequestCancel() {
    cancel_requested_.store(true, std::memory_order_relaxed);
  }
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

  /// False once any limit tripped, cancellation was observed, or the
  /// guard was poisoned. Safe from any worker thread.
  bool ok() const { return !tripped_.load(std::memory_order_acquire); }
  /// The latched first-violation Status (OK while ok()). By value: the
  /// latch is cross-thread, so the snapshot is taken under its mutex.
  Status status() const {
    std::lock_guard<std::mutex> lock(status_mu_);
    return status_;
  }

  /// Records an error from a context that cannot return Status (operator
  /// Open/Next). The first poison latches; later ones are dropped.
  /// Thread-safe: workers of one query race to poison, exactly one wins.
  void Poison(Status status);

  /// One base-table row was scanned. Returns ok().
  bool OnRowScanned() {
    int64_t scanned =
        rows_scanned_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_rows_scanned > 0 &&
        scanned > limits_.max_rows_scanned) {
      return TripScanLimit(scanned);
    }
    return PeriodicCheck();
  }

  /// One row was emitted by the plan root. Returns ok().
  bool OnRowProduced() {
    int64_t produced =
        rows_produced_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (limits_.max_rows_produced > 0 &&
        produced > limits_.max_rows_produced) {
      return TripProducedLimit(produced);
    }
    return PeriodicCheck();
  }

  /// `bytes` more row data is now buffered in a blocking operator.
  /// Returns ok().
  bool OnRowsBuffered(int64_t rows, int64_t bytes);
  /// A blocking operator released buffered data (Close or group turnover).
  void OnBufferReleased(int64_t rows, int64_t bytes);

  /// Immediate full check (deadline + cancellation), regardless of the
  /// periodic interval. Returns ok().
  bool ForceCheck();

  /// Copies consumption high-water marks into `metrics` so callers see
  /// consumed-vs-limit even when the query tripped.
  void ReportTo(RuntimeMetrics* metrics) const;

  int64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  int64_t rows_produced() const {
    return rows_produced_.load(std::memory_order_relaxed);
  }
  int64_t buffered_rows() const {
    return buffered_rows_.load(std::memory_order_relaxed);
  }
  int64_t buffered_rows_peak() const {
    return buffered_rows_peak_.load(std::memory_order_relaxed);
  }
  int64_t buffered_bytes_peak() const {
    return buffered_bytes_peak_.load(std::memory_order_relaxed);
  }

 private:
  /// Deadline and cancellation are checked every this many guard events;
  /// the common-case cost of a check is one decrement and compare.
  static constexpr int64_t kCheckIntervalRows = 1024;

  bool PeriodicCheck() {
    if (tripped_.load(std::memory_order_acquire)) return false;
    if (events_until_check_.fetch_sub(1, std::memory_order_relaxed) > 1) {
      return true;
    }
    return ForceCheck();
  }
  bool TripScanLimit(int64_t scanned);
  bool TripProducedLimit(int64_t produced);

  QueryLimits limits_;
  mutable std::mutex status_mu_;
  Status status_;  // guarded by status_mu_; published via tripped_
  std::atomic<bool> tripped_{false};
  std::atomic<bool> cancel_requested_{false};

  bool armed_ = false;
  std::chrono::steady_clock::time_point start_time_;

  std::atomic<int64_t> events_until_check_{1};  // full check on first event
  std::atomic<int64_t> rows_scanned_{0};
  std::atomic<int64_t> rows_produced_{0};
  std::atomic<int64_t> buffered_rows_{0};
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<int64_t> buffered_rows_peak_{0};
  std::atomic<int64_t> buffered_bytes_peak_{0};

  /// Optional service-wide budget (see SharedMemoryBudget above). The
  /// charge bookkeeping is CAS-bounded so concurrent worker releases give
  /// back exactly what this guard managed to charge, never more.
  SharedMemoryBudget* shared_budget_ = nullptr;
  std::atomic<int64_t> shared_charged_bytes_{0};

  int64_t query_id_ = 0;
};

/// Tracks the rows/bytes one blocking operator currently holds, charging
/// them against the guard's shared buffered-total; Release (or the
/// destructor) gives the charge back when the operator drops its buffer.
class BufferAccount {
 public:
  BufferAccount() = default;
  explicit BufferAccount(QueryGuard* guard) : guard_(guard) {}
  /// With `stats`, also records this operator's buffered-rows peak for
  /// EXPLAIN ANALYZE (independent of whether a guard is present).
  BufferAccount(QueryGuard* guard, OperatorStats* stats)
      : guard_(guard), stats_(stats) {}
  BufferAccount(const BufferAccount&) = delete;
  BufferAccount& operator=(const BufferAccount&) = delete;
  ~BufferAccount() { Release(); }

  /// Charges one buffered row. Returns false once a buffer limit trips.
  bool Add(const Row& row) {
    rows_ += 1;
    if (stats_ != nullptr && rows_ > stats_->buffered_rows_peak) {
      stats_->buffered_rows_peak = rows_;
    }
    if (guard_ == nullptr) return true;
    int64_t bytes = ApproxRowBytes(row);
    bytes_ += bytes;
    return guard_->OnRowsBuffered(1, bytes);
  }

  /// Re-prices one already-charged row that is being replaced in place
  /// (e.g. a Top-N heap eviction): swaps `old_row`'s bytes for
  /// `new_row`'s without changing the row count. Returns false once a
  /// buffer limit trips.
  bool Update(const Row& old_row, const Row& new_row) {
    if (guard_ == nullptr) return true;
    int64_t old_bytes = ApproxRowBytes(old_row);
    int64_t new_bytes = ApproxRowBytes(new_row);
    guard_->OnBufferReleased(0, old_bytes);
    bytes_ += new_bytes - old_bytes;
    return guard_->OnRowsBuffered(0, new_bytes);
  }

  /// Releases everything charged so far.
  void Release() {
    if (guard_ != nullptr && rows_ > 0) {
      guard_->OnBufferReleased(rows_, bytes_);
    }
    rows_ = 0;
    bytes_ = 0;
  }

  /// Rows/bytes currently charged (used when a sort hands a full buffer to
  /// a parallel run-generation job: the charge is transferred to the job
  /// and released when the job's run hits disk).
  int64_t rows() const { return rows_; }
  int64_t bytes() const { return bytes_; }
  /// Drops the account's bookkeeping WITHOUT releasing the guard charge —
  /// the caller took ownership of the charge (see rows()/bytes()).
  void ForgetCharge() {
    rows_ = 0;
    bytes_ = 0;
  }

 private:
  QueryGuard* guard_ = nullptr;
  OperatorStats* stats_ = nullptr;
  int64_t rows_ = 0;
  int64_t bytes_ = 0;
};

class SpillManager;
class Operator;
class MorselScheduler;
struct PlanNode;

/// Everything the operator tree needs from its environment: runtime
/// counters plus the (optional) guard and spill manager. Passed by value
/// — three pointers.
struct ExecContext {
  ExecContext() = default;
  ExecContext(RuntimeMetrics* m, QueryGuard* g) : metrics(m), guard(g) {}
  ExecContext(RuntimeMetrics* m, QueryGuard* g, SpillManager* s)
      : metrics(m), guard(g), spill(s) {}
  /// Compatibility shape for contexts that only count (benches, direct
  /// operator tests): no guard, so internal invariants still abort.
  /// Intentionally implicit so a bare RuntimeMetrics* keeps working at
  /// every pre-guard operator construction site.
  ExecContext(RuntimeMetrics* m) : metrics(m) {}  // NOLINT

  RuntimeMetrics* metrics = nullptr;
  QueryGuard* guard = nullptr;
  /// Non-null when the engine provisioned disk spilling; null contexts
  /// sort purely in memory.
  SpillManager* spill = nullptr;
  /// True under EXPLAIN ANALYZE / full tracing: every operator times its
  /// Open()/Next() calls and accumulates OperatorStats. Off by default so
  /// the execution hot path pays a single predictable branch.
  bool collect_op_stats = false;
  /// When non-null, BuildOperatorTree appends (plan node, operator) pairs
  /// in post-order so the engine can pair each operator's stats with the
  /// plan node that produced it. Owned by ExecutePlan.
  std::vector<std::pair<const PlanNode*, Operator*>>* op_registry = nullptr;
  /// Runtime order verification (OptimizerConfig::verify_orders): every
  /// operator whose plan node claims a non-empty order or key property is
  /// wrapped in an OrderCheckOp that poisons the guard with kInternal the
  /// moment the stream disobeys the claim. Checker operators are invisible
  /// to op_registry, metrics, and the guard's buffer accounting.
  bool verify_orders = false;
  /// Rows per execution batch (Operator::BatchCapacity). 1 degenerates to
  /// single-row batches through the same columnar code path. <= 0 is
  /// clamped to 1.
  int64_t batch_rows = kDefaultBatchRows;
  /// Legacy row-at-a-time execution: operators with columnar kernels
  /// (filter, sort input, index join) instead pull their children through
  /// the Next(Row*) compat shim and evaluate row-wise, materializing a Row
  /// at every operator boundary — the engine's pre-vectorization shape.
  /// Forces batch_rows to 1. This is the honest baseline of the batch-size
  /// sweep ("speedup vs the row shim") and of the batch-vs-row
  /// differential suite.
  bool row_shim = false;
  /// Intra-query worker count from OptimizerConfig::parallel_workers.
  /// Serial operators above an exchange (and serial plans) use it for
  /// parallel sort-run generation; inside an exchange worker it is 1 so
  /// parallelism never nests.
  int parallel_workers = 1;
  /// Morsel dispatcher of the enclosing ExchangeOp; non-null only inside a
  /// worker's operator tree. The chain's driving scan pulls rid/ordinal
  /// ranges from it instead of scanning its full range.
  MorselScheduler* morsels = nullptr;

  bool GuardOk() const { return guard == nullptr || guard->ok(); }

  /// Null-safe guard notification for scan hot paths. Returns false once
  /// the guard tripped (the operator should end its stream).
  bool OnRowScanned() const {
    return guard == nullptr || guard->OnRowScanned();
  }

  /// Reports an internal error. With a guard the query degrades to an
  /// error Status; without one (direct operator construction) this is a
  /// programming error and keeps the historical abort behavior.
  void Poison(Status status) const;

  /// Fault-injection probe for non-Status contexts: true when `site`
  /// fired (the guard, if any, is poisoned with the injected Status and
  /// the caller should end its stream).
  bool InjectFault(const char* site) const {
    if (!FaultInjector::Global().enabled()) return false;
    Status fault = FaultInjector::Global().Check(site);
    if (fault.ok()) return false;
    Poison(std::move(fault));
    return true;
  }
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_QUERY_GUARD_H_
