#include "exec/order_check.h"

#include <utility>

#include "common/str_util.h"
#include "exec/expr_eval.h"
#include "exec/sort_key.h"

namespace ordopt {

OrderCheckStats& GlobalOrderCheckStats() {
  static OrderCheckStats stats;
  return stats;
}

size_t OrderCheckOp::KeyTupleHash::operator()(
    const std::vector<Value>& key) const {
  size_t h = key.size();
  for (const Value& v : key) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool OrderCheckOp::KeyTupleEq::operator()(const std::vector<Value>& a,
                                          const std::vector<Value>& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

OrderCheckOp::OrderCheckOp(OperatorPtr child, const PlanNode& node,
                           ExecContext ctx)
    : Operator(ctx), child_(std::move(child)) {
  layout_ = child_->layout();
  op_label_ = NodeLabel(node);
  claimed_ = node.props.order;
  ++GlobalOrderCheckStats().operators_checked;

  ExprEvaluator eval(layout_);
  // Resolve the claimed order against what the stream actually carries.
  // A claim can legitimately name a column the layout lost (GroupBy keeps
  // its input order property even when the sort columns are not among the
  // group outputs) — try an equivalent visible column, and otherwise stop:
  // checking the resolvable prefix is checking a weaker true claim.
  for (const OrderElement& e : claimed_) {
    int pos = eval.PositionOf(e.col);
    ColumnId resolved = e.col;
    if (pos < 0) {
      for (const ColumnId& member : node.props.eq().ClassMembers(e.col)) {
        int member_pos = eval.PositionOf(member);
        if (member_pos >= 0) {
          pos = member_pos;
          resolved = member;
          break;
        }
      }
    }
    if (pos < 0) break;
    checked_.Append(OrderElement(resolved, e.dir));
    positions_.push_back(pos);
    descending_.push_back(e.dir == SortDirection::kDescending);
  }

  // Resolve each claimed key; a key with an invisible column cannot be
  // observed on this stream and is skipped (not an error for the same
  // reason as above). The empty key — the one-record condition — always
  // resolves and asserts the stream has at most one row.
  for (const ColumnSet& key : node.props.keys.keys()) {
    KeyCheck check;
    check.claimed = key;
    bool resolvable = true;
    for (const ColumnId& c : key) {
      int pos = eval.PositionOf(c);
      if (pos < 0) {
        resolvable = false;
        break;
      }
      check.positions.push_back(pos);
    }
    if (resolvable) keys_.push_back(std::move(check));
  }
}

void OrderCheckOp::OpenImpl() {
  has_prev_ = false;
  row_index_ = 0;
  prev_norm_.clear();
  prev_key_.clear();
  for (KeyCheck& k : keys_) k.seen.clear();
  child_->Open();
}

std::string OrderCheckOp::RenderRow(const RowBatch& batch, int64_t row,
                                    const std::vector<int>& positions) const {
  std::string out = "(";
  for (size_t i = 0; i < positions.size(); ++i) {
    if (i > 0) out += ", ";
    out += batch.At(static_cast<size_t>(positions[i]), row).ToString();
  }
  out += ")";
  return out;
}

bool OrderCheckOp::CheckOrder(const RowBatch& batch, int64_t row) {
  if (positions_.empty()) return true;
  cur_norm_.clear();
  AppendNormalizedKey(batch, row, positions_, descending_, &cur_norm_);
  // The normalized encoding folds direction and NULL placement into the
  // bytes, so "claim violated" is one unsigned lexicographic comparison.
  if (has_prev_ && prev_norm_.compare(cur_norm_) > 0) {
    ++GlobalOrderCheckStats().violations;
    std::string prev_text = "(";
    for (size_t j = 0; j < prev_key_.size(); ++j) {
      if (j > 0) prev_text += ", ";
      prev_text += prev_key_[j].ToString();
    }
    prev_text += ")";
    ctx_.Poison(Status::Internal(StrFormat(
        "order verification failed: %s claims order %s but rows %lld/%lld "
        "violate it: %s then %s",
        op_label_.c_str(), claimed_.ToString().c_str(),
        static_cast<long long>(row_index_ - 1),
        static_cast<long long>(row_index_), prev_text.c_str(),
        RenderRow(batch, row, positions_).c_str())));
    return false;
  }
  prev_norm_.swap(cur_norm_);
  prev_key_.clear();
  for (int pos : positions_) {
    prev_key_.push_back(batch.At(static_cast<size_t>(pos), row));
  }
  has_prev_ = true;
  return true;
}

bool OrderCheckOp::CheckKeys(const RowBatch& batch, int64_t row) {
  for (KeyCheck& k : keys_) {
    if (k.positions.empty()) {
      // One-record condition: any second row is a violation.
      if (row_index_ > 0) {
        ++GlobalOrderCheckStats().violations;
        ctx_.Poison(Status::Internal(StrFormat(
            "key verification failed: %s claims the one-record condition "
            "but produced row %lld",
            op_label_.c_str(), static_cast<long long>(row_index_))));
        return false;
      }
      continue;
    }
    std::vector<Value> key_values;
    key_values.reserve(k.positions.size());
    for (int pos : k.positions) {
      key_values.push_back(batch.At(static_cast<size_t>(pos), row));
    }
    if (!k.seen.insert(std::move(key_values)).second) {
      ++GlobalOrderCheckStats().violations;
      std::string key_text = "{";
      bool first = true;
      for (const ColumnId& c : k.claimed) {
        if (!first) key_text += ", ";
        key_text += DefaultColumnName(c);
        first = false;
      }
      key_text += "}";
      ctx_.Poison(Status::Internal(StrFormat(
          "key verification failed: %s claims key %s but row %lld repeats "
          "key value %s",
          op_label_.c_str(), key_text.c_str(),
          static_cast<long long>(row_index_),
          RenderRow(batch, row, k.positions).c_str())));
      return false;
    }
  }
  return true;
}

bool OrderCheckOp::NextBatchImpl(RowBatch* out) {
  if (!ctx_.GuardOk()) return false;
  if (!child_->NextBatch(out)) return false;
  const int64_t n = out->size();
  for (int64_t i = 0; i < n; ++i) {
    ++GlobalOrderCheckStats().rows_checked;
    if (!CheckOrder(*out, i)) return false;
    if (!CheckKeys(*out, i)) return false;
    ++row_index_;
  }
  return true;
}

void OrderCheckOp::Close() { child_->Close(); }

}  // namespace ordopt
