#include "exec/row_batch.h"

#include <cassert>

namespace ordopt {

namespace {
size_t NullWordsFor(int64_t capacity) {
  return static_cast<size_t>((capacity + 63) / 64);
}
}  // namespace

void RowBatch::Reset(size_t num_columns, int64_t capacity) {
  if (capacity < 1) capacity = 1;
  capacity_ = capacity;
  rows_ = 0;
  cols_.resize(num_columns);
  const size_t words = NullWordsFor(capacity);
  for (ColumnData& col : cols_) {
    col.values.clear();
    col.nulls.assign(words, 0);
  }
}

void RowBatch::Clear() {
  rows_ = 0;
  const size_t words = NullWordsFor(capacity_);
  for (ColumnData& col : cols_) {
    col.values.clear();
    col.nulls.assign(words, 0);
  }
}

void RowBatch::SetNullBit(size_t col, int64_t row, bool is_null) {
  auto& words = cols_[col].nulls;
  const size_t word = static_cast<size_t>(row) >> 6;
  if (word >= words.size()) words.resize(word + 1, 0);
  if (is_null) {
    words[word] |= uint64_t{1} << (static_cast<size_t>(row) & 63);
  }
}

void RowBatch::AppendRow(const Row& row) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    SetNullBit(c, rows_, row[c].is_null());
    cols_[c].values.push_back(row[c]);
  }
  ++rows_;
}

void RowBatch::AppendRow(Row&& row) {
  assert(row.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    SetNullBit(c, rows_, row[c].is_null());
    cols_[c].values.push_back(std::move(row[c]));
  }
  ++rows_;
}

void RowBatch::AppendProjectedRow(const Row& src,
                                  const std::vector<int32_t>& ordinals) {
  assert(ordinals.size() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    const Value& v = src[static_cast<size_t>(ordinals[c])];
    SetNullBit(c, rows_, v.is_null());
    cols_[c].values.push_back(v);
  }
  ++rows_;
}

void RowBatch::AppendRowFrom(const RowBatch& src, int64_t src_row) {
  assert(src.num_columns() == cols_.size());
  for (size_t c = 0; c < cols_.size(); ++c) {
    SetNullBit(c, rows_, src.IsNull(c, src_row));
    cols_[c].values.push_back(src.At(c, src_row));
  }
  ++rows_;
}

void RowBatch::SetRowCount(int64_t rows) {
#ifndef NDEBUG
  for (const ColumnData& col : cols_) {
    assert(static_cast<int64_t>(col.values.size()) == rows);
  }
#endif
  rows_ = rows;
}

void RowBatch::AssignFiltered(const RowBatch& src, const SelectionVector& sel) {
  Reset(src.num_columns(), src.capacity());
  for (int32_t idx : sel) {
    AppendRowFrom(src, idx);
  }
}

void RowBatch::Compact(const SelectionVector& sel) {
  const size_t n = sel.size();
  for (ColumnData& col : cols_) {
    for (size_t i = 0; i < n; ++i) {
      const size_t src = static_cast<size_t>(sel[i]);
      if (src != i) col.values[i] = std::move(col.values[src]);
    }
    col.values.resize(n);
    // Rebuild the null bits in place: `sel` is ascending, so the read at
    // sel[i] is always at a position >= the write at i and is never
    // clobbered by an earlier write.
    for (size_t i = 0; i < n; ++i) {
      const size_t src = static_cast<size_t>(sel[i]);
      const bool is_null = (col.nulls[src >> 6] >> (src & 63)) & 1u;
      const uint64_t mask = uint64_t{1} << (i & 63);
      if (is_null) {
        col.nulls[i >> 6] |= mask;
      } else {
        col.nulls[i >> 6] &= ~mask;
      }
    }
    // Clear the dropped tail so later appends start from zeroed bits.
    for (int64_t r = static_cast<int64_t>(n); r < rows_; ++r) {
      col.nulls[static_cast<size_t>(r) >> 6] &=
          ~(uint64_t{1} << (static_cast<size_t>(r) & 63));
    }
  }
  rows_ = static_cast<int64_t>(n);
}

void RowBatch::Truncate(int64_t n) {
  if (n >= rows_) return;
  if (n < 0) n = 0;
  for (ColumnData& col : cols_) {
    col.values.resize(static_cast<size_t>(n));
    // Clear the null bits of the dropped tail so a later append at these
    // positions starts from zeroed words.
    for (int64_t r = n; r < rows_; ++r) {
      col.nulls[static_cast<size_t>(r) >> 6] &=
          ~(uint64_t{1} << (static_cast<size_t>(r) & 63));
    }
  }
  rows_ = n;
}

Row RowBatch::MaterializeRow(int64_t row) const {
  Row out;
  MaterializeRowInto(row, &out);
  return out;
}

void RowBatch::MaterializeRowInto(int64_t row, Row* out) const {
  out->clear();
  out->reserve(cols_.size());
  for (const ColumnData& col : cols_) {
    out->push_back(col.values[static_cast<size_t>(row)]);
  }
}

Row RowBatch::TakeRow(int64_t row) {
  Row out;
  TakeRowInto(row, &out);
  return out;
}

void RowBatch::TakeRowInto(int64_t row, Row* out) {
  out->clear();
  out->reserve(cols_.size());
  for (ColumnData& col : cols_) {
    out->push_back(std::move(col.values[static_cast<size_t>(row)]));
  }
}

}  // namespace ordopt
