#include "exec/analyze.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

namespace {

double QError(double est, int64_t act) {
  double e = est + 1.0;
  double a = static_cast<double>(act) + 1.0;
  return std::max(e / a, a / e);
}

std::string FormatMs(int64_t ns) {
  return StrFormat("%.3fms", static_cast<double>(ns) / 1e6);
}

// Walks `node` in the same post-order as BuildOperatorTree (children
// first, left to right), consuming `profiles` sequentially so profile i
// pairs with the i-th constructed operator. Emits one pre-order line per
// node into `out`. Returns the node's inclusive wall time so parents can
// derive self time.
struct Renderer {
  const std::vector<OperatorProfile>& profiles;
  const ColumnNamer& namer;
  size_t next = 0;

  struct Visited {
    std::string text;            // this node's subtree, pre-order
    const OperatorStats* stats;  // null when no profile was collected
  };

  Visited Visit(const PlanNode* node, int indent) {
    std::vector<Visited> kids;
    kids.reserve(node->children.size());
    for (const auto& child : node->children) {
      kids.push_back(Visit(child.get(), indent + 1));
    }
    const OperatorStats* stats = nullptr;
    if (next < profiles.size()) stats = &profiles[next].stats;
    ++next;

    std::string line(static_cast<size_t>(indent) * 2, ' ');
    line += NodeLabel(*node, namer);
    line += StrFormat("  (est=%.0f", node->props.cardinality);
    if (stats != nullptr) {
      int64_t child_ns = 0;
      for (const Visited& k : kids) {
        if (k.stats != nullptr) child_ns += k.stats->total_ns();
      }
      int64_t self_ns = std::max<int64_t>(0, stats->total_ns() - child_ns);
      line += StrFormat(" act=%lld time=%s self=%s next=%lld",
                        static_cast<long long>(stats->rows_out),
                        FormatMs(stats->total_ns()).c_str(),
                        FormatMs(self_ns).c_str(),
                        static_cast<long long>(stats->next_calls));
      if (stats->rows_scanned > 0) {
        line += StrFormat(" scanned=%lld",
                          static_cast<long long>(stats->rows_scanned));
      }
      if (stats->comparisons > 0) {
        line += StrFormat(" cmp=%lld",
                          static_cast<long long>(stats->comparisons));
      }
      if (stats->seq_pages > 0 || stats->random_pages > 0) {
        line += StrFormat(" pages=%lld+%lldr",
                          static_cast<long long>(stats->seq_pages),
                          static_cast<long long>(stats->random_pages));
      }
      if (stats->index_probes > 0) {
        line += StrFormat(" probes=%lld",
                          static_cast<long long>(stats->index_probes));
      }
      if (stats->spill_runs > 0) {
        line += StrFormat(" spills=%lld",
                          static_cast<long long>(stats->spill_runs));
      }
      if (stats->spill_retries > 0) {
        line += StrFormat(" spill_retries=%lld",
                          static_cast<long long>(stats->spill_retries));
      }
      if (stats->buffered_rows_peak > 0) {
        line += StrFormat(" buffered_peak=%lld",
                          static_cast<long long>(stats->buffered_rows_peak));
      }
    } else {
      line += " act=?";
    }
    line += ")\n";

    Visited v;
    v.stats = stats;
    v.text = std::move(line);
    for (Visited& k : kids) v.text += k.text;
    return v;
  }
};

// Same post-order consumption, collecting (label, est, act) rows; the
// result is reordered to pre-order by the caller-side recursion below.
struct Collector {
  const std::vector<OperatorProfile>& profiles;
  const ColumnNamer& namer;
  size_t next = 0;

  void Visit(const PlanNode* node, std::vector<EstActualRow>* out) {
    std::vector<EstActualRow> child_rows;
    for (const auto& child : node->children) {
      Visit(child.get(), &child_rows);
    }
    EstActualRow row;
    row.label = NodeLabel(*node, namer);
    row.est_rows = node->props.cardinality;
    if (next < profiles.size()) {
      row.act_rows = profiles[next].stats.rows_out;
      row.q_error = QError(row.est_rows, row.act_rows);
    }
    ++next;
    out->push_back(std::move(row));
    for (EstActualRow& r : child_rows) out->push_back(std::move(r));
  }
};

}  // namespace

std::string RenderAnalyzedPlan(const PlanRef& plan,
                               const std::vector<OperatorProfile>& profiles,
                               const ColumnNamer& namer) {
  if (plan == nullptr) return "";
  Renderer r{profiles, namer};
  return r.Visit(plan.get(), 0).text;
}

std::vector<EstActualRow> EstVsActualRows(
    const PlanRef& plan, const std::vector<OperatorProfile>& profiles,
    const ColumnNamer& namer) {
  std::vector<EstActualRow> rows;
  if (plan == nullptr) return rows;
  Collector c{profiles, namer};
  c.Visit(plan.get(), &rows);
  return rows;
}

std::string RenderDecisions(const TraceCollector& trace) {
  std::string out;
  for (const TraceEvent& e : trace.events()) {
    if (e.phase() != "optimizer") continue;
    out += "  ";
    out += e.ToShortString();
    out += "\n";
  }
  return out;
}

}  // namespace ordopt
