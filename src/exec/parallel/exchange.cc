#include "exec/parallel/exchange.h"

#include <algorithm>
#include <cstring>
#include <ctime>
#include <utility>

#include "common/str_util.h"
#include "exec/executor.h"
#include "exec/sort_key.h"

namespace ordopt {

namespace {

/// CPU time consumed by the calling thread. The bench's speedup model is
/// built from these: on a machine with fewer cores than workers, wall
/// clock cannot show the parallelism, but per-thread CPU time still
/// measures how the work divided.
int64_t ThreadCpuNs() {
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace

ExchangeOp::ExchangeOp(const PlanNode& node, ExecContext ctx,
                       const ColumnSet* required_columns)
    : Operator(ctx), node_(node), merge_(node.exchange_merge) {
  const int worker_count = std::max(node.exchange_workers, 1);
  const PlanRef& chain = node.children[0];
  for (int i = 0; i < worker_count; ++i) {
    auto w = std::make_unique<Worker>();
    w->metrics = std::make_unique<RuntimeMetrics>();
    if (ctx.spill != nullptr) {
      w->spill =
          std::make_unique<SpillManager>(ctx.spill->config(), w->metrics.get());
    }
    ExecContext wctx;
    wctx.metrics = w->metrics.get();
    wctx.guard = ctx.guard;
    wctx.spill = w->spill.get();
    wctx.collect_op_stats = ctx.collect_op_stats;
    wctx.op_registry = ctx.op_registry != nullptr ? &w->registry : nullptr;
    wctx.verify_orders = ctx.verify_orders;
    wctx.batch_rows = ctx.batch_rows;
    wctx.parallel_workers = 1;  // parallelism never nests
    wctx.morsels = &morsels_;
    Result<OperatorPtr> built =
        BuildWorkerOperatorTree(chain, wctx, required_columns);
    if (!built.ok()) {
      ctx_.Poison(built.status());
      workers_.clear();
      return;
    }
    w->root = std::move(built).value_unsafe();
    workers_.push_back(std::move(w));
  }
  // Surface worker 0's (plan node, operator) pairs in the main registry so
  // EXPLAIN ANALYZE pairs the chain's plan nodes with operators that
  // actually ran them, in the same post-order a serial build would use;
  // the other workers' stats fold into these at Close.
  if (ctx.op_registry != nullptr) {
    for (const auto& pair : workers_[0]->registry) {
      ctx.op_registry->push_back(pair);
    }
  }

  const std::vector<ColumnId>& child_layout = workers_[0]->root->layout();
  for (size_t i = 0; i < child_layout.size(); ++i) {
    if (child_layout[i] == ProvenanceColumnId()) {
      prov_pos_ = static_cast<int>(i);
      continue;
    }
    emit_cols_.push_back(i);
    layout_.push_back(child_layout[i]);
  }
  if (merge_) {
    ExprEvaluator eval(child_layout);
    for (const OrderElement& e : node.sort_spec) {
      int p = eval.PositionOf(e.col);
      if (p < 0) {
        ctx_.Poison(Status::Internal(
            StrFormat("exchange merge column %s missing from worker layout",
                      DefaultColumnName(e.col).c_str())));
        return;
      }
      key_positions_.push_back(p);
      key_descending_.push_back(e.dir == SortDirection::kDescending);
    }
  }
  streams_.resize(workers_.size());
}

ExchangeOp::~ExchangeOp() {
  // Backstop for abnormal teardown (Close not reached): unblock and join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  consumed_cv_.notify_all();
  JoinWorkers();
}

void ExchangeOp::OpenImpl() {
  if (workers_.empty() || !ctx_.GuardOk()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    streams_.assign(workers_.size(), Stream());
  }
  heads_.clear();
  heads_.resize(workers_.size());
  head_valid_.assign(workers_.size(), false);
  cursor_.assign(workers_.size(), 0);
  next_stream_ = 0;
  started_ = true;
  // Workers open, drain, and close their trees entirely on their own
  // threads; blocking work (a chain Sort's input collection) overlaps
  // across workers from the first Open on.
  for (size_t i = 0; i < workers_.size(); ++i) {
    workers_[i]->thread = std::thread(&ExchangeOp::WorkerMain, this, i);
  }
}

void ExchangeOp::WorkerMain(size_t index) {
  Worker& w = *workers_[index];
  const int64_t start_ns = ThreadCpuNs();
  w.root->Open();
  RowBatch batch;
  while (ctx_.GuardOk()) {
    if (!w.root->NextBatch(&batch)) break;
    Item item;
    swap(item.batch, batch);
    if (merge_) {
      // Encode the merge keys worker-side: the consuming thread's k-way
      // comparator is then a plain memcmp into this arena.
      const int64_t n = item.batch.size();
      item.offsets.reserve(static_cast<size_t>(n) + 1);
      item.offsets.push_back(0);
      for (int64_t r = 0; r < n; ++r) {
        AppendNormalizedKey(item.batch, r, key_positions_, key_descending_,
                            &item.keys);
        item.offsets.push_back(item.keys.size());
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    consumed_cv_.wait(lock, [&] {
      return closed_ || streams_[index].queue.size() < kMaxQueuedBatches;
    });
    if (closed_) break;
    streams_[index].queue.push_back(std::move(item));
    lock.unlock();
    produced_cv_.notify_all();
  }
  w.root->Close();
  w.busy_ns = ThreadCpuNs() - start_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    streams_[index].done = true;
  }
  produced_cv_.notify_all();
}

bool ExchangeOp::LoadHead(size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  Stream& s = streams_[index];
  produced_cv_.wait(lock,
                    [&] { return closed_ || s.done || !s.queue.empty(); });
  if (s.queue.empty()) return false;  // stream done (or exchange closed)
  heads_[index] = std::move(s.queue.front());
  s.queue.pop_front();
  lock.unlock();
  consumed_cv_.notify_all();
  cursor_[index] = 0;
  head_valid_[index] = true;
  ++ctx_.metrics->exchange_batches;
  return true;
}

void ExchangeOp::MoveRowInto(RowBatch* src, int64_t row, RowBatch* out) {
  // Rows leave a head batch exactly once, in cursor order, so values move
  // out (TakeRow semantics); the provenance column is simply skipped.
  for (size_t c = 0; c < emit_cols_.size(); ++c) {
    out->AppendColumnValue(c, std::move(*src->MutableAt(emit_cols_[c], row)));
  }
}

bool ExchangeOp::NextBatchImpl(RowBatch* out) {
  out->Reset(layout_.size(), BatchCapacity());
  if (!started_) return false;
  if (ctx_.InjectFault("exec.exchange.merge")) return false;
  if (!ctx_.GuardOk()) return false;

  if (merge_) {
    // K-way linear min-scan (worker counts are single-digit): among the
    // current stream heads, emit the row with the smallest normalized key.
    // Planner-built merge keys end in the provenance column, which belongs
    // to exactly one stream, so cross-stream ties cannot happen; if a
    // hand-built plan produces one anyway, the lowest stream index wins —
    // still deterministic.
    int64_t emitted = 0;
    const int64_t cap = out->capacity();
    while (emitted < cap && ctx_.GuardOk()) {
      int best = -1;
      const char* best_key = nullptr;
      size_t best_len = 0;
      for (size_t i = 0; i < streams_.size(); ++i) {
        if (!head_valid_[i] && !LoadHead(i)) continue;
        const Item& item = heads_[i];
        const size_t r = static_cast<size_t>(cursor_[i]);
        const char* key = item.keys.data() + item.offsets[r];
        const size_t len = item.offsets[r + 1] - item.offsets[r];
        if (best >= 0) {
          ++ctx_.metrics->comparisons;
          const size_t min_len = len < best_len ? len : best_len;
          const int c = std::memcmp(key, best_key, min_len);
          if (c > 0 || (c == 0 && len >= best_len)) continue;
        }
        best = static_cast<int>(i);
        best_key = key;
        best_len = len;
      }
      if (best < 0) break;  // every stream drained
      const size_t b = static_cast<size_t>(best);
      MoveRowInto(&heads_[b].batch, cursor_[b], out);
      ++emitted;
      if (++cursor_[b] >= heads_[b].batch.size()) head_valid_[b] = false;
    }
    out->SetRowCount(emitted);
    return emitted > 0;
  }

  // Union mode: forward the next available batch from any stream, round-
  // robin so one fast worker cannot starve the others' queues.
  for (;;) {
    Item item;
    bool popped = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        bool all_done = true;
        for (size_t k = 0; k < streams_.size(); ++k) {
          const size_t i = (next_stream_ + k) % streams_.size();
          if (!streams_[i].queue.empty()) {
            item = std::move(streams_[i].queue.front());
            streams_[i].queue.pop_front();
            next_stream_ = (i + 1) % streams_.size();
            popped = true;
            break;
          }
          if (!streams_[i].done) all_done = false;
        }
        if (popped || all_done || closed_) break;
        produced_cv_.wait(lock);
      }
    }
    if (!popped) return false;
    consumed_cv_.notify_all();
    ++ctx_.metrics->exchange_batches;
    const int64_t n = item.batch.size();
    if (n == 0) continue;
    for (int64_t r = 0; r < n; ++r) MoveRowInto(&item.batch, r, out);
    out->SetRowCount(n);
    return true;
  }
}

void ExchangeOp::JoinWorkers() {
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

void ExchangeOp::MergeWorkerAccounting() {
  if (accounted_ || workers_.empty()) return;
  accounted_ = true;
  int64_t busy_max = 0;
  int64_t busy_total = 0;
  for (auto& w : workers_) {
    if (ctx_.metrics != nullptr) ctx_.metrics->MergeFrom(*w->metrics);
    busy_max = std::max(busy_max, w->busy_ns);
    busy_total += w->busy_ns;
  }
  if (ctx_.metrics != nullptr) {
    ctx_.metrics->parallel_workers =
        std::max(ctx_.metrics->parallel_workers,
                 static_cast<int64_t>(workers_.size()));
    // Exchanges of one plan execute in distinct phases, so the query's
    // parallel critical path accumulates each region's slowest worker.
    ctx_.metrics->worker_busy_ns_max += busy_max;
    ctx_.metrics->worker_busy_ns_total += busy_total;
  }
  // Fold workers 1..N-1's per-operator stats into worker 0's operators
  // (identical tree shape => identical registry post-order), so EXPLAIN
  // ANALYZE shows aggregate work per chain operator.
  for (size_t i = 1; i < workers_.size(); ++i) {
    const auto& reg = workers_[i]->registry;
    if (reg.size() != workers_[0]->registry.size()) continue;
    for (size_t j = 0; j < reg.size(); ++j) {
      workers_[0]->registry[j].second->AccumulateStats(reg[j].second->stats());
    }
  }
}

void ExchangeOp::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  consumed_cv_.notify_all();
  produced_cv_.notify_all();
  JoinWorkers();
  for (Stream& s : streams_) s.queue.clear();
  heads_.clear();
  head_valid_.clear();
  cursor_.clear();
  MergeWorkerAccounting();
}

}  // namespace ordopt
