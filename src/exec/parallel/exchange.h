#ifndef ORDOPT_EXEC_PARALLEL_EXCHANGE_H_
#define ORDOPT_EXEC_PARALLEL_EXCHANGE_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/operators.h"
#include "exec/parallel/morsel.h"
#include "exec/spill.h"
#include "optimizer/plan.h"

namespace ordopt {

/// Morsel-parallel exchange: runs `exchange_workers` copies of the child
/// subtree (the parallelized chain) on worker threads, each pulling morsels
/// from a shared MorselScheduler, and recombines their batch streams on the
/// consuming thread.
///
/// Two recombination modes, selected by the plan node's `exchange_merge`:
///  - merge: k-way merge of the per-worker streams on the node's
///    `sort_spec` (the chain's sort key extended with — or consisting only
///    of — the hidden provenance column). Because each provenance value
///    belongs to exactly one worker, key ties never span streams and the
///    merged output reproduces the *serial* row sequence exactly; the
///    chain's order property crosses the exchange intact.
///  - union: batches forwarded in arrival order (no order claim). Kept as
///    the contrast case for tests and the re-sort-above ablation.
/// Both modes strip the provenance column before emitting.
///
/// Isolation: every worker runs with a private RuntimeMetrics and a
/// private SpillManager (run files are process-uniquely named), against
/// the query's shared thread-safe QueryGuard. Worker metrics, spill
/// managers' counters, and per-operator stats are merged into the query's
/// instances at Close, along with each worker thread's CPU busy time
/// (RuntimeMetrics::worker_busy_ns_*).
///
/// Cancellation: a tripped guard (limit, cancel, poison, injected fault)
/// ends every worker's stream cooperatively; Close unblocks any producer
/// waiting on queue backpressure and joins all threads, so no exit path
/// leaks a thread, a buffered batch, or a worker's spill charge.
class ExchangeOp : public Operator {
 public:
  /// Builds the worker operator trees immediately (so EXPLAIN ANALYZE's
  /// plan-node/operator registry pairing sees them in post-order before
  /// this exchange itself is registered). `node` is the kExchange plan
  /// node; `required_columns` is the column requirement computed at the
  /// exchange, passed through to the workers' scans for pruning. A build
  /// failure poisons the guard; BuildOperatorTree surfaces it.
  ExchangeOp(const PlanNode& node, ExecContext ctx,
             const ColumnSet* required_columns);
  ~ExchangeOp() override;

  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  /// One queued batch plus (merge mode) its rows' normalized merge keys,
  /// encoded worker-side so the consuming thread's comparator is a plain
  /// memcmp into the arena.
  struct Item {
    RowBatch batch;
    std::string keys;
    std::vector<size_t> offsets;  ///< size()+1 offsets into `keys`
  };

  struct Stream {
    std::deque<Item> queue;
    bool done = false;
  };

  struct Worker {
    std::unique_ptr<RuntimeMetrics> metrics;
    std::unique_ptr<SpillManager> spill;  ///< null when the query has none
    std::vector<std::pair<const PlanNode*, Operator*>> registry;
    OperatorPtr root;
    std::thread thread;
    int64_t busy_ns = 0;  ///< thread CPU time across open/drain/close
  };

  /// Max batches buffered per worker stream before its producer blocks.
  static constexpr size_t kMaxQueuedBatches = 4;

  void WorkerMain(size_t index);
  /// Loads the next item of stream `index` into heads_[index], blocking on
  /// an empty queue; false when the stream is done (or the exchange
  /// closed). Merge mode only.
  bool LoadHead(size_t index);
  /// Moves row `row` of `src`, minus the provenance column, into `out`'s
  /// columns (columnar; the caller sets the row count).
  void MoveRowInto(RowBatch* src, int64_t row, RowBatch* out);
  void JoinWorkers();
  void MergeWorkerAccounting();

  const PlanNode& node_;
  bool merge_ = false;
  MorselScheduler morsels_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Positions of the merge-key columns / provenance column in the worker
  /// layout, and the worker-layout positions this exchange emits.
  std::vector<int> key_positions_;
  std::vector<bool> key_descending_;
  int prov_pos_ = -1;
  std::vector<size_t> emit_cols_;

  std::mutex mu_;
  std::condition_variable produced_cv_;  ///< item pushed or stream done
  std::condition_variable consumed_cv_;  ///< queue space freed or closed
  std::vector<Stream> streams_;
  bool closed_ = false;
  bool started_ = false;
  bool accounted_ = false;

  // Merge-mode consumer state (consuming thread only).
  std::vector<Item> heads_;
  std::vector<bool> head_valid_;
  std::vector<int64_t> cursor_;
  // Union-mode round-robin start position.
  size_t next_stream_ = 0;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_PARALLEL_EXCHANGE_H_
