#ifndef ORDOPT_EXEC_PARALLEL_MORSEL_H_
#define ORDOPT_EXEC_PARALLEL_MORSEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace ordopt {

/// Work distribution for one exchange's worker set (morsel-driven
/// parallelism): the chain's driving scan claims fixed-size ranges of its
/// scan domain — rid ranges for a heap scan, positions in the shared
/// qualifying-rid vector for an index scan — with a single atomic
/// fetch-add, so fast workers naturally steal more morsels than slow ones
/// without any per-worker partition assignment.
///
/// Claims are monotonically increasing, which is load-bearing for
/// determinism: every worker's stream is ascending in provenance (the
/// serial emission ordinal), so the exchange's merge can resequence the
/// streams into exactly the serial row order.
class MorselScheduler {
 public:
  /// Rows per morsel. One execution batch by default: small enough that an
  /// 8-way split of a modest table keeps every worker busy, large enough
  /// that the claim cost (one fetch-add) vanishes per row.
  static constexpr int64_t kDefaultMorselRows = 1024;

  explicit MorselScheduler(int64_t morsel_rows = kDefaultMorselRows)
      : morsel_rows_(morsel_rows > 0 ? morsel_rows : 1) {}
  MorselScheduler(const MorselScheduler&) = delete;
  MorselScheduler& operator=(const MorselScheduler&) = delete;

  /// Claims the next unclaimed [begin, end) range of a domain of `total`
  /// items; false when the domain is exhausted. Thread-safe, wait-free.
  bool ClaimRange(int64_t total, int64_t* begin, int64_t* end) {
    int64_t b = next_.fetch_add(morsel_rows_, std::memory_order_relaxed);
    if (b >= total) return false;
    *begin = b;
    *end = b + morsel_rows_ < total ? b + morsel_rows_ : total;
    return true;
  }

  int64_t morsel_rows() const { return morsel_rows_; }

  /// Index-scan domain: the qualifying rids in index-walk order, shared by
  /// every worker. The first caller materializes them through `walk` (a
  /// serial cursor walk over its own IndexScanOp state); later callers —
  /// and the first caller's own morsel loop — read the shared vector, so
  /// the walk happens exactly once per exchange and row materialization is
  /// what parallelizes. The returned reference is stable for the
  /// scheduler's lifetime.
  const std::vector<int64_t>& EnsureRids(
      const std::function<void(std::vector<int64_t>*)>& walk) {
    std::lock_guard<std::mutex> lock(rids_mu_);
    if (!rids_ready_) {
      walk(&rids_);
      rids_ready_ = true;
    }
    return rids_;
  }

 private:
  const int64_t morsel_rows_;
  std::atomic<int64_t> next_{0};
  std::mutex rids_mu_;
  bool rids_ready_ = false;
  std::vector<int64_t> rids_;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_PARALLEL_MORSEL_H_
