#ifndef ORDOPT_EXEC_EXECUTOR_H_
#define ORDOPT_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/runtime_metrics.h"
#include "exec/operators.h"
#include "exec/query_guard.h"
#include "exec/spill.h"
#include "optimizer/plan.h"

namespace ordopt {

/// Instantiates the Volcano operator tree for a physical plan. The metrics
/// and guard in `ctx` must outlive the returned operator. A plan whose
/// construction poisons the guard (planner bug surfaced at build time)
/// returns the poisoned Status instead of an operator.
Result<OperatorPtr> BuildOperatorTree(const PlanRef& plan, ExecContext ctx);

/// Variant used by ExchangeOp for its worker subtrees: seeds the build with
/// the column requirement computed at the exchange node (null = all
/// columns), so worker scans prune exactly as a serial build of the same
/// chain would.
Result<OperatorPtr> BuildWorkerOperatorTree(const PlanRef& plan,
                                            ExecContext ctx,
                                            const ColumnSet* required);

/// One operator's runtime stats paired with the plan node it executed.
/// ExecutePlan emits profiles in the same post-order BuildOperatorTree
/// visits nodes (children before parent), so index i in a profile vector
/// corresponds to the i-th node of a post-order plan walk.
struct OperatorProfile {
  const PlanNode* node = nullptr;
  OperatorStats stats;
};

/// Convenience: builds, opens, drains, and closes the plan, returning every
/// produced row. When `guard` is non-null its limits are enforced during the
/// drain and a tripped guard's Status is returned (with consumption peaks
/// already merged into `metrics`); a null guard executes unlimited. When
/// `spill_config` is non-null a SpillManager scoped to this execution lets
/// sorts exceed the row budget by spilling runs to disk; a null config
/// keeps every sort in memory. When `profile` is non-null the run collects
/// per-operator stats (EXPLAIN ANALYZE): every Open()/Next() is timed and
/// the profiles — one per plan node, post-order — are appended on the way
/// out, whether or not execution succeeded. With `verify_orders` set, every
/// operator whose plan node claims a non-empty order or key property runs
/// under an OrderCheckOp (see exec/order_check.h) and a violated claim
/// fails the query with kInternal. `batch_rows` sets the execution batch
/// size (ExecContext::batch_rows); 1 degenerates to single-row batches
/// through the same columnar code path. `row_shim` selects the legacy
/// row-at-a-time execution shape instead (ExecContext::row_shim; implies
/// batch_rows = 1). `parallel_workers` (ExecContext::parallel_workers)
/// enables parallel sort-run generation in serial operators and sizes
/// nothing else — exchange worker counts are baked into the plan.
Result<std::vector<Row>> ExecutePlan(const PlanRef& plan,
                                     RuntimeMetrics* metrics,
                                     QueryGuard* guard = nullptr,
                                     const SpillConfig* spill_config = nullptr,
                                     std::vector<OperatorProfile>* profile =
                                         nullptr,
                                     bool verify_orders = false,
                                     int64_t batch_rows = kDefaultBatchRows,
                                     bool row_shim = false,
                                     int parallel_workers = 1);

}  // namespace ordopt

#endif  // ORDOPT_EXEC_EXECUTOR_H_
