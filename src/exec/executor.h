#ifndef ORDOPT_EXEC_EXECUTOR_H_
#define ORDOPT_EXEC_EXECUTOR_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/metrics.h"
#include "exec/operators.h"
#include "optimizer/plan.h"

namespace ordopt {

/// Instantiates the Volcano operator tree for a physical plan. `metrics`
/// must outlive the returned operator.
Result<OperatorPtr> BuildOperatorTree(const PlanRef& plan,
                                      RuntimeMetrics* metrics);

/// Convenience: builds, opens, drains, and closes the plan, returning every
/// produced row.
Result<std::vector<Row>> ExecutePlan(const PlanRef& plan,
                                     RuntimeMetrics* metrics);

}  // namespace ordopt

#endif  // ORDOPT_EXEC_EXECUTOR_H_
