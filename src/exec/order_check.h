#ifndef ORDOPT_EXEC_ORDER_CHECK_H_
#define ORDOPT_EXEC_ORDER_CHECK_H_

#include <atomic>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/operators.h"
#include "optimizer/plan.h"

namespace ordopt {

/// Runtime verification of a plan node's asserted stream properties
/// (OptimizerConfig::verify_orders). BuildOperatorTree wraps every operator
/// whose PlanProperties claim a non-empty order or key property in one of
/// these; the wrapper passes rows through untouched (it copies only the
/// checked key/order column Values, never whole rows) and poisons the guard
/// with kInternal — naming the operator, the claimed specification, and the
/// violating row pair — the moment the stream disobeys a claim. This turns
/// every "sort avoided because the order property already satisfies the
/// requirement" planner decision into a checked assertion.
///
/// What is checked, and how claims are resolved against the child layout:
///  - Order property: each claimed column resolves to a layout position,
///    falling back to a visible member of its equivalence class (order
///    claims may be stated on a class head the stream no longer carries).
///    The claim is truncated at the first unresolvable column — a prefix
///    check is still a sound check of a weaker claim. Adjacent rows are
///    compared through the normalized sort-key representation (sort_key.h),
///    which reproduces the Value::Compare total order (NULLs first, DESC
///    flips) byte-for-byte — the same encoding SortOp sorts by. At batch
///    granularity every adjacent pair within a batch is checked, plus the
///    boundary pair against the previous batch's last key.
///  - Key property: every claimed key whose columns all resolve is checked
///    for uniqueness with a hash set of seen key tuples; NULL participates
///    as an ordinary value (the engine's total order treats NULLs equal).
///    The one-record condition (empty key) asserts the stream produces at
///    most one row.
///
/// The checker is deliberately invisible to everything else: it touches no
/// RuntimeMetrics counters, is skipped by the op-stats registry, and its
/// seen-keys memory is not charged against the query guard's buffer limits
/// (verification is a debug mode; tripping a caller's buffer guardrail
/// would change behavior under test).
class OrderCheckOp : public Operator {
 public:
  /// `node` is the plan node whose properties are being verified; only its
  /// label and property bundle are read (and copied) at construction.
  OrderCheckOp(OperatorPtr child, const PlanNode& node, ExecContext ctx);

  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  struct KeyTupleHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyTupleEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  /// One claimed key with its columns resolved to layout positions.
  struct KeyCheck {
    ColumnSet claimed;
    std::vector<int> positions;  ///< empty for the one-record condition
    std::unordered_set<std::vector<Value>, KeyTupleHash, KeyTupleEq> seen;
  };

  /// Formats row `row` of `batch` restricted to the checked columns.
  std::string RenderRow(const RowBatch& batch, int64_t row,
                        const std::vector<int>& positions) const;
  bool CheckOrder(const RowBatch& batch, int64_t row);
  bool CheckKeys(const RowBatch& batch, int64_t row);

  OperatorPtr child_;
  std::string op_label_;   ///< NodeLabel of the wrapped plan node
  OrderSpec claimed_;      ///< order claim as asserted by the planner
  OrderSpec checked_;      ///< resolvable prefix actually verified
  std::vector<int> positions_;
  std::vector<bool> descending_;
  std::vector<KeyCheck> keys_;

  std::string prev_norm_;        ///< previous row's normalized order key
  std::string cur_norm_;         ///< scratch encoding of the current row
  std::vector<Value> prev_key_;  ///< previous row's values, for diagnostics
  bool has_prev_ = false;
  int64_t row_index_ = 0;
};

/// Statistics of the checks a verified execution performed, for tests and
/// the --verify-orders gate's report. Process-wide and shared by every
/// concurrently-verified query, so the counters are atomic; Reset is not
/// synchronized with in-flight queries — call it only between runs.
struct OrderCheckStats {
  std::atomic<int64_t> operators_checked{0};  ///< OrderCheckOps constructed
  std::atomic<int64_t> rows_checked{0};  ///< rows passed through checkers
  std::atomic<int64_t> violations{0};    ///< claims found violated

  void Reset() {
    operators_checked.store(0, std::memory_order_relaxed);
    rows_checked.store(0, std::memory_order_relaxed);
    violations.store(0, std::memory_order_relaxed);
  }
};

/// Global check statistics, safe to bump from concurrent queries.
OrderCheckStats& GlobalOrderCheckStats();

}  // namespace ordopt

#endif  // ORDOPT_EXEC_ORDER_CHECK_H_
