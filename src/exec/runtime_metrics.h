#ifndef ORDOPT_EXEC_RUNTIME_METRICS_H_
#define ORDOPT_EXEC_RUNTIME_METRICS_H_

#include <cstdint>
#include <string>
#include <unordered_set>

namespace ordopt {

/// Runtime counters collected during execution. Page counters come from a
/// per-scan locality tracker: a row fetch that stays on the current page is
/// free, a move to the next page counts as a sequential page read, and any
/// other move counts as a random page read — so clustered, ordered probe
/// sequences naturally cost sequential I/O (the §8.1 effect) without the
/// executor special-casing them.
struct RuntimeMetrics {
  int64_t rows_produced = 0;   ///< rows emitted by the plan root
  int64_t rows_scanned = 0;    ///< rows read from base tables
  int64_t comparisons = 0;     ///< sort + merge comparisons
  int64_t seq_pages = 0;       ///< sequential page reads
  int64_t random_pages = 0;    ///< random page reads
  int64_t index_probes = 0;    ///< nested-loop index probes
  int64_t sorts_performed = 0; ///< Sort operators that ran
  int64_t rows_sorted = 0;     ///< total rows passed through sorts
  /// Guardrail consumption high-water marks (filled by the QueryGuard so
  /// callers can compare consumption against configured limits even when
  /// the query tripped): peak rows / approximate bytes held at once in
  /// blocking operators (sorts, hash builds, materialized inners).
  int64_t rows_buffered_peak = 0;
  int64_t bytes_buffered_peak = 0;
  /// External-sort spill activity (SpillManager): sorted runs written to
  /// disk when a sort exceeds its row budget, and the rows/bytes they
  /// carried. Zero for queries that stayed in memory.
  int64_t spill_runs = 0;
  int64_t spill_rows = 0;
  int64_t spill_bytes = 0;
  /// Spill I/O attempts that were retried after a transient failure.
  int64_t spill_retries = 0;
  /// Reduce-cache statistics of the optimization that produced this
  /// query's plan (copied from the planner by the engine so trace export
  /// and the plan-bench gate see cache behavior alongside the runtime
  /// counters). 0/0 when the query was executed from a prebuilt plan.
  int64_t reduce_cache_hits = 0;
  int64_t reduce_cache_misses = 0;
  /// Morsel-parallel execution (src/exec/parallel/): worker count of the
  /// widest exchange that ran, batches forwarded through exchanges, and
  /// per-worker thread-CPU busy time (max = the parallel region's critical
  /// path, total = work that was distributed). All zero for serial plans.
  int64_t parallel_workers = 0;
  int64_t exchange_batches = 0;
  int64_t worker_busy_ns_max = 0;
  int64_t worker_busy_ns_total = 0;

  /// Accumulates a worker's counters into this (query-level) instance.
  /// Workers execute with private RuntimeMetrics so the hot paths never
  /// share cache lines; the exchange merges them at Close. Sums the
  /// additive counters, maxes the peaks, and leaves the plan-time fields
  /// (reduce-cache) alone — workers never plan.
  void MergeFrom(const RuntimeMetrics& worker);

  /// Simulated I/O time with 1996-style disk parameters: a random page
  /// pays a seek (~8 ms); sequential pages stream with big-block prefetch
  /// and I/O parallelism (~1 ms/page). The 8:1 ratio is kept close to the
  /// cost model's random:sequential ratio so plan rank order and simulated
  /// time agree.
  double SimulatedIoSeconds() const {
    return static_cast<double>(random_pages) * 0.008 +
           static_cast<double>(seq_pages) * 0.001;
  }

  /// Simulated CPU time on a 1996-class (66 MHz) processor. Row handling
  /// through an interpreted executor cost on the order of thousands of
  /// instructions: ~30 µs per row moved, ~5 µs per key comparison
  /// (calibrated against the paper's §8.1 numbers — 393 s for the
  /// scan-dominated disabled plan over a 1 GB database is ~60 µs/row).
  /// The paper's configuration drove the CPU to 100% utilization, so this
  /// work contributes elapsed time directly — a modern CPU would hide it.
  double SimulatedCpuSeconds() const {
    return static_cast<double>(comparisons) * 5e-6 +
           static_cast<double>(rows_scanned + rows_produced + rows_sorted) *
               30e-6;
  }

  /// Total simulated elapsed time (I/O + CPU) on the paper-era hardware.
  double SimulatedElapsedSeconds() const {
    return SimulatedIoSeconds() + SimulatedCpuSeconds();
  }

  std::string ToString() const;

  /// One JSON object with every counter plus the simulated-time rollups;
  /// embedded verbatim in the ORDOPT_TRACE event stream.
  std::string ToJson() const;
};

/// Per-operator runtime statistics, collected when a query runs under
/// EXPLAIN ANALYZE (ExecContext::collect_op_stats). The metrics-delta
/// counters are *inclusive* of the operator's children: the Open()/Next()
/// wrappers accumulate the query-level RuntimeMetrics delta across each
/// whole call, which contains the nested child pulls. Stats therefore roll
/// up parent -> child, and an operator's self cost is derivable as its
/// value minus the sum over its children.
struct OperatorStats {
  int64_t open_ns = 0;     ///< wall time inside Open() (blocking work)
  int64_t next_ns = 0;     ///< wall time across all Next() calls
  int64_t next_calls = 0;  ///< Next() invocations (incl. the final false)
  int64_t rows_out = 0;    ///< rows this operator produced
  /// RuntimeMetrics deltas attributed to this subtree (inclusive).
  int64_t rows_scanned = 0;
  int64_t comparisons = 0;
  int64_t seq_pages = 0;
  int64_t random_pages = 0;
  int64_t index_probes = 0;
  int64_t spill_runs = 0;
  int64_t spill_retries = 0;
  /// Peak rows this operator held buffered at once (its BufferAccount).
  int64_t buffered_rows_peak = 0;

  int64_t total_ns() const { return open_ns + next_ns; }

  /// Accumulates another worker's stats for the same plan node: counters
  /// and times sum (total work across workers), peaks take the maximum.
  /// EXPLAIN ANALYZE of a parallel plan therefore shows aggregate work per
  /// operator, with wall time exceeding elapsed time when workers overlap.
  void MergeFrom(const OperatorStats& other) {
    open_ns += other.open_ns;
    next_ns += other.next_ns;
    next_calls += other.next_calls;
    rows_out += other.rows_out;
    rows_scanned += other.rows_scanned;
    comparisons += other.comparisons;
    seq_pages += other.seq_pages;
    random_pages += other.random_pages;
    index_probes += other.index_probes;
    spill_runs += other.spill_runs;
    spill_retries += other.spill_retries;
    if (other.buffered_rows_peak > buffered_rows_peak) {
      buffered_rows_peak = other.buffered_rows_peak;
    }
  }
};

/// Tracks page-access locality for one scan or probe stream. A fetch on
/// the current page is free; a short forward move counts as a sequential
/// (prefetched) read — the disk arm sweeps forward, and the paper's
/// big-block I/O + striping configuration (§8.1) turns an ordered,
/// clustered probe sequence into sequential I/O even when pages are
/// skipped; anything else (backward moves, long jumps) is a random read.
class PageTracker {
 public:
  /// Forward jumps up to this many pages ride the prefetch window.
  static constexpr int64_t kPrefetchWindowPages = 32;

  PageTracker(RuntimeMetrics* metrics, int64_t rows_per_page)
      : metrics_(metrics), rows_per_page_(rows_per_page) {}

  /// Records the I/O for fetching row `rid`. Pages this operator already
  /// touched are buffer hits (free): the operator-local working set models
  /// the 512 MB buffer pool of the paper's configuration, which easily
  /// holds the hot pages of a repeatedly-probed table.
  void Access(int64_t rid) {
    int64_t page = rid / rows_per_page_;
    if (page == last_page_) return;
    if (resident_.insert(page).second == false) {
      last_page_ = page;  // buffer hit
      return;
    }
    if (page > last_page_ && page - last_page_ <= kPrefetchWindowPages &&
        last_page_ >= 0) {
      ++metrics_->seq_pages;
    } else {
      ++metrics_->random_pages;
    }
    last_page_ = page;
  }

 private:
  RuntimeMetrics* metrics_;
  int64_t rows_per_page_;
  int64_t last_page_ = -2;  // so the first access is random
  std::unordered_set<int64_t> resident_;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_RUNTIME_METRICS_H_
