#ifndef ORDOPT_EXEC_EXPR_EVAL_H_
#define ORDOPT_EXEC_EXPR_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/column_id.h"
#include "common/value.h"
#include "exec/row_batch.h"
#include "qgm/predicate.h"

namespace ordopt {

class QueryGuard;

/// Maps a stream's row layout (a ColumnId per position) to positions and
/// evaluates bound expressions against rows of that layout.
///
/// SQL three-valued logic is folded to two: a NULL comparison result is
/// "not satisfied", matching WHERE semantics.
///
/// When constructed with a guard, a reference to a column missing from the
/// layout (a planner bug) poisons the guard and evaluates to NULL instead
/// of aborting the process.
class ExprEvaluator {
 public:
  explicit ExprEvaluator(const std::vector<ColumnId>& layout,
                         QueryGuard* guard = nullptr);

  /// Position of `col` in the layout; -1 when absent.
  int PositionOf(const ColumnId& col) const;

  /// Evaluates a scalar expression against `row`.
  Value Eval(const BoundExpr& expr, const Row& row) const;

  /// Evaluates a predicate: true iff the expression is non-NULL and
  /// non-zero.
  bool EvalPredicate(const Predicate& pred, const Row& row) const;

  /// Evaluates `expr` for row `row` of `batch` without materializing a Row.
  Value EvalAt(const BoundExpr& expr, const RowBatch& batch,
               int64_t row) const;

  /// Batch predicate evaluation: filters `sel` in place, keeping only the
  /// rows for which `pred` is satisfied (non-NULL, non-zero). The classified
  /// col-vs-const and col-vs-col shapes take a branch-light fast path over
  /// the column vector + null bitmap; kGeneric falls back to EvalAt. A NULL
  /// comparison result never survives, matching the row path's two-valued
  /// folding.
  void FilterBatch(const Predicate& pred, const RowBatch& batch,
                   SelectionVector* sel) const;

  /// Evaluates `expr` over every row of `batch`, appending the results to
  /// column `out_col` of `out` (which must already be Reset to the output
  /// width). Plain column references copy the input column; literals
  /// replicate; everything else evaluates row-at-a-time via EvalAt.
  void EvalColumn(const BoundExpr& expr, const RowBatch& batch, RowBatch* out,
                  size_t out_col) const;

 private:
  std::unordered_map<ColumnId, int, ColumnIdHash> positions_;
  QueryGuard* guard_ = nullptr;
};

/// Arithmetic/comparison on two Values with NULL propagation; used by both
/// the evaluator and the aggregate accumulators.
Value EvalBinary(BinOp op, const Value& l, const Value& r);

}  // namespace ordopt

#endif  // ORDOPT_EXEC_EXPR_EVAL_H_
