#include "exec/executor.h"

#include "common/str_util.h"

namespace ordopt {

Result<OperatorPtr> BuildOperatorTree(const PlanRef& plan,
                                      RuntimeMetrics* metrics) {
  std::vector<OperatorPtr> children;
  for (const PlanRef& child : plan->children) {
    ORDOPT_ASSIGN_OR_RETURN(OperatorPtr op, BuildOperatorTree(child, metrics));
    children.push_back(std::move(op));
  }

  switch (plan->kind) {
    case OpKind::kTableScan:
      return OperatorPtr(
          new TableScanOp(*plan->table, plan->table_id, metrics));
    case OpKind::kIndexScan:
      return OperatorPtr(new IndexScanOp(*plan->table, plan->table_id,
                                         plan->index_ordinal,
                                         plan->reverse_scan,
                                         plan->range_predicates, metrics));
    case OpKind::kFilter:
      return OperatorPtr(
          new FilterOp(std::move(children[0]), plan->predicates));
    case OpKind::kSort:
      return OperatorPtr(
          new SortOp(std::move(children[0]), plan->sort_spec, metrics));
    case OpKind::kMergeJoin:
      return OperatorPtr(new MergeJoinOp(std::move(children[0]),
                                         std::move(children[1]),
                                         plan->join_pairs, metrics));
    case OpKind::kIndexNLJoin:
      return OperatorPtr(new IndexNLJoinOp(std::move(children[0]),
                                           *plan->table, plan->table_id,
                                           plan->index_ordinal,
                                           plan->join_pairs, metrics));
    case OpKind::kNaiveNLJoin:
      return OperatorPtr(
          new NaiveNLJoinOp(std::move(children[0]), std::move(children[1])));
    case OpKind::kHashJoin:
      return OperatorPtr(new HashJoinOp(std::move(children[0]),
                                        std::move(children[1]),
                                        plan->join_pairs));
    case OpKind::kMergeLeftJoin:
      return OperatorPtr(new MergeLeftJoinOp(std::move(children[0]),
                                             std::move(children[1]),
                                             plan->join_pairs, metrics));
    case OpKind::kHashLeftJoin:
      return OperatorPtr(new HashLeftJoinOp(std::move(children[0]),
                                            std::move(children[1]),
                                            plan->join_pairs));
    case OpKind::kNaiveLeftJoin:
      return OperatorPtr(new NaiveLeftJoinOp(std::move(children[0]),
                                             std::move(children[1]),
                                             plan->predicates));
    case OpKind::kStreamGroupBy:
    case OpKind::kSortGroupBy:
      return OperatorPtr(new StreamGroupByOp(std::move(children[0]),
                                             plan->group_columns,
                                             plan->aggregates, metrics));
    case OpKind::kHashGroupBy:
      return OperatorPtr(new HashGroupByOp(std::move(children[0]),
                                           plan->group_columns,
                                           plan->aggregates, metrics));
    case OpKind::kStreamDistinct:
      return OperatorPtr(new StreamDistinctOp(std::move(children[0]),
                                              plan->distinct_columns));
    case OpKind::kHashDistinct:
      return OperatorPtr(new HashDistinctOp(std::move(children[0]),
                                            plan->distinct_columns));
    case OpKind::kProject:
      return OperatorPtr(
          new ProjectOp(std::move(children[0]), plan->projections));
    case OpKind::kLimit:
      return OperatorPtr(new LimitOp(std::move(children[0]), plan->limit));
    case OpKind::kTopN:
      return OperatorPtr(new TopNOp(std::move(children[0]), plan->sort_spec,
                                    plan->limit, metrics));
    case OpKind::kUnionAll:
    case OpKind::kMergeUnion: {
      std::vector<ColumnId> layout;
      for (const OutputColumn& oc : plan->projections) {
        layout.push_back(oc.id);
      }
      if (plan->kind == OpKind::kUnionAll) {
        return OperatorPtr(
            new UnionAllOp(std::move(children), std::move(layout)));
      }
      return OperatorPtr(new MergeUnionOp(std::move(children),
                                          std::move(layout), metrics));
    }
  }
  return Status::Internal(
      StrFormat("unknown operator kind %d", static_cast<int>(plan->kind)));
}

Result<std::vector<Row>> ExecutePlan(const PlanRef& plan,
                                     RuntimeMetrics* metrics) {
  ORDOPT_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperatorTree(plan, metrics));
  root->Open();
  std::vector<Row> rows;
  Row row;
  while (root->Next(&row)) {
    rows.push_back(std::move(row));
    ++metrics->rows_produced;
  }
  root->Close();
  return rows;
}

}  // namespace ordopt
