#include "exec/executor.h"

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "exec/order_check.h"
#include "exec/parallel/exchange.h"

namespace ordopt {

namespace {

/// What a node's parent requires of its output. `all` short-circuits
/// pruning: the root must surface every column, and UNION branches feed a
/// positional layout that must stay intact.
struct RequiredColumns {
  bool all = true;
  ColumnSet cols;
};

/// Columns a plan node itself reads from its inputs: predicates, sort
/// keys, join keys, grouping columns, aggregate arguments, projection
/// expressions. Under order verification, a node's asserted order/key
/// properties are checked against its own output, so those columns count
/// as consumed too — pruning must not weaken a check it could keep.
ColumnSet NodeOwnColumns(const PlanNode& plan, bool verify_orders) {
  ColumnSet own;
  for (const Predicate& p : plan.predicates) own = own.Union(p.referenced);
  for (const Predicate& p : plan.range_predicates) {
    own = own.Union(p.referenced);
  }
  for (const OrderElement& e : plan.sort_spec) own.Add(e.col);
  for (const auto& [o, i] : plan.join_pairs) {
    own.Add(o);
    own.Add(i);
  }
  for (const ColumnId& c : plan.group_columns) own.Add(c);
  for (const AggregateSpec& a : plan.aggregates) {
    if (!a.count_star) a.arg.CollectColumns(&own);
  }
  for (const ColumnId& c : plan.distinct_columns) own.Add(c);
  for (const OutputColumn& oc : plan.projections) {
    oc.expr.CollectColumns(&own);
  }
  if (verify_orders) {
    own = own.Union(plan.props.order.Columns());
    for (const ColumnSet& key : plan.props.keys.keys()) {
      own = own.Union(key);
    }
  }
  return own;
}

Result<OperatorPtr> BuildTree(const PlanRef& plan, ExecContext ctx,
                              const RequiredColumns& required) {
  // Effective requirement on this node's output: what the parent needs
  // plus what the node itself touches. Scans prune their emitted columns
  // down to it; everything else derives its layout from its children and
  // narrows automatically.
  RequiredColumns eff = required;
  if (!eff.all) {
    eff.cols = eff.cols.Union(NodeOwnColumns(*plan, ctx.verify_orders));
  }

  if (plan->kind == OpKind::kExchange) {
    // The child chain is NOT built through the loop below: ExchangeOp
    // constructs one copy of it per worker against worker-private contexts
    // (registering worker 0's copy with the registry first, preserving
    // post-order). The requirement computed here reaches the worker scans,
    // so pruning through an exchange matches the serial build.
    const ColumnSet* prune = eff.all ? nullptr : &eff.cols;
    OperatorPtr built(new ExchangeOp(*plan, ctx, prune));
    if (ctx.guard != nullptr && !ctx.guard->ok()) {
      return ctx.guard->status();
    }
    if (ctx.op_registry != nullptr) {
      ctx.op_registry->push_back({plan.get(), built.get()});
    }
    if (ctx.verify_orders &&
        (!plan->props.order.empty() || !plan->props.keys.empty())) {
      built = OperatorPtr(new OrderCheckOp(std::move(built), *plan, ctx));
    }
    return built;
  }

  // Requirement passed to the children.
  RequiredColumns child_req;
  switch (plan->kind) {
    case OpKind::kProject:
    case OpKind::kStreamGroupBy:
    case OpKind::kSortGroupBy:
    case OpKind::kHashGroupBy:
      // Output columns are fresh (expressions, aggregates): whatever the
      // parent wants maps below only through this node's own inputs.
      child_req.all = false;
      child_req.cols = NodeOwnColumns(*plan, ctx.verify_orders);
      break;
    case OpKind::kUnionAll:
    case OpKind::kMergeUnion:
      // Branch rows are consumed positionally against the union layout.
      child_req.all = true;
      break;
    default:
      child_req = eff;
      break;
  }

  std::vector<OperatorPtr> children;
  for (const PlanRef& child : plan->children) {
    ORDOPT_ASSIGN_OR_RETURN(OperatorPtr op, BuildTree(child, ctx, child_req));
    children.push_back(std::move(op));
  }
  const ColumnSet* prune = eff.all ? nullptr : &eff.cols;

  OperatorPtr built;
  switch (plan->kind) {
    case OpKind::kTableScan:
      built = OperatorPtr(new TableScanOp(*plan->table, plan->table_id, ctx,
                                          prune, plan->morsel_driver,
                                          plan->emit_provenance));
      break;
    case OpKind::kIndexScan:
      built = OperatorPtr(new IndexScanOp(*plan->table, plan->table_id,
                                          plan->index_ordinal,
                                          plan->reverse_scan,
                                          plan->range_predicates, ctx, prune,
                                          plan->morsel_driver,
                                          plan->emit_provenance));
      break;
    case OpKind::kExchange:
      // Handled by the early return above; unreachable here.
      return Status::Internal("exchange reached serial operator dispatch");
    case OpKind::kFilter:
      built = OperatorPtr(
          new FilterOp(std::move(children[0]), plan->predicates, ctx));
      break;
    case OpKind::kSort:
      built = OperatorPtr(
          new SortOp(std::move(children[0]), plan->sort_spec, ctx));
      break;
    case OpKind::kMergeJoin:
      built = OperatorPtr(new MergeJoinOp(std::move(children[0]),
                                          std::move(children[1]),
                                          plan->join_pairs, ctx));
      break;
    case OpKind::kIndexNLJoin:
      built = OperatorPtr(new IndexNLJoinOp(std::move(children[0]),
                                            *plan->table, plan->table_id,
                                            plan->index_ordinal,
                                            plan->join_pairs, ctx, prune));
      break;
    case OpKind::kNaiveNLJoin:
      built = OperatorPtr(new NaiveNLJoinOp(std::move(children[0]),
                                            std::move(children[1]), ctx));
      break;
    case OpKind::kHashJoin:
      built = OperatorPtr(new HashJoinOp(std::move(children[0]),
                                         std::move(children[1]),
                                         plan->join_pairs, ctx));
      break;
    case OpKind::kMergeLeftJoin:
      built = OperatorPtr(new MergeLeftJoinOp(std::move(children[0]),
                                              std::move(children[1]),
                                              plan->join_pairs, ctx));
      break;
    case OpKind::kHashLeftJoin:
      built = OperatorPtr(new HashLeftJoinOp(std::move(children[0]),
                                             std::move(children[1]),
                                             plan->join_pairs, ctx));
      break;
    case OpKind::kNaiveLeftJoin:
      built = OperatorPtr(new NaiveLeftJoinOp(std::move(children[0]),
                                              std::move(children[1]),
                                              plan->predicates, ctx));
      break;
    case OpKind::kStreamGroupBy:
    case OpKind::kSortGroupBy:
      built = OperatorPtr(new StreamGroupByOp(std::move(children[0]),
                                              plan->group_columns,
                                              plan->aggregates, ctx));
      break;
    case OpKind::kHashGroupBy:
      built = OperatorPtr(new HashGroupByOp(std::move(children[0]),
                                            plan->group_columns,
                                            plan->aggregates, ctx));
      break;
    case OpKind::kStreamDistinct:
      built = OperatorPtr(new StreamDistinctOp(std::move(children[0]),
                                               plan->distinct_columns, ctx));
      break;
    case OpKind::kHashDistinct:
      built = OperatorPtr(new HashDistinctOp(std::move(children[0]),
                                             plan->distinct_columns, ctx));
      break;
    case OpKind::kProject:
      built = OperatorPtr(
          new ProjectOp(std::move(children[0]), plan->projections, ctx));
      break;
    case OpKind::kLimit:
      built = OperatorPtr(
          new LimitOp(std::move(children[0]), plan->limit, ctx));
      break;
    case OpKind::kTopN:
      built = OperatorPtr(new TopNOp(std::move(children[0]), plan->sort_spec,
                                     plan->limit, ctx));
      break;
    case OpKind::kUnionAll:
    case OpKind::kMergeUnion: {
      std::vector<ColumnId> layout;
      for (const OutputColumn& oc : plan->projections) {
        layout.push_back(oc.id);
      }
      if (plan->kind == OpKind::kUnionAll) {
        built = OperatorPtr(
            new UnionAllOp(std::move(children), std::move(layout), ctx));
      } else {
        built = OperatorPtr(
            new MergeUnionOp(std::move(children), std::move(layout), ctx));
      }
      break;
    }
  }
  if (built == nullptr) {
    return Status::Internal(
        StrFormat("unknown operator kind %d", static_cast<int>(plan->kind)));
  }
  // Constructors report planner bugs (e.g. a column missing from a child
  // layout) by poisoning the guard; surface them before the tree can run.
  if (ctx.guard != nullptr && !ctx.guard->ok()) {
    return ctx.guard->status();
  }
  if (ctx.op_registry != nullptr) {
    ctx.op_registry->push_back({plan.get(), built.get()});
  }
  // Wrap after the registry push so EXPLAIN ANALYZE keeps pairing plan
  // nodes with the operators that actually execute them; the checker is a
  // pure pass-through observer of this node's asserted properties.
  if (ctx.verify_orders &&
      (!plan->props.order.empty() || !plan->props.keys.empty())) {
    built = OperatorPtr(new OrderCheckOp(std::move(built), *plan, ctx));
  }
  return built;
}

}  // namespace

Result<OperatorPtr> BuildOperatorTree(const PlanRef& plan, ExecContext ctx) {
  // The root requires every output column; pruning starts below the first
  // projection or aggregation, where the useful column set narrows.
  return BuildTree(plan, ctx, RequiredColumns{});
}

Result<OperatorPtr> BuildWorkerOperatorTree(const PlanRef& plan,
                                            ExecContext ctx,
                                            const ColumnSet* required) {
  RequiredColumns req;
  if (required != nullptr) {
    req.all = false;
    req.cols = *required;
  }
  return BuildTree(plan, ctx, req);
}

Result<std::vector<Row>> ExecutePlan(const PlanRef& plan,
                                     RuntimeMetrics* metrics,
                                     QueryGuard* guard,
                                     const SpillConfig* spill_config,
                                     std::vector<OperatorProfile>* profile,
                                     bool verify_orders, int64_t batch_rows,
                                     bool row_shim, int parallel_workers) {
  // An unlimited local guard keeps the error channel available (poison,
  // fault injection) even for callers that configured no limits.
  QueryGuard local_guard;
  if (guard == nullptr) guard = &local_guard;
  guard->Arm();

  // Declared before the operator tree so operators close (releasing their
  // spill runs) before the manager goes away.
  std::unique_ptr<SpillManager> spill;
  if (spill_config != nullptr) {
    spill = std::make_unique<SpillManager>(*spill_config, metrics);
  }

  ExecContext ctx(metrics, guard, spill.get());
  ctx.verify_orders = verify_orders;
  ctx.batch_rows = batch_rows > 0 ? batch_rows : 1;
  ctx.row_shim = row_shim;
  if (row_shim) ctx.batch_rows = 1;
  ctx.parallel_workers = parallel_workers > 1 ? parallel_workers : 1;
  std::vector<std::pair<const PlanNode*, Operator*>> registry;
  if (profile != nullptr) {
    ctx.collect_op_stats = true;
    ctx.op_registry = &registry;
  }
  ORDOPT_ASSIGN_OR_RETURN(OperatorPtr root, BuildOperatorTree(plan, ctx));
  root->Open();
  std::vector<Row> rows;
  RowBatch batch;
  bool tripped = false;
  while (!tripped && guard->ok()) {
    if (ctx.InjectFault("exec.operator.next")) break;
    if (!root->NextBatch(&batch)) break;
    for (int64_t i = 0; i < batch.size(); ++i) {
      // The site fires once per row pulled from the root, as in the
      // row-at-a-time drain; the outer probe covers each batch's first row.
      if (i > 0 && ctx.InjectFault("exec.operator.next")) {
        tripped = true;
        break;
      }
      ++metrics->rows_produced;
      // Guard semantics are per row: the row that trips the limit is
      // counted but not returned, exactly as in the row-at-a-time drain.
      if (!guard->OnRowProduced()) {
        tripped = true;
        break;
      }
      rows.push_back(batch.TakeRow(i));
    }
  }
  root->Close();
  // Harvest stats after Close so teardown work (spill cleanup) is final,
  // but before the tree is destroyed. The registry's pointers reference
  // operators owned (transitively) by `root`.
  if (profile != nullptr) {
    for (const auto& [node, op] : registry) {
      profile->push_back(OperatorProfile{node, op->stats()});
    }
  }
  // A query that finished under the periodic check interval still honors a
  // tiny deadline or a pending cancellation.
  guard->ForceCheck();
  guard->ReportTo(metrics);
  if (!guard->ok()) return guard->status();
  return rows;
}

}  // namespace ordopt
