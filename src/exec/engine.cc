#include "exec/engine.h"

#include <chrono>

#include "parser/parser.h"
#include "qgm/rewrite.h"

namespace ordopt {

Result<QueryResult> QueryEngine::Prepare(const std::string& sql, bool execute,
                                         QueryGuard* guard) {
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Query> query,
                          BindQuery(*stmt, *db_));
  MergeDerivedTables(query.get());

  Planner planner(*query, config_);
  ORDOPT_ASSIGN_OR_RETURN(PlanRef plan, planner.BuildPlan());

  QueryResult result;
  result.plan = plan;
  result.plan_text = plan->ToString(query->namer());
  result.qgm_text = query->ToString();
  result.plans_generated = planner.plans_generated();
  for (const OutputColumn& oc : query->root->outputs) {
    result.column_names.push_back(oc.name);
  }

  if (execute) {
    // Queries run under the engine's configured limits unless the caller
    // supplied a guard of their own.
    QueryGuard config_guard(config_.limits);
    if (guard == nullptr) guard = &config_guard;
    // Sorts spill under the same row budget the cost model priced; the
    // manager lives inside ExecutePlan, scoped to this query.
    SpillConfig spill_config;
    spill_config.sort_memory_rows = config_.cost_params.sort_memory_rows;
    spill_config.temp_dir = config_.spill_temp_dir;
    spill_config.retry = config_.spill_retry;
    auto start = std::chrono::steady_clock::now();
    Result<std::vector<Row>> rows =
        ExecutePlan(plan, &result.metrics, guard, &spill_config);
    auto end = std::chrono::steady_clock::now();
    result.elapsed_seconds =
        std::chrono::duration<double>(end - start).count();
    // Keep consumed-vs-limit visible even when the query failed: a
    // Result<QueryResult> error drops the metrics it carried.
    last_metrics_ = result.metrics;
    ORDOPT_RETURN_NOT_OK(rows.status());
    result.rows = std::move(rows).value();
  }
  return result;
}

Result<QueryResult> QueryEngine::Explain(const std::string& sql) {
  return Prepare(sql, /*execute=*/false, /*guard=*/nullptr);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql) {
  return Prepare(sql, /*execute=*/true, /*guard=*/nullptr);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql,
                                     QueryGuard* guard) {
  return Prepare(sql, /*execute=*/true, guard);
}

}  // namespace ordopt
