#include "exec/engine.h"

#include <chrono>

#include "parser/parser.h"
#include "qgm/rewrite.h"

namespace ordopt {

Result<QueryResult> QueryEngine::Prepare(const std::string& sql,
                                         bool execute) {
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Query> query,
                          BindQuery(*stmt, *db_));
  MergeDerivedTables(query.get());

  Planner planner(*query, config_);
  ORDOPT_ASSIGN_OR_RETURN(PlanRef plan, planner.BuildPlan());

  QueryResult result;
  result.plan = plan;
  result.plan_text = plan->ToString(query->namer());
  result.qgm_text = query->ToString();
  result.plans_generated = planner.plans_generated();
  for (const OutputColumn& oc : query->root->outputs) {
    result.column_names.push_back(oc.name);
  }

  if (execute) {
    auto start = std::chrono::steady_clock::now();
    ORDOPT_ASSIGN_OR_RETURN(result.rows, ExecutePlan(plan, &result.metrics));
    auto end = std::chrono::steady_clock::now();
    result.elapsed_seconds =
        std::chrono::duration<double>(end - start).count();
  }
  return result;
}

Result<QueryResult> QueryEngine::Explain(const std::string& sql) {
  return Prepare(sql, /*execute=*/false);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql) {
  return Prepare(sql, /*execute=*/true);
}

}  // namespace ordopt
