#include "exec/engine.h"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "common/metrics.h"
#include "common/str_util.h"
#include "exec/analyze.h"
#include "parser/parser.h"
#include "qgm/rewrite.h"

namespace ordopt {

namespace {

/// Engine-assigned query ids for runs whose guard carries none (standalone
/// engines, the shell): a process-wide sequence, distinct from 0 so every
/// query is correlatable. Service-run queries arrive with a ticket id
/// already stamped on the guard and keep it.
int64_t NextQueryId() {
  static std::atomic<int64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The correlation id for this run: the guard's (ticket-assigned, stable
/// across retries) when present, else the next engine-assigned id.
int64_t ResolveQueryId(const QueryGuard* guard) {
  if (guard != nullptr && guard->query_id() != 0) return guard->query_id();
  return NextQueryId();
}

/// Per-query series recorded after every executed run (success or failure
/// — a tripped query's consumption is exactly what an operator wants to
/// see). Names follow the `subsystem.metric[_unit]` rule of DESIGN.md §13.
void RecordEngineMetrics(MetricsRegistry* registry, const QueryResult& result) {
  if (!result.planned_from_cache) {
    registry->GetHistogram("engine.plan_us")
        ->Record(static_cast<int64_t>(result.plan_seconds * 1e6));
  }
  registry->GetHistogram("engine.exec_us")
      ->Record(static_cast<int64_t>(result.elapsed_seconds * 1e6));
  const RuntimeMetrics& m = result.metrics;
  if (m.spill_runs > 0) {
    registry->GetCounter("engine.spill_runs")->Add(m.spill_runs);
    registry->GetCounter("engine.spill_rows")->Add(m.spill_rows);
    registry->GetCounter("engine.spill_bytes")->Add(m.spill_bytes);
  }
  if (m.spill_retries > 0) {
    registry->GetCounter("engine.spill_retries")->Add(m.spill_retries);
  }
  registry->GetHistogram("engine.buffered_rows_peak")
      ->Record(m.rows_buffered_peak);
  registry->GetHistogram("engine.buffered_bytes_peak")
      ->Record(m.bytes_buffered_peak);
}

/// Effective runtime order verification: the config switch, with the
/// ORDOPT_VERIFY_ORDERS environment variable as a default so whole test
/// suites can run checked without touching call sites ("0" disables).
bool EffectiveVerifyOrders(const OptimizerConfig& config) {
  if (config.verify_orders) return true;
  const char* env = std::getenv("ORDOPT_VERIFY_ORDERS");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Trace export destination: the config path, falling back to the
/// ORDOPT_TRACE environment variable.
std::string EffectiveTracePath(const OptimizerConfig& config) {
  if (!config.trace_path.empty()) return config.trace_path;
  const char* env = std::getenv("ORDOPT_TRACE");
  return env != nullptr ? std::string(env) : std::string();
}

/// One exec-phase event per operator (post-order sequence matches
/// op_profile), then the query-level metrics as a nested object; shared by
/// the planned and the cached execution paths.
void EmitExecEvents(TraceCollector* trace, const QueryResult& result,
                    const ColumnNamer& namer) {
  int64_t idx = 0;
  for (const OperatorProfile& p : result.op_profile) {
    TraceEvent& e = trace->Add("exec", "operator");
    e.SetInt("op", idx++);
    e.Set("label", NodeLabel(*p.node, namer));
    e.SetDouble("est_rows", p.node->props.cardinality);
    e.SetInt("rows_out", p.stats.rows_out);
    e.SetInt("next_calls", p.stats.next_calls);
    e.SetInt("open_ns", p.stats.open_ns);
    e.SetInt("next_ns", p.stats.next_ns);
    e.SetInt("rows_scanned", p.stats.rows_scanned);
    e.SetInt("comparisons", p.stats.comparisons);
    e.SetInt("seq_pages", p.stats.seq_pages);
    e.SetInt("random_pages", p.stats.random_pages);
    e.SetInt("index_probes", p.stats.index_probes);
    e.SetInt("spill_runs", p.stats.spill_runs);
    e.SetInt("spill_retries", p.stats.spill_retries);
    e.SetInt("buffered_rows_peak", p.stats.buffered_rows_peak);
  }
  TraceEvent& m = trace->Add("exec", "metrics");
  m.SetRaw("metrics", result.metrics.ToJson());
  m.SetBool("planned_from_cache", result.planned_from_cache);
  m.SetBool("degraded", result.degraded);
}

/// The EXPLAIN ANALYZE service summary line: where the plan came from, the
/// query's correlation id (joins this output to the trace export and the
/// metrics series), and whether the run executed in degraded mode (retry
/// attempts are stamped by the QueryService after completion — the engine
/// cannot know them).
std::string ServiceSummaryLine(const QueryResult& result) {
  std::string line = "service: source=";
  line += result.planned_from_cache ? "plan-cache" : "planner";
  if (result.query_id != 0) {
    line += StrFormat(" query_id=%lld", static_cast<long long>(result.query_id));
  }
  if (result.degraded) line += " degraded=true";
  line += "\n";
  return line;
}

}  // namespace

Result<std::vector<Row>> QueryEngine::ExecutePhase(
    QueryResult* result, QueryGuard* guard,
    std::vector<OperatorProfile>* profile) {
  // Sorts spill under the same row budget the cost model priced; the
  // manager lives inside ExecutePlan, scoped to this query.
  SpillConfig spill_config;
  spill_config.sort_memory_rows = config_.cost_params.sort_memory_rows;
  spill_config.temp_dir = config_.spill_temp_dir;
  spill_config.retry = config_.spill_retry;
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<Row>> rows =
      ExecutePlan(result->plan, &result->metrics, guard, &spill_config,
                  profile, EffectiveVerifyOrders(config_), config_.batch_rows,
                  config_.row_shim_exec, config_.parallel_workers);
  auto end = std::chrono::steady_clock::now();
  result->elapsed_seconds = std::chrono::duration<double>(end - start).count();
  // Keep consumed-vs-limit visible even when the query failed: a
  // Result<QueryResult> error drops the metrics it carried.
  SnapshotMetrics(result->metrics);
  return rows;
}

Result<QueryResult> QueryEngine::Prepare(const std::string& sql, bool execute,
                                         QueryGuard* guard, bool analyze) {
  const int64_t query_id = ResolveQueryId(guard);
  auto plan_start = std::chrono::steady_clock::now();
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelect(sql));
  ORDOPT_ASSIGN_OR_RETURN(std::unique_ptr<Query> query,
                          BindQuery(*stmt, *db_));
  MergeDerivedTables(query.get());

  // Effective observability for this query: the configured level, raised
  // to kFull when EXPLAIN ANALYZE or a trace export path asks for
  // per-operator stats.
  std::string trace_path = EffectiveTracePath(config_);
  TraceLevel trace_level = config_.trace_level;
  if (analyze || !trace_path.empty()) trace_level = TraceLevel::kFull;
  std::shared_ptr<TraceCollector> trace;
  if (trace_level != TraceLevel::kOff) {
    trace = std::make_shared<TraceCollector>(trace_level);
    trace->set_query_id(query_id);
  }

  Planner planner(*query, config_, trace.get());
  ORDOPT_ASSIGN_OR_RETURN(PlanRef plan, planner.BuildPlan());

  QueryResult result;
  result.query_id = query_id;
  result.plan_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - plan_start)
                            .count();
  result.plan = plan;
  result.plan_text = plan->ToString(query->namer());
  result.qgm_text = query->ToString();
  result.plans_generated = planner.plans_generated();
  result.plans_retained = planner.plans_retained();
  result.reduce_cache_hits = planner.reduce_cache_hits();
  result.reduce_cache_misses = planner.reduce_cache_misses();
  // Mirrored into the runtime metrics so ToJson/ToString (and therefore the
  // trace export's exec.metrics event) carry the planner's cache behavior.
  result.metrics.reduce_cache_hits = planner.reduce_cache_hits();
  result.metrics.reduce_cache_misses = planner.reduce_cache_misses();
  result.trace = trace;
  result.degraded = config_.degraded_mode;
  for (const OutputColumn& oc : query->root->outputs) {
    result.column_names.push_back(oc.name);
  }
  // Self-contained namer: the bound column-name map is copied behind a
  // shared_ptr so the renderer outlives the Query (cached plans re-render
  // EXPLAIN ANALYZE long after planning).
  {
    auto names = std::make_shared<
        std::unordered_map<ColumnId, std::string, ColumnIdHash>>(
        query->column_names);
    result.namer = [names](const ColumnId& id) -> std::string {
      auto it = names->find(id);
      return it != names->end() ? it->second : DefaultColumnName(id);
    };
  }
  if (trace != nullptr && config_.degraded_mode) {
    // Degraded-mode admissions are a service-level decision; the event
    // makes them visible in the per-query trace export.
    trace->Add("service", "degraded")
        .SetInt("sort_memory_rows", config_.cost_params.sort_memory_rows);
  }

  if (execute) {
    // Queries run under the engine's configured limits unless the caller
    // supplied a guard of their own.
    QueryGuard config_guard(config_.limits);
    if (guard == nullptr) guard = &config_guard;
    std::vector<OperatorProfile>* profile =
        (trace != nullptr && trace->collect_exec()) ? &result.op_profile
                                                    : nullptr;
    Result<std::vector<Row>> rows = ExecutePhase(&result, guard, profile);
    // Record before the error return so a failed query's consumption
    // still lands in the series (ExecutePhase fills metrics regardless).
    if (config_.metrics != nullptr) {
      RecordEngineMetrics(config_.metrics, result);
    }
    ORDOPT_RETURN_NOT_OK(rows.status());
    result.rows = std::move(rows).value();

    if (trace != nullptr && trace->collect_exec()) {
      EmitExecEvents(trace.get(), result, result.namer);
    }

    if (analyze) {
      result.analyzed_plan_text =
          RenderAnalyzedPlan(plan, result.op_profile, result.namer);
      result.analyzed_plan_text += ServiceSummaryLine(result);
      if (trace != nullptr) {
        std::string decisions = RenderDecisions(*trace);
        if (!decisions.empty()) {
          result.analyzed_plan_text += "decisions:\n" + decisions;
        }
      }
    }
  }

  // Export only after the query itself succeeded: a failed query reports
  // its own error, and WriteJsonLines never leaves a partial file.
  if (trace != nullptr && !trace_path.empty()) {
    ORDOPT_RETURN_NOT_OK(
        trace->WriteJsonLines(trace_path, config_.spill_retry));
  }
  return result;
}

Result<QueryResult> QueryEngine::Explain(const std::string& sql) {
  return Prepare(sql, /*execute=*/false, /*guard=*/nullptr,
                 /*analyze=*/false);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql) {
  return Prepare(sql, /*execute=*/true, /*guard=*/nullptr, /*analyze=*/false);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql,
                                     QueryGuard* guard) {
  return Prepare(sql, /*execute=*/true, guard, /*analyze=*/false);
}

Result<QueryResult> QueryEngine::RunAnalyzed(const std::string& sql) {
  return Prepare(sql, /*execute=*/true, /*guard=*/nullptr, /*analyze=*/true);
}

Result<QueryResult> QueryEngine::RunPrepared(const PreparedPlan& prepared,
                                             QueryGuard* guard) {
  return PreparedImpl(prepared, guard, /*analyze=*/false);
}

Result<QueryResult> QueryEngine::RunPreparedAnalyzed(
    const PreparedPlan& prepared, QueryGuard* guard) {
  return PreparedImpl(prepared, guard, /*analyze=*/true);
}

Result<QueryResult> QueryEngine::PreparedImpl(const PreparedPlan& prepared,
                                              QueryGuard* guard,
                                              bool analyze) {
  if (prepared.plan == nullptr) {
    return Status::InvalidArgument("RunPrepared: prepared plan is null");
  }
  const int64_t query_id = ResolveQueryId(guard);
  QueryResult result;
  result.query_id = query_id;
  result.plan = prepared.plan;
  result.plan_text = prepared.plan_text;
  result.qgm_text = prepared.qgm_text;
  result.column_names = prepared.column_names;
  result.namer = prepared.namer;
  result.planned_from_cache = true;
  result.degraded = config_.degraded_mode;

  // Cached-execution observability mirrors Prepare: a configured level or
  // export path (or EXPLAIN ANALYZE) traces this run; with everything off
  // the hot path allocates no collector. There are no optimizer events to
  // record — the plan.cached event says why.
  std::string trace_path = EffectiveTracePath(config_);
  TraceLevel trace_level = config_.trace_level;
  if (analyze || !trace_path.empty()) trace_level = TraceLevel::kFull;
  std::shared_ptr<TraceCollector> trace;
  if (trace_level != TraceLevel::kOff) {
    trace = std::make_shared<TraceCollector>(trace_level);
    trace->set_query_id(query_id);
    TraceEvent& e = trace->Add("service", "plan.cached");
    e.SetBool("planned_from_cache", true);
    if (config_.degraded_mode) e.SetBool("degraded", true);
    result.trace = trace;
    if (config_.degraded_mode) {
      trace->Add("service", "degraded")
          .SetInt("sort_memory_rows", config_.cost_params.sort_memory_rows);
    }
  }

  QueryGuard config_guard(config_.limits);
  if (guard == nullptr) guard = &config_guard;
  std::vector<OperatorProfile>* profile =
      (trace != nullptr && trace->collect_exec()) ? &result.op_profile
                                                  : nullptr;
  Result<std::vector<Row>> rows = ExecutePhase(&result, guard, profile);
  if (config_.metrics != nullptr) {
    RecordEngineMetrics(config_.metrics, result);
  }
  ORDOPT_RETURN_NOT_OK(rows.status());
  result.rows = std::move(rows).value();

  if (trace != nullptr && trace->collect_exec()) {
    EmitExecEvents(trace.get(), result, result.namer);
  }
  if (analyze) {
    result.analyzed_plan_text =
        RenderAnalyzedPlan(result.plan, result.op_profile, result.namer);
    result.analyzed_plan_text += ServiceSummaryLine(result);
  }
  if (trace != nullptr && !trace_path.empty()) {
    ORDOPT_RETURN_NOT_OK(
        trace->WriteJsonLines(trace_path, config_.spill_retry));
  }
  return result;
}

}  // namespace ordopt
