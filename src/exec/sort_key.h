#ifndef ORDOPT_EXEC_SORT_KEY_H_
#define ORDOPT_EXEC_SORT_KEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "exec/row_batch.h"

namespace ordopt {

/// Normalized sort keys (Graefe): each sort-key column is encoded into a
/// byte string such that plain memcmp over the concatenated encodings
/// reproduces the engine's Value::Compare total order, including direction
/// and NULL placement. SortOp encodes each row's key once and sorts an index
/// vector with a branch-light memcmp comparator; OrderCheckOp compares
/// adjacent keys (within and across batches) the same way.
///
/// Per-column layout (ascending):
///   NULL    -> 0x00
///   numeric -> 0x01, 8-byte order-preserving double, 8-byte int64 residual
///              (int64/date are encoded as their double value plus the exact
///              integer remainder lost to rounding, so int-vs-int compares
///              exactly while int 3 and double 3.0 encode identically —
///              matching Value::Compare's mixed-numeric semantics)
///   string  -> 0x02, bytes with 0x00 escaped as 0x00 0x01, then 0x00 0x00
///
/// Descending columns invert every byte of the column's ascending encoding,
/// which flips the memcmp order of that column only; a NULL (0x00 -> 0xFF)
/// therefore sorts last under DESC, exactly as the row comparator's
/// negated Compare does.
///
/// Columns are self-delimiting (fixed 17 bytes for numerics, terminated for
/// strings, 1 byte for NULL), so multi-column keys are plain concatenations.
///
/// Caveat (documented, unreachable through the planner): a column mixing
/// string values with dates, or int64/double values beyond 2^53 mixed in one
/// column, can order differently from Value::Compare's cross-kind tie rules.
/// Engine columns are uniformly typed (plus NULLs), where the encoding is
/// exact; test_row_batch asserts the equivalence per type class.

/// Appends the normalized encoding of `v` to `out`.
void AppendNormalizedKeyColumn(const Value& v, bool descending,
                               std::string* out);

/// Appends the full key for `row`: positions[i] names the row index of the
/// i-th sort column, descending[i] its direction.
void AppendNormalizedKey(const Row& row, const std::vector<int>& positions,
                         const std::vector<bool>& descending,
                         std::string* out);

/// Batch variant: encodes the key of row `row` of `batch` without
/// materializing a Row.
void AppendNormalizedKey(const RowBatch& batch, int64_t row,
                         const std::vector<int>& positions,
                         const std::vector<bool>& descending,
                         std::string* out);

}  // namespace ordopt

#endif  // ORDOPT_EXEC_SORT_KEY_H_
