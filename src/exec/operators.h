#ifndef ORDOPT_EXEC_OPERATORS_H_
#define ORDOPT_EXEC_OPERATORS_H_

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/expr_eval.h"
#include "exec/runtime_metrics.h"
#include "exec/query_guard.h"
#include "exec/row_batch.h"
#include "exec/spill.h"
#include "optimizer/plan.h"
#include "storage/table.h"

namespace ordopt {

/// Volcano-style iterator over column-oriented batches. Each operator
/// declares its row layout (the ColumnId at each position) so parents can
/// bind expressions by identity.
///
/// Open()/NextBatch() are non-virtual wrappers around the
/// OpenImpl()/NextBatchImpl() hooks subclasses implement. When
/// ExecContext::collect_op_stats is set (EXPLAIN ANALYZE / full tracing),
/// the wrappers time each call and attribute the query-level RuntimeMetrics
/// delta across it to this operator's OperatorStats. The delta spans the
/// whole call — including nested child pulls — so stats are inclusive of
/// the subtree and a parent's self cost is its value minus the sum over its
/// children. When stats collection is off the wrappers cost one branch.
/// At batch granularity next_calls counts NextBatch invocations and
/// rows_out accumulates emitted batch sizes.
///
/// Next(Row*) survives as a row-compat shim draining an internal batch
/// cursor, so row-at-a-time consumers (operators whose inner logic is
/// per-row, tests, the oracles) work unchanged against batch producers.
class Operator {
 public:
  Operator() = default;
  explicit Operator(ExecContext ctx) : ctx_(ctx) {}
  virtual ~Operator() = default;

  void Open() {
    shim_pos_ = 0;
    shim_batch_.Reset(0, 1);
    if (!ctx_.collect_op_stats) {
      OpenImpl();
      return;
    }
    MetricsSnapshot before = Snapshot();
    auto start = std::chrono::steady_clock::now();
    OpenImpl();
    stats_.open_ns += ElapsedNs(start);
    AccumulateDelta(before);
  }

  /// Produces the next batch of rows; false at end of stream (the batch is
  /// left empty). Producers Reset `out` to their own width, so a scratch
  /// batch can be reused across calls and across operators.
  bool NextBatch(RowBatch* out) {
    if (!ctx_.collect_op_stats) return NextBatchImpl(out);
    MetricsSnapshot before = Snapshot();
    auto start = std::chrono::steady_clock::now();
    bool produced = NextBatchImpl(out);
    stats_.next_ns += ElapsedNs(start);
    AccumulateDelta(before);
    ++stats_.next_calls;
    if (produced) stats_.rows_out += out->size();
    return produced;
  }

  /// Row-compat shim: drains an internal batch cursor one row at a time,
  /// pulling a fresh batch (through the timed NextBatch wrapper, so stats
  /// accrue there) whenever the cursor is exhausted. Each row is consumed
  /// exactly once, so its values are moved out rather than copied.
  bool Next(Row* out) {
    while (true) {
      if (shim_pos_ < shim_batch_.size()) {
        shim_batch_.TakeRowInto(shim_pos_++, out);
        return true;
      }
      shim_pos_ = 0;
      if (!NextBatch(&shim_batch_)) {
        shim_batch_.Reset(0, 1);
        return false;
      }
    }
  }

  virtual void Close() {}

  const std::vector<ColumnId>& layout() const { return layout_; }
  const OperatorStats& stats() const { return stats_; }

  /// Folds another operator's stats into this one. Used by ExchangeOp at
  /// Close: workers 1..N-1 ran identical copies of the chain, and their
  /// per-operator stats aggregate into worker 0's registered operators so
  /// EXPLAIN ANALYZE reports the chain's total work.
  void AccumulateStats(const OperatorStats& other) { stats_.MergeFrom(other); }

 protected:
  virtual void OpenImpl() = 0;
  virtual bool NextBatchImpl(RowBatch* out) = 0;

  /// Rows per emitted batch for this query (ExecContext::batch_rows,
  /// clamped to at least 1).
  int64_t BatchCapacity() const {
    return ctx_.batch_rows > 0 ? ctx_.batch_rows : 1;
  }

  /// Adapter for operators whose inner logic is still row-at-a-time:
  /// fills `out` by repeatedly invoking `produce_row` (the old per-row
  /// NextImpl body) until the batch is full or the producer ends. The
  /// producer must tolerate calls after end-of-stream, as all Volcano
  /// NextImpl bodies here do.
  template <typename Fn>
  bool FillBatch(RowBatch* out, Fn&& produce_row) {
    out->Reset(layout_.size(), BatchCapacity());
    Row row;
    while (!out->full()) {
      if (!ctx_.GuardOk()) break;
      if (!produce_row(&row)) break;
      out->AppendRow(std::move(row));
      row.clear();
    }
    return !out->empty();
  }

  ExecContext ctx_;
  std::vector<ColumnId> layout_;
  OperatorStats stats_;

 private:
  /// The RuntimeMetrics counters attributed per-operator; rows_produced /
  /// sorts / buffered peaks are tracked elsewhere (rows_out counts this
  /// operator's own emissions, buffered_rows_peak via BufferAccount).
  struct MetricsSnapshot {
    int64_t rows_scanned = 0;
    int64_t comparisons = 0;
    int64_t seq_pages = 0;
    int64_t random_pages = 0;
    int64_t index_probes = 0;
    int64_t spill_runs = 0;
    int64_t spill_retries = 0;
  };

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot s;
    if (ctx_.metrics != nullptr) {
      s.rows_scanned = ctx_.metrics->rows_scanned;
      s.comparisons = ctx_.metrics->comparisons;
      s.seq_pages = ctx_.metrics->seq_pages;
      s.random_pages = ctx_.metrics->random_pages;
      s.index_probes = ctx_.metrics->index_probes;
      s.spill_runs = ctx_.metrics->spill_runs;
      s.spill_retries = ctx_.metrics->spill_retries;
    }
    return s;
  }

  void AccumulateDelta(const MetricsSnapshot& before) {
    if (ctx_.metrics == nullptr) return;
    stats_.rows_scanned += ctx_.metrics->rows_scanned - before.rows_scanned;
    stats_.comparisons += ctx_.metrics->comparisons - before.comparisons;
    stats_.seq_pages += ctx_.metrics->seq_pages - before.seq_pages;
    stats_.random_pages += ctx_.metrics->random_pages - before.random_pages;
    stats_.index_probes += ctx_.metrics->index_probes - before.index_probes;
    stats_.spill_runs += ctx_.metrics->spill_runs - before.spill_runs;
    stats_.spill_retries += ctx_.metrics->spill_retries - before.spill_retries;
  }

  static int64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  }

  // Row-compat shim state (see Next(Row*)).
  RowBatch shim_batch_;
  int64_t shim_pos_ = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Heap scan over a base table (sequential pages). When `required_columns`
/// is given, the scan emits only the table columns in that set (build-time
/// column pruning): pages and guard accounting still cover every row, but
/// unreferenced cells are never copied out of the heap.
///
/// Inside an exchange worker (`morsel_driver` with a MorselScheduler in the
/// context) the scan claims rid ranges from the shared scheduler instead of
/// walking [0, row_count); batches never cross a morsel boundary. With
/// `emit_provenance` the scan appends the hidden provenance column — the
/// rid, i.e. the serial emission ordinal — after the pruned table columns.
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table& table, int table_id, ExecContext ctx,
              const ColumnSet* required_columns = nullptr,
              bool morsel_driver = false, bool emit_provenance = false);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;

 private:
  const Table& table_;
  PageTracker pages_;
  /// Table-column ordinal backing each emitted column (identity without
  /// pruning).
  std::vector<int32_t> src_ordinals_;
  bool morsel_driver_ = false;
  bool emit_provenance_ = false;
  int64_t rid_ = 0;
  int64_t limit_ = 0;  ///< end of the current morsel (serial: row_count)
};

/// Ordered index scan, optionally range-bounded by equality constants on a
/// key prefix plus at most one comparison on the next key column, and
/// optionally reversed (yields the reversed order, full scans only).
///
/// Inside an exchange worker (`morsel_driver`) the qualifying rids are
/// materialized once in index-walk order into the MorselScheduler's shared
/// vector (first worker walks, the rest reuse), and workers claim position
/// ranges of that vector — row materialization is what parallelizes, and
/// the provenance ordinal (the walk position) is the position claimed.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const Table& table, int table_id, int index_ordinal,
              bool reverse, std::vector<Predicate> range_predicates,
              ExecContext ctx, const ColumnSet* required_columns = nullptr,
              bool morsel_driver = false, bool emit_provenance = false);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;

 private:
  bool EntryQualifies() const;
  /// Walks the cursor to completion, appending each qualifying rid. The
  /// walk accounts nothing: pages, rows_scanned, and the guard are charged
  /// by whichever path materializes the rows.
  void CollectRids(std::vector<int64_t>* rids);

  const Table& table_;
  int index_ordinal_;
  bool reverse_;
  std::vector<Predicate> range_predicates_;
  PageTracker pages_;
  /// Table-column ordinal backing each emitted column (see TableScanOp).
  std::vector<int32_t> src_ordinals_;
  BTreeIndex::Cursor cursor_;
  // Range bounds in index-key positions.
  IndexKey eq_prefix_;
  int cmp_position_ = -1;
  BinOp cmp_op_ = BinOp::kEq;
  Value cmp_bound_;
  bool done_ = false;
  bool morsel_driver_ = false;
  bool emit_provenance_ = false;
  int64_t ordinal_ = 0;  ///< serial mode: walk ordinal of the next row
  /// Morsel mode: shared qualifying rids plus the claimed [pos_, limit_).
  const std::vector<int64_t>* rids_ = nullptr;
  int64_t pos_ = 0;
  int64_t limit_ = 0;
  std::vector<int64_t> scratch_rids_;  ///< rids gathered for one batch
};

/// Predicate application.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<Predicate> predicates,
           ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<Predicate> predicates_;
  std::unique_ptr<ExprEvaluator> eval_;
  RowBatch input_;       ///< scratch batch pulled from the child
  SelectionVector sel_;  ///< surviving row indices within input_
};

/// ORDER BY via bounded-memory external-merge sort. Rows are buffered up
/// to the spill budget (SpillConfig::sort_memory_rows); each full buffer
/// is stable-sorted and written as a run file through the context's
/// SpillManager, and Next() k-way merges the runs with the in-memory
/// tail. Ties resolve to the earliest run in input order (the tail last),
/// so the merge is exactly as stable as the in-memory sort. Without a
/// SpillManager — or with the budget disabled — this degenerates to the
/// classic full in-memory sort.
class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, OrderSpec spec, ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  /// Resolves the OrderSpec against the child layout into
  /// positions_/descending_; poisons and returns false on a missing
  /// column.
  bool ResolveComparator();
  /// Strict-weak ordering under the spec; counts comparisons. Used by the
  /// k-way merge over run heads; the buffer sort itself goes through
  /// normalized keys (see SortBuffer).
  bool RowLess(const Row& a, const Row& b) const;
  /// Stable-sorts rows_ under the spec: encodes each row's sort key into a
  /// memcmp-comparable normalized byte string (Graefe), sorts an index
  /// vector with a branch-light memcmp comparator, then permutes rows_.
  void SortBuffer();
  /// One merge step of the spilled-run k-way merge (the per-row inner
  /// logic behind NextBatchImpl when merging_).
  bool MergeNext(Row* out);
  /// Stable-sorts the current buffer and writes it out as one run;
  /// poisons and returns false on spill failure.
  bool SpillCurrentRun();
  /// Parallel run generation (ExecContext::parallel_workers > 1): hands the
  /// current buffer to a worker thread that sorts and spills it through a
  /// private SpillManager while this thread keeps collecting input — §5.2's
  /// overlap of run formation with input production. The job's run lands in
  /// its reserved runs_ slot at join, keeping run order (and thus merge
  /// tie-breaking) identical to the serial spill order. Bounded: at most
  /// parallel_workers jobs in flight, then the oldest is joined.
  bool SpillRunAsync();
  /// Joins the oldest unjoined job, installs its run, merges its metrics,
  /// releases its buffer charge; poisons on job failure.
  void JoinOneJob();
  void JoinAllJobs();
  /// Winds the operator down after a mid-sort failure: drops buffered
  /// rows and removes every run file.
  void Abandon();
  void ReleaseRuns();

  /// One in-flight asynchronous run-formation job.
  struct RunJob {
    std::thread thread;
    std::vector<Row> rows;
    std::unique_ptr<RuntimeMetrics> metrics;  ///< private to the job thread
    std::unique_ptr<SpillManager> spill;
    std::unique_ptr<SpillRun> run;
    Status status;
    size_t slot = 0;  ///< reserved index in runs_
    int64_t charged_rows = 0;
    int64_t charged_bytes = 0;
  };

  OperatorPtr child_;
  OrderSpec spec_;
  BufferAccount buffer_;
  std::vector<int> positions_;
  std::vector<bool> descending_;
  std::vector<Row> rows_;  ///< in-memory rows (the merge's final run)
  size_t pos_ = 0;
  std::vector<std::unique_ptr<SpillRun>> runs_;  ///< spilled, input order
  std::vector<std::unique_ptr<RunJob>> jobs_;    ///< in-flight, oldest first
  size_t jobs_joined_ = 0;
  std::vector<Row> heads_;       ///< current head row per run
  std::vector<bool> head_valid_;
  bool merging_ = false;
};

/// Merge join of two streams sorted on the join keys (ascending). Handles
/// many-to-many groups by buffering the inner group; NULL keys never match.
class MergeJoinOp : public Operator {
 public:
  MergeJoinOp(OperatorPtr outer, OperatorPtr inner,
              std::vector<std::pair<ColumnId, ColumnId>> pairs,
              ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);
  int CompareKeys(const Row& outer_row, const Row& inner_row) const;
  bool OuterKeyEqualsGroup(const Row& outer_row) const;
  bool FetchOuter();
  void LoadInnerGroup();

  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<int> outer_positions_;
  std::vector<int> inner_positions_;
  BufferAccount group_buffer_;

  Row outer_row_;
  bool outer_valid_ = false;
  Row inner_row_;
  bool inner_valid_ = false;
  std::vector<Row> group_;  ///< buffered inner rows with equal key
  std::vector<Value> group_key_;
  bool group_valid_ = false;
  size_t group_pos_ = 0;
};

/// Index nested-loop join: for each outer row, probe a base-table index on
/// the matched key prefix and emit concatenated matches. When the outer
/// stream is sorted on the probe key, page accesses arrive in order and the
/// tracker records them as (mostly) sequential — the paper's ordered
/// nested-loop join.
class IndexNLJoinOp : public Operator {
 public:
  /// `required_columns`, when given, prunes the inner-table half of the
  /// output layout to the columns ancestors reference; probing reads the
  /// index key, so the join itself needs none of the inner cells.
  IndexNLJoinOp(OperatorPtr outer, const Table& table, int table_id,
                int index_ordinal,
                std::vector<std::pair<ColumnId, ColumnId>> pairs,
                ExecContext ctx, const ColumnSet* required_columns = nullptr);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  /// Outcome of advancing the probe cursor within the current outer batch.
  enum class ProbeResult {
    kMatch,      ///< cursor positioned on a matching index entry
    kNeedBatch,  ///< current outer batch consumed; caller pulls the next
    kEnd,        ///< stream over (fault injected or guard poisoned)
  };
  ProbeResult Probe();     // advances within outer_batch_ and seeks
  bool RowProbe();         // legacy row-shim variant of Probe
  bool RowProduce(Row* out);  // legacy row-shim per-row production

  OperatorPtr outer_;
  const Table& table_;
  int index_ordinal_;
  std::vector<std::pair<ColumnId, ColumnId>> pairs_;
  std::vector<int> outer_positions_;
  /// Inner-table column ordinals emitted after the outer columns (all of
  /// them without pruning).
  std::vector<int32_t> inner_ordinals_;
  PageTracker pages_;

  RowBatch outer_batch_;       ///< current outer batch, consumed in place
  int64_t outer_pos_ = -1;     ///< cursor into outer_batch_
  Row row_outer_;              ///< current outer row (row-shim mode only)
  IndexKey probe_key_;
  BTreeIndex::Cursor cursor_;
  bool probing_ = false;
  /// Gathered (outer row, inner rid) match pairs for the batch being
  /// built; materialized column-at-a-time after the gather phase.
  std::vector<int32_t> match_outer_;
  std::vector<int64_t> match_rid_;
};

/// Naive nested-loop join (inner materialized once, rescanned per outer
/// row); used for cartesian products and non-equality joins.
class NaiveNLJoinOp : public Operator {
 public:
  NaiveNLJoinOp(OperatorPtr outer, OperatorPtr inner,
                ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  OperatorPtr outer_;
  OperatorPtr inner_;
  BufferAccount buffer_;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;
};

/// Hash join: builds on the inner, probes with the outer (outer order NOT
/// preserved by contract, although probing happens in outer order).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr outer, OperatorPtr inner,
             std::vector<std::pair<ColumnId, ColumnId>> pairs,
             ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const;
  };
  struct KeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };

  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<int> outer_positions_;
  std::vector<int> inner_positions_;
  BufferAccount buffer_;
  std::unordered_map<std::vector<Value>, std::vector<Row>, KeyHash, KeyEq>
      hash_table_;
  Row outer_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// LEFT OUTER merge join: both inputs sorted ascending on the ON-equality
/// keys; unmatched (or NULL-keyed) outer rows emit once, null-padded on
/// the inner width. Preserves outer order.
class MergeLeftJoinOp : public Operator {
 public:
  MergeLeftJoinOp(OperatorPtr outer, OperatorPtr inner,
                  std::vector<std::pair<ColumnId, ColumnId>> pairs,
                  ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);
  bool KeyEqualsGroup(const Row& outer_row) const;
  bool OuterKeyHasNull() const;
  void AdvanceOuter();
  void LoadGroupFor(const Row& outer_row);
  Row Padded() const;

  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<int> outer_positions_;
  std::vector<int> inner_positions_;
  size_t inner_width_;
  BufferAccount group_buffer_;

  Row outer_row_;
  bool outer_valid_ = false;
  bool started_ = false;  ///< matching state initialized for current outer
  bool match_ = false;
  Row inner_row_;
  bool inner_valid_ = false;
  std::vector<Row> group_;
  std::vector<Value> group_key_;
  bool group_valid_ = false;
  size_t group_pos_ = 0;
};

/// LEFT OUTER hash join: build inner, probe outer, pad on miss.
class HashLeftJoinOp : public Operator {
 public:
  HashLeftJoinOp(OperatorPtr outer, OperatorPtr inner,
                 std::vector<std::pair<ColumnId, ColumnId>> pairs,
                 ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<int> outer_positions_;
  std::vector<int> inner_positions_;
  size_t inner_width_;
  BufferAccount buffer_;
  std::map<std::vector<Value>, std::vector<Row>> hash_table_;
  Row outer_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// LEFT OUTER nested-loop join with an arbitrary ON condition: the inner
/// is materialized once; per outer row every inner row is tested against
/// the ON predicates (evaluated over the concatenated row); unmatched
/// outers emit null-padded. Preserves outer order.
class NaiveLeftJoinOp : public Operator {
 public:
  NaiveLeftJoinOp(OperatorPtr outer, OperatorPtr inner,
                  std::vector<Predicate> on_predicates,
                  ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  OperatorPtr outer_;
  OperatorPtr inner_;
  std::vector<Predicate> on_predicates_;
  std::unique_ptr<ExprEvaluator> eval_;
  BufferAccount buffer_;
  std::vector<Row> inner_rows_;
  Row outer_row_;
  bool outer_valid_ = false;
  bool matched_current_ = false;
  size_t inner_pos_ = 0;
};

/// Streaming aggregation over an input whose order makes groups adjacent
/// (also used above an explicit Sort). Output layout: group columns then
/// aggregate outputs. With no group columns, emits exactly one row (the
/// SQL global-aggregate contract), even for empty input.
class StreamGroupByOp : public Operator {
 public:
  StreamGroupByOp(OperatorPtr child, std::vector<ColumnId> group_columns,
                  std::vector<AggregateSpec> aggregates, ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  struct AggState;

  bool ProduceRow(Row* out);

  void InitStates();
  void Accumulate(const Row& row);
  Row EmitGroup();

  OperatorPtr child_;
  std::vector<ColumnId> group_columns_;
  std::vector<AggregateSpec> aggregates_;
  std::vector<int> group_positions_;
  std::unique_ptr<ExprEvaluator> eval_;
  /// Charges the DISTINCT-aggregate value sets (the one place this
  /// streaming operator buffers unboundedly) against the guard.
  BufferAccount distinct_buffer_;

  std::vector<Value> current_key_;
  bool group_open_ = false;
  Row pending_row_;
  bool pending_valid_ = false;
  bool done_ = false;
  bool emitted_global_ = false;

  struct State {
    double sum_d = 0.0;
    int64_t sum_i = 0;
    bool sum_is_int = true;
    bool saw_value = false;
    int64_t count = 0;
    Value min_v;
    Value max_v;
    std::map<std::vector<Value>, bool> distinct_values;
  };
  std::vector<State> states_;
};

/// Hash aggregation (no order in, no order out).
class HashGroupByOp : public Operator {
 public:
  HashGroupByOp(OperatorPtr child, std::vector<ColumnId> group_columns,
                std::vector<AggregateSpec> aggregates, ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<ColumnId> group_columns_;
  std::vector<AggregateSpec> aggregates_;
  BufferAccount buffer_;          ///< materialized input buckets
  BufferAccount results_buffer_;  ///< aggregated result rows
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Duplicate elimination on a column subset for inputs where duplicates are
/// adjacent (sorted or grouped); preserves order.
class StreamDistinctOp : public Operator {
 public:
  StreamDistinctOp(OperatorPtr child, ColumnSet distinct_columns,
                   ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  OperatorPtr child_;
  ColumnSet distinct_columns_;
  std::vector<int> positions_;
  std::vector<Value> last_key_;
  bool has_last_ = false;
};

/// Hash-based duplicate elimination (destroys order).
class HashDistinctOp : public Operator {
 public:
  HashDistinctOp(OperatorPtr child, ColumnSet distinct_columns,
                 ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);

  OperatorPtr child_;
  ColumnSet distinct_columns_;
  std::vector<int> positions_;
  BufferAccount buffer_;
  std::map<std::vector<Value>, bool> seen_;
};

/// Concatenates branch streams. Columns are positional: every child's row
/// has the same width; the operator's layout carries the union's fresh
/// output ColumnIds.
class UnionAllOp : public Operator {
 public:
  UnionAllOp(std::vector<OperatorPtr> children, std::vector<ColumnId> layout,
             ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

/// K-way merge of branch streams, each sorted ascending on all columns
/// (position-major); emits rows in that global order, enabling streaming
/// duplicate elimination for UNION and satisfying an ORDER BY for free.
class MergeUnionOp : public Operator {
 public:
  MergeUnionOp(std::vector<OperatorPtr> children,
               std::vector<ColumnId> layout, ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  bool ProduceRow(Row* out);
  int CompareRows(const Row& a, const Row& b) const;

  std::vector<OperatorPtr> children_;
  std::vector<Row> heads_;
  std::vector<bool> valid_;
};

/// Bounded-heap Top-N: keeps only the `limit` smallest rows under the
/// order specification while consuming the child, then emits them in
/// order. O(n log k) comparisons and O(k) memory instead of a full sort —
/// the classic ORDER BY + LIMIT fusion.
class TopNOp : public Operator {
 public:
  TopNOp(OperatorPtr child, OrderSpec spec, int64_t limit, ExecContext ctx);
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  OrderSpec spec_;
  int64_t limit_;
  BufferAccount buffer_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Emits at most `limit` rows, then ends the stream.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit, ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

/// Final projection: evaluates the output expressions.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<OutputColumn> projections,
            ExecContext ctx = ExecContext());
  void OpenImpl() override;
  bool NextBatchImpl(RowBatch* out) override;
  void Close() override;

 private:
  OperatorPtr child_;
  std::vector<OutputColumn> projections_;
  std::unique_ptr<ExprEvaluator> eval_;
  RowBatch input_;  ///< scratch batch pulled from the child
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_OPERATORS_H_
