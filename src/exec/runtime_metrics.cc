#include "exec/runtime_metrics.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

void RuntimeMetrics::MergeFrom(const RuntimeMetrics& worker) {
  rows_produced += worker.rows_produced;
  rows_scanned += worker.rows_scanned;
  comparisons += worker.comparisons;
  seq_pages += worker.seq_pages;
  random_pages += worker.random_pages;
  index_probes += worker.index_probes;
  sorts_performed += worker.sorts_performed;
  rows_sorted += worker.rows_sorted;
  rows_buffered_peak = std::max(rows_buffered_peak, worker.rows_buffered_peak);
  bytes_buffered_peak =
      std::max(bytes_buffered_peak, worker.bytes_buffered_peak);
  spill_runs += worker.spill_runs;
  spill_rows += worker.spill_rows;
  spill_bytes += worker.spill_bytes;
  spill_retries += worker.spill_retries;
  parallel_workers = std::max(parallel_workers, worker.parallel_workers);
  exchange_batches += worker.exchange_batches;
  worker_busy_ns_max = std::max(worker_busy_ns_max, worker.worker_busy_ns_max);
  worker_busy_ns_total += worker.worker_busy_ns_total;
}

std::string RuntimeMetrics::ToString() const {
  return StrFormat(
      "rows=%lld scanned=%lld cmp=%lld seq_pages=%lld rand_pages=%lld "
      "probes=%lld sorts=%lld rows_sorted=%lld buf_rows_peak=%lld "
      "buf_bytes_peak=%lld spill_runs=%lld spill_rows=%lld "
      "spill_bytes=%lld spill_retries=%lld reduce_hits=%lld "
      "reduce_misses=%lld workers=%lld exch_batches=%lld "
      "worker_busy_max=%.3fs worker_busy_total=%.3fs "
      "sim_io=%.3fs sim_cpu=%.3fs",
      static_cast<long long>(rows_produced),
      static_cast<long long>(rows_scanned),
      static_cast<long long>(comparisons),
      static_cast<long long>(seq_pages),
      static_cast<long long>(random_pages),
      static_cast<long long>(index_probes),
      static_cast<long long>(sorts_performed),
      static_cast<long long>(rows_sorted),
      static_cast<long long>(rows_buffered_peak),
      static_cast<long long>(bytes_buffered_peak),
      static_cast<long long>(spill_runs), static_cast<long long>(spill_rows),
      static_cast<long long>(spill_bytes),
      static_cast<long long>(spill_retries),
      static_cast<long long>(reduce_cache_hits),
      static_cast<long long>(reduce_cache_misses),
      static_cast<long long>(parallel_workers),
      static_cast<long long>(exchange_batches),
      static_cast<double>(worker_busy_ns_max) / 1e9,
      static_cast<double>(worker_busy_ns_total) / 1e9, SimulatedIoSeconds(),
      SimulatedCpuSeconds());
}

std::string RuntimeMetrics::ToJson() const {
  return StrFormat(
      "{\"rows_produced\":%lld,\"rows_scanned\":%lld,\"comparisons\":%lld,"
      "\"seq_pages\":%lld,\"random_pages\":%lld,\"index_probes\":%lld,"
      "\"sorts_performed\":%lld,\"rows_sorted\":%lld,"
      "\"rows_buffered_peak\":%lld,\"bytes_buffered_peak\":%lld,"
      "\"spill_runs\":%lld,\"spill_rows\":%lld,\"spill_bytes\":%lld,"
      "\"spill_retries\":%lld,\"reduce_cache_hits\":%lld,"
      "\"reduce_cache_misses\":%lld,\"parallel_workers\":%lld,"
      "\"exchange_batches\":%lld,\"worker_busy_ns_max\":%lld,"
      "\"worker_busy_ns_total\":%lld,\"sim_io_seconds\":%.6g,"
      "\"sim_cpu_seconds\":%.6g,\"sim_elapsed_seconds\":%.6g}",
      static_cast<long long>(rows_produced),
      static_cast<long long>(rows_scanned),
      static_cast<long long>(comparisons),
      static_cast<long long>(seq_pages),
      static_cast<long long>(random_pages),
      static_cast<long long>(index_probes),
      static_cast<long long>(sorts_performed),
      static_cast<long long>(rows_sorted),
      static_cast<long long>(rows_buffered_peak),
      static_cast<long long>(bytes_buffered_peak),
      static_cast<long long>(spill_runs), static_cast<long long>(spill_rows),
      static_cast<long long>(spill_bytes),
      static_cast<long long>(spill_retries),
      static_cast<long long>(reduce_cache_hits),
      static_cast<long long>(reduce_cache_misses),
      static_cast<long long>(parallel_workers),
      static_cast<long long>(exchange_batches),
      static_cast<long long>(worker_busy_ns_max),
      static_cast<long long>(worker_busy_ns_total), SimulatedIoSeconds(),
      SimulatedCpuSeconds(), SimulatedElapsedSeconds());
}

}  // namespace ordopt
