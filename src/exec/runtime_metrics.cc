#include "exec/runtime_metrics.h"

#include "common/str_util.h"

namespace ordopt {

std::string RuntimeMetrics::ToString() const {
  return StrFormat(
      "rows=%lld scanned=%lld cmp=%lld seq_pages=%lld rand_pages=%lld "
      "probes=%lld sorts=%lld rows_sorted=%lld buf_rows_peak=%lld "
      "buf_bytes_peak=%lld spill_runs=%lld spill_rows=%lld "
      "spill_bytes=%lld spill_retries=%lld reduce_hits=%lld "
      "reduce_misses=%lld sim_io=%.3fs sim_cpu=%.3fs",
      static_cast<long long>(rows_produced),
      static_cast<long long>(rows_scanned),
      static_cast<long long>(comparisons),
      static_cast<long long>(seq_pages),
      static_cast<long long>(random_pages),
      static_cast<long long>(index_probes),
      static_cast<long long>(sorts_performed),
      static_cast<long long>(rows_sorted),
      static_cast<long long>(rows_buffered_peak),
      static_cast<long long>(bytes_buffered_peak),
      static_cast<long long>(spill_runs), static_cast<long long>(spill_rows),
      static_cast<long long>(spill_bytes),
      static_cast<long long>(spill_retries),
      static_cast<long long>(reduce_cache_hits),
      static_cast<long long>(reduce_cache_misses), SimulatedIoSeconds(),
      SimulatedCpuSeconds());
}

std::string RuntimeMetrics::ToJson() const {
  return StrFormat(
      "{\"rows_produced\":%lld,\"rows_scanned\":%lld,\"comparisons\":%lld,"
      "\"seq_pages\":%lld,\"random_pages\":%lld,\"index_probes\":%lld,"
      "\"sorts_performed\":%lld,\"rows_sorted\":%lld,"
      "\"rows_buffered_peak\":%lld,\"bytes_buffered_peak\":%lld,"
      "\"spill_runs\":%lld,\"spill_rows\":%lld,\"spill_bytes\":%lld,"
      "\"spill_retries\":%lld,\"reduce_cache_hits\":%lld,"
      "\"reduce_cache_misses\":%lld,\"sim_io_seconds\":%.6g,"
      "\"sim_cpu_seconds\":%.6g,\"sim_elapsed_seconds\":%.6g}",
      static_cast<long long>(rows_produced),
      static_cast<long long>(rows_scanned),
      static_cast<long long>(comparisons),
      static_cast<long long>(seq_pages),
      static_cast<long long>(random_pages),
      static_cast<long long>(index_probes),
      static_cast<long long>(sorts_performed),
      static_cast<long long>(rows_sorted),
      static_cast<long long>(rows_buffered_peak),
      static_cast<long long>(bytes_buffered_peak),
      static_cast<long long>(spill_runs), static_cast<long long>(spill_rows),
      static_cast<long long>(spill_bytes),
      static_cast<long long>(spill_retries),
      static_cast<long long>(reduce_cache_hits),
      static_cast<long long>(reduce_cache_misses), SimulatedIoSeconds(),
      SimulatedCpuSeconds(), SimulatedElapsedSeconds());
}

}  // namespace ordopt
