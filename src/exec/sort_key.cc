#include "exec/sort_key.h"

#include <cstring>
#include <limits>

namespace ordopt {

namespace {

constexpr uint64_t kSignBit = 0x8000000000000000ULL;

// Maps a double onto uint64 such that unsigned comparison matches double
// comparison: negative values flip all bits, non-negative set the sign bit.
// -0.0 is canonicalized to +0.0 first (Value::Compare treats them equal).
uint64_t OrderedDoubleBits(double d) {
  if (d == 0.0) d = 0.0;
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return (bits & kSignBit) ? ~bits : (bits | kSignBit);
}

uint64_t OrderedIntBits(int64_t v) {
  return static_cast<uint64_t>(v) ^ kSignBit;
}

void AppendBigEndian(uint64_t bits, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
}

// The exact integer remainder lost when `v` is rounded to double. Encoding
// [double(v)][residual] keeps int-vs-int order exact above 2^53 while int 3
// and double 3.0 (residual 0) stay byte-identical.
int64_t IntResidual(int64_t v, double d) {
  // double(v) can round up to exactly 2^63, which does not fit back into
  // int64. The values mapping there (INT64_MAX - 511 .. INT64_MAX) take
  // their residual relative to INT64_MAX instead — still order-preserving
  // within that class, and their shared double prefix already exceeds every
  // in-range key. (double(v) never rounds below -2^63, which is exact.)
  if (d >= 9223372036854775808.0) {
    return v - std::numeric_limits<int64_t>::max();
  }
  return v - static_cast<int64_t>(d);
}

void AppendNumeric(const Value& v, std::string* out) {
  out->push_back('\x01');
  if (v.type() == DataType::kDouble) {
    AppendBigEndian(OrderedDoubleBits(v.AsDouble()), out);
    AppendBigEndian(OrderedIntBits(0), out);
  } else {
    const int64_t i = v.AsInt();
    const double d = static_cast<double>(i);
    AppendBigEndian(OrderedDoubleBits(d), out);
    AppendBigEndian(OrderedIntBits(IntResidual(i, d)), out);
  }
}

void AppendString(const std::string& s, std::string* out) {
  out->push_back('\x02');
  for (char c : s) {
    if (c == '\x00') {
      out->push_back('\x00');
      out->push_back('\x01');
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\x00');
  out->push_back('\x00');
}

}  // namespace

void AppendNormalizedKeyColumn(const Value& v, bool descending,
                               std::string* out) {
  const size_t start = out->size();
  switch (v.type()) {
    case DataType::kNull:
      out->push_back('\x00');
      break;
    case DataType::kInt64:
    case DataType::kDouble:
    case DataType::kDate:
      AppendNumeric(v, out);
      break;
    case DataType::kString:
      AppendString(v.AsString(), out);
      break;
  }
  if (descending) {
    for (size_t i = start; i < out->size(); ++i) {
      (*out)[i] = static_cast<char>(~static_cast<unsigned char>((*out)[i]));
    }
  }
}

void AppendNormalizedKey(const Row& row, const std::vector<int>& positions,
                         const std::vector<bool>& descending,
                         std::string* out) {
  for (size_t i = 0; i < positions.size(); ++i) {
    AppendNormalizedKeyColumn(row[static_cast<size_t>(positions[i])],
                              descending[i], out);
  }
}

void AppendNormalizedKey(const RowBatch& batch, int64_t row,
                         const std::vector<int>& positions,
                         const std::vector<bool>& descending,
                         std::string* out) {
  for (size_t i = 0; i < positions.size(); ++i) {
    AppendNormalizedKeyColumn(
        batch.At(static_cast<size_t>(positions[i]), row), descending[i], out);
  }
}

}  // namespace ordopt
