#ifndef ORDOPT_EXEC_ROW_BATCH_H_
#define ORDOPT_EXEC_ROW_BATCH_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/value.h"

namespace ordopt {

/// Default number of rows per execution batch. Chosen so a batch of narrow
/// rows stays comfortably inside L2 while still amortizing per-batch virtual
/// dispatch and guard bookkeeping over ~1K rows. Overridable per query via
/// OptimizerConfig::batch_rows / ExecContext::batch_rows.
inline constexpr int64_t kDefaultBatchRows = 1024;

/// A selection vector: indices of surviving rows within a RowBatch, in
/// ascending order. Predicates evaluate batch-at-a-time into one of these;
/// FilterOp compacts the batch through it.
using SelectionVector = std::vector<int32_t>;

/// Column-oriented batch of rows flowing between operators.
///
/// Layout: one std::vector<Value> per column plus a per-column null bitmap
/// (1 bit per row, packed into uint64 words). The bitmap duplicates
/// Value::is_null() so batch kernels (predicate evaluation, normalized key
/// encoding, order checks) can test NULL-ness without touching the variant;
/// the invariant `bit set <=> value.is_null()` is maintained by every
/// mutating method.
///
/// A batch is produced by exactly one operator per NextBatch call: the
/// producer Resets it to its own width and fills it, so consumers never see
/// stale columns. Capacity is a soft bound — producers emit at most
/// `capacity()` rows, but short batches (stream tails, selective filters)
/// are normal and consumers must not assume fullness.
class RowBatch {
 public:
  RowBatch() = default;

  /// Drops all rows and re-shapes the batch to `num_columns` columns with
  /// room for `capacity` rows. Keeps per-column heap allocations when the
  /// shape is unchanged, so a scratch batch reused across NextBatch calls
  /// settles into zero-allocation steady state.
  void Reset(size_t num_columns, int64_t capacity);

  /// Drops all rows but keeps the column count and capacity.
  void Clear();

  size_t num_columns() const { return cols_.size(); }
  int64_t size() const { return rows_; }
  int64_t capacity() const { return capacity_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  const Value& At(size_t col, int64_t row) const {
    return cols_[col].values[static_cast<size_t>(row)];
  }
  /// Mutable access for owners that move individual values out (same
  /// caveats as TakeRow: the slot becomes unspecified and the bitmap stale
  /// until the next Reset).
  Value* MutableAt(size_t col, int64_t row) {
    return &cols_[col].values[static_cast<size_t>(row)];
  }
  bool IsNull(size_t col, int64_t row) const {
    const auto& words = cols_[col].nulls;
    return (words[static_cast<size_t>(row) >> 6] >>
            (static_cast<size_t>(row) & 63)) &
           1u;
  }

  /// Appends one row (row-major entry point used by the compat shims and by
  /// operators whose inner logic is still row-at-a-time).
  void AppendRow(const Row& row);
  void AppendRow(Row&& row);

  /// Copies row `src_row` of `src` into this batch. Widths must match.
  void AppendRowFrom(const RowBatch& src, int64_t src_row);

  /// Appends the cells of `src` selected by `ordinals`, one per column of
  /// this batch (column-pruned scans and index lookups emit through this).
  void AppendProjectedRow(const Row& src, const std::vector<int32_t>& ordinals);

  /// Columnar fill: appends `v` to column `col` without touching the row
  /// count. Producers that build column-by-column (ProjectOp, the index
  /// join's emit loop) append the same number of values to every column
  /// and then call SetRowCount. Inline: this is the hottest call in the
  /// executor (~once per value crossing an operator boundary).
  void AppendColumnValue(size_t col, Value v) {
    ColumnData& column = cols_[col];
    // Appends stay within the Reset capacity (producers respect full()),
    // so the pre-zeroed null words cover every row and only NULLs need a
    // bitmap write.
    assert(static_cast<int64_t>(column.values.size()) < capacity_);
    if (v.is_null()) {
      const size_t row = column.values.size();
      SetNullBit(col, static_cast<int64_t>(row), true);
    }
    column.values.push_back(std::move(v));
  }

  /// Declares the row count after columnar fills. Every column must hold
  /// exactly `rows` values.
  void SetRowCount(int64_t rows);

  /// Replaces this batch's contents with the selected rows of `src`.
  /// Indices in `sel` must be ascending and in-range.
  void AssignFiltered(const RowBatch& src, const SelectionVector& sel);

  /// Compacts this batch in place to the selected rows: survivors are
  /// moved down within each column and the null bitmap is rebuilt, so no
  /// Value is copied. Indices in `sel` must be ascending and in-range.
  void Compact(const SelectionVector& sel);

  /// Keeps only the first `n` rows (no-op when n >= size). LimitOp's cut.
  void Truncate(int64_t n);

  /// Materializes row `row` as an owned Row (used by the row-compat shim and
  /// the executor's result collection).
  Row MaterializeRow(int64_t row) const;
  void MaterializeRowInto(int64_t row, Row* out) const;

  /// Moves row `row`'s values out into an owned Row. The moved-from slots
  /// become valid-but-unspecified and the null bitmap no longer reflects
  /// them, so this is only for consumers that drain a batch exactly once in
  /// row order and never re-read it (the row-compat shim, sort input
  /// collection, the executor's result loop). The batch must be Reset
  /// before it is filled again, which every producer does.
  Row TakeRow(int64_t row);
  void TakeRowInto(int64_t row, Row* out);

  friend void swap(RowBatch& a, RowBatch& b) noexcept {
    std::swap(a.cols_, b.cols_);
    std::swap(a.rows_, b.rows_);
    std::swap(a.capacity_, b.capacity_);
  }

 private:
  struct ColumnData {
    std::vector<Value> values;
    std::vector<uint64_t> nulls;  ///< 1 bit per row; bit set = NULL
  };

  void SetNullBit(size_t col, int64_t row, bool is_null);

  std::vector<ColumnData> cols_;
  int64_t rows_ = 0;
  int64_t capacity_ = 0;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_ROW_BATCH_H_
