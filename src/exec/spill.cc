#include "exec/spill.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/fault_injection.h"
#include "common/str_util.h"
#include "storage/table.h"

namespace ordopt {

namespace {

/// Columns-per-row sanity bound while deserializing: anything above this
/// means the run file is corrupt, not merely large.
constexpr uint32_t kMaxSpillColumns = 1u << 20;

/// Process-wide run-file sequence number; combined with the pid it keeps
/// names unique across concurrent queries and concurrent test binaries
/// sharing one temp directory.
std::atomic<int64_t> g_spill_file_seq{0};

void AppendRaw(std::string* buf, const void* data, size_t n) {
  buf->append(static_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* buf, T v) {
  AppendRaw(buf, &v, sizeof(v));
}

/// Row wire format: uint32 column count, then per value a uint8 DataType
/// tag followed by its payload (int64/double: 8 raw bytes; string: uint32
/// length + bytes; null: nothing). Host byte order — run files never
/// outlive the query that wrote them, let alone the machine.
void SerializeRow(const Row& row, std::string* buf) {
  AppendPod(buf, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    AppendPod(buf, static_cast<uint8_t>(v.type()));
    switch (v.type()) {
      case DataType::kNull:
        break;
      case DataType::kInt64:
      case DataType::kDate:
        AppendPod(buf, v.AsInt());
        break;
      case DataType::kDouble:
        AppendPod(buf, v.AsDouble());
        break;
      case DataType::kString: {
        const std::string& s = v.AsString();
        AppendPod(buf, static_cast<uint32_t>(s.size()));
        AppendRaw(buf, s.data(), s.size());
        break;
      }
    }
  }
}

Status ReadFailure(const char* what, const std::string& path) {
  return Status::IoError(StrFormat(
      "spill run %s: %s failed: %s", path.c_str(), what,
      errno != 0 ? std::strerror(errno) : "unexpected end of file"));
}

/// Reads exactly `n` bytes; distinguishes clean EOF (only legal at a row
/// boundary, handled by the caller) from truncation and device errors.
Status ReadExact(std::FILE* f, void* out, size_t n, const std::string& path,
                 const char* what) {
  if (std::fread(out, 1, n, f) != n) return ReadFailure(what, path);
  return Status::OK();
}

Status DeserializeRow(std::FILE* f, const std::string& path, Row* out,
                      bool* eof) {
  uint32_t cols = 0;
  errno = 0;
  size_t got = std::fread(&cols, 1, sizeof(cols), f);
  if (got == 0 && std::feof(f)) {
    *eof = true;
    return Status::OK();
  }
  if (got != sizeof(cols)) return ReadFailure("row header read", path);
  if (cols > kMaxSpillColumns) {
    return Status::Internal(
        StrFormat("spill run %s is corrupt: %u columns", path.c_str(), cols));
  }
  out->clear();
  out->reserve(cols);
  for (uint32_t i = 0; i < cols; ++i) {
    uint8_t tag = 0;
    ORDOPT_RETURN_NOT_OK(ReadExact(f, &tag, sizeof(tag), path, "value tag"));
    switch (static_cast<DataType>(tag)) {
      case DataType::kNull:
        out->push_back(Value::Null());
        break;
      case DataType::kInt64:
      case DataType::kDate: {
        int64_t v = 0;
        ORDOPT_RETURN_NOT_OK(ReadExact(f, &v, sizeof(v), path, "int value"));
        out->push_back(static_cast<DataType>(tag) == DataType::kInt64
                           ? Value::Int(v)
                           : Value::Date(v));
        break;
      }
      case DataType::kDouble: {
        double v = 0;
        ORDOPT_RETURN_NOT_OK(
            ReadExact(f, &v, sizeof(v), path, "double value"));
        out->push_back(Value::Double(v));
        break;
      }
      case DataType::kString: {
        uint32_t len = 0;
        ORDOPT_RETURN_NOT_OK(
            ReadExact(f, &len, sizeof(len), path, "string length"));
        std::string s(len, '\0');
        if (len > 0) {
          ORDOPT_RETURN_NOT_OK(
              ReadExact(f, s.data(), len, path, "string bytes"));
        }
        out->push_back(Value::Str(std::move(s)));
        break;
      }
      default:
        return Status::Internal(StrFormat(
            "spill run %s is corrupt: value tag %d", path.c_str(), tag));
    }
  }
  return Status::OK();
}

}  // namespace

std::string ResolveSpillTempDir(const std::string& configured) {
  if (!configured.empty()) return configured;
  // Read per call: tests and sandboxed CI set ORDOPT_TMPDIR after startup.
  const char* env = std::getenv("ORDOPT_TMPDIR");
  if (env != nullptr && env[0] != '\0') return env;
  std::error_code ec;
  std::filesystem::path p = std::filesystem::temp_directory_path(ec);
  if (!ec && !p.empty()) return p.string();
  return "/tmp";
}

SpillRun::~SpillRun() { CloseAndRemove(); }

void SpillRun::CloseAndRemove() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!path_.empty()) {
    std::remove(path_.c_str());  // best effort; ReleaseRun is the
    path_.clear();               // accounted path
  }
}

SpillManager::SpillManager(SpillConfig config, RuntimeMetrics* metrics)
    : config_(std::move(config)),
      metrics_(metrics),
      temp_dir_(ResolveSpillTempDir(config_.temp_dir)) {}

Status SpillManager::TryWriteRun(const std::vector<Row>& rows,
                                 SpillRun* run) {
  run->CloseAndRemove();  // drop the partial file of a failed attempt
  std::string path = StrFormat(
      "%s/ordopt-spill-%lld-%lld.run", temp_dir_.c_str(),
      static_cast<long long>(::getpid()),
      static_cast<long long>(g_spill_file_seq.fetch_add(1) + 1));
  errno = 0;
  std::FILE* f = std::fopen(path.c_str(), "wb+");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot create spill run %s: %s",
                                     path.c_str(), std::strerror(errno)));
  }
  // From here the run owns the file: every failure path below goes
  // through CloseAndRemove, so a half-written run never survives.
  run->path_ = std::move(path);
  run->file_ = f;
  int64_t bytes = 0;
  std::string buf;
  for (const Row& row : rows) {
    buf.clear();
    SerializeRow(row, &buf);
    errno = 0;
    if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
      Status st = Status::IoError(StrFormat("spill run write failed: %s",
                                            std::strerror(errno)));
      run->CloseAndRemove();
      return st;
    }
    bytes += static_cast<int64_t>(buf.size());
  }
  errno = 0;
  if (std::fflush(f) != 0) {
    Status st = Status::IoError(StrFormat("spill run flush failed: %s",
                                          std::strerror(errno)));
    run->CloseAndRemove();
    return st;
  }
  std::rewind(f);
  run->rows_ = static_cast<int64_t>(rows.size());
  run->bytes_ = bytes;
  run->read_rows_ = 0;
  return Status::OK();
}

Result<std::unique_ptr<SpillRun>> SpillManager::WriteRun(
    const std::vector<Row>& rows) {
  std::unique_ptr<SpillRun> run(new SpillRun());
  Status st = RetryIo(config_.retry, &metrics_->spill_retries,
                      [this, &rows, r = run.get()]() -> Status {
                        ORDOPT_FAULT_POINT("exec.sort.spill.write");
                        return TryWriteRun(rows, r);
                      });
  if (!st.ok()) {
    run->CloseAndRemove();
    return st;
  }
  metrics_->spill_runs += 1;
  metrics_->spill_rows += run->rows();
  metrics_->spill_bytes += run->bytes();
  // The write pass streams the run out sequentially (the cost model's
  // first extra pass); the merge read pass is charged as the run is
  // consumed.
  metrics_->seq_pages += (run->rows() + kRowsPerPage - 1) / kRowsPerPage;
  return run;
}

Status SpillManager::ReadNext(SpillRun* run, Row* out, bool* eof) {
  *eof = false;
  if (run->file_ == nullptr) {
    return Status::Internal("spill run read after release");
  }
  long offset = std::ftell(run->file_);
  if (offset < 0) {
    return Status::IoError(StrFormat("spill run %s: ftell failed: %s",
                                     run->path_.c_str(),
                                     std::strerror(errno)));
  }
  Status st =
      RetryIo(config_.retry, &metrics_->spill_retries, [&]() -> Status {
        ORDOPT_FAULT_POINT("exec.sort.spill.read");
        // Re-seek so a retried attempt restarts the row cleanly.
        if (std::fseek(run->file_, offset, SEEK_SET) != 0) {
          return Status::IoError(StrFormat("spill run %s: seek failed: %s",
                                           run->path_.c_str(),
                                           std::strerror(errno)));
        }
        return DeserializeRow(run->file_, run->path_, out, eof);
      });
  if (st.ok() && !*eof) {
    // Merge read pass: one sequential page per kRowsPerPage rows.
    if (run->read_rows_ % kRowsPerPage == 0) ++metrics_->seq_pages;
    ++run->read_rows_;
  }
  return st;
}

Status SpillManager::ReleaseRun(std::unique_ptr<SpillRun> run) {
  if (run == nullptr || (run->file_ == nullptr && run->path_.empty())) {
    return Status::OK();
  }
  SpillRun* r = run.get();
  Status st =
      RetryIo(config_.retry, &metrics_->spill_retries, [r]() -> Status {
        ORDOPT_FAULT_POINT("exec.spill.cleanup");
        if (r->file_ != nullptr) {
          std::fclose(r->file_);
          r->file_ = nullptr;
        }
        errno = 0;
        if (!r->path_.empty() && std::remove(r->path_.c_str()) != 0 &&
            errno != ENOENT) {
          return Status::IoError(StrFormat("cannot remove spill run %s: %s",
                                           r->path_.c_str(),
                                           std::strerror(errno)));
        }
        r->path_.clear();
        return Status::OK();
      });
  // Whatever the retry loop concluded, nothing may survive on disk: the
  // injected-fault and exhausted-retry paths still unlink here.
  r->CloseAndRemove();
  return st;
}

}  // namespace ordopt
