#ifndef ORDOPT_EXEC_ENGINE_H_
#define ORDOPT_EXEC_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "qgm/binder.h"
#include "storage/database.h"

namespace ordopt {

/// Everything a query run produces: rows, names, the chosen plan, runtime
/// metrics, and timing. `elapsed_seconds` is measured wall time on this
/// machine; `SimulatedElapsedSeconds()` is the simulated time on the
/// paper's 1996 hardware (disk I/O + 66 MHz CPU), which is what the
/// Table-1 reproduction reports — modern in-memory wall time would hide
/// the plan difference the paper measures.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  PlanRef plan;
  std::string plan_text;
  std::string qgm_text;
  RuntimeMetrics metrics;
  double elapsed_seconds = 0.0;
  /// Wall time spent in parse + bind + optimize (0 for cached executions,
  /// which skip all three).
  double plan_seconds = 0.0;
  /// End-to-end correlation id: taken from the caller's guard when the
  /// QueryService assigned one (stable across retries of the same ticket),
  /// else drawn from a process-wide sequence. Stamped on every trace event
  /// and shown in the EXPLAIN ANALYZE service summary line, so one query's
  /// trace export, retries, and analyzed plan join on this value.
  int64_t query_id = 0;
  int64_t plans_generated = 0;
  /// Candidate plans surviving domination pruning across all DP tables.
  int64_t plans_retained = 0;
  /// Reduce-cache statistics for this optimization (0/0 when the property
  /// context never became cacheable; see orderopt/reduce_cache.h).
  int64_t reduce_cache_hits = 0;
  int64_t reduce_cache_misses = 0;

  /// EXPLAIN ANALYZE rendering (RunAnalyzed only): the plan annotated with
  /// per-operator est-vs-actual rows and timings, followed by the
  /// optimizer's traced decisions.
  std::string analyzed_plan_text;
  /// Per-operator execution stats in operator-construction (post-order)
  /// sequence; filled when tracing ran at TraceLevel::kFull.
  std::vector<OperatorProfile> op_profile;
  /// The query's trace collector, non-null when tracing was on (config
  /// trace_level, a trace path, or RunAnalyzed). Holds planner decision
  /// events plus, at kFull, exec-phase operator/metrics events.
  std::shared_ptr<TraceCollector> trace;

  /// True when the plan was taken from a plan cache and execution skipped
  /// parse/bind/optimize entirely (RunPrepared); plans_generated and the
  /// reduce-cache counters are 0 for such runs.
  bool planned_from_cache = false;

  /// Service resilience annotations (see service/resilience.h). The engine
  /// sets `degraded` from OptimizerConfig::degraded_mode; `retry_attempts`
  /// is stamped by the QueryService with how many times this query was
  /// re-admitted after a transient failure before it produced this result.
  bool degraded = false;
  int retry_attempts = 0;

  /// Column renderer for this query's plan (captures the bound column
  /// names by value, so it stays valid after the Query object dies).
  /// Carried into PreparedPlan so cached executions can render EXPLAIN
  /// ANALYZE output with real column names.
  ColumnNamer namer;

  double SimulatedElapsedSeconds() const {
    return metrics.SimulatedElapsedSeconds();
  }
};

/// Everything needed to execute a query whose optimization already
/// happened — the currency of the service's plan cache. The plan tree is
/// immutable and shared; holders may execute it from many threads at once
/// (each execution builds its own operator tree). Table pointers inside
/// the plan stay valid as long as the Database outlives the holder, and
/// the plan is only correct for the stats epoch it was built under —
/// cache keys carry that epoch (see service/plan_cache.h).
struct PreparedPlan {
  PlanRef plan;
  std::vector<std::string> column_names;
  std::string plan_text;
  std::string qgm_text;
  /// Self-contained column renderer (see QueryResult::namer); may be null
  /// for hand-built plans, in which case labels fall back to c<t>.<i>.
  ColumnNamer namer;

  /// Captures the planned artifacts of a QueryResult (from Explain or a
  /// full Run) for later re-execution.
  static PreparedPlan FromResult(const QueryResult& result) {
    PreparedPlan p;
    p.plan = result.plan;
    p.column_names = result.column_names;
    p.plan_text = result.plan_text;
    p.qgm_text = result.qgm_text;
    p.namer = result.namer;
    return p;
  }
};

/// End-to-end facade: parse -> bind -> rewrite -> optimize -> execute.
/// Toggle `config.enable_order_optimization` to run the paper's disabled
/// baseline against the same database.
///
/// Threading: Run/Explain/RunAnalyzed/RunPrepared are safe to call from
/// multiple threads on one engine — every query builds its own planner,
/// guard, spill manager, and trace collector, the database is read-only,
/// and last_metrics() snapshots under a lock. set_config is NOT
/// synchronized with in-flight queries: configure before sharing the
/// engine (the QueryService sidesteps this entirely by owning one engine
/// per worker thread).
class QueryEngine {
 public:
  explicit QueryEngine(Database* db, OptimizerConfig config = OptimizerConfig())
      : db_(db), config_(config) {}

  const OptimizerConfig& config() const { return config_; }
  void set_config(OptimizerConfig config) { config_ = config; }

  /// Plans `sql` without executing (fills everything but rows/metrics).
  Result<QueryResult> Explain(const std::string& sql);

  /// Plans and executes `sql` under `config().limits` (unlimited when the
  /// config sets none).
  Result<QueryResult> Run(const std::string& sql);

  /// Plans and executes `sql` under a caller-owned guard, e.g. to cancel
  /// from another thread or to reuse one set of limits across queries.
  /// `guard` must outlive the call; the caller is responsible for arming
  /// semantics (Run re-arms it so the deadline clock starts at execution).
  Result<QueryResult> Run(const std::string& sql, QueryGuard* guard);

  /// EXPLAIN ANALYZE: plans and executes `sql` with per-operator stats
  /// collection forced on (TraceLevel::kFull for this query), and fills
  /// `analyzed_plan_text` / `op_profile` / `trace` in the result.
  Result<QueryResult> RunAnalyzed(const std::string& sql);

  /// Executes an already-optimized plan, skipping parse/bind/optimize —
  /// the plan-cache hit path. Runs under `guard` when non-null, else
  /// under the engine's configured limits; spilling, guardrails, and
  /// runtime order verification behave exactly as in Run. With tracing
  /// configured (trace_level / trace_path / ORDOPT_TRACE) the run records
  /// a `plan.cached` event plus, at kFull, per-operator execution stats —
  /// the cache-hit hot path with tracing off still pays nothing.
  /// result.planned_from_cache is set.
  Result<QueryResult> RunPrepared(const PreparedPlan& prepared,
                                  QueryGuard* guard = nullptr);

  /// EXPLAIN ANALYZE for a cached plan: like RunPrepared but forces
  /// per-operator stats collection and fills analyzed_plan_text (with a
  /// `source: plan-cache` summary line instead of optimizer decisions —
  /// planning was skipped, so there are none).
  Result<QueryResult> RunPreparedAnalyzed(const PreparedPlan& prepared,
                                          QueryGuard* guard = nullptr);

  /// Metrics of the most recent Run, populated even when the query failed —
  /// a tripped guardrail reports consumed-vs-limit here (e.g.
  /// rows_scanned against limits().max_rows_scanned). Snapshot under a
  /// lock: with concurrent queries on one engine you get some recent
  /// query's complete metrics, never a torn mix.
  RuntimeMetrics last_metrics() const {
    std::lock_guard<std::mutex> lock(last_metrics_mu_);
    return last_metrics_;
  }

 private:
  Result<QueryResult> Prepare(const std::string& sql, bool execute,
                              QueryGuard* guard, bool analyze);

  Result<QueryResult> PreparedImpl(const PreparedPlan& prepared,
                                   QueryGuard* guard, bool analyze);

  /// Shared execute phase of Prepare and RunPrepared: runs result->plan
  /// under the guard/spill/verify-orders environment and fills rows,
  /// metrics, and timing.
  Result<std::vector<Row>> ExecutePhase(QueryResult* result,
                                        QueryGuard* guard,
                                        std::vector<OperatorProfile>* profile);

  void SnapshotMetrics(const RuntimeMetrics& metrics) {
    std::lock_guard<std::mutex> lock(last_metrics_mu_);
    last_metrics_ = metrics;
  }

  Database* db_;
  OptimizerConfig config_;
  mutable std::mutex last_metrics_mu_;
  RuntimeMetrics last_metrics_;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_ENGINE_H_
