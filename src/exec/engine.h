#ifndef ORDOPT_EXEC_ENGINE_H_
#define ORDOPT_EXEC_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "qgm/binder.h"
#include "storage/database.h"

namespace ordopt {

/// Everything a query run produces: rows, names, the chosen plan, runtime
/// metrics, and timing. `elapsed_seconds` is measured wall time on this
/// machine; `SimulatedElapsedSeconds()` is the simulated time on the
/// paper's 1996 hardware (disk I/O + 66 MHz CPU), which is what the
/// Table-1 reproduction reports — modern in-memory wall time would hide
/// the plan difference the paper measures.
struct QueryResult {
  std::vector<std::string> column_names;
  std::vector<Row> rows;
  PlanRef plan;
  std::string plan_text;
  std::string qgm_text;
  RuntimeMetrics metrics;
  double elapsed_seconds = 0.0;
  int64_t plans_generated = 0;
  /// Candidate plans surviving domination pruning across all DP tables.
  int64_t plans_retained = 0;
  /// Reduce-cache statistics for this optimization (0/0 when the property
  /// context never became cacheable; see orderopt/reduce_cache.h).
  int64_t reduce_cache_hits = 0;
  int64_t reduce_cache_misses = 0;

  /// EXPLAIN ANALYZE rendering (RunAnalyzed only): the plan annotated with
  /// per-operator est-vs-actual rows and timings, followed by the
  /// optimizer's traced decisions.
  std::string analyzed_plan_text;
  /// Per-operator execution stats in operator-construction (post-order)
  /// sequence; filled when tracing ran at TraceLevel::kFull.
  std::vector<OperatorProfile> op_profile;
  /// The query's trace collector, non-null when tracing was on (config
  /// trace_level, a trace path, or RunAnalyzed). Holds planner decision
  /// events plus, at kFull, exec-phase operator/metrics events.
  std::shared_ptr<TraceCollector> trace;

  double SimulatedElapsedSeconds() const {
    return metrics.SimulatedElapsedSeconds();
  }
};

/// End-to-end facade: parse -> bind -> rewrite -> optimize -> execute.
/// Toggle `config.enable_order_optimization` to run the paper's disabled
/// baseline against the same database.
class QueryEngine {
 public:
  explicit QueryEngine(Database* db, OptimizerConfig config = OptimizerConfig())
      : db_(db), config_(config) {}

  const OptimizerConfig& config() const { return config_; }
  void set_config(OptimizerConfig config) { config_ = config; }

  /// Plans `sql` without executing (fills everything but rows/metrics).
  Result<QueryResult> Explain(const std::string& sql);

  /// Plans and executes `sql` under `config().limits` (unlimited when the
  /// config sets none).
  Result<QueryResult> Run(const std::string& sql);

  /// Plans and executes `sql` under a caller-owned guard, e.g. to cancel
  /// from another thread or to reuse one set of limits across queries.
  /// `guard` must outlive the call; the caller is responsible for arming
  /// semantics (Run re-arms it so the deadline clock starts at execution).
  Result<QueryResult> Run(const std::string& sql, QueryGuard* guard);

  /// EXPLAIN ANALYZE: plans and executes `sql` with per-operator stats
  /// collection forced on (TraceLevel::kFull for this query), and fills
  /// `analyzed_plan_text` / `op_profile` / `trace` in the result.
  Result<QueryResult> RunAnalyzed(const std::string& sql);

  /// Metrics of the most recent Run, populated even when the query failed —
  /// a tripped guardrail reports consumed-vs-limit here (e.g.
  /// rows_scanned against limits().max_rows_scanned).
  const RuntimeMetrics& last_metrics() const { return last_metrics_; }

 private:
  Result<QueryResult> Prepare(const std::string& sql, bool execute,
                              QueryGuard* guard, bool analyze);

  Database* db_;
  OptimizerConfig config_;
  RuntimeMetrics last_metrics_;
};

}  // namespace ordopt

#endif  // ORDOPT_EXEC_ENGINE_H_
