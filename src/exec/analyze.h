#ifndef ORDOPT_EXEC_ANALYZE_H_
#define ORDOPT_EXEC_ANALYZE_H_

#include <string>
#include <vector>

#include "common/trace.h"
#include "exec/executor.h"
#include "optimizer/plan.h"

namespace ordopt {

/// EXPLAIN ANALYZE rendering: the plan tree annotated per operator with
/// estimated vs actual rows, inclusive and self wall time, and the nonzero
/// runtime counters. `profiles` must come from an ExecutePlan run over the
/// same `plan` (post-order aligned); missing profiles render estimates
/// only.
std::string RenderAnalyzedPlan(const PlanRef& plan,
                               const std::vector<OperatorProfile>& profiles,
                               const ColumnNamer& namer = nullptr);

/// One row of the estimate-quality summary.
struct EstActualRow {
  std::string label;    ///< operator label (NodeLabel)
  double est_rows = 0;  ///< cost model's cardinality estimate
  int64_t act_rows = 0; ///< rows the operator actually produced
  double q_error = 1;   ///< max((est+1)/(act+1), (act+1)/(est+1))
};

/// Per-operator estimated-vs-actual row counts, in plan pre-order (root
/// first) for readability.
std::vector<EstActualRow> EstVsActualRows(
    const PlanRef& plan, const std::vector<OperatorProfile>& profiles,
    const ColumnNamer& namer = nullptr);

/// The optimizer-phase trace events as a compact human-readable block
/// (one ToShortString line per event), for the EXPLAIN ANALYZE decisions
/// section. Empty string when there are none.
std::string RenderDecisions(const TraceCollector& trace);

}  // namespace ordopt

#endif  // ORDOPT_EXEC_ANALYZE_H_
