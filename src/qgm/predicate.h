#ifndef ORDOPT_QGM_PREDICATE_H_
#define ORDOPT_QGM_PREDICATE_H_

#include <string>

#include "qgm/bound_expr.h"

namespace ordopt {

/// One WHERE conjunct, classified into the shapes order optimization and
/// costing care about (§4.1: `col = const` yields an empty-headed FD,
/// `col = col` yields an equivalence class / join predicate).
struct Predicate {
  enum class Kind {
    kColEqCol,     ///< c1 = c2 — equivalence / equality join predicate
    kColEqConst,   ///< c = literal — constant binding
    kColCmpConst,  ///< c <op> literal, op in {<,<=,>,>=,<>}
    kColCmpCol,    ///< c1 <op> c2, non-equality
    kGeneric,      ///< anything else (kept for evaluation only)
  };

  Kind kind = Kind::kGeneric;
  BoundExpr expr;        ///< the full conjunct, used for evaluation
  ColumnSet referenced;  ///< all columns mentioned

  // Shape-specific fields (valid per `kind`).
  ColumnId left_col;
  ColumnId right_col;
  Value constant;
  BinOp cmp = BinOp::kEq;

  /// Default selectivity estimate by shape; refined by the cost model with
  /// statistics when available.
  double default_selectivity = 1.0;

  /// True when every referenced column is available from `cols`.
  bool AppliesWithin(const ColumnSet& cols) const {
    return referenced.IsSubsetOf(cols);
  }

  /// True when this is an equality join predicate connecting two different
  /// table instances.
  bool IsEquiJoin() const {
    return kind == Kind::kColEqCol && left_col.table != right_col.table;
  }

  std::string ToString() const { return expr.ToString(); }
};

/// Classifies a bound conjunct into a Predicate.
Predicate ClassifyPredicate(BoundExpr conjunct);

}  // namespace ordopt

#endif  // ORDOPT_QGM_PREDICATE_H_
