#ifndef ORDOPT_QGM_REWRITE_H_
#define ORDOPT_QGM_REWRITE_H_

#include "qgm/qgm.h"

namespace ordopt {

/// QGM-to-QGM rewrites applied before planning ([PHH92]-style, §3). The
/// one that matters for order optimization is *view merging*: a quantifier
/// ranging over a plain SELECT box (no DISTINCT, no grouping, all outputs
/// pass-through) is replaced by that box's own quantifiers and predicates,
/// so the enclosing join sees the view's tables directly — which is what
/// lets sort-ahead push an ORDER BY sort *into* a view (§1). A derived
/// table's ORDER BY, if any, is discarded (SQL derived tables are
/// unordered).
///
/// Runs to a fixpoint, handling nested views.
void MergeDerivedTables(Query* query);

}  // namespace ordopt

#endif  // ORDOPT_QGM_REWRITE_H_
