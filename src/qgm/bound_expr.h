#ifndef ORDOPT_QGM_BOUND_EXPR_H_
#define ORDOPT_QGM_BOUND_EXPR_H_

#include <memory>
#include <string>

#include "common/column_id.h"
#include "common/value.h"
#include "parser/ast.h"

namespace ordopt {

/// A type-checked expression whose column references are resolved to
/// ColumnIds. Aggregates never appear here: after binding, an aggregate is
/// computed by a GROUP BY box and everything above it references the
/// aggregate's output column like any other column.
class BoundExpr {
 public:
  enum class Kind { kColumn, kLiteral, kBinary, kIsNull };

  BoundExpr() = default;

  static BoundExpr Column(ColumnId col, DataType type, std::string name);
  static BoundExpr Literal(Value v);
  static BoundExpr Binary(BinOp op, BoundExpr left, BoundExpr right,
                          DataType type);
  static BoundExpr IsNull(BoundExpr child, bool negated);

  Kind kind() const { return kind_; }
  DataType type() const { return type_; }

  /// kColumn accessors.
  const ColumnId& column() const { return column_; }
  bool IsColumn() const { return kind_ == Kind::kColumn; }

  /// kLiteral accessor.
  const Value& literal() const { return literal_; }

  /// kBinary accessors.
  BinOp op() const { return op_; }
  const BoundExpr& left() const { return *left_; }
  const BoundExpr& right() const { return *right_; }

  /// kIsNull accessors (the tested child is stored in left_).
  const BoundExpr& is_null_child() const { return *left_; }
  bool is_null_negated() const { return is_null_negated_; }

  /// Adds every referenced ColumnId to `out`.
  void CollectColumns(ColumnSet* out) const;

  /// Structural equality (used to match ORDER BY items to select items).
  bool Equals(const BoundExpr& other) const;

  /// Deep copy.
  BoundExpr Clone() const;

  /// Display text (column names as recorded at bind time).
  std::string ToString() const;

 private:
  Kind kind_ = Kind::kLiteral;
  DataType type_ = DataType::kNull;
  ColumnId column_;
  std::string column_name_;
  Value literal_;
  BinOp op_ = BinOp::kAdd;
  bool is_null_negated_ = false;
  std::shared_ptr<const BoundExpr> left_;   // shared: cheap clone
  std::shared_ptr<const BoundExpr> right_;
};

}  // namespace ordopt

#endif  // ORDOPT_QGM_BOUND_EXPR_H_
