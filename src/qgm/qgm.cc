#include "qgm/qgm.h"

#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

ColumnSet QgmBox::OutputColumns() const {
  ColumnSet out;
  for (const OutputColumn& c : outputs) out.Add(c.id);
  return out;
}

int QgmBox::FindOutput(const ColumnId& id) const {
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (outputs[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

QgmBox* Query::NewBox(QgmBox::Kind kind) {
  auto box = std::make_unique<QgmBox>();
  box->kind = kind;
  box->vid = AllocTableId();
  QgmBox* ptr = box.get();
  boxes.push_back(std::move(box));
  return ptr;
}

ColumnNamer Query::namer() const {
  return [this](const ColumnId& id) -> std::string {
    auto it = column_names.find(id);
    return it != column_names.end() ? it->second : DefaultColumnName(id);
  };
}

DataType Query::TypeOf(const ColumnId& id) const {
  auto it = column_types.find(id);
  return it != column_types.end() ? it->second : DataType::kNull;
}

namespace {

void PrintBox(const QgmBox* box, const ColumnNamer& namer, int indent,
              std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  if (box->kind == QgmBox::Kind::kUnion) {
    *out += pad + StrFormat("UNION%s box (%zu branches)\n",
                            box->distinct ? "" : " ALL",
                            box->quantifiers.size());
  } else if (box->kind == QgmBox::Kind::kGroupBy) {
    *out += pad + "GROUP BY box";
    std::vector<std::string> cols;
    for (const ColumnId& c : box->group_columns) cols.push_back(namer(c));
    *out += " [" + Join(cols, ", ") + "]";
    cols.clear();
    for (const AggregateSpec& a : box->aggregates) cols.push_back(a.name);
    if (!cols.empty()) *out += " aggs[" + Join(cols, ", ") + "]";
    *out += "\n";
  } else {
    *out += pad + "SELECT box";
    if (box->distinct) *out += " DISTINCT";
    if (!box->output_order_requirement.empty()) {
      *out += " order" + box->output_order_requirement.ToString(namer);
    }
    if (!box->predicates.empty()) {
      std::vector<std::string> preds;
      for (const Predicate& p : box->predicates) preds.push_back(p.ToString());
      *out += " where[" + Join(preds, " AND ") + "]";
    }
    *out += "\n";
  }
  std::string qpad(static_cast<size_t>(indent + 1) * 2, ' ');
  auto print_quantifier = [&](const Quantifier& q, const char* prefix) {
    if (q.IsBase()) {
      *out += qpad + StrFormat("%squantifier %s (table %s, id %d)\n", prefix,
                               q.alias.c_str(), q.table->name().c_str(), q.id);
    } else {
      *out += qpad + StrFormat("%squantifier %s over:\n", prefix,
                               q.alias.c_str());
      PrintBox(q.input, namer, indent + 2, out);
    }
  };
  for (const Quantifier& q : box->quantifiers) print_quantifier(q, "");
  for (const OuterJoinStep& step : box->outer_joins) {
    print_quantifier(step.quantifier, "left-join ");
    std::vector<std::string> preds;
    for (const Predicate& p : step.on_predicates) preds.push_back(p.ToString());
    *out += qpad + "  on[" + Join(preds, " AND ") + "]\n";
  }
}

}  // namespace

std::string Query::ToString() const {
  ORDOPT_CHECK(root != nullptr);
  std::string out;
  PrintBox(root, namer(), 0, &out);
  return out;
}

}  // namespace ordopt
