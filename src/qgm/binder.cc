#include "qgm/binder.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

namespace {

/// One name visible in a scope.
struct ScopeColumn {
  std::string name;  // lowercase
  ColumnId id;
  DataType type;
};

/// The columns contributed by one quantifier.
struct ScopeEntry {
  std::string alias;  // lowercase
  std::vector<ScopeColumn> cols;
};

using Scope = std::vector<ScopeEntry>;

DataType ArithmeticType(BinOp op, DataType l, DataType r) {
  if (op == BinOp::kDiv) return DataType::kDouble;
  if (l == DataType::kDouble || r == DataType::kDouble) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

bool IsComparisonOp(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
    case BinOp::kAnd:
    case BinOp::kOr:
      return true;
    default:
      return false;
  }
}

class Binder {
 public:
  explicit Binder(const Database& db) : db_(db) {
    query_ = std::make_unique<Query>();
  }

  Result<std::unique_ptr<Query>> Bind(const SelectStmt& stmt) {
    ORDOPT_ASSIGN_OR_RETURN(QgmBox * root, BindStatement(stmt));
    query_->root = root;
    return std::move(query_);
  }

 private:
  // ---- scope construction -------------------------------------------------

  // Builds the quantifier for one FROM item; `q_out` receives it, the
  // return value describes the names it contributes to the scope.
  Result<ScopeEntry> MakeQuantifier(const TableRef& ref, Quantifier* q_out) {
    ScopeEntry entry;
    entry.alias = ToLower(ref.alias);
    Quantifier q;
    q.alias = entry.alias;
    if (ref.derived != nullptr) {
      ORDOPT_ASSIGN_OR_RETURN(QgmBox * child, BindStatement(*ref.derived));
      q.input = child;
      for (const OutputColumn& oc : child->outputs) {
        entry.cols.push_back(
            {ToLower(oc.name), oc.id, query_->TypeOf(oc.id)});
      }
    } else {
      const Table* table = db_.GetTable(ref.table_name);
      if (table == nullptr) {
        return Status::NotFound("table '" + ref.table_name + "' not found");
      }
      q.id = query_->AllocTableId();
      q.table = table;
      query_->base_tables[q.id] = table;
      const TableDef& def = table->def();
      for (size_t i = 0; i < def.columns.size(); ++i) {
        ColumnId id(q.id, static_cast<int32_t>(i));
        std::string lname = ToLower(def.columns[i].name);
        entry.cols.push_back({lname, id, def.columns[i].type});
        query_->column_names[id] = entry.alias + "." + lname;
        query_->column_types[id] = def.columns[i].type;
      }
    }
    *q_out = std::move(q);
    return entry;
  }

  // True when the expression cannot be satisfied by a row whose referenced
  // columns are all NULL: comparisons/arithmetic propagate NULL and AND
  // folds it to false. IS NULL and OR can accept NULL inputs, so any
  // appearance makes the answer conservatively false.
  static bool IsNullRejecting(const BoundExpr& e) {
    switch (e.kind()) {
      case BoundExpr::Kind::kIsNull:
        // `x IS NOT NULL` rejects; `x IS NULL` selects padded rows.
        return e.is_null_negated();
      case BoundExpr::Kind::kBinary:
        if (e.op() == BinOp::kOr) return false;
        return IsNullRejecting(e.left()) && IsNullRejecting(e.right());
      default:
        return true;
    }
  }

  // The table-instance ids a quantifier's columns use (for deciding which
  // quantifier a predicate touches).
  ColumnSet QuantifierColumns(const Quantifier& q) const {
    ColumnSet cols;
    if (q.IsBase()) {
      for (size_t i = 0; i < q.table->def().columns.size(); ++i) {
        cols.Add(ColumnId(q.id, static_cast<int32_t>(i)));
      }
    } else {
      cols = q.input->OutputColumns();
    }
    return cols;
  }

  Result<ScopeColumn> ResolveColumn(const Scope& scope,
                                    const std::string& qualifier,
                                    const std::string& name) const {
    std::string lq = ToLower(qualifier);
    std::string ln = ToLower(name);
    const ScopeColumn* found = nullptr;
    for (const ScopeEntry& entry : scope) {
      if (!lq.empty() && entry.alias != lq) continue;
      for (const ScopeColumn& col : entry.cols) {
        if (col.name == ln) {
          if (found != nullptr) {
            return Status::BindError("ambiguous column '" + name + "'");
          }
          found = &col;
        }
      }
    }
    if (found == nullptr) {
      std::string full = lq.empty() ? ln : lq + "." + ln;
      return Status::BindError("column '" + full + "' not found");
    }
    return *found;
  }

  // ---- scalar binding (no aggregates allowed) -----------------------------

  Result<BoundExpr> BindScalar(const Expr& expr, const Scope& scope) {
    switch (expr.kind) {
      case Expr::Kind::kColumn: {
        ORDOPT_ASSIGN_OR_RETURN(
            ScopeColumn col, ResolveColumn(scope, expr.qualifier, expr.column));
        std::string display = query_->column_names.count(col.id) > 0
                                  ? query_->column_names[col.id]
                                  : col.name;
        return BoundExpr::Column(col.id, col.type, display);
      }
      case Expr::Kind::kLiteral:
        return BoundExpr::Literal(expr.literal);
      case Expr::Kind::kBinary: {
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr l, BindScalar(*expr.left, scope));
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr r, BindScalar(*expr.right, scope));
        DataType type = IsComparisonOp(expr.op)
                            ? DataType::kInt64
                            : ArithmeticType(expr.op, l.type(), r.type());
        return BoundExpr::Binary(expr.op, std::move(l), std::move(r), type);
      }
      case Expr::Kind::kIsNull: {
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr child,
                                BindScalar(*expr.arg, scope));
        return BoundExpr::IsNull(std::move(child), expr.is_null_negated);
      }
      case Expr::Kind::kAggregate:
        return Status::BindError("aggregate not allowed here: " +
                                 expr.ToString());
      case Expr::Kind::kInSubquery:
        return Status::Unsupported(
            "IN (subquery) is only supported as a top-level WHERE "
            "conjunct: " +
            expr.ToString());
    }
    return Status::Internal("unreachable expression kind");
  }

  // ---- grouped binding -----------------------------------------------------

  struct GroupScope {
    const Scope* base_scope = nullptr;
    ColumnSet group_columns;
    QgmBox* group_box = nullptr;
  };

  // Finds or creates the AggregateSpec for a bound aggregate expression.
  Result<ColumnId> BindAggregate(const Expr& expr, const GroupScope& gs) {
    AggregateSpec spec;
    spec.func = expr.agg;
    spec.distinct = expr.agg_distinct;
    spec.count_star = expr.count_star;
    if (!expr.count_star) {
      ORDOPT_ASSIGN_OR_RETURN(spec.arg,
                              BindScalar(*expr.arg, *gs.base_scope));
    }
    spec.name = expr.ToString();
    QgmBox* g = gs.group_box;
    // Reuse an existing identical aggregate.
    for (const AggregateSpec& existing : g->aggregates) {
      if (existing.func == spec.func && existing.distinct == spec.distinct &&
          existing.count_star == spec.count_star &&
          (spec.count_star || existing.arg.Equals(spec.arg))) {
        return existing.output;
      }
    }
    int ordinal =
        static_cast<int>(g->group_columns.size() + g->aggregates.size());
    spec.output = ColumnId(g->vid, ordinal);
    DataType out_type = DataType::kDouble;
    if (spec.func == AggFunc::kCount) {
      out_type = DataType::kInt64;
    } else if (spec.func == AggFunc::kMin || spec.func == AggFunc::kMax) {
      out_type = spec.arg.type();
    } else if (spec.func == AggFunc::kSum) {
      out_type = spec.arg.type() == DataType::kInt64 ? DataType::kInt64
                                                     : DataType::kDouble;
    }
    query_->column_names[spec.output] = spec.name;
    query_->column_types[spec.output] = out_type;
    ColumnId out = spec.output;
    g->aggregates.push_back(std::move(spec));
    return out;
  }

  // Binds an expression in grouped scope: aggregates become references to
  // GROUP BY box outputs; plain columns must be grouping columns.
  Result<BoundExpr> BindGrouped(const Expr& expr, const GroupScope& gs) {
    switch (expr.kind) {
      case Expr::Kind::kAggregate: {
        ORDOPT_ASSIGN_OR_RETURN(ColumnId out, BindAggregate(expr, gs));
        return BoundExpr::Column(out, query_->TypeOf(out),
                                 query_->column_names[out]);
      }
      case Expr::Kind::kColumn: {
        ORDOPT_ASSIGN_OR_RETURN(
            ScopeColumn col,
            ResolveColumn(*gs.base_scope, expr.qualifier, expr.column));
        if (!gs.group_columns.Contains(col.id)) {
          return Status::BindError("column '" + expr.ToString() +
                                   "' must appear in GROUP BY or inside an "
                                   "aggregate");
        }
        return BoundExpr::Column(col.id, col.type,
                                 query_->column_names.count(col.id) > 0
                                     ? query_->column_names[col.id]
                                     : col.name);
      }
      case Expr::Kind::kLiteral:
        return BoundExpr::Literal(expr.literal);
      case Expr::Kind::kBinary: {
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr l, BindGrouped(*expr.left, gs));
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr r, BindGrouped(*expr.right, gs));
        DataType type = IsComparisonOp(expr.op)
                            ? DataType::kInt64
                            : ArithmeticType(expr.op, l.type(), r.type());
        return BoundExpr::Binary(expr.op, std::move(l), std::move(r), type);
      }
      case Expr::Kind::kIsNull: {
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr child,
                                BindGrouped(*expr.arg, gs));
        return BoundExpr::IsNull(std::move(child), expr.is_null_negated);
      }
      case Expr::Kind::kInSubquery:
        return Status::Unsupported(
            "IN (subquery) is only supported as a top-level WHERE "
            "conjunct");
    }
    return Status::Internal("unreachable expression kind");
  }

  // ---- helpers -------------------------------------------------------------

  static bool HasAggregate(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAggregate:
        return true;
      case Expr::Kind::kBinary:
        return HasAggregate(*expr.left) || HasAggregate(*expr.right);
      case Expr::Kind::kIsNull:
        return HasAggregate(*expr.arg);
      default:
        return false;
    }
  }

  // Rewrites `lhs IN (subquery)` into a semi-join: a quantifier over the
  // subquery with DISTINCT forced on its top box, plus the equality
  // predicate lhs = subquery-output. Classic uncorrelated-IN unnesting.
  Status BindInSubquery(const Expr& expr, QgmBox* select_box, Scope* scope) {
    ORDOPT_ASSIGN_OR_RETURN(BoundExpr lhs, BindScalar(*expr.arg, *scope));
    if (!lhs.IsColumn()) {
      return Status::Unsupported(
          "the left side of IN (subquery) must be a column");
    }
    ORDOPT_ASSIGN_OR_RETURN(QgmBox * sub, BindStatement(*expr.subquery));
    if (sub->outputs.size() != 1) {
      return Status::BindError("IN subquery must produce exactly one column");
    }
    sub->distinct = true;  // semi-join: one match per value
    Quantifier q;
    q.alias = StrFormat("$in%d", sub->vid);
    q.input = sub;
    select_box->quantifiers.push_back(std::move(q));
    ColumnId rhs = sub->outputs[0].id;
    BoundExpr cmp = BoundExpr::Binary(
        BinOp::kEq, std::move(lhs),
        BoundExpr::Column(rhs, query_->TypeOf(rhs), sub->outputs[0].name),
        DataType::kInt64);
    select_box->predicates.push_back(ClassifyPredicate(std::move(cmp)));
    return Status::OK();
  }

  // Splits an AND tree into conjuncts.
  static void SplitConjuncts(const Expr& expr, std::vector<const Expr*>* out) {
    if (expr.kind == Expr::Kind::kBinary && expr.op == BinOp::kAnd) {
      SplitConjuncts(*expr.left, out);
      SplitConjuncts(*expr.right, out);
    } else {
      out->push_back(&expr);
    }
  }

  // Adds `expr` as an output of `box`, minting a computed ColumnId when the
  // expression is not a bare column.
  void AddOutput(QgmBox* box, BoundExpr expr, const std::string& name) {
    OutputColumn oc;
    oc.name = name;
    if (expr.IsColumn()) {
      oc.id = expr.column();
    } else {
      oc.id = ColumnId(box->vid, static_cast<int32_t>(box->outputs.size()));
      query_->column_names[oc.id] = name;
      query_->column_types[oc.id] = expr.type();
    }
    oc.expr = std::move(expr);
    box->outputs.push_back(std::move(oc));
  }

  // Default display name for a select item.
  static std::string ItemName(const SelectItem& item, size_t index) {
    if (!item.alias.empty()) return ToLower(item.alias);
    if (item.expr->kind == Expr::Kind::kColumn) {
      return ToLower(item.expr->column);
    }
    return StrFormat("col%zu", index + 1);
  }

  // Binds one ORDER BY item: select-item aliases win, then structural match
  // against select items, then plain scope resolution. The result must be a
  // bare column (possibly a computed output's ColumnId).
  Result<OrderElement> BindOrderItem(
      const OrderItem& item, const std::vector<SelectItem>& items,
      const QgmBox* box,
      const std::function<Result<BoundExpr>(const Expr&)>& bind) {
    // Item index i maps to output i only when no '*' expanded the list.
    bool aligned = items.size() == box->outputs.size();
    // Alias reference?
    if (aligned && item.expr->kind == Expr::Kind::kColumn &&
        item.expr->qualifier.empty() && !item.expr->column.empty()) {
      std::string lname = ToLower(item.expr->column);
      for (size_t i = 0; i < items.size(); ++i) {
        if (!items[i].star && ToLower(items[i].alias) == lname) {
          return OrderElement(box->outputs[i].id, item.dir);
        }
      }
    }
    ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, bind(*item.expr));
    if (bound.IsColumn()) return OrderElement(bound.column(), item.dir);
    // Structural match against a computed select item.
    for (const OutputColumn& oc : box->outputs) {
      if (oc.expr.Equals(bound)) return OrderElement(oc.id, item.dir);
    }
    return Status::Unsupported(
        "ORDER BY expression must be a column, select alias, or select "
        "item: " +
        item.expr->ToString());
  }

  // ---- the main per-block binding ------------------------------------------

  // Dispatches between a single SELECT block and a UNION chain.
  Result<QgmBox*> BindStatement(const SelectStmt& stmt) {
    if (stmt.union_next != nullptr) return BindUnion(stmt);
    return BindSelect(stmt);
  }

  // Binds a UNION chain: one branch box per block (the last block's ORDER
  // BY / LIMIT are stripped from the branch and applied to the union box),
  // fresh output columns, arity/type checks, distinct when any link is a
  // plain UNION.
  Result<QgmBox*> BindUnion(const SelectStmt& first) {
    std::vector<const SelectStmt*> blocks;
    bool all_links_all = true;
    for (const SelectStmt* b = &first; b != nullptr;
         b = b->union_next.get()) {
      blocks.push_back(b);
      if (b->union_next != nullptr && !b->union_all) all_links_all = false;
    }
    const SelectStmt* last = blocks.back();

    QgmBox* union_box = query_->NewBox(QgmBox::Kind::kUnion);
    union_box->distinct = !all_links_all;
    for (const SelectStmt* b : blocks) {
      ORDOPT_ASSIGN_OR_RETURN(QgmBox * branch,
                              BindSelect(*b, /*strip_tail=*/b == last));
      Quantifier q;
      q.input = branch;
      union_box->quantifiers.push_back(std::move(q));
    }

    // Arity check and fresh outputs named/typed after the first branch.
    const QgmBox* head = union_box->quantifiers[0].input;
    for (const Quantifier& q : union_box->quantifiers) {
      if (q.input->outputs.size() != head->outputs.size()) {
        return Status::BindError(
            "UNION branches have different column counts");
      }
    }
    for (size_t i = 0; i < head->outputs.size(); ++i) {
      OutputColumn oc;
      oc.name = head->outputs[i].name;
      oc.id = ColumnId(union_box->vid, static_cast<int32_t>(i));
      DataType type = query_->TypeOf(head->outputs[i].id);
      oc.expr = BoundExpr::Column(oc.id, type, oc.name);
      query_->column_names[oc.id] = oc.name;
      query_->column_types[oc.id] = type;
      union_box->outputs.push_back(std::move(oc));
    }

    // The last block's ORDER BY / LIMIT apply to the union: resolve ORDER
    // BY items against the union's output names.
    for (const OrderItem& item : last->order_by) {
      if (item.expr->kind != Expr::Kind::kColumn ||
          !item.expr->qualifier.empty()) {
        return Status::Unsupported(
            "ORDER BY on a UNION must name an output column");
      }
      std::string lname = ToLower(item.expr->column);
      int found = -1;
      for (size_t i = 0; i < union_box->outputs.size(); ++i) {
        if (ToLower(union_box->outputs[i].name) == lname) {
          found = static_cast<int>(i);
        }
      }
      if (found < 0) {
        return Status::BindError("ORDER BY column '" + lname +
                                 "' is not a UNION output");
      }
      union_box->output_order_requirement.Append(OrderElement(
          union_box->outputs[static_cast<size_t>(found)].id, item.dir));
    }
    union_box->limit = last->limit;
    return union_box;
  }

  Result<QgmBox*> BindSelect(const SelectStmt& stmt,
                             bool strip_tail = false) {
    QgmBox* select_box = query_->NewBox(QgmBox::Kind::kSelect);
    Scope scope;
    if (stmt.from.empty()) {
      return Status::Unsupported("FROM clause is required");
    }
    for (const TableRef& ref : stmt.from) {
      Quantifier q;
      ORDOPT_ASSIGN_OR_RETURN(ScopeEntry entry, MakeQuantifier(ref, &q));
      for (const ScopeEntry& existing : scope) {
        if (existing.alias == entry.alias) {
          return Status::BindError("duplicate table alias '" + entry.alias +
                                   "'");
        }
      }
      scope.push_back(std::move(entry));
      if (ref.join == TableRef::JoinKind::kLeft) {
        OuterJoinStep step;
        step.quantifier = std::move(q);
        select_box->outer_joins.push_back(std::move(step));
      } else {
        select_box->quantifiers.push_back(std::move(q));
      }
      if (ref.on != nullptr) {
        // ON binds against everything joined so far (including this item).
        std::vector<const Expr*> conjuncts;
        SplitConjuncts(*ref.on, &conjuncts);
        for (const Expr* c : conjuncts) {
          ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, scope));
          Predicate pred = ClassifyPredicate(std::move(bound));
          if (ref.join == TableRef::JoinKind::kLeft) {
            select_box->outer_joins.back().on_predicates.push_back(
                std::move(pred));
          } else {
            select_box->predicates.push_back(std::move(pred));
          }
        }
      }
    }

    if (stmt.where != nullptr) {
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(*stmt.where, &conjuncts);
      for (const Expr* c : conjuncts) {
        if (c->kind == Expr::Kind::kInSubquery) {
          ORDOPT_RETURN_NOT_OK(BindInSubquery(*c, select_box, &scope));
          continue;
        }
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*c, scope));
        select_box->predicates.push_back(ClassifyPredicate(std::move(bound)));
      }
    }

    // Outer-join simplification: a null-rejecting WHERE conjunct touching
    // a null-supplying side turns that LEFT JOIN into an inner join.
    // Comparisons, arithmetic, and AND all fold NULL to "not satisfied",
    // so they reject; IS NULL selects the padded rows (the anti-join
    // pattern) and OR may pass them — both block the conversion. Iterate
    // to a fixpoint (a converted join's ON predicates join the WHERE pool
    // and may convert further joins).
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t i = 0; i < select_box->outer_joins.size(); ++i) {
        ColumnSet null_side =
            QuantifierColumns(select_box->outer_joins[i].quantifier);
        bool rejected = false;
        for (const Predicate& p : select_box->predicates) {
          if (p.referenced.Intersect(null_side).empty()) continue;
          if (IsNullRejecting(p.expr)) rejected = true;
        }
        if (!rejected) continue;
        OuterJoinStep step = std::move(select_box->outer_joins[i]);
        select_box->outer_joins.erase(select_box->outer_joins.begin() +
                                      static_cast<long>(i));
        select_box->quantifiers.push_back(std::move(step.quantifier));
        for (Predicate& p : step.on_predicates) {
          select_box->predicates.push_back(std::move(p));
        }
        changed = true;
        break;
      }
    }

    bool grouped = !stmt.group_by.empty() || stmt.having != nullptr;
    if (!grouped) {
      for (const SelectItem& item : stmt.items) {
        if (!item.star && HasAggregate(*item.expr)) grouped = true;
      }
    }

    if (!grouped) {
      // Single SELECT box: projection, DISTINCT, ORDER BY.
      for (size_t i = 0; i < stmt.items.size(); ++i) {
        const SelectItem& item = stmt.items[i];
        if (item.star) {
          for (const ScopeEntry& entry : scope) {
            for (const ScopeColumn& col : entry.cols) {
              AddOutput(select_box,
                        BoundExpr::Column(col.id, col.type,
                                          entry.alias + "." + col.name),
                        col.name);
            }
          }
          continue;
        }
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound,
                                BindScalar(*item.expr, scope));
        AddOutput(select_box, std::move(bound), ItemName(item, i));
      }
      select_box->distinct = stmt.distinct;
      select_box->limit = strip_tail ? -1 : stmt.limit;
      auto bind = [&](const Expr& e) { return BindScalar(e, scope); };
      if (strip_tail) return select_box;
      for (const OrderItem& item : stmt.order_by) {
        ORDOPT_ASSIGN_OR_RETURN(
            OrderElement elem,
            BindOrderItem(item, stmt.items, select_box, bind));
        select_box->output_order_requirement.Append(elem);
      }
      return select_box;
    }

    // Grouped query: SELECT box (join) -> GROUP BY box -> finishing SELECT.
    // The join box outputs every visible column; pruning happens in the
    // optimizer.
    for (const ScopeEntry& entry : scope) {
      for (const ScopeColumn& col : entry.cols) {
        AddOutput(select_box,
                  BoundExpr::Column(col.id, col.type,
                                    entry.alias + "." + col.name),
                  col.name);
      }
    }

    QgmBox* group_box = query_->NewBox(QgmBox::Kind::kGroupBy);
    {
      Quantifier q;
      q.alias = "";
      q.input = select_box;
      group_box->quantifiers.push_back(std::move(q));
    }
    GroupScope gs;
    gs.base_scope = &scope;
    gs.group_box = group_box;
    for (const auto& g : stmt.group_by) {
      ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, BindScalar(*g, scope));
      if (!bound.IsColumn()) {
        return Status::Unsupported("GROUP BY items must be plain columns: " +
                                   g->ToString());
      }
      group_box->group_columns.push_back(bound.column());
      gs.group_columns.Add(bound.column());
    }

    QgmBox* top_box = query_->NewBox(QgmBox::Kind::kSelect);
    {
      Quantifier q;
      q.alias = "";
      q.input = group_box;
      top_box->quantifiers.push_back(std::move(q));
    }
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        return Status::Unsupported("'*' cannot be combined with GROUP BY");
      }
      ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, BindGrouped(*item.expr, gs));
      AddOutput(top_box, std::move(bound), ItemName(item, i));
    }
    top_box->distinct = stmt.distinct;
    top_box->limit = strip_tail ? -1 : stmt.limit;
    if (stmt.having != nullptr) {
      std::vector<const Expr*> conjuncts;
      SplitConjuncts(*stmt.having, &conjuncts);
      for (const Expr* c : conjuncts) {
        ORDOPT_ASSIGN_OR_RETURN(BoundExpr bound, BindGrouped(*c, gs));
        top_box->predicates.push_back(ClassifyPredicate(std::move(bound)));
      }
    }
    auto bind = [&](const Expr& e) { return BindGrouped(e, gs); };
    if (!strip_tail) {
      for (const OrderItem& item : stmt.order_by) {
        ORDOPT_ASSIGN_OR_RETURN(
            OrderElement elem,
            BindOrderItem(item, stmt.items, top_box, bind));
        top_box->output_order_requirement.Append(elem);
      }
    }

    // GROUP BY box outputs: grouping columns pass through, then aggregates.
    for (const ColumnId& gcol : group_box->group_columns) {
      OutputColumn oc;
      oc.expr = BoundExpr::Column(gcol, query_->TypeOf(gcol),
                                  query_->namer()(gcol));
      oc.name = query_->namer()(gcol);
      oc.id = gcol;
      group_box->outputs.push_back(std::move(oc));
    }
    for (const AggregateSpec& spec : group_box->aggregates) {
      OutputColumn oc;
      oc.expr = BoundExpr::Column(spec.output, query_->TypeOf(spec.output),
                                  spec.name);
      oc.name = spec.name;
      oc.id = spec.output;
      group_box->outputs.push_back(std::move(oc));
    }
    return top_box;
  }

  const Database& db_;
  std::unique_ptr<Query> query_;
};

}  // namespace

Result<std::unique_ptr<Query>> BindQuery(const SelectStmt& stmt,
                                         const Database& db) {
  Binder binder(db);
  return binder.Bind(stmt);
}

}  // namespace ordopt
