#include "qgm/bound_expr.h"

namespace ordopt {

BoundExpr BoundExpr::Column(ColumnId col, DataType type, std::string name) {
  BoundExpr e;
  e.kind_ = Kind::kColumn;
  e.type_ = type;
  e.column_ = col;
  e.column_name_ = std::move(name);
  return e;
}

BoundExpr BoundExpr::Literal(Value v) {
  BoundExpr e;
  e.kind_ = Kind::kLiteral;
  e.type_ = v.type();
  e.literal_ = std::move(v);
  return e;
}

BoundExpr BoundExpr::Binary(BinOp op, BoundExpr left, BoundExpr right,
                            DataType type) {
  BoundExpr e;
  e.kind_ = Kind::kBinary;
  e.type_ = type;
  e.op_ = op;
  e.left_ = std::make_shared<const BoundExpr>(std::move(left));
  e.right_ = std::make_shared<const BoundExpr>(std::move(right));
  return e;
}

BoundExpr BoundExpr::IsNull(BoundExpr child, bool negated) {
  BoundExpr e;
  e.kind_ = Kind::kIsNull;
  e.type_ = DataType::kInt64;
  e.is_null_negated_ = negated;
  e.left_ = std::make_shared<const BoundExpr>(std::move(child));
  return e;
}

void BoundExpr::CollectColumns(ColumnSet* out) const {
  switch (kind_) {
    case Kind::kColumn:
      out->Add(column_);
      break;
    case Kind::kLiteral:
      break;
    case Kind::kBinary:
      left_->CollectColumns(out);
      right_->CollectColumns(out);
      break;
    case Kind::kIsNull:
      left_->CollectColumns(out);
      break;
  }
}

bool BoundExpr::Equals(const BoundExpr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kColumn:
      return column_ == other.column_;
    case Kind::kLiteral:
      return literal_.type() == other.literal_.type() &&
             literal_ == other.literal_;
    case Kind::kBinary:
      return op_ == other.op_ && left_->Equals(*other.left_) &&
             right_->Equals(*other.right_);
    case Kind::kIsNull:
      return is_null_negated_ == other.is_null_negated_ &&
             left_->Equals(*other.left_);
  }
  return false;
}

BoundExpr BoundExpr::Clone() const { return *this; }

std::string BoundExpr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return column_name_.empty() ? DefaultColumnName(column_) : column_name_;
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kBinary:
      return "(" + left_->ToString() + " " + BinOpName(op_) + " " +
             right_->ToString() + ")";
    case Kind::kIsNull:
      return "(" + left_->ToString() +
             (is_null_negated_ ? " is not null)" : " is null)");
  }
  return "?";
}

}  // namespace ordopt
