#ifndef ORDOPT_QGM_QGM_H_
#define ORDOPT_QGM_QGM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/column_id.h"
#include "qgm/bound_expr.h"
#include "qgm/predicate.h"
#include "storage/table.h"

namespace ordopt {

struct QgmBox;

/// A table reference inside a box (the paper's quantifier, §3): either a
/// base table or another box (derived table / view). Base-table quantifiers
/// own a table-instance id: column `c` of this instance is
/// ColumnId{id, ordinal(c)}. Quantifiers over boxes introduce no ids of
/// their own — the child box's output ColumnIds are referenced directly,
/// so a pass-through column keeps one identity through the whole query.
struct Quantifier {
  int id = -1;  ///< table-instance id; -1 for quantifiers over boxes
  std::string alias;
  const Table* table = nullptr;  ///< base table, or
  QgmBox* input = nullptr;       ///< child box (exactly one of the two)

  bool IsBase() const { return table != nullptr; }
};

/// One LEFT OUTER JOIN step of a SELECT box: the null-supplying quantifier
/// plus its ON conjuncts. Steps apply in syntax order on top of the box's
/// inner-join block. Per §4.1, an equality ON predicate `p = n` (p from
/// the preserved side, n null-supplying) contributes only the one-way FD
/// {p} -> {n}, never an equivalence class.
struct OuterJoinStep {
  Quantifier quantifier;
  std::vector<Predicate> on_predicates;
};

/// One output column of a box. Pass-through outputs (expr is a bare column)
/// reuse the inner ColumnId; computed outputs get {box.vid, ordinal}.
struct OutputColumn {
  BoundExpr expr;
  std::string name;
  ColumnId id;
};

/// One aggregate computed by a GROUP BY box.
struct AggregateSpec {
  AggFunc func = AggFunc::kSum;
  bool distinct = false;
  bool count_star = false;
  BoundExpr arg;  ///< ignored for count(*)
  ColumnId output;
  std::string name;
};

/// A QGM box: SELECT (join + predicates + projection + optional DISTINCT
/// and output order requirement), GROUP BY, or UNION (§3: "the basic set
/// of boxes include those for SELECT, GROUP BY, and UNION"). ORDER BY is
/// represented as the output order requirement of a box; GROUP BY's need
/// for an ordered input is its *input order requirement*, which stays a
/// degree-of-freedom (general) order so hash-based grouping remains an
/// alternative. A UNION box's quantifiers are its branches; `distinct`
/// distinguishes UNION from UNION ALL, and its outputs are fresh columns
/// (values mix across branches, so no pass-through identity).
struct QgmBox {
  enum class Kind { kSelect, kGroupBy, kUnion };

  Kind kind = Kind::kSelect;
  int vid = -1;  ///< virtual table id for computed outputs

  // kSelect.
  std::vector<Quantifier> quantifiers;
  std::vector<Predicate> predicates;
  /// LEFT OUTER JOIN steps applied (in order) after the inner-join block.
  std::vector<OuterJoinStep> outer_joins;
  bool distinct = false;
  /// ORDER BY of this box (empty unless this is a top box with ORDER BY).
  OrderSpec output_order_requirement;
  /// LIMIT of this box; -1 = none. Applies after ordering.
  int64_t limit = -1;

  // kGroupBy (quantifiers.size() == 1).
  std::vector<ColumnId> group_columns;
  std::vector<AggregateSpec> aggregates;

  std::vector<OutputColumn> outputs;

  /// All output ColumnIds.
  ColumnSet OutputColumns() const;

  /// Finds the output ordinal producing `id`; -1 when absent.
  int FindOutput(const ColumnId& id) const;
};

/// A bound query: the box tree plus naming/typing metadata for every
/// ColumnId minted during binding.
struct Query {
  QgmBox* root = nullptr;
  std::vector<std::unique_ptr<QgmBox>> boxes;

  /// Display name ("o.orderdate", "rev") per ColumnId.
  std::unordered_map<ColumnId, std::string, ColumnIdHash> column_names;
  /// Type per ColumnId.
  std::unordered_map<ColumnId, DataType, ColumnIdHash> column_types;
  /// Base table per table-instance id (for access-path selection).
  std::unordered_map<int, const Table*> base_tables;

  int next_table_id = 0;

  QgmBox* NewBox(QgmBox::Kind kind);
  int AllocTableId() { return next_table_id++; }

  ColumnNamer namer() const;
  DataType TypeOf(const ColumnId& id) const;

  /// Multi-line rendering of the box tree (diagnostics, Figure-1-style).
  std::string ToString() const;
};

}  // namespace ordopt

#endif  // ORDOPT_QGM_QGM_H_
