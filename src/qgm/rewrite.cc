#include "qgm/rewrite.h"

namespace ordopt {

namespace {

// A child box can merge into its parent when it is a plain select whose
// outputs all pass through inner columns unchanged.
bool IsMergeable(const QgmBox* child) {
  if (child->kind != QgmBox::Kind::kSelect) return false;
  if (child->distinct || child->limit >= 0) return false;
  for (const OutputColumn& oc : child->outputs) {
    if (!oc.expr.IsColumn() || oc.expr.column() != oc.id) return false;
  }
  return true;
}

// Merges mergeable quantifiers of `box`; returns true if anything changed.
bool MergeInto(QgmBox* box) {
  bool changed = false;
  std::vector<Quantifier> merged;
  for (Quantifier& q : box->quantifiers) {
    if (q.IsBase() || !IsMergeable(q.input)) {
      merged.push_back(std::move(q));
      continue;
    }
    QgmBox* child = q.input;
    for (Quantifier& cq : child->quantifiers) {
      merged.push_back(std::move(cq));
    }
    child->quantifiers.clear();
    for (Predicate& p : child->predicates) {
      box->predicates.push_back(std::move(p));
    }
    child->predicates.clear();
    changed = true;
  }
  box->quantifiers = std::move(merged);
  return changed;
}

void Walk(QgmBox* box, bool* changed) {
  for (Quantifier& q : box->quantifiers) {
    if (!q.IsBase()) Walk(q.input, changed);
  }
  // Null-supplying derived tables are planned as units, never merged
  // (merging would hoist their predicates above the outer join).
  for (OuterJoinStep& step : box->outer_joins) {
    if (!step.quantifier.IsBase()) Walk(step.quantifier.input, changed);
  }
  if (box->kind == QgmBox::Kind::kSelect && MergeInto(box)) *changed = true;
}

}  // namespace

void MergeDerivedTables(Query* query) {
  bool changed = true;
  while (changed) {
    changed = false;
    Walk(query->root, &changed);
  }
}

}  // namespace ordopt
