#include "qgm/predicate.h"

namespace ordopt {

namespace {

bool IsComparison(BinOp op) {
  switch (op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      return true;
    default:
      return false;
  }
}

// Flips the comparison when operands are swapped (const <op> col form).
BinOp Mirror(BinOp op) {
  switch (op) {
    case BinOp::kLt:
      return BinOp::kGt;
    case BinOp::kLe:
      return BinOp::kGe;
    case BinOp::kGt:
      return BinOp::kLt;
    case BinOp::kGe:
      return BinOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

}  // namespace

Predicate ClassifyPredicate(BoundExpr conjunct) {
  Predicate p;
  conjunct.CollectColumns(&p.referenced);

  if (conjunct.kind() == BoundExpr::Kind::kBinary &&
      IsComparison(conjunct.op())) {
    const BoundExpr& l = conjunct.left();
    const BoundExpr& r = conjunct.right();
    if (l.IsColumn() && r.IsColumn()) {
      p.left_col = l.column();
      p.right_col = r.column();
      p.cmp = conjunct.op();
      p.kind = conjunct.op() == BinOp::kEq ? Predicate::Kind::kColEqCol
                                           : Predicate::Kind::kColCmpCol;
      p.default_selectivity = conjunct.op() == BinOp::kEq ? 0.1 : 0.3;
    } else if (l.IsColumn() && r.kind() == BoundExpr::Kind::kLiteral) {
      p.left_col = l.column();
      p.constant = r.literal();
      p.cmp = conjunct.op();
      p.kind = conjunct.op() == BinOp::kEq ? Predicate::Kind::kColEqConst
                                           : Predicate::Kind::kColCmpConst;
      p.default_selectivity = conjunct.op() == BinOp::kEq ? 0.05 : 0.33;
    } else if (r.IsColumn() && l.kind() == BoundExpr::Kind::kLiteral) {
      p.left_col = r.column();
      p.constant = l.literal();
      p.cmp = Mirror(conjunct.op());
      p.kind = conjunct.op() == BinOp::kEq ? Predicate::Kind::kColEqConst
                                           : Predicate::Kind::kColCmpConst;
      p.default_selectivity = conjunct.op() == BinOp::kEq ? 0.05 : 0.33;
    } else {
      p.kind = Predicate::Kind::kGeneric;
      p.default_selectivity = 0.25;
    }
  } else {
    p.kind = Predicate::Kind::kGeneric;
    p.default_selectivity = 0.25;
  }
  p.expr = std::move(conjunct);
  return p;
}

}  // namespace ordopt
