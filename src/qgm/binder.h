#ifndef ORDOPT_QGM_BINDER_H_
#define ORDOPT_QGM_BINDER_H_

#include <memory>

#include "common/status.h"
#include "parser/ast.h"
#include "qgm/qgm.h"
#include "storage/database.h"

namespace ordopt {

/// Binds a parsed SELECT statement against the database catalog and builds
/// the QGM box tree (§3): a SELECT box for the join block; a GROUP BY box
/// plus a finishing SELECT box when the query aggregates; nested boxes for
/// derived tables. ORDER BY becomes the top box's output order requirement.
///
/// Semantic rules enforced here: every name resolves unambiguously; in a
/// grouped query, non-aggregate select/order-by columns must be grouping
/// columns; GROUP BY items must be plain columns; `*` is incompatible with
/// grouping.
Result<std::unique_ptr<Query>> BindQuery(const SelectStmt& stmt,
                                         const Database& db);

}  // namespace ordopt

#endif  // ORDOPT_QGM_BINDER_H_
