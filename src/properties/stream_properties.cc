#include "properties/stream_properties.h"

#include "common/str_util.h"

namespace ordopt {

std::string StreamProperties::ToString(const ColumnNamer& namer) const {
  std::string out = "order" + order.ToString(namer);
  out += " " + keys.ToString(namer);
  out += StrFormat(" card=%.0f", cardinality);
  return out;
}

StreamProperties BaseTableProperties(const Table& table, int table_id) {
  StreamProperties props;
  const TableDef& def = table.def();
  for (size_t i = 0; i < def.columns.size(); ++i) {
    props.columns.Add(ColumnId(table_id, static_cast<int32_t>(i)));
  }
  for (const std::vector<int>& key : def.unique_keys) {
    ColumnSet key_cols;
    for (int ord : key) key_cols.Add(ColumnId(table_id, ord));
    props.keys.AddKey(key_cols);
    props.fds.AddKey(key_cols, props.columns);
  }
  // Unique indexes are keys too.
  for (const IndexDef& idx : def.indexes) {
    if (!idx.unique) continue;
    ColumnSet key_cols;
    for (int ord : idx.column_ordinals) key_cols.Add(ColumnId(table_id, ord));
    props.keys.AddKey(key_cols);
    props.fds.AddKey(key_cols, props.columns);
  }
  props.cardinality = static_cast<double>(table.row_count());
  return props;
}

void ApplyPredicate(StreamProperties* props, const Predicate& pred,
                    double selectivity) {
  switch (pred.kind) {
    case Predicate::Kind::kColEqCol:
      props->eq.AddEquivalence(pred.left_col, pred.right_col);
      break;
    case Predicate::Kind::kColEqConst:
      props->eq.AddConstant(pred.left_col, pred.constant);
      break;
    default:
      break;
  }
  props->cardinality *= selectivity;
  if (props->cardinality < 1.0) props->cardinality = 1.0;
  // Key columns bound to constants stop discriminating; a fully bound key
  // collapses the property to the one-record condition.
  props->keys.Simplify(props->eq);
}

StreamProperties JoinProperties(
    const StreamProperties& outer, const StreamProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs,
    bool preserves_outer_order, double cardinality) {
  StreamProperties props;
  props.columns = outer.columns.Union(inner.columns);
  props.eq = outer.eq;
  props.eq.MergeFrom(inner.eq);
  props.fds = outer.fds;
  props.fds.MergeFrom(inner.fds);
  props.keys = KeyProperty::PropagateJoin(outer.keys, inner.keys, join_pairs);
  props.keys.Simplify(props.eq);
  if (preserves_outer_order) props.order = outer.order;
  props.cardinality = cardinality;
  return props;
}

StreamProperties LeftJoinProperties(
    const StreamProperties& outer, const StreamProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& on_pairs,
    bool preserves_outer_order, double cardinality) {
  StreamProperties props;
  props.columns = outer.columns.Union(inner.columns);
  props.eq = outer.eq;
  props.eq.MergeEquivalencesFrom(inner.eq);
  props.fds = outer.fds;
  props.fds.MergeFrom(inner.fds);
  // §4.1: {preserved} -> {null-supplying} per equality ON predicate.
  for (const auto& [p, n] : on_pairs) {
    props.fds.Add(ColumnSet{p}, ColumnSet{n});
  }
  // Keys: n-to-1 (some inner key fully covered by ON columns) keeps the
  // outer's keys; otherwise concatenate.
  ColumnSet inner_on_cols;
  for (const auto& [p, n] : on_pairs) {
    (void)p;
    inner_on_cols.Add(n);
  }
  if (inner.keys.IsUniqueOn(inner_on_cols)) {
    props.keys = outer.keys;
  } else {
    for (const ColumnSet& ko : outer.keys.keys()) {
      for (const ColumnSet& ki : inner.keys.keys()) {
        props.keys.AddKey(ko.Union(ki));
      }
    }
  }
  props.keys.Simplify(props.eq);
  if (preserves_outer_order) props.order = outer.order;
  props.cardinality = cardinality;
  return props;
}

StreamProperties SortProperties(const StreamProperties& input,
                                const OrderSpec& spec) {
  StreamProperties props = input;
  props.order = spec;
  return props;
}

StreamProperties GroupByProperties(const StreamProperties& input,
                                   const std::vector<ColumnId>& group_columns,
                                   const ColumnSet& aggregate_outputs,
                                   bool preserves_order, double cardinality) {
  StreamProperties props;
  ColumnSet group_set;
  for (const ColumnId& c : group_columns) group_set.Add(c);
  props.columns = group_set.Union(aggregate_outputs);
  props.eq = input.eq;
  props.fds = input.fds;
  // After grouping, the grouping columns identify each output record and
  // determine the aggregate outputs.
  props.keys.AddKey(group_set);
  props.keys.Simplify(props.eq);
  props.fds.Add(group_set, props.columns);
  if (preserves_order) {
    props.order = input.order;
  }
  props.cardinality = cardinality;
  return props;
}

StreamProperties DistinctProperties(const StreamProperties& input,
                                    const ColumnSet& distinct_columns,
                                    bool preserves_order, double cardinality) {
  StreamProperties props = input;
  props.columns = distinct_columns;
  props.keys.AddKey(distinct_columns);
  props.keys.Simplify(props.eq);
  if (!preserves_order) props.order = OrderSpec();
  props.cardinality = cardinality;
  props.keys.Project(distinct_columns);
  // Re-add: Project may have dropped the new key if it referenced invisible
  // columns — it cannot (distinct_columns are visible), but keep keys valid.
  props.keys.AddKey(distinct_columns);
  return props;
}

StreamProperties ProjectProperties(const StreamProperties& input,
                                   const ColumnSet& visible) {
  StreamProperties props = input;
  props.columns = visible;
  props.keys.Project(visible);
  // Truncate the order property at the first invisible column that has no
  // visible equivalent.
  OrderSpec truncated;
  for (const OrderElement& e : input.order) {
    if (visible.Contains(e.col)) {
      truncated.Append(e);
      continue;
    }
    bool substituted = false;
    for (const ColumnId& member : input.eq.ClassMembers(e.col)) {
      if (visible.Contains(member)) {
        truncated.Append(OrderElement(member, e.dir));
        substituted = true;
        break;
      }
    }
    if (!substituted) break;
  }
  props.order = truncated;
  return props;
}

}  // namespace ordopt
