#include "properties/plan_properties.h"

#include <atomic>

#include "common/str_util.h"

namespace ordopt {

namespace {
// Process-wide epoch source. Epoch 0 is reserved for "unstamped", so the
// counter starts at 1.
std::atomic<uint64_t> g_next_epoch{1};
}  // namespace

OrderContext PlanProperties::Context(bool transitive_fds) const {
  uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (epoch == 0) {
    // First stamp wins: concurrent callers racing on an unstamped bundle
    // CAS a fresh epoch in, and the losers adopt the winner's value so
    // every thread sees one identity for this content.
    uint64_t fresh = g_next_epoch.fetch_add(1, std::memory_order_relaxed);
    if (epoch_.compare_exchange_strong(epoch, fresh,
                                       std::memory_order_relaxed)) {
      epoch = fresh;
    }
    // On failure compare_exchange loaded the winner's epoch into `epoch`.
  }
  OrderContext ctx;
  ctx.eq = eq_;
  ctx.fds = fds_;
  ctx.transitive_fds = transitive_fds;
  ctx.epoch = epoch;
  return ctx;
}

std::string PlanProperties::ToString(const ColumnNamer& namer) const {
  std::string out = "order" + order.ToString(namer);
  out += " " + keys.ToString(namer);
  out += StrFormat(" card=%.0f", cardinality);
  return out;
}

PlanProperties BaseTableProperties(const Table& table, int table_id) {
  PlanProperties props;
  const TableDef& def = table.def();
  for (size_t i = 0; i < def.columns.size(); ++i) {
    props.columns.Add(ColumnId(table_id, static_cast<int32_t>(i)));
  }
  FDSet& fds = props.mutable_fds();
  for (const std::vector<int>& key : def.unique_keys) {
    ColumnSet key_cols;
    for (int ord : key) key_cols.Add(ColumnId(table_id, ord));
    props.keys.AddKey(key_cols);
    fds.AddKey(key_cols, props.columns);
  }
  // Unique indexes are keys too.
  for (const IndexDef& idx : def.indexes) {
    if (!idx.unique) continue;
    ColumnSet key_cols;
    for (int ord : idx.column_ordinals) key_cols.Add(ColumnId(table_id, ord));
    props.keys.AddKey(key_cols);
    fds.AddKey(key_cols, props.columns);
  }
  props.cardinality = static_cast<double>(table.row_count());
  return props;
}

void ApplyPredicate(PlanProperties* props, const Predicate& pred,
                    double selectivity) {
  switch (pred.kind) {
    case Predicate::Kind::kColEqCol:
      props->mutable_eq().AddEquivalence(pred.left_col, pred.right_col);
      break;
    case Predicate::Kind::kColEqConst:
      props->mutable_eq().AddConstant(pred.left_col, pred.constant);
      break;
    default:
      break;
  }
  props->cardinality *= selectivity;
  if (props->cardinality < 1.0) props->cardinality = 1.0;
  // Key columns bound to constants stop discriminating; a fully bound key
  // collapses the property to the one-record condition.
  props->keys.Simplify(props->eq());
}

PlanProperties JoinProperties(
    const PlanProperties& outer, const PlanProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs,
    bool preserves_outer_order, double cardinality) {
  PlanProperties props;
  props.columns = outer.columns.Union(inner.columns);
  {
    EquivalenceClasses& eq = props.mutable_eq();
    eq = outer.eq();
    eq.MergeFrom(inner.eq());
    FDSet& fds = props.mutable_fds();
    fds = outer.fds();
    fds.MergeFrom(inner.fds());
  }
  props.keys = KeyProperty::PropagateJoin(outer.keys, inner.keys, join_pairs);
  props.keys.Simplify(props.eq());
  if (preserves_outer_order) props.order = outer.order;
  props.cardinality = cardinality;
  return props;
}

PlanProperties LeftJoinProperties(
    const PlanProperties& outer, const PlanProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& on_pairs,
    bool preserves_outer_order, double cardinality) {
  PlanProperties props;
  props.columns = outer.columns.Union(inner.columns);
  {
    EquivalenceClasses& eq = props.mutable_eq();
    eq = outer.eq();
    eq.MergeEquivalencesFrom(inner.eq());
    FDSet& fds = props.mutable_fds();
    fds = outer.fds();
    fds.MergeFrom(inner.fds());
    // §4.1: {preserved} -> {null-supplying} per equality ON predicate.
    for (const auto& [p, n] : on_pairs) {
      fds.Add(ColumnSet{p}, ColumnSet{n});
    }
  }
  // Keys: n-to-1 (some inner key fully covered by ON columns) keeps the
  // outer's keys; otherwise concatenate.
  ColumnSet inner_on_cols;
  for (const auto& [p, n] : on_pairs) {
    (void)p;
    inner_on_cols.Add(n);
  }
  if (inner.keys.IsUniqueOn(inner_on_cols)) {
    props.keys = outer.keys;
  } else {
    for (const ColumnSet& ko : outer.keys.keys()) {
      for (const ColumnSet& ki : inner.keys.keys()) {
        props.keys.AddKey(ko.Union(ki));
      }
    }
  }
  props.keys.Simplify(props.eq());
  if (preserves_outer_order) props.order = outer.order;
  props.cardinality = cardinality;
  return props;
}

PlanProperties SortProperties(const PlanProperties& input,
                              const OrderSpec& spec) {
  PlanProperties props = input;
  props.order = spec;
  return props;
}

PlanProperties GroupByProperties(const PlanProperties& input,
                                 const std::vector<ColumnId>& group_columns,
                                 const ColumnSet& aggregate_outputs,
                                 bool preserves_order, double cardinality) {
  PlanProperties props;
  ColumnSet group_set;
  for (const ColumnId& c : group_columns) group_set.Add(c);
  props.columns = group_set.Union(aggregate_outputs);
  props.mutable_eq() = input.eq();
  props.mutable_fds() = input.fds();
  // After grouping, the grouping columns identify each output record and
  // determine the aggregate outputs.
  props.keys.AddKey(group_set);
  props.keys.Simplify(props.eq());
  props.mutable_fds().Add(group_set, props.columns);
  if (preserves_order) {
    props.order = input.order;
  }
  props.cardinality = cardinality;
  return props;
}

PlanProperties DistinctProperties(const PlanProperties& input,
                                  const ColumnSet& distinct_columns,
                                  bool preserves_order, double cardinality) {
  PlanProperties props = input;
  props.columns = distinct_columns;
  props.keys.AddKey(distinct_columns);
  props.keys.Simplify(props.eq());
  if (!preserves_order) props.order = OrderSpec();
  props.cardinality = cardinality;
  props.keys.Project(distinct_columns);
  // Re-add: Project may have dropped the new key if it referenced invisible
  // columns — it cannot (distinct_columns are visible), but keep keys valid.
  props.keys.AddKey(distinct_columns);
  return props;
}

PlanProperties ExchangeProperties(const PlanProperties& input, bool merge) {
  PlanProperties props = input;
  if (!merge) props.order = OrderSpec();
  return props;
}

PlanProperties ProjectProperties(const PlanProperties& input,
                                 const ColumnSet& visible) {
  PlanProperties props = input;
  props.columns = visible;
  props.keys.Project(visible);
  // Truncate the order property at the first invisible column that has no
  // visible equivalent.
  OrderSpec truncated;
  for (const OrderElement& e : input.order) {
    if (visible.Contains(e.col)) {
      truncated.Append(e);
      continue;
    }
    bool substituted = false;
    for (const ColumnId& member : input.eq().ClassMembers(e.col)) {
      if (visible.Contains(member)) {
        truncated.Append(OrderElement(member, e.dir));
        substituted = true;
        break;
      }
    }
    if (!substituted) break;
  }
  props.order = truncated;
  return props;
}

}  // namespace ordopt
