#ifndef ORDOPT_PROPERTIES_PLAN_PROPERTIES_H_
#define ORDOPT_PROPERTIES_PLAN_PROPERTIES_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "orderopt/equivalence.h"
#include "orderopt/fd.h"
#include "orderopt/key_property.h"
#include "orderopt/operations.h"
#include "orderopt/order_spec.h"
#include "qgm/predicate.h"
#include "storage/table.h"

namespace ordopt {

/// The unified property bundle of one candidate plan (§3, §5.2.1): the
/// visible columns, the physical order, the equivalence classes and
/// constants implied by applied predicates, the functional dependencies,
/// the key property, the cardinality estimate, and the estimated cost.
/// Every physical operator derives its output properties from its inputs
/// through the functions below; the planner compares candidates on
/// (cost, order) and reasons about orders through Context().
///
/// The equivalence classes and FDs are private because their content
/// defines the plan's *reduction context identity*: the first Context()
/// call stamps the current (eq, fds) content with a process-unique epoch,
/// and the ReduceCache memoizes Reduce/Test Order results keyed by that
/// epoch. Copies inherit the epoch (same content, same identity); any
/// mutation through mutable_eq()/mutable_fds() resets it, so a later
/// Context() re-stamps and stale cache entries are simply never hit.
class PlanProperties {
 public:
  PlanProperties() = default;
  // The epoch is an atomic (lazy stamping may race between threads reading
  // a shared plan), which deletes the implicit copy/move members; copies
  // transfer the stamped value — same content, same identity.
  PlanProperties(const PlanProperties& o)
      : columns(o.columns),
        order(o.order),
        keys(o.keys),
        cardinality(o.cardinality),
        cost(o.cost),
        eq_(o.eq_),
        fds_(o.fds_),
        epoch_(o.epoch_.load(std::memory_order_relaxed)) {}
  PlanProperties(PlanProperties&& o) noexcept
      : columns(std::move(o.columns)),
        order(std::move(o.order)),
        keys(std::move(o.keys)),
        cardinality(o.cardinality),
        cost(o.cost),
        eq_(std::move(o.eq_)),
        fds_(std::move(o.fds_)),
        epoch_(o.epoch_.load(std::memory_order_relaxed)) {}
  PlanProperties& operator=(const PlanProperties& o) {
    if (this == &o) return *this;
    columns = o.columns;
    order = o.order;
    keys = o.keys;
    cardinality = o.cardinality;
    cost = o.cost;
    eq_ = o.eq_;
    fds_ = o.fds_;
    epoch_.store(o.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }
  PlanProperties& operator=(PlanProperties&& o) noexcept {
    columns = std::move(o.columns);
    order = std::move(o.order);
    keys = std::move(o.keys);
    cardinality = o.cardinality;
    cost = o.cost;
    eq_ = std::move(o.eq_);
    fds_ = std::move(o.fds_);
    epoch_.store(o.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  ColumnSet columns;
  OrderSpec order;  ///< physical order; originates from index or sort
  KeyProperty keys;
  double cardinality = 0.0;
  double cost = 0.0;  ///< estimated cost of the subtree producing this stream

  const EquivalenceClasses& eq() const { return eq_; }
  const FDSet& fds() const { return fds_; }

  /// Mutable access to the predicate-derived state. Invalidates the cached
  /// context identity — call once and batch edits rather than interleaving
  /// with Context().
  EquivalenceClasses& mutable_eq() {
    epoch_.store(0, std::memory_order_relaxed);
    return eq_;
  }
  FDSet& mutable_fds() {
    epoch_.store(0, std::memory_order_relaxed);
    return fds_;
  }

  /// The reduction context for order operations over this stream, carrying
  /// the epoch that keys the ReduceCache. Lazily assigns a fresh epoch when
  /// the current content has none yet.
  OrderContext Context(bool transitive_fds = false) const;

  /// One-record streams satisfy every order (§5.2.1).
  bool IsOneRecord() const { return keys.IsOneRecord(); }

  std::string ToString(const ColumnNamer& namer = nullptr) const;

 private:
  EquivalenceClasses eq_;
  FDSet fds_;
  /// Context identity of the current (eq_, fds_) content; 0 = unstamped.
  /// Mutable: stamping happens inside const Context(). Atomic with a CAS
  /// stamp so concurrent Context() calls on a shared (e.g. plan-cached)
  /// property bundle agree on one epoch without a data race.
  mutable std::atomic<uint64_t> epoch_{0};
};

/// Properties of a base-table access with instance id `table_id`: columns,
/// declared-key FDs and key property; order empty (heap) — index-scan order
/// is layered on by the caller.
PlanProperties BaseTableProperties(const Table& table, int table_id);

/// Applies one predicate: updates equivalence classes / constants, scales
/// cardinality by `selectivity`, and re-simplifies the key property (which
/// may collapse to the one-record condition, §5.2.1).
void ApplyPredicate(PlanProperties* props, const Predicate& pred,
                    double selectivity);

/// Properties of a join: merged equivalences and FDs, propagated keys
/// (n-to-1 analysis over `join_pairs`), concatenated columns. The outer
/// order survives only when `preserves_outer_order` (nested-loop and merge
/// joins; not hash join). Join predicates must additionally be applied by
/// the caller via ApplyPredicate.
PlanProperties JoinProperties(
    const PlanProperties& outer, const PlanProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs,
    bool preserves_outer_order, double cardinality);

/// Properties of a LEFT OUTER JOIN (outer = preserved side, inner =
/// null-supplying side), per §4.1's outer-join rule: each equality ON pair
/// (p, n) contributes only the one-way FD {p} -> {n}; the inner side's
/// equivalence classes survive (NULLs compare equal) but its constant
/// bindings do not; inner keys never propagate alone (null-extended rows
/// collide on them) — outer keys survive when the join is n-to-1,
/// otherwise concatenated pairs are used.
PlanProperties LeftJoinProperties(
    const PlanProperties& outer, const PlanProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& on_pairs,
    bool preserves_outer_order, double cardinality);

/// Properties after sorting on `spec`: order replaced, rest unchanged.
PlanProperties SortProperties(const PlanProperties& input,
                              const OrderSpec& spec);

/// Properties after grouping: visible columns become the group columns and
/// aggregate outputs; the group columns form a key; {group} -> {aggregates}
/// joins the FDs. `preserves_order` is true for the streaming (sort-based)
/// implementation.
PlanProperties GroupByProperties(const PlanProperties& input,
                                 const std::vector<ColumnId>& group_columns,
                                 const ColumnSet& aggregate_outputs,
                                 bool preserves_order, double cardinality);

/// Properties after duplicate elimination over `distinct_columns`.
PlanProperties DistinctProperties(const PlanProperties& input,
                                  const ColumnSet& distinct_columns,
                                  bool preserves_order, double cardinality);

/// Properties of an exchange over morsel-parallel workers each running a
/// copy of the child subtree. The merge variant recombines the per-worker
/// streams into the serial row sequence, so every property of the input —
/// including the physical order — survives; the unordered union variant
/// interleaves worker batches arbitrarily and must drop the order claim
/// (everything row-content-derived — columns, keys, eq/FDs, cardinality —
/// still holds of the union).
PlanProperties ExchangeProperties(const PlanProperties& input, bool merge);

/// Properties after projecting to `visible`: keys project (§5.2.1), and the
/// order property is truncated at the first column that is no longer
/// visible (and cannot be substituted via an equivalence class).
PlanProperties ProjectProperties(const PlanProperties& input,
                                 const ColumnSet& visible);

}  // namespace ordopt

#endif  // ORDOPT_PROPERTIES_PLAN_PROPERTIES_H_
