#ifndef ORDOPT_PROPERTIES_STREAM_PROPERTIES_H_
#define ORDOPT_PROPERTIES_STREAM_PROPERTIES_H_

#include <string>
#include <vector>

#include "orderopt/equivalence.h"
#include "orderopt/fd.h"
#include "orderopt/key_property.h"
#include "orderopt/operations.h"
#include "orderopt/order_spec.h"
#include "qgm/predicate.h"
#include "storage/table.h"

namespace ordopt {

/// The properties of one plan stream (§3, §5.2.1): the visible columns,
/// the physical order, the equivalence classes and constants implied by the
/// applied predicates, the functional dependencies, the key property, and
/// the cardinality estimate. Every physical operator derives its output
/// properties from its inputs through the functions below.
struct StreamProperties {
  ColumnSet columns;
  OrderSpec order;         ///< physical order; originates from index or sort
  EquivalenceClasses eq;   ///< from applied predicates
  FDSet fds;
  KeyProperty keys;
  double cardinality = 0.0;

  /// The reduction context for order operations over this stream.
  OrderContext MakeContext(bool transitive_fds = false) const {
    OrderContext ctx;
    ctx.eq = eq;
    ctx.fds = fds;
    ctx.transitive_fds = transitive_fds;
    return ctx;
  }

  /// One-record streams satisfy every order (§5.2.1).
  bool IsOneRecord() const { return keys.IsOneRecord(); }

  std::string ToString(const ColumnNamer& namer = nullptr) const;
};

/// Properties of a base-table access with instance id `table_id`: columns,
/// declared-key FDs and key property; order empty (heap) — index-scan order
/// is layered on by the caller.
StreamProperties BaseTableProperties(const Table& table, int table_id);

/// Applies one predicate: updates equivalence classes / constants, scales
/// cardinality by `selectivity`, and re-simplifies the key property (which
/// may collapse to the one-record condition, §5.2.1).
void ApplyPredicate(StreamProperties* props, const Predicate& pred,
                    double selectivity);

/// Properties of a join: merged equivalences and FDs, propagated keys
/// (n-to-1 analysis over `join_pairs`), concatenated columns. The outer
/// order survives only when `preserves_outer_order` (nested-loop and merge
/// joins; not hash join). Join predicates must additionally be applied by
/// the caller via ApplyPredicate.
StreamProperties JoinProperties(
    const StreamProperties& outer, const StreamProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs,
    bool preserves_outer_order, double cardinality);

/// Properties of a LEFT OUTER JOIN (outer = preserved side, inner =
/// null-supplying side), per §4.1's outer-join rule: each equality ON pair
/// (p, n) contributes only the one-way FD {p} -> {n}; the inner side's
/// equivalence classes survive (NULLs compare equal) but its constant
/// bindings do not; inner keys never propagate alone (null-extended rows
/// collide on them) — outer keys survive when the join is n-to-1,
/// otherwise concatenated pairs are used.
StreamProperties LeftJoinProperties(
    const StreamProperties& outer, const StreamProperties& inner,
    const std::vector<std::pair<ColumnId, ColumnId>>& on_pairs,
    bool preserves_outer_order, double cardinality);

/// Properties after sorting on `spec`: order replaced, rest unchanged.
StreamProperties SortProperties(const StreamProperties& input,
                                const OrderSpec& spec);

/// Properties after grouping: visible columns become the group columns and
/// aggregate outputs; the group columns form a key; {group} -> {aggregates}
/// joins the FDs. `preserves_order` is true for the streaming (sort-based)
/// implementation.
StreamProperties GroupByProperties(const StreamProperties& input,
                                   const std::vector<ColumnId>& group_columns,
                                   const ColumnSet& aggregate_outputs,
                                   bool preserves_order, double cardinality);

/// Properties after duplicate elimination over `distinct_columns`.
StreamProperties DistinctProperties(const StreamProperties& input,
                                    const ColumnSet& distinct_columns,
                                    bool preserves_order, double cardinality);

/// Properties after projecting to `visible`: keys project (§5.2.1), and the
/// order property is truncated at the first column that is no longer
/// visible (and cannot be substituted via an equivalence class).
StreamProperties ProjectProperties(const StreamProperties& input,
                                   const ColumnSet& visible);

}  // namespace ordopt

#endif  // ORDOPT_PROPERTIES_STREAM_PROPERTIES_H_
