#ifndef ORDOPT_COMMON_RANDOM_H_
#define ORDOPT_COMMON_RANDOM_H_

#include <cstdint>

namespace ordopt {

/// Deterministic 64-bit PRNG (splitmix64 core). Used by the TPC-D data
/// generator and the property tests so every run is reproducible without
/// depending on std::random_device or platform distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() %
                                     static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace ordopt

#endif  // ORDOPT_COMMON_RANDOM_H_
