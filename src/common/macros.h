#ifndef ORDOPT_COMMON_MACROS_H_
#define ORDOPT_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Checked invariant: aborts with a message when `cond` is false.
/// Used for internal invariants that indicate programming errors, never for
/// user-input validation (which must go through Status).
#define ORDOPT_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ORDOPT_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Like ORDOPT_CHECK but with a custom printf-style message.
#define ORDOPT_CHECK_MSG(cond, ...)                                          \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "ORDOPT_CHECK failed at %s:%d: %s: ", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::fprintf(stderr, __VA_ARGS__);                                     \
      std::fprintf(stderr, "\n");                                            \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagates a non-OK Status from an expression returning Status.
#define ORDOPT_RETURN_NOT_OK(expr)                                           \
  do {                                                                       \
    ::ordopt::Status _st = (expr);                                           \
    if (!_st.ok()) return _st;                                               \
  } while (0)

/// Evaluates an expression returning Result<T>; on error returns the Status,
/// otherwise assigns the value to `lhs`.
#define ORDOPT_ASSIGN_OR_RETURN(lhs, expr)                                   \
  auto ORDOPT_CONCAT_(_res_, __LINE__) = (expr);                             \
  if (!ORDOPT_CONCAT_(_res_, __LINE__).ok())                                 \
    return ORDOPT_CONCAT_(_res_, __LINE__).status();                         \
  lhs = std::move(ORDOPT_CONCAT_(_res_, __LINE__)).value_unsafe();

#define ORDOPT_CONCAT_IMPL_(a, b) a##b
#define ORDOPT_CONCAT_(a, b) ORDOPT_CONCAT_IMPL_(a, b)

#endif  // ORDOPT_COMMON_MACROS_H_
