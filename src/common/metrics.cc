#include "common/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/str_util.h"
#include "common/trace.h"

namespace ordopt {

namespace {

/// Highest set bit position + 1 (bit_width); 0 for 0.
int BitWidth(uint64_t v) {
  int w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.6g", v);
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter

int Counter::ShardIndex() {
  // Round-robin shard assignment, decided once per thread: cheaper and
  // better distributed than hashing thread ids on every record.
  static std::atomic<unsigned> next{0};
  static thread_local int shard = static_cast<int>(
      next.fetch_add(1, std::memory_order_relaxed) % kShards);
  return shard;
}

// ---------------------------------------------------------------------------
// Histogram

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  uint64_t v = static_cast<uint64_t>(value);
  if (v < static_cast<uint64_t>(kSubBuckets)) return static_cast<int>(v);
  int shift = BitWidth(v) - 1 - kSubBucketBits;
  int index = (shift + 1) * kSubBuckets +
              static_cast<int>((v >> shift) - kSubBuckets);
  return index < kBucketCount ? index : kBucketCount - 1;
}

int64_t Histogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) return bucket;
  int shift = bucket / kSubBuckets - 1;
  int64_t base = kSubBuckets + bucket % kSubBuckets;
  return base << shift;
}

int64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket + 1 >= kBucketCount) return INT64_MAX;
  return BucketLowerBound(bucket + 1) - 1;
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  Shard& s = shards_[Counter::ShardIndex()];
  s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  // min/max: monotone CAS races only with same-shard writers. The shard's
  // first record initializes both (count is bumped last, so a racing
  // Snap() may miss this value entirely — never see a torn min).
  int64_t prev = s.count.load(std::memory_order_relaxed);
  if (prev == 0) {
    s.min.store(value, std::memory_order_relaxed);
    s.max.store(value, std::memory_order_relaxed);
  } else {
    int64_t cur = s.min.load(std::memory_order_relaxed);
    while (value < cur &&
           !s.min.compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
    }
    cur = s.max.load(std::memory_order_relaxed);
    while (value > cur &&
           !s.max.compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
    }
  }
  s.count.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snap() const {
  HistogramSnapshot out;
  out.buckets.assign(kBucketCount, 0);
  bool any = false;
  for (const Shard& s : shards_) {
    int64_t c = s.count.load(std::memory_order_relaxed);
    if (c == 0) continue;
    out.count += c;
    out.sum += s.sum.load(std::memory_order_relaxed);
    int64_t mn = s.min.load(std::memory_order_relaxed);
    int64_t mx = s.max.load(std::memory_order_relaxed);
    if (!any || mn < out.min) out.min = mn;
    if (!any || mx > out.max) out.max = mx;
    any = true;
    for (int b = 0; b < kBucketCount; ++b) {
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count <= 0 || buckets.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  // 0-based target rank, matching idx = p * (n - 1) of the historical
  // nth_element percentiles.
  int64_t target = static_cast<int64_t>(p * static_cast<double>(count - 1));
  int64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    int64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (seen + in_bucket > target) {
      // Rank lands in this bucket: interpolate linearly across it.
      int64_t lower = Histogram::BucketLowerBound(static_cast<int>(b));
      int64_t upper = Histogram::BucketUpperBound(static_cast<int>(b));
      if (upper == INT64_MAX) upper = lower;  // overflow bucket: no width
      // Clamp the bucket to the observed range so tails never exceed max.
      int64_t lo = std::max(lower, min);
      int64_t hi = std::min(upper, max);
      if (hi < lo) {
        lo = lower;
        hi = upper;
      }
      double frac =
          in_bucket <= 1
              ? 0.0
              : static_cast<double>(target - seen) /
                    static_cast<double>(in_bucket - 1);
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  out.count = count - earlier.count;
  out.sum = sum - earlier.sum;
  // Interval min/max are not derivable from cumulative snapshots; report
  // the cumulative ones (documented in the header).
  out.min = min;
  out.max = max;
  out.buckets.assign(buckets.size(), 0);
  for (size_t b = 0; b < buckets.size(); ++b) {
    int64_t prev = b < earlier.buckets.size() ? earlier.buckets[b] : 0;
    out.buckets[b] = buckets[b] - prev;
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot

namespace {

template <typename T>
const T* FindByName(const std::vector<std::pair<std::string, T>>& v,
                    const std::string& name) {
  for (const auto& [n, value] : v) {
    if (n == name) return &value;
  }
  return nullptr;
}

}  // namespace

int64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const int64_t* v = FindByName(counters, name);
  return v != nullptr ? *v : 0;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name) const {
  const int64_t* v = FindByName(gauges, name);
  return v != nullptr ? *v : 0;
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot out;
  out.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    out.counters.emplace_back(name, value - earlier.CounterValue(name));
  }
  out.gauges = gauges;
  out.histograms.reserve(histograms.size());
  for (const auto& [name, hist] : histograms) {
    const HistogramSnapshot* prev = earlier.FindHistogram(name);
    out.histograms.emplace_back(
        name, prev != nullptr ? hist.DeltaSince(*prev) : hist);
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += StrFormat("%s\"%s\":%lld", first ? "" : ",",
                     JsonEscape(name).c_str(), static_cast<long long>(value));
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += StrFormat("%s\"%s\":%lld", first ? "" : ",",
                     JsonEscape(name).c_str(), static_cast<long long>(value));
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += StrFormat(
        "%s\"%s\":{\"count\":%lld,\"sum\":%lld,\"min\":%lld,\"max\":%lld,"
        "\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s,\"buckets\":[",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<long long>(h.count), static_cast<long long>(h.sum),
        static_cast<long long>(h.min), static_cast<long long>(h.max),
        JsonNumber(h.Mean()).c_str(), JsonNumber(h.Percentile(0.50)).c_str(),
        JsonNumber(h.Percentile(0.90)).c_str(),
        JsonNumber(h.Percentile(0.99)).c_str());
    first = false;
    bool first_bucket = true;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out += StrFormat(
          "%s[%lld,%lld]", first_bucket ? "" : ",",
          static_cast<long long>(
              Histogram::BucketLowerBound(static_cast<int>(b))),
          static_cast<long long>(h.buckets[b]));
      first_bucket = false;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += StrFormat("counter %-40s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    out += StrFormat("gauge   %-40s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, h] : histograms) {
    out += StrFormat(
        "hist    %-40s count=%lld mean=%.1f p50=%.0f p90=%.0f p99=%.0f "
        "max=%lld\n",
        name.c_str(), static_cast<long long>(h.count), h.Mean(),
        h.Percentile(0.50), h.Percentile(0.90), h.Percentile(0.99),
        static_cast<long long>(h.max));
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            std::function<int64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_[name] = std::move(fn);
}

void MetricsRegistry::UnregisterCallbackGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  callback_gauges_.erase(name);
}

MetricsSnapshot MetricsRegistry::Snap() const {
  // Copy the instrument pointers under the lock, read them outside it:
  // callback gauges may take their owners' locks (queue depth, cache
  // size), which must not nest inside the registry mutex.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, std::function<int64_t()>>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
    callbacks.reserve(callback_gauges_.size());
    for (const auto& [name, fn] : callback_gauges_) {
      callbacks.emplace_back(name, fn);
    }
  }
  MetricsSnapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, c] : counters) {
    snap.counters.emplace_back(name, c->Value());
  }
  snap.gauges.reserve(gauges.size() + callbacks.size());
  for (const auto& [name, g] : gauges) {
    snap.gauges.emplace_back(name, g->Value());
  }
  for (const auto& [name, fn] : callbacks) {
    snap.gauges.emplace_back(name, fn());
  }
  std::sort(snap.gauges.begin(), snap.gauges.end());
  snap.histograms.reserve(histograms.size());
  for (const auto& [name, h] : histograms) {
    snap.histograms.emplace_back(name, h->Snap());
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsReporter

MetricsReporter::MetricsReporter(const MetricsRegistry* registry,
                                 std::string path, double interval_seconds)
    : registry_(registry),
      path_(std::move(path)),
      interval_seconds_(interval_seconds > 0 ? interval_seconds : 0.1) {}

MetricsReporter::~MetricsReporter() { Stop(); }

void MetricsReporter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  start_time_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Loop(); });
}

Status MetricsReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return last_status_;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Status final = SampleAndWrite();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  if (!final.ok()) last_status_ = final;
  return last_status_;
}

void MetricsReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto interval = std::chrono::duration<double>(interval_seconds_);
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) return;
    lock.unlock();
    Status st = SampleAndWrite();
    lock.lock();
    if (!st.ok()) last_status_ = st;
  }
}

Status MetricsReporter::SampleAndWrite() {
  MetricsSnapshot snap = registry_->Snap();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_time_)
                       .count();
  int64_t n = samples_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string delta_json =
      have_last_ ? snap.DeltaSince(last_).ToJson() : snap.ToJson();
  std::string line = StrFormat("{\"sample\":%lld,\"elapsed_seconds\":%.6f,",
                               static_cast<long long>(n), elapsed);
  line += "\"total\":" + snap.ToJson() + ",\"delta\":" + delta_json + "}\n";
  last_ = std::move(snap);
  have_last_ = true;
  lines_ += line;
  // Whole-file rewrite through tmp+rename (the PR-3 trace-export idiom):
  // a concurrent reader always sees a complete, parseable series.
  return WriteFileAtomic(path_, lines_);
}

}  // namespace ordopt
