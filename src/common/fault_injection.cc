#include "common/fault_injection.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/str_util.h"

namespace ordopt {

namespace {

// Splits on ',' with empty pieces dropped (tolerates trailing commas).
std::vector<std::string> SplitSpec(const std::string& spec, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : spec) {
    if (c == sep) {
      if (!current.empty()) out.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool ParseCount(const std::string& text, int64_t* out) {
  if (text == "*") {
    *out = -1;
    return true;
  }
  if (text.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

FaultInjector::FaultInjector() {
  const char* env = std::getenv("ORDOPT_FAULTS");
  if (env != nullptr && env[0] != '\0') {
    Status st = ArmFromSpec(env);
    if (!st.ok()) {
      std::fprintf(stderr, "ordopt: ignoring ORDOPT_FAULTS: %s\n",
                   st.ToString().c_str());
    }
  }
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& site, int64_t fire_after,
                        int64_t fire_count, StatusCode code) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-arming replaces the whole state so the hit/fired counters restart
  // from zero (atomics are not assignable wholesale).
  auto state = std::make_unique<SiteState>();
  state->fire_after = fire_after;
  state->fire_count = fire_count;
  state->code = code;
  sites_[site] = std::move(state);
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  // Validate the whole spec before arming anything.
  struct Parsed {
    std::string site;
    int64_t fire_after;
    int64_t fire_count;
    StatusCode code;
  };
  std::vector<Parsed> parsed;
  for (const std::string& arm : SplitSpec(spec, ',')) {
    std::vector<std::string> parts = SplitSpec(arm, ':');
    if (parts.size() < 2 || parts.size() > 4) {
      return Status::InvalidArgument(
          "fault spec '" + arm +
          "' is not site:fire_after[:fire_count[:code]]");
    }
    Parsed p;
    p.site = parts[0];
    if (!ParseCount(parts[1], &p.fire_after) || p.fire_after < 0) {
      return Status::InvalidArgument("fault spec '" + arm +
                                     "': bad fire_after '" + parts[1] + "'");
    }
    p.fire_count = 1;
    if (parts.size() >= 3 &&
        (!ParseCount(parts[2], &p.fire_count) ||
         (p.fire_count < 0 && p.fire_count != -1))) {
      return Status::InvalidArgument("fault spec '" + arm +
                                     "': bad fire_count '" + parts[2] + "'");
    }
    p.code = StatusCode::kInternal;
    if (parts.size() == 4) {
      if (parts[3] == "io") {
        p.code = StatusCode::kIoError;
      } else if (parts[3] != "internal") {
        return Status::InvalidArgument("fault spec '" + arm +
                                       "': bad code '" + parts[3] +
                                       "' (want 'internal' or 'io')");
      }
    }
    parsed.push_back(std::move(p));
  }
  if (parsed.empty()) {
    return Status::InvalidArgument("empty fault spec");
  }
  for (const Parsed& p : parsed) {
    Arm(p.site, p.fire_after, p.fire_count, p.code);
  }
  return Status::OK();
}

void FaultInjector::Disarm(const std::string& site) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  sites_.erase(site);
  armed_sites_.store(static_cast<int>(sites_.size()),
                     std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::Check(const char* site) {
  if (!enabled()) return Status::OK();
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::OK();
  SiteState& state = *it->second;
  // Claim a unique 1-based hit number; whether *this* hit fires depends
  // only on that number, so the set of firing hits — and therefore the
  // total fire count — is identical under every thread interleaving.
  int64_t hit = state.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (hit <= state.fire_after) return Status::OK();
  if (state.fire_count >= 0 &&
      hit > state.fire_after + state.fire_count) {
    return Status::OK();
  }
  state.fired.fetch_add(1, std::memory_order_relaxed);
  return Status(state.code,
                StrFormat("injected fault at %s (hit %lld)", site,
                          static_cast<long long>(hit)));
}

int64_t FaultInjector::HitCount(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0
                            : it->second->hits.load(std::memory_order_relaxed);
}

int64_t FaultInjector::FireCount(const std::string& site) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->fired.load(std::memory_order_relaxed);
}

}  // namespace ordopt
