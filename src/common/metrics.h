#ifndef ORDOPT_COMMON_METRICS_H_
#define ORDOPT_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace ordopt {

/// Service-wide metrics: named counters, gauges, and log-scale histograms
/// behind one registry, cheap enough to live on every hot path.
///
/// Design rules (DESIGN.md §13 has the full telemetry model):
///  - Recording is a few *relaxed* atomic ops, sharded by thread so the
///    64-session service does not serialize on one cache line. No locks,
///    no clocks, no allocation on the record path.
///  - Instruments are created once (registry lookup under a mutex) and
///    then held by pointer; the registry owns them and their addresses are
///    stable for the registry's lifetime.
///  - Reading is snapshot-based: Snap() walks every instrument in one
///    pass, and two snapshots subtract (DeltaSince) for interval sampling.
///    Counters are monotonic, gauges are instantaneous, histograms carry
///    their full bucket vector so percentiles compose across deltas.
///  - Naming is `subsystem.metric[_unit]`, lowercase, dot-separated, with
///    a bounded name set (no per-query / per-session labels — cardinality
///    is fixed at compile time by the call sites).

/// Monotonic counter, sharded across cache lines. Value() sums the shards
/// (so a concurrent read may miss in-flight increments but never tears a
/// single shard).
class Counter {
 public:
  static constexpr int kShards = 8;

  void Add(int64_t delta) {
    shards_[ShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// The shard the calling thread records into (round-robin assignment,
  /// cached per thread). Shared by Histogram so one scheme covers both.
  static int ShardIndex();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  Shard shards_[kShards];
};

/// Instantaneous value with atomic set/add semantics (queue depths,
/// in-flight counts). For values the owner already maintains elsewhere,
/// prefer a callback gauge on the registry — it costs nothing until read.
class Gauge {
 public:
  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Read-only view of a histogram at one instant; also the unit of
/// histogram arithmetic (DeltaSince) and percentile math. Obtained from
/// Histogram::Snap or MetricsRegistry::Snap.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< 0 when count == 0
  int64_t max = 0;
  std::vector<int64_t> buckets;  ///< per-bucket counts, fixed length

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Percentile estimate for p in [0, 1]: the 0-based rank is
  /// floor(p * (count - 1)) — the same definition the nth_element-style
  /// bench percentiles used — located by walking the buckets and
  /// interpolating linearly inside the landing bucket. With log-scale
  /// buckets the estimate is within one bucket width (<= 12.5% relative)
  /// of the true order statistic. Returns 0 for an empty histogram.
  double Percentile(double p) const;

  /// This snapshot minus `earlier` (counts, sum, and buckets subtract;
  /// min/max are NOT recoverable for the interval and are taken from this
  /// snapshot). Both snapshots must come from the same histogram.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// Fixed-bucket log-scale histogram of non-negative int64 values
/// (negative values clamp to 0). Buckets are powers of two subdivided
/// into 8 linear sub-buckets, so every bucket is at most 12.5% wide and
/// the whole int64 range fits in 488 buckets. Record() is a handful of
/// relaxed atomic ops on a thread-sharded bucket array; Snap() merges the
/// shards.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8
  /// Highest representable bit-width is 63 (int64), shift range [0, 59],
  /// so indices run to (59 + 1) * 8 + 7 = 487.
  static constexpr int kBucketCount = 488;

  /// Bucket that `value` lands in. Values below kSubBuckets map exactly
  /// (index == value); above, the top kSubBucketBits+1 bits choose the
  /// bucket.
  static int BucketIndex(int64_t value);
  /// Smallest value mapping to `bucket`.
  static int64_t BucketLowerBound(int bucket);
  /// Largest value mapping to `bucket`.
  static int64_t BucketUpperBound(int bucket);

  void Record(int64_t value);

  HistogramSnapshot Snap() const;

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{0};  ///< valid when count > 0
    std::atomic<int64_t> max{0};
    std::atomic<int64_t> buckets[kBucketCount] = {};
  };
  Shard shards_[Counter::kShards];
};

/// One pass over a registry: every counter, gauge (owned and callback),
/// and histogram by name, in sorted order. Counters and histograms are
/// cumulative since process start; DeltaSince turns two snapshots into an
/// interval sample. A snapshot is *one* read of each instrument — callers
/// that need several values to be mutually consistent (e.g. the
/// admitted = completed + failed balance) read them from one snapshot
/// instead of racing separate accessor calls.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name; 0 when absent.
  int64_t CounterValue(const std::string& name) const;
  /// Gauge value by name; 0 when absent.
  int64_t GaugeValue(const std::string& name) const;
  /// Histogram by name; nullptr when absent.
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// Interval sample: counters and histograms subtract; gauges keep this
  /// snapshot's (instantaneous) values. Instruments created after
  /// `earlier` was taken appear with their full value.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// One JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"count":..,
  ///  "sum":..,"min":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..,
  ///  "buckets":[[lower,count],...]}}} — buckets list only non-empty
  /// entries as [lower_bound, count] pairs.
  std::string ToJson() const;
  /// Human-readable exposition, one instrument per line.
  std::string ToText() const;
};

/// Process- or service-scoped home for named instruments. Get-or-create
/// is mutex-guarded (call it once and keep the pointer); recording through
/// the returned pointers never touches the registry again. Callback gauges
/// read owner-maintained values (queue depth, cache size, breaker state)
/// lazily at snapshot time, so they add zero hot-path cost.
///
/// Thread-safe. Instruments live as long as the registry; callback gauges
/// must be unregistered (or their owner must outlive the registry's last
/// snapshot) before the values they capture dangle.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default instance (the shell and standalone engines use
  /// it; a QueryService owns a private registry instead so concurrent
  /// services do not mix their series).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Registers `fn` as a read-at-snapshot gauge. Replaces any previous
  /// callback under the same name.
  void RegisterCallbackGauge(const std::string& name,
                             std::function<int64_t()> fn);
  void UnregisterCallbackGauge(const std::string& name);

  MetricsSnapshot Snap() const;

  /// RenderText/RenderJson are Snap() + formatting: the exposition
  /// endpoints (`.metrics` in the shell, the bench JSON dumps).
  std::string RenderText() const { return Snap().ToText(); }
  std::string RenderJson() const { return Snap().ToJson(); }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<int64_t()>> callback_gauges_;
};

/// Background sampler: every `interval_seconds` it snapshots the registry
/// and rewrites `path` with the accumulated JSON-lines time series — one
/// object per sample carrying the cumulative snapshot plus the delta since
/// the previous sample. Writes go through the same atomic tmp+rename the
/// trace export uses, so a reader never observes a partial file. Start'ed
/// and Stop'ped around a bench run; Stop flushes a final sample and
/// returns the last write status. The registry (and every callback gauge
/// it holds) must outlive the reporter.
class MetricsReporter {
 public:
  MetricsReporter(const MetricsRegistry* registry, std::string path,
                  double interval_seconds);
  ~MetricsReporter();

  MetricsReporter(const MetricsReporter&) = delete;
  MetricsReporter& operator=(const MetricsReporter&) = delete;

  void Start();
  /// Idempotent; joins the sampler thread and flushes the final sample.
  Status Stop();

  int64_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  /// Takes one sample and rewrites the file. Called from the loop and
  /// from Stop.
  Status SampleAndWrite();

  const MetricsRegistry* registry_;
  const std::string path_;
  const double interval_seconds_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
  std::string lines_;  ///< accumulated JSON lines, rewritten each sample
  MetricsSnapshot last_;
  bool have_last_ = false;
  std::chrono::steady_clock::time_point start_time_;
  std::atomic<int64_t> samples_{0};
  Status last_status_;
};

}  // namespace ordopt

#endif  // ORDOPT_COMMON_METRICS_H_
