#include "common/value.h"

#include <cstdio>
#include <functional>

#include "common/macros.h"

namespace ordopt {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
  }
  return "unknown";
}

Value Value::DateFromString(const std::string& iso) {
  int64_t days = 0;
  ORDOPT_CHECK_MSG(ParseDate(iso, &days), "bad date literal '%s'",
                   iso.c_str());
  return Date(days);
}

int64_t Value::AsInt() const {
  ORDOPT_CHECK(type_ == DataType::kInt64 || type_ == DataType::kDate);
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (type_ == DataType::kDouble) return std::get<double>(data_);
  ORDOPT_CHECK(type_ == DataType::kInt64 || type_ == DataType::kDate);
  return static_cast<double>(std::get<int64_t>(data_));
}

const std::string& Value::AsString() const {
  ORDOPT_CHECK(type_ == DataType::kString);
  return std::get<std::string>(data_);
}

namespace {

bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kDate;
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;  // NULL sorts first
  }
  if (IsNumeric(type_) && IsNumeric(other.type_)) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      int64_t a = std::get<int64_t>(data_);
      int64_t b = std::get<int64_t>(other.data_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    if (type_ == DataType::kDate && other.type_ == DataType::kDate) {
      int64_t a = std::get<int64_t>(data_);
      int64_t b = std::get<int64_t>(other.data_);
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    return CompareDoubles(AsDouble(), other.AsDouble());
  }
  if (type_ == DataType::kString && other.type_ == DataType::kString) {
    return AsString().compare(other.AsString());
  }
  // Incomparable kinds: order by type tag to keep the relation total.
  return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kInt64:
    case DataType::kDate: {
      // Hash through double so 3 == 3.0 implies equal hashes.
      return std::hash<double>()(static_cast<double>(std::get<int64_t>(data_)));
    }
    case DataType::kDouble:
      return std::hash<double>()(std::get<double>(data_));
    case DataType::kString:
      return std::hash<std::string>()(std::get<std::string>(data_));
  }
  return 0;
}

std::string Value::ToString() const {
  char buf[64];
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(std::get<int64_t>(data_)));
      return buf;
    case DataType::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    case DataType::kString:
      return "'" + std::get<std::string>(data_) + "'";
    case DataType::kDate:
      return FormatDate(std::get<int64_t>(data_));
  }
  return "?";
}

namespace {

bool IsLeapYear(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

const int kDaysInMonth[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

int DaysInMonth(int y, int m) {
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDaysInMonth[m - 1];
}

// Days from 1970-01-01 to the first day of year y.
int64_t DaysToYear(int y) {
  int64_t days = 0;
  if (y >= 1970) {
    for (int i = 1970; i < y; ++i) days += IsLeapYear(i) ? 366 : 365;
  } else {
    for (int i = y; i < 1970; ++i) days -= IsLeapYear(i) ? 366 : 365;
  }
  return days;
}

}  // namespace

bool ParseDate(const std::string& iso, int64_t* days_out) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > DaysInMonth(y, m)) return false;
  int64_t days = DaysToYear(y);
  for (int i = 1; i < m; ++i) days += DaysInMonth(y, i);
  days += d - 1;
  *days_out = days;
  return true;
}

std::string FormatDate(int64_t days) {
  int y = 1970;
  while (true) {
    int64_t len = IsLeapYear(y) ? 366 : 365;
    if (days >= len) {
      days -= len;
      ++y;
    } else if (days < 0) {
      --y;
      days += IsLeapYear(y) ? 366 : 365;
    } else {
      break;
    }
  }
  int m = 1;
  while (days >= DaysInMonth(y, m)) {
    days -= DaysInMonth(y, m);
    ++m;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m,
                static_cast<int>(days) + 1);
  return buf;
}

}  // namespace ordopt
