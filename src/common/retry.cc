#include "common/retry.h"

#include <chrono>
#include <thread>

namespace ordopt {

int64_t RetryPolicy::BackoffMicros(int retry) const {
  if (retry < 1 || base_backoff_micros <= 0) return 0;
  int64_t backoff = base_backoff_micros;
  for (int i = 1; i < retry && backoff < max_backoff_micros; ++i) {
    backoff *= 2;
  }
  return backoff < max_backoff_micros ? backoff : max_backoff_micros;
}

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

Status RetryIo(const RetryPolicy& policy, int64_t* retries,
               const std::function<Status()>& op) {
  int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      if (retries != nullptr) ++*retries;
      SleepForBackoff(policy, attempt - 1);
    }
    last = op();
    if (last.ok() || !IsTransient(last)) return last;
  }
  return last;
}

void SleepForBackoff(const RetryPolicy& policy, int retry) {
  int64_t backoff = policy.BackoffMicros(retry);
  if (backoff > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(backoff));
  }
}

}  // namespace ordopt
