#include "common/trace.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/fault_injection.h"
#include "common/str_util.h"

namespace ordopt {

namespace {

std::string JsonDouble(double v) {
  // JSON has no Inf/NaN literals; null keeps the line parseable.
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.6g", v);
}

}  // namespace

/// One write attempt: create the temp file, write + flush the payload,
/// rename into place. Any failure removes the temp file so no partial
/// artifact survives the attempt (mirrors SpillManager::TryWriteRun).
Status WriteFileAtomic(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  errno = 0;
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError(StrFormat("cannot create file %s: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  Status st;
  errno = 0;
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
    st = Status::IoError(
        StrFormat("file write failed: %s", std::strerror(errno)));
  }
  if (st.ok() && std::fflush(f) != 0) {
    st = Status::IoError(
        StrFormat("file flush failed: %s", std::strerror(errno)));
  }
  std::fclose(f);
  if (st.ok()) {
    errno = 0;
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      st = Status::IoError(StrFormat("cannot move file to %s: %s",
                                     path.c_str(), std::strerror(errno)));
    }
  }
  if (!st.ok()) std::remove(tmp.c_str());
  return st;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

TraceEvent::TraceEvent(int64_t seq, std::string phase, std::string name)
    : seq_(seq), phase_(std::move(phase)), name_(std::move(name)) {}

TraceEvent& TraceEvent::Append(const char* key, std::string json,
                               std::string display) {
  fields_.push_back(Field{key, std::move(json), std::move(display)});
  return *this;
}

TraceEvent& TraceEvent::Set(const char* key, const std::string& value) {
  return Append(key, "\"" + JsonEscape(value) + "\"", value);
}

TraceEvent& TraceEvent::Set(const char* key, const char* value) {
  return Set(key, std::string(value));
}

TraceEvent& TraceEvent::SetInt(const char* key, int64_t value) {
  std::string s = StrFormat("%lld", static_cast<long long>(value));
  return Append(key, s, s);
}

TraceEvent& TraceEvent::SetDouble(const char* key, double value) {
  std::string s = JsonDouble(value);
  return Append(key, s, s);
}

TraceEvent& TraceEvent::SetBool(const char* key, bool value) {
  const char* s = value ? "true" : "false";
  return Append(key, s, s);
}

TraceEvent& TraceEvent::SetRaw(const char* key, std::string json) {
  std::string display = json;
  return Append(key, std::move(json), std::move(display));
}

std::string TraceEvent::Get(const char* key) const {
  for (const Field& f : fields_) {
    if (f.key == key) return f.display;
  }
  return "";
}

std::string TraceEvent::ToJson() const {
  std::string out = StrFormat("{\"seq\":%lld,\"phase\":\"%s\",\"event\":\"%s\"",
                              static_cast<long long>(seq_),
                              JsonEscape(phase_).c_str(),
                              JsonEscape(name_).c_str());
  if (query_id_ != 0) {
    out += StrFormat(",\"query_id\":%lld", static_cast<long long>(query_id_));
  }
  for (const Field& f : fields_) {
    out += StrFormat(",\"%s\":%s", JsonEscape(f.key).c_str(), f.json.c_str());
  }
  out += "}";
  return out;
}

std::string TraceEvent::ToShortString() const {
  std::string out = StrFormat("%-18s", name_.c_str());
  for (const Field& f : fields_) {
    out += " " + f.key + "=" + f.display;
  }
  return out;
}

TraceCollector::TraceCollector(TraceLevel level) : level_(level) {}

TraceEvent& TraceCollector::Add(const char* phase, const char* name) {
  events_.emplace_back(static_cast<int64_t>(events_.size()) + 1, phase, name);
  events_.back().set_query_id(query_id_);
  return events_.back();
}

int64_t TraceCollector::Count(const std::string& name) const {
  int64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.name() == name) ++n;
  }
  return n;
}

const TraceEvent* TraceCollector::Find(const std::string& name) const {
  for (const TraceEvent& e : events_) {
    if (e.name() == name) return &e;
  }
  return nullptr;
}

std::string TraceCollector::ToJsonLines() const {
  std::string out;
  for (const TraceEvent& e : events_) {
    out += e.ToJson();
    out += "\n";
  }
  return out;
}

Status TraceCollector::WriteJsonLines(const std::string& path,
                                      const RetryPolicy& policy,
                                      int64_t* retries) const {
  if (path.empty()) {
    return Status::InvalidArgument("trace path is empty");
  }
  const std::string payload = ToJsonLines();
  Status st = RetryIo(policy, retries, [&]() -> Status {
    ORDOPT_FAULT_POINT("exec.trace.write");
    return WriteFileAtomic(path, payload);
  });
  // The injected-fault path fails before WriteFileAtomic's own cleanup
  // runs; make doubly sure no temp file outlives a failed export.
  if (!st.ok()) std::remove((path + ".tmp").c_str());
  return st;
}

}  // namespace ordopt
