#ifndef ORDOPT_COMMON_STATUS_H_
#define ORDOPT_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace ordopt {

/// Error categories surfaced by the library. The library never throws;
/// all fallible public entry points return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< SQL text failed to tokenize/parse
  kBindError,         ///< names/types failed semantic analysis
  kNotFound,          ///< catalog object missing
  kAlreadyExists,     ///< catalog object duplicated
  kUnsupported,       ///< valid SQL outside the implemented subset
  kInternal,          ///< invariant violation reported without aborting
  kResourceExhausted, ///< a configured resource limit was exceeded
  kCancelled,         ///< execution stopped by a cancellation request
  kTimeout,           ///< execution exceeded its wall-clock deadline
  kIoError,           ///< a file operation failed (possibly transient)
  kUnavailable,       ///< fast-fail: a circuit breaker is open for the
                      ///< fault domain this request depends on
};

/// Lightweight error-or-success value, RocksDB/Arrow style.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status BindError(std::string m) {
    return Status(StatusCode::kBindError, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token ','".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. Access to the value is checked.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_t;` in Result-returning code.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: allows `return Status::ParseError(...)`.
  Result(Status status) : status_(std::move(status)) {
    ORDOPT_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if this holds an error.
  const T& value() const& {
    ORDOPT_CHECK_MSG(ok(), "Result::value() on error: %s",
                     status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    ORDOPT_CHECK_MSG(ok(), "Result::value() on error: %s",
                     status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    ORDOPT_CHECK_MSG(ok(), "Result::value() on error: %s",
                     status_.ToString().c_str());
    return std::move(value_);
  }

  /// Unchecked move-out used by ORDOPT_ASSIGN_OR_RETURN after an ok() test.
  T&& value_unsafe() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace ordopt

#endif  // ORDOPT_COMMON_STATUS_H_
