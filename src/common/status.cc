#include "common/status.h"

namespace ordopt {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace ordopt
