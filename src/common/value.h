#ifndef ORDOPT_COMMON_VALUE_H_
#define ORDOPT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ordopt {

/// Logical column/value types supported by the engine.
enum class DataType : uint8_t {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kDate,  ///< days since 1970-01-01, stored as int64
};

/// Returns a lowercase name for a DataType ("int64", "string", ...).
const char* DataTypeName(DataType type);

/// A runtime datum. Values form a total order (used by sorts, B+-trees, and
/// merge joins): NULL sorts before every non-NULL value; numeric types
/// compare by numeric value (int64 vs double compares as double); strings
/// compare lexicographically. Cross-kind comparisons between non-comparable
/// kinds (e.g. string vs int) order by type tag so the order stays total.
class Value {
 public:
  /// Constructs the SQL NULL value.
  Value() : type_(DataType::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) {
    Value out;
    out.type_ = DataType::kDouble;
    out.data_ = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.type_ = DataType::kString;
    out.data_ = std::move(v);
    return out;
  }
  /// A date expressed as days since 1970-01-01.
  static Value Date(int64_t days) { return Value(DataType::kDate, days); }
  /// Parses "YYYY-MM-DD" into a date value; aborts on malformed input
  /// (callers validate first via ParseDate).
  static Value DateFromString(const std::string& iso);

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  /// Numeric accessors; abort if the kind does not match.
  int64_t AsInt() const;
  double AsDouble() const;  ///< accepts kInt64, kDouble, kDate
  const std::string& AsString() const;

  /// Three-way comparison defining the engine's total order.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with operator== (numeric 3 == 3.0 hash equal).
  size_t Hash() const;

  /// Display rendering ("NULL", "42", "3.14", "'abc'", "1995-03-15").
  std::string ToString() const;

 private:
  Value(DataType type, int64_t v) : type_(type), data_(v) {}

  DataType type_;
  std::variant<int64_t, double, std::string> data_{int64_t{0}};
};

/// A materialized record: one Value per output column.
using Row = std::vector<Value>;

/// Parses "YYYY-MM-DD" into days since epoch. Returns false on bad input.
bool ParseDate(const std::string& iso, int64_t* days_out);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int64_t days);

}  // namespace ordopt

#endif  // ORDOPT_COMMON_VALUE_H_
