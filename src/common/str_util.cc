#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace ordopt {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(len), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace ordopt
