#ifndef ORDOPT_COMMON_TRACE_H_
#define ORDOPT_COMMON_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

namespace ordopt {

/// How much observability a query records.
enum class TraceLevel {
  kOff = 0,        ///< no collector; the executor hot path pays one branch
  kOptimizer = 1,  ///< optimizer decision events only (plan-time cost)
  kFull = 2,       ///< optimizer events + per-operator execution stats
};

/// One structured trace event: a monotonic sequence number, a phase
/// ("optimizer" / "exec"), an event name ("order.reduce", "sort.placed",
/// ...), and typed key/value fields. An event renders both as one JSON
/// object per line (the ORDOPT_TRACE export) and as a compact
/// human-readable line (the EXPLAIN ANALYZE decisions section).
class TraceEvent {
 public:
  TraceEvent(int64_t seq, std::string phase, std::string name);

  TraceEvent& Set(const char* key, const std::string& value);
  TraceEvent& Set(const char* key, const char* value);
  TraceEvent& SetInt(const char* key, int64_t value);
  TraceEvent& SetDouble(const char* key, double value);
  TraceEvent& SetBool(const char* key, bool value);
  /// Embeds an already-JSON-encoded value (e.g. a nested object).
  TraceEvent& SetRaw(const char* key, std::string json);

  int64_t seq() const { return seq_; }
  const std::string& phase() const { return phase_; }
  const std::string& name() const { return name_; }

  /// End-to-end query correlation id (ticket-assigned by the service,
  /// engine-assigned for standalone runs; stable across retries). Stamped
  /// by the collector on every event; 0 = unknown. Rendered in ToJson as a
  /// first-class "query_id" field but kept out of ToShortString so the
  /// human-readable decisions section stays uncluttered.
  void set_query_id(int64_t id) { query_id_ = id; }
  int64_t query_id() const { return query_id_; }

  /// Display value of field `key`, or "" when absent.
  std::string Get(const char* key) const;

  /// `{"seq":3,"phase":"optimizer","event":"order.reduce","requested":...}`
  std::string ToJson() const;
  /// `order.reduce        requested=(a, b) reduced=(a)`
  std::string ToShortString() const;

 private:
  struct Field {
    std::string key;
    std::string json;     ///< JSON-encoded value
    std::string display;  ///< human-readable value
  };

  TraceEvent& Append(const char* key, std::string json, std::string display);

  int64_t seq_;
  int64_t query_id_ = 0;
  std::string phase_;
  std::string name_;
  std::vector<Field> fields_;
};

/// Append-only event sink shared by the planner (decision events) and the
/// engine (per-operator execution stats). One collector lives for one query
/// and is not thread-safe — a query is planned and executed on one thread.
class TraceCollector {
 public:
  explicit TraceCollector(TraceLevel level = TraceLevel::kOptimizer);

  TraceLevel level() const { return level_; }
  /// True when execution should collect per-operator stats.
  bool collect_exec() const { return level_ == TraceLevel::kFull; }

  /// Sets the query correlation id stamped on every event added from now
  /// on (the engine sets it before planning, so in practice every event
  /// of a query carries it). See TraceEvent::query_id.
  void set_query_id(int64_t id) { query_id_ = id; }
  int64_t query_id() const { return query_id_; }

  /// Appends an event and returns it for builder-style Set chaining. The
  /// reference is invalidated by the next Add.
  TraceEvent& Add(const char* phase, const char* name);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  /// Number of events named `name` (any phase).
  int64_t Count(const std::string& name) const;
  /// First event named `name`, or nullptr.
  const TraceEvent* Find(const std::string& name) const;

  /// Every event as line-delimited JSON (one object per line).
  std::string ToJsonLines() const;

  /// Atomically replaces `path` with the JSON-lines event stream: writes
  /// `path`.tmp, then renames into place, so a reader never observes a
  /// partial file. Each attempt probes the `exec.trace.write` fault site
  /// and runs under `policy` (kIoError is transient and retried, like
  /// spill I/O); on any failure the temp file is removed and the error
  /// surfaces to the caller. `*retries` counts re-attempts when non-null.
  Status WriteJsonLines(const std::string& path, const RetryPolicy& policy,
                        int64_t* retries = nullptr) const;

 private:
  TraceLevel level_;
  int64_t query_id_ = 0;
  std::vector<TraceEvent> events_;
};

/// Atomically replaces `path` with `payload`: writes `path`.tmp, flushes,
/// renames into place; any failure removes the temp file so no partial
/// artifact survives. The single-attempt primitive under the trace export
/// (which adds retry + fault injection) and the metrics reporter.
Status WriteFileAtomic(const std::string& path, const std::string& payload);

/// JSON string escaping (backslash, quote, control characters); returns
/// the escaped body without surrounding quotes.
std::string JsonEscape(const std::string& s);

}  // namespace ordopt

#endif  // ORDOPT_COMMON_TRACE_H_
