#ifndef ORDOPT_COMMON_COLUMN_ID_H_
#define ORDOPT_COMMON_COLUMN_ID_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ordopt {

/// Identity of a column instance inside one query: the id of the table
/// instance (quantifier) it comes from plus the column's ordinal within
/// that table. Two references to the same base table in one query get
/// distinct table ids, so self-joins are unambiguous. Names are attached
/// elsewhere and used only for printing.
struct ColumnId {
  int32_t table = -1;
  int32_t column = -1;

  ColumnId() = default;
  ColumnId(int32_t t, int32_t c) : table(t), column(c) {}

  bool valid() const { return table >= 0 && column >= 0; }

  friend auto operator<=>(const ColumnId&, const ColumnId&) = default;
};

/// Reserved table id of the executor's hidden provenance column: the
/// serial emission ordinal a morsel-parallel scan attaches to each row so
/// per-worker sorts and the order-preserving exchange merge can reproduce
/// the serial row sequence byte-identically. Never appears in catalogs,
/// predicates, or plan properties; the exchange strips it before emitting.
inline constexpr int32_t kProvenanceTableId = -3;
inline ColumnId ProvenanceColumnId() { return ColumnId(kProvenanceTableId, 0); }

struct ColumnIdHash {
  size_t operator()(const ColumnId& c) const {
    return (static_cast<size_t>(static_cast<uint32_t>(c.table)) << 32) ^
           static_cast<uint32_t>(c.column);
  }
};

/// A set of columns kept as a sorted, deduplicated vector. Small-cardinality
/// sets dominate (FD heads, keys), so a flat vector beats node containers.
class ColumnSet {
 public:
  ColumnSet() = default;
  ColumnSet(std::initializer_list<ColumnId> cols)
      : cols_(cols.begin(), cols.end()) {
    Normalize();
  }
  explicit ColumnSet(std::vector<ColumnId> cols) : cols_(std::move(cols)) {
    Normalize();
  }

  bool empty() const { return cols_.empty(); }
  size_t size() const { return cols_.size(); }
  const std::vector<ColumnId>& columns() const { return cols_; }
  auto begin() const { return cols_.begin(); }
  auto end() const { return cols_.end(); }

  bool Contains(const ColumnId& c) const {
    return std::binary_search(cols_.begin(), cols_.end(), c);
  }

  /// True if every column of this set is in `other`.
  bool IsSubsetOf(const ColumnSet& other) const {
    return std::includes(other.cols_.begin(), other.cols_.end(),
                         cols_.begin(), cols_.end());
  }

  void Add(const ColumnId& c) {
    auto it = std::lower_bound(cols_.begin(), cols_.end(), c);
    if (it == cols_.end() || *it != c) cols_.insert(it, c);
  }

  void Remove(const ColumnId& c) {
    auto it = std::lower_bound(cols_.begin(), cols_.end(), c);
    if (it != cols_.end() && *it == c) cols_.erase(it);
  }

  /// Set union.
  ColumnSet Union(const ColumnSet& other) const {
    ColumnSet out;
    out.cols_.reserve(cols_.size() + other.cols_.size());
    std::set_union(cols_.begin(), cols_.end(), other.cols_.begin(),
                   other.cols_.end(), std::back_inserter(out.cols_));
    return out;
  }

  /// Set intersection.
  ColumnSet Intersect(const ColumnSet& other) const {
    ColumnSet out;
    std::set_intersection(cols_.begin(), cols_.end(), other.cols_.begin(),
                          other.cols_.end(), std::back_inserter(out.cols_));
    return out;
  }

  friend bool operator==(const ColumnSet&, const ColumnSet&) = default;
  friend auto operator<=>(const ColumnSet& a, const ColumnSet& b) {
    return a.cols_ <=> b.cols_;
  }

 private:
  void Normalize() {
    std::sort(cols_.begin(), cols_.end());
    cols_.erase(std::unique(cols_.begin(), cols_.end()), cols_.end());
  }

  std::vector<ColumnId> cols_;
};

}  // namespace ordopt

#endif  // ORDOPT_COMMON_COLUMN_ID_H_
