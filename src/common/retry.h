#ifndef ORDOPT_COMMON_RETRY_H_
#define ORDOPT_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace ordopt {

/// Bounded retry with deterministic backoff for transient I/O failures
/// (spill-file writes and reads). Deliberately tiny: no jitter, no wall
/// clocks — the backoff sequence is a pure function of the attempt number,
/// so tests and fault-injection runs are exactly reproducible.
struct RetryPolicy {
  /// Total tries, including the first. Values below 1 behave as 1.
  int max_attempts = 3;
  /// Sleep before the first re-attempt; doubles per further re-attempt.
  int64_t base_backoff_micros = 100;
  /// Ceiling on one backoff sleep.
  int64_t max_backoff_micros = 10000;

  /// Backoff before re-attempt number `retry` (1-based):
  /// min(base * 2^(retry-1), max).
  int64_t BackoffMicros(int retry) const;
};

/// True for failures worth retrying: kIoError, where the device or the
/// filesystem may recover (EINTR-style blips, NFS hiccups, transient
/// write pressure). Every other code — including injected kInternal
/// faults and tripped guardrails — is permanent and fails immediately.
bool IsTransient(const Status& status);

/// Runs `op` up to `policy.max_attempts` times, sleeping the deterministic
/// backoff between attempts, while it keeps returning a transient status.
/// Returns OK on the first success, the first permanent error unretried,
/// or the last transient error once attempts are exhausted. Each
/// re-attempt increments `*retries` when non-null (so callers can surface
/// retry counts in metrics).
Status RetryIo(const RetryPolicy& policy, int64_t* retries,
               const std::function<Status()>& op);

/// Sleeps the deterministic backoff before re-attempt number `retry`
/// (1-based); no-op for retry < 1 or a zero backoff. Callers that manage
/// their own retry loop (the QueryService re-admits whole queries rather
/// than wrapping them in RetryIo) share the policy's backoff sequence
/// through this helper.
void SleepForBackoff(const RetryPolicy& policy, int retry);

}  // namespace ordopt

#endif  // ORDOPT_COMMON_RETRY_H_
