#ifndef ORDOPT_COMMON_STR_UTIL_H_
#define ORDOPT_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace ordopt {

/// Joins the elements with `sep`, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// ASCII lowercase copy (SQL keywords and identifiers are case-insensitive).
std::string ToLower(const std::string& s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace ordopt

#endif  // ORDOPT_COMMON_STR_UTIL_H_
