#ifndef ORDOPT_COMMON_FAULT_INJECTION_H_
#define ORDOPT_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace ordopt {

/// Deterministic fault-injection registry. Code sprinkles named probe
/// sites on fallible paths (storage reads, CSV rows, sort spills, executor
/// steps, planner allocation); tests or operators arm a site so its N-th
/// hit fails with a clean Status instead of relying on real hardware
/// faults. Nothing fires unless a site is armed, and the disarmed fast
/// path is a single relaxed atomic load, so probes are safe on hot paths.
///
/// Sites currently probed:
///   storage.btree.read    B+-tree seek on index scans and index NL probes
///   storage.csv.row       per-row CSV ingestion
///   exec.sort.spill.write sort run-file write (per attempt, retried)
///   exec.sort.spill.read  sort run-file read during merge (per attempt)
///   exec.sort.spill.merge k-way merge startup of spilled runs
///   exec.spill.cleanup    spill run-file removal (Close / early error)
///   exec.operator.next    every row pulled from the plan root
///   exec.parallel.morsel  every morsel claim by a parallel scan worker
///   exec.exchange.merge   every batch recombination step of an ExchangeOp
///   exec.trace.write      trace JSON-lines export (per attempt, retried)
///   planner.alloc         plan-node construction per QGM box
///
/// Arming is programmatic (Arm/ArmFromSpec) or via the ORDOPT_FAULTS
/// environment variable, read once at first use. Spec grammar:
///
///   spec       := arm (',' arm)*
///   arm        := site ':' fire_after [':' fire_count [':' code]]
///   fire_after := non-negative integer; the site passes this many hits,
///                 then starts firing (0 = fire on the first hit)
///   fire_count := hits that fail once firing starts (default 1;
///                 -1 or '*' = every subsequent hit fails)
///   code       := 'internal' (default) or 'io'; 'io' injects kIoError,
///                 which retry-wrapped spill I/O treats as transient
///
/// e.g. ORDOPT_FAULTS="storage.btree.read:2,exec.sort.spill.write:0:2:io".
///
/// Thread-safety and determinism: probes from concurrent queries are safe
/// and *count-deterministic*. Each hit on a site atomically claims a unique
/// 1-based sequence number, and exactly the hits numbered (fire_after,
/// fire_after + fire_count] fail — so the total number of injected
/// failures is a pure function of the armed spec and the total hit count,
/// independent of thread interleaving. (Which thread absorbs a given
/// failure is scheduling-dependent; tests should assert on totals, not on
/// which session failed.) Arming/disarming while probes are in flight is
/// serialized by a writer lock; probes take a shared lock and touch only
/// per-site atomic counters.
class FaultInjector {
 public:
  /// Process-wide registry. ORDOPT_FAULTS is applied on first call.
  static FaultInjector& Global();

  /// Arms `site`: passes `fire_after` hits, then fails `fire_count` hits
  /// (-1 = forever) with `code`. Re-arming resets the site's hit counters.
  void Arm(const std::string& site, int64_t fire_after,
           int64_t fire_count = 1, StatusCode code = StatusCode::kInternal);

  /// Parses and applies the spec grammar above. On a malformed spec no
  /// site is armed and an InvalidArgument status describes the problem.
  Status ArmFromSpec(const std::string& spec);

  void Disarm(const std::string& site);
  void DisarmAll();

  /// True when at least one site is armed (probe fast-path gate).
  bool enabled() const {
    return armed_sites_.load(std::memory_order_relaxed) > 0;
  }

  /// Probe: records a hit on `site` and returns the injected failure when
  /// the site fires, OK otherwise. Cheap no-op while nothing is armed.
  Status Check(const char* site);

  /// Hits recorded on an armed site (0 for unarmed/unknown sites).
  int64_t HitCount(const std::string& site) const;
  /// Times the site has fired.
  int64_t FireCount(const std::string& site) const;

 private:
  struct SiteState {
    int64_t fire_after = 0;
    int64_t fire_count = 1;  // -1 = unlimited
    StatusCode code = StatusCode::kInternal;
    /// Concurrent probes claim hit sequence numbers with fetch_add; the
    /// firing window is decided from the claimed number alone, so counts
    /// stay deterministic under any interleaving.
    std::atomic<int64_t> hits{0};
    std::atomic<int64_t> fired{0};
  };

  FaultInjector();

  /// Writer lock for arming/disarming; probes hold it shared. Sites are
  /// heap-allocated so their atomic counters have stable addresses across
  /// rehashes.
  mutable std::shared_mutex mu_;
  std::atomic<int> armed_sites_{0};
  std::unordered_map<std::string, std::unique_ptr<SiteState>> sites_;
};

/// Probe for Status-returning code: returns the injected fault from the
/// enclosing function when `site` fires.
#define ORDOPT_FAULT_POINT(site)                                           \
  do {                                                                     \
    if (::ordopt::FaultInjector::Global().enabled()) {                     \
      ::ordopt::Status _ordopt_fault =                                     \
          ::ordopt::FaultInjector::Global().Check(site);                   \
      if (!_ordopt_fault.ok()) return _ordopt_fault;                       \
    }                                                                      \
  } while (0)

}  // namespace ordopt

#endif  // ORDOPT_COMMON_FAULT_INJECTION_H_
