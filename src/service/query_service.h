#ifndef ORDOPT_SERVICE_QUERY_SERVICE_H_
#define ORDOPT_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "exec/engine.h"
#include "exec/query_guard.h"
#include "service/plan_cache.h"
#include "service/resilience.h"
#include "storage/database.h"

namespace ordopt {

class QueryService;

/// Knobs for one QueryService instance. Defaults give a small pool with
/// bounded admission and caching on; zero generally means "unlimited" or
/// "disabled" per field.
struct ServiceConfig {
  /// Worker threads, each owning a private QueryEngine over the shared
  /// Database. Clamped to >= 1.
  int workers = 4;
  /// Admission-queue bound: Submit sheds (kResourceExhausted) instead of
  /// blocking once this many queries are queued but not yet running.
  /// Clamped to >= 1.
  size_t queue_depth = 64;
  /// Plan-cache capacity in entries; 0 disables plan caching.
  size_t plan_cache_capacity = 128;
  /// Global memory budget shared by all in-flight queries' buffered rows;
  /// 0 = unlimited. A query whose buffering would cross the budget trips
  /// kResourceExhausted, and Submit sheds while the budget is fully
  /// committed.
  int64_t global_budget_bytes = 0;
  /// Max queries a single session may have queued+running at once;
  /// 0 = unlimited. The per-session half of admission control.
  int max_inflight_per_session = 0;
  /// Per-query limits applied to sessions that don't override them at
  /// OpenSession (deadline doubles as the per-query timeout).
  QueryLimits default_limits;
  /// Optimizer configuration for every worker engine.
  OptimizerConfig engine_config;
  /// Failure-handling policy: service-level retry, per-fault-domain
  /// circuit breakers, degraded-mode admission (see service/resilience.h).
  ResilienceConfig resilience;
  /// Distribution/state instrumentation: latency + queue-wait histograms,
  /// in-flight / queue-depth / budget / breaker gauges, and per-query
  /// engine series, all on the service's registry. The lifetime *counters*
  /// (ServiceStats, PlanCacheStats) are registry-backed regardless — they
  /// are how stats() is produced — so disabling this only strips the extra
  /// per-query recording, which is what `bench_service --metrics` measures
  /// the overhead of.
  bool enable_metrics = true;
};

/// Monotonic counters describing a service's lifetime admission behavior.
struct ServiceStats {
  int64_t submitted = 0;         ///< Submit calls, admitted or not
  int64_t admitted = 0;          ///< queries that entered the queue
  int64_t shed_queue_full = 0;   ///< rejected: admission queue at bound
  int64_t shed_session_cap = 0;  ///< rejected: session in-flight cap
  int64_t shed_budget = 0;       ///< rejected: global memory budget spent
  int64_t completed = 0;         ///< finished with an OK result
  int64_t failed = 0;            ///< finished with any non-OK status
  int64_t retried = 0;           ///< re-admissions after a transient failure
  int64_t breaker_rejected = 0;  ///< fast-failed: a circuit breaker was open
  int64_t degraded = 0;          ///< attempts executed in degraded mode
  int64_t quarantined = 0;       ///< cached plans quarantined after failing
};

/// Handle to one submitted query. Created by QueryService::Submit, shared
/// between the submitting client and the worker that executes it; safe to
/// Wait/Cancel/poll from any thread. Tickets outlive the service's interest
/// in them — a client may keep one after Shutdown.
class QueryTicket {
 public:
  /// Blocks until the query finishes (successfully, with an error, or
  /// shed at execution time) and returns the result. Idempotent.
  const Result<QueryResult>& Wait();

  /// True once the result is available; Wait will not block.
  bool done() const;

  /// Requests cooperative cancellation: a queued query completes with
  /// kCancelled without executing; a running query trips at its next
  /// guard check. Thread-safe, idempotent.
  void Cancel() { guard_.RequestCancel(); }

  int64_t id() const { return id_; }
  int64_t session_id() const { return session_id_; }
  const std::string& sql() const { return sql_; }

  /// Time spent in the admission queue before a worker first picked the
  /// query up, and total execution time across attempts. Valid after
  /// done().
  double queued_seconds() const { return queued_seconds_; }
  double exec_seconds() const { return exec_seconds_; }

  /// Times the service re-admitted this query after a transient failure
  /// (0 = first attempt answered). Valid after done().
  int retry_attempts() const { return attempts_; }

 private:
  friend class QueryService;
  QueryTicket(int64_t id, int64_t session_id, std::string sql,
              QueryLimits limits)
      : id_(id),
        session_id_(session_id),
        sql_(std::move(sql)),
        guard_(limits),
        submit_time_(std::chrono::steady_clock::now()) {}

  /// Worker side: publish the result and wake waiters. Called once.
  void Complete(Result<QueryResult> result);

  const int64_t id_;
  const int64_t session_id_;
  const std::string sql_;
  QueryGuard guard_;
  const std::chrono::steady_clock::time_point submit_time_;
  double queued_seconds_ = 0.0;
  double exec_seconds_ = 0.0;
  /// Re-admissions so far; only the executing worker mutates it, readers
  /// wait for done().
  int attempts_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Result<QueryResult> result_ = Status::Internal("query still pending");
};

using TicketRef = std::shared_ptr<QueryTicket>;

/// Multi-client front end over one immutable Database: a fixed pool of
/// worker threads (each with a private QueryEngine) drains a bounded
/// admission queue of per-session queries. The service's contract under
/// overload is *shed, never block, never crash*: Submit returns
/// kResourceExhausted immediately when the queue is at bound, the
/// session's in-flight cap is reached, or the global memory budget is
/// fully committed — admitted queries always run to an answer or a clean
/// error. Repeated queries skip the optimizer via a shared
/// fingerprint-keyed PlanCache (parameterized text + Database stats
/// epoch).
///
/// Resilience (see service/resilience.h): queries that fail transiently
/// are re-admitted with deterministic backoff, up to the configured retry
/// budget; per-fault-domain circuit breakers (storage / spill / planner)
/// fast-fail admitted work with kUnavailable while a domain is melting
/// down; when shared-budget occupancy crosses the high-water mark, new
/// admissions execute *degraded* (reduced sort budget, plan-cache writes
/// off) instead of queueing up to be shed; and a cached plan whose
/// execution fails non-transiently is evicted and quarantined for the
/// stats epoch. All of it stays off the happy path — with breakers closed
/// and the budget low, the per-query overhead is a few relaxed atomic
/// loads.
///
/// All public methods are thread-safe. The Database must be finalized
/// before construction and must not be mutated while the service lives
/// (the load-then-serve contract in storage/database.h).
class QueryService {
 public:
  QueryService(Database* db, ServiceConfig config = ServiceConfig());
  ~QueryService();  ///< implies Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers a client session and returns its id. Sessions are cheap:
  /// an id, per-query limits, and an in-flight count.
  int64_t OpenSession();
  /// Like OpenSession but overriding the config's default_limits for
  /// queries this session submits.
  int64_t OpenSession(QueryLimits limits);
  /// Ends a session: further Submits are rejected (kNotFound) and its
  /// still-queued/running queries are cancelled. Idempotent.
  void CloseSession(int64_t session_id);

  /// Admits `sql` for asynchronous execution on behalf of `session_id`.
  /// Never blocks: returns the ticket on admission, kResourceExhausted
  /// when shedding (queue full / session cap / budget spent), kNotFound
  /// for an unknown or closed session, or the service-stopped error after
  /// Shutdown.
  Result<TicketRef> Submit(int64_t session_id, const std::string& sql);

  /// Convenience: Submit + Wait. The admission errors above come back as
  /// the Result's status.
  Result<QueryResult> Execute(int64_t session_id, const std::string& sql);

  /// Stops admission, drains already-admitted queries, joins workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Lifetime admission counters, read from ONE registry snapshot — the
  /// relations between fields (submitted = admitted + sheds, admitted =
  /// completed + failed once drained) hold within a single return value
  /// instead of tearing across independently-read atomics.
  ServiceStats stats() const;
  PlanCacheStats plan_cache_stats() const { return plan_cache_.stats(); }
  double plan_cache_hit_rate() const { return plan_cache_.HitRate(); }
  /// This service's metrics registry: every `service.*`, `plan_cache.*`,
  /// `breaker.*`, `budget.*`, and (with config.enable_metrics) `engine.*`
  /// series. Snap/RenderText/RenderJson are safe while queries run.
  const MetricsRegistry& metrics() const { return metrics_; }
  const SharedMemoryBudget& budget() const { return budget_; }
  /// Mutable access to the shared pool for co-owners that charge it from
  /// outside the worker path (tests use this to simulate external memory
  /// pressure and force degraded-mode admissions deterministically).
  SharedMemoryBudget* mutable_budget() { return &budget_; }
  /// Breaker states / trip counts and the degraded-mode signal.
  const ResilienceManager& resilience() const { return resilience_; }
  /// Queries queued but not yet claimed by a worker.
  size_t queue_depth() const;
  int workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Session {
    QueryLimits limits;
    bool open = true;
    int inflight = 0;  // queued + running, guarded by sessions_mu_
    /// Live tickets for cancel-on-close; pruned as queries finish.
    std::vector<std::weak_ptr<QueryTicket>> tickets;
  };

  /// Per-worker mutable state: the private engine plus which of the two
  /// configs (normal / degraded) it currently carries.
  struct WorkerState {
    WorkerState(Database* db, const OptimizerConfig& config)
        : engine(db, config) {}
    QueryEngine engine;
    bool degraded = false;
  };

  void WorkerLoop();
  /// Runs one admitted query, including the breaker gate, degraded-mode
  /// engine swap, plan-cache protocol, quarantine, and retry
  /// re-admission; completes the ticket unless it was re-admitted.
  void RunTicket(WorkerState* state, const TicketRef& ticket);
  /// One execution attempt: the plan-cache protocol around the engine
  /// call. Sets `*from_cache` when a cached plan was executed and
  /// `*epoch` to the stats epoch the attempt keyed the cache under.
  Result<QueryResult> ExecuteAttempt(QueryEngine* engine,
                                     const TicketRef& ticket, bool degraded,
                                     bool* from_cache, uint64_t* epoch);
  /// Post-completion bookkeeping: session in-flight count and counters.
  void FinishTicket(const QueryTicket& ticket, bool ok);
  /// Returns a session's reserved in-flight slot (and, with `ticket`,
  /// drops its live-ticket entry). Null `ticket` = admission failed after
  /// the slot was reserved.
  void ReleaseSessionSlot(int64_t session_id, const QueryTicket* ticket);

  Database* const db_;
  const ServiceConfig config_;
  /// Declared before every member that holds instrument pointers into it
  /// (plan_cache_, resilience_ gauges, worker engines), so those members
  /// are destroyed first and never record into a dead registry. Private
  /// per service: two concurrent services never mix their series.
  MetricsRegistry metrics_;
  PlanCache plan_cache_;
  SharedMemoryBudget budget_;
  ResilienceManager resilience_;
  /// engine_config with degraded_mode set and the sort budget scaled by
  /// resilience.degraded_sort_budget_factor; swapped onto worker engines
  /// while the budget is over the high-water mark.
  OptimizerConfig degraded_engine_config_;
  /// engine_config as worker engines actually run it (metrics registry
  /// attached when config.enable_metrics).
  OptimizerConfig worker_engine_config_;

  /// Registry-backed ServiceStats counters (always on — they replace the
  /// old mutex-guarded struct; an increment is one relaxed atomic add).
  Counter* c_submitted_ = nullptr;
  Counter* c_admitted_ = nullptr;
  Counter* c_shed_queue_full_ = nullptr;
  Counter* c_shed_session_cap_ = nullptr;
  Counter* c_shed_budget_ = nullptr;
  Counter* c_completed_ = nullptr;
  Counter* c_failed_ = nullptr;
  Counter* c_retried_ = nullptr;
  Counter* c_breaker_rejected_ = nullptr;
  Counter* c_degraded_ = nullptr;
  Counter* c_quarantined_ = nullptr;
  /// Distribution instruments, null unless config.enable_metrics.
  Histogram* h_queue_wait_us_ = nullptr;
  Histogram* h_latency_ok_us_ = nullptr;
  Histogram* h_latency_failed_us_ = nullptr;
  Gauge* g_inflight_ = nullptr;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<TicketRef> queue_;
  bool stopping_ = false;

  mutable std::mutex sessions_mu_;
  std::unordered_map<int64_t, Session> sessions_;
  int64_t next_session_id_ = 1;
  std::atomic<int64_t> next_ticket_id_{1};

  std::vector<std::thread> workers_;
};

}  // namespace ordopt

#endif  // ORDOPT_SERVICE_QUERY_SERVICE_H_
