#ifndef ORDOPT_SERVICE_PLAN_CACHE_H_
#define ORDOPT_SERVICE_PLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/engine.h"

namespace ordopt {

/// Normalizes query text for plan-cache keying: lowercases everything
/// outside single-quoted string literals and collapses runs of whitespace
/// to one space, so "SELECT  x\nFROM t" and "select x from t" share a
/// cache entry while "where name = 'Smith'" and "... = 'smith'" do not.
/// No semantic analysis — queries that differ in literals are distinct
/// entries by design (this engine has no parameter markers).
std::string NormalizeQueryText(const std::string& sql);

/// Counter snapshot of one cache's lifetime behavior.
struct PlanCacheStats {
  int64_t hits = 0;          ///< lookups served an entry (planning skipped)
  int64_t misses = 0;        ///< lookups that made the caller the planner
  int64_t evictions = 0;     ///< entries dropped by the LRU capacity bound
  int64_t invalidations = 0; ///< entries dropped for a stale stats epoch
  int64_t stampede_waits = 0;///< lookups that blocked on an in-flight plan
};

/// Fingerprint-keyed cache of optimized plans shared by every session of a
/// QueryService. The key is the *normalized* query text; each entry is
/// stamped with the Database stats epoch it was planned under, and a
/// lookup whose epoch differs drops the stale entry on the spot — the PR 4
/// epoch-invalidation rule lifted from Reduce/Test results to whole plans
/// (see Database::stats_epoch). Capacity is bounded with LRU eviction.
///
/// Stampede control: the first thread to miss on a key becomes its
/// *planner* (GetOrBeginPlanning returns nullptr) and must finish with
/// Publish or Abandon; concurrent lookups of the same key block until the
/// planner resolves instead of all re-planning the same query. If the
/// planner abandons (its query failed), one waiter is promoted to planner
/// and the rest keep waiting — so a failing query is re-tried by each
/// caller (it may fail for per-session reasons) but never planned twice
/// concurrently.
///
/// All methods are thread-safe.
class PlanCache {
 public:
  /// `capacity` = max ready entries; 0 disables caching (every
  /// GetOrBeginPlanning returns planner-role and Publish drops the entry).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  /// Looks up `sql` (normalizing internally) under `stats_epoch`.
  /// Returns the ready entry on a hit. Returns nullptr when the caller
  /// has been elected planner for this key: the caller MUST later call
  /// exactly one of Publish (success) or Abandon (failure), or every
  /// future lookup of the key will block forever.
  std::shared_ptr<const PreparedPlan> GetOrBeginPlanning(
      const std::string& sql, uint64_t stats_epoch);

  /// Non-blocking peek: the ready entry, or nullptr (never elects a
  /// planner, counts neither hit nor miss). For tests and introspection.
  std::shared_ptr<const PreparedPlan> Peek(const std::string& sql,
                                           uint64_t stats_epoch) const;

  /// Publishes the planner's result for `sql` and wakes waiters.
  void Publish(const std::string& sql, uint64_t stats_epoch,
               PreparedPlan plan);

  /// Gives up the planner role for `sql` (the query failed before a plan
  /// existed); one waiter, if any, is promoted to planner.
  void Abandon(const std::string& sql, uint64_t stats_epoch);

  /// Drops every entry (ready and in-flight markers are left to their
  /// planners; only ready entries are removed).
  void Clear();

  size_t capacity() const { return capacity_; }
  /// Ready entries currently resident.
  size_t size() const;
  PlanCacheStats stats() const;
  /// hits / (hits + misses), 0 when nothing was looked up.
  double HitRate() const;

 private:
  struct Slot {
    /// nullptr while a planner is in flight; set by Publish.
    std::shared_ptr<const PreparedPlan> plan;
    uint64_t stats_epoch = 0;
    bool planning = true;
    /// Planner generation: bumped on Abandon so waiters can tell "my
    /// planner resolved" from spurious wakeups.
    int64_t generation = 0;
    /// LRU position, valid only for ready (published) slots.
    std::list<std::string>::iterator lru_pos;
    bool in_lru = false;
  };

  // Both called with mu_ held.
  void TouchLocked(Slot* slot, const std::string& key);
  void EvictIfOverCapacityLocked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Slot> slots_;
  /// Most-recently-used keys at the front; only ready slots are listed.
  std::list<std::string> lru_;
  PlanCacheStats stats_;
};

}  // namespace ordopt

#endif  // ORDOPT_SERVICE_PLAN_CACHE_H_
