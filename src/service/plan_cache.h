#ifndef ORDOPT_SERVICE_PLAN_CACHE_H_
#define ORDOPT_SERVICE_PLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "exec/engine.h"

namespace ordopt {

/// Normalizes query text for plan-cache keying: lowercases everything
/// outside single-quoted string literals and collapses runs of whitespace
/// to one space, so "SELECT  x\nFROM t" and "select x from t" share a
/// cache entry while "where name = 'Smith'" and "... = 'smith'" do not.
std::string NormalizeQueryText(const std::string& sql);

/// Parameterized normalization: NormalizeQueryText plus literal stripping.
/// String literals ('...', with '' escapes) and numeric literals
/// (digit-dot runs not preceded by an identifier character, so `col2` and
/// `e1.salary` survive intact) are replaced by `?` and appended to
/// `*literals` in order of appearance (strings keep their quotes and
/// case). "where d >= date('1995-03-15') and p > 24" becomes
/// "where d >= date(?) and p > ?" with literals {"'1995-03-15'", "24"} —
/// so a literal-varying workload collapses onto one cache key per query
/// *template*.
std::string ParameterizeQueryText(const std::string& sql,
                                  std::vector<std::string>* literals = nullptr);

/// Counter snapshot of one cache's lifetime behavior.
struct PlanCacheStats {
  int64_t hits = 0;          ///< lookups served an entry (planning skipped)
  int64_t misses = 0;        ///< lookups that made the caller the planner
  int64_t evictions = 0;     ///< entries dropped by the LRU capacity bound
  int64_t invalidations = 0; ///< entries dropped for a stale stats epoch
  int64_t stampede_waits = 0;///< lookups that blocked on an in-flight plan
  /// Ready entries replaced because the same template arrived with
  /// different literal values (the plan embeds constants, so it cannot be
  /// served across literals; the key being shared bounds the footprint).
  int64_t literal_evictions = 0;
  /// Quarantine calls that newly quarantined a template.
  int64_t quarantined = 0;
  /// Lookups and publishes refused because the template is quarantined
  /// for the current stats epoch.
  int64_t quarantine_rejections = 0;
};

/// Fingerprint-keyed cache of optimized plans shared by every session of a
/// QueryService. The key is the *parameterized* query text (literals
/// stripped), so "price > 24" and "price > 25" share one entry slot; each
/// slot remembers the exact literal values it was planned with and is only
/// served when they match — this engine has no parameter markers, so a
/// plan is correct only for the constants baked into it. A same-template,
/// different-literal lookup evicts the entry and replans (the common
/// literal-varying workload keeps a bounded one-slot-per-template
/// footprint instead of flooding the LRU). Each slot is also stamped with
/// the Database stats epoch it was planned under, and a lookup whose epoch
/// differs drops the stale entry on the spot — the PR 4 epoch-invalidation
/// rule lifted from Reduce/Test results to whole plans (see
/// Database::stats_epoch). Capacity is bounded with LRU eviction.
///
/// Stampede control: the first thread to miss on a key becomes its
/// *planner* (GetOrBeginPlanning returns nullptr) and must finish with
/// Publish or Abandon; concurrent lookups of the same key block until the
/// planner resolves instead of all re-planning the same query. If the
/// planner abandons (its query failed), one waiter is promoted to planner
/// and the rest keep waiting — so a failing query is re-tried by each
/// caller (it may fail for per-session reasons) but never planned twice
/// concurrently.
///
/// Quarantine: when a *cached* plan's execution fails non-transiently the
/// service calls Quarantine, which evicts the entry and blacklists the
/// template for the stats epoch it failed under — lookups miss (callers
/// replan fresh every time) and publishes are refused until the epoch
/// moves on. This keeps one poisoned plan from being re-served to every
/// session while statistics (and therefore plan choice) are unchanged.
///
/// All methods are thread-safe.
class PlanCache {
 public:
  /// `capacity` = max ready entries; 0 disables caching (every
  /// GetOrBeginPlanning returns planner-role and Publish drops the entry).
  /// With `registry`, the cache records its counters there (names
  /// `plan_cache.*`) plus a `plan_cache.entries` callback gauge and a
  /// `plan_cache.stampede_wait_us` histogram of time lookups spent blocked
  /// on an in-flight planner; the registry must outlive the cache. Without
  /// one the cache owns a private registry, so stats() always reads from
  /// one consistent snapshot either way.
  explicit PlanCache(size_t capacity, MetricsRegistry* registry = nullptr);
  ~PlanCache();

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Looks up `sql` (parameterizing internally) under `stats_epoch`.
  /// Returns the ready entry on a hit (same template, same literals, same
  /// epoch, not quarantined). Returns nullptr when the caller has been
  /// elected planner for this key: the caller MUST later call exactly one
  /// of Publish (success) or Abandon (failure), or every future lookup of
  /// the key will block forever. (Quarantined lookups also return nullptr
  /// without creating a marker — Publish/Abandon stay safe to call and
  /// are simply refused.)
  std::shared_ptr<const PreparedPlan> GetOrBeginPlanning(
      const std::string& sql, uint64_t stats_epoch);

  /// Non-blocking peek: the ready entry, or nullptr (never elects a
  /// planner, counts neither hit nor miss). The degraded-mode read path —
  /// a hit costs nothing and a miss creates no publish obligation.
  std::shared_ptr<const PreparedPlan> Peek(const std::string& sql,
                                           uint64_t stats_epoch) const;

  /// Publishes the planner's result for `sql` and wakes waiters.
  void Publish(const std::string& sql, uint64_t stats_epoch,
               PreparedPlan plan);

  /// Gives up the planner role for `sql` (the query failed before a plan
  /// existed); one waiter, if any, is promoted to planner.
  void Abandon(const std::string& sql, uint64_t stats_epoch);

  /// Evicts `sql`'s entry and refuses to cache its template again while
  /// the database is still at `stats_epoch` (the epoch the failure was
  /// observed under). Idempotent.
  void Quarantine(const std::string& sql, uint64_t stats_epoch);

  /// True when `sql`'s template is quarantined at `stats_epoch`.
  bool IsQuarantined(const std::string& sql, uint64_t stats_epoch) const;

  /// Drops every ready entry (in-flight markers are left to their
  /// planners) and all quarantine marks.
  void Clear();

  size_t capacity() const { return capacity_; }
  /// Ready entries currently resident.
  size_t size() const;
  /// One registry snapshot — every counter is read from the same pass, so
  /// derived relations (hits + misses = lookups) never tear against each
  /// other the way independently-read atomics could.
  PlanCacheStats stats() const;
  /// hits / (hits + misses), 0 when nothing was looked up.
  double HitRate() const;

 private:
  struct Slot {
    /// nullptr while a planner is in flight; set by Publish.
    std::shared_ptr<const PreparedPlan> plan;
    uint64_t stats_epoch = 0;
    /// The literal values the plan was built with (joined signature);
    /// a ready slot is served only on an exact match.
    std::string literal_sig;
    bool planning = true;
    /// Planner generation: bumped on Abandon so waiters can tell "my
    /// planner resolved" from spurious wakeups.
    int64_t generation = 0;
    /// LRU position, valid only for ready (published) slots.
    std::list<std::string>::iterator lru_pos;
    bool in_lru = false;
  };

  // All called with mu_ held.
  void TouchLocked(Slot* slot, const std::string& key);
  void EvictIfOverCapacityLocked();
  bool QuarantinedLocked(const std::string& key, uint64_t stats_epoch) const;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::string, Slot> slots_;
  /// Most-recently-used keys at the front; only ready slots are listed.
  std::list<std::string> lru_;
  /// Template -> stats epoch it was quarantined under. Entries for old
  /// epochs are dropped lazily on lookup.
  mutable std::unordered_map<std::string, uint64_t> quarantine_;

  /// Fallback registry when the caller supplied none (standalone caches in
  /// tests); metrics_ points at it or at the caller's.
  std::unique_ptr<MetricsRegistry> owned_registry_;
  MetricsRegistry* metrics_ = nullptr;
  Counter* c_hits_ = nullptr;
  Counter* c_misses_ = nullptr;
  Counter* c_evictions_ = nullptr;
  Counter* c_invalidations_ = nullptr;
  Counter* c_stampede_waits_ = nullptr;
  Counter* c_literal_evictions_ = nullptr;
  Counter* c_quarantined_ = nullptr;
  Counter* c_quarantine_rejections_ = nullptr;
  Histogram* h_stampede_wait_us_ = nullptr;
};

}  // namespace ordopt

#endif  // ORDOPT_SERVICE_PLAN_CACHE_H_
