#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "common/str_util.h"

namespace ordopt {

const Result<QueryResult>& QueryTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryTicket::Complete(Result<QueryResult> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

QueryService::QueryService(Database* db, ServiceConfig config)
    : db_(db),
      config_(config),
      plan_cache_(config.plan_cache_capacity),
      budget_(config.global_budget_bytes) {
  int workers = std::max(1, config_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

int64_t QueryService::OpenSession() {
  return OpenSession(config_.default_limits);
}

int64_t QueryService::OpenSession(QueryLimits limits) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  int64_t id = next_session_id_++;
  Session& session = sessions_[id];
  session.limits = limits;
  return id;
}

void QueryService::CloseSession(int64_t session_id) {
  std::vector<std::weak_ptr<QueryTicket>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.open) return;
    it->second.open = false;
    to_cancel = std::move(it->second.tickets);
    it->second.tickets.clear();
  }
  // Cancel outside the lock: RequestCancel is a relaxed store, but a
  // worker completing a ticket takes sessions_mu_ in FinishTicket.
  for (const std::weak_ptr<QueryTicket>& weak : to_cancel) {
    if (TicketRef ticket = weak.lock()) ticket->Cancel();
  }
}

Result<TicketRef> QueryService::Submit(int64_t session_id,
                                       const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }

  // Admission gate 1: global memory budget fully committed. Checked before
  // touching the session so an exhausted pool sheds uniformly.
  if (budget_.Exhausted()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_budget;
    return Status::ResourceExhausted(StrFormat(
        "global memory budget exhausted: %lld/%lld bytes committed",
        static_cast<long long>(budget_.used_bytes()),
        static_cast<long long>(budget_.limit_bytes())));
  }

  // Admission gate 2: session exists, is open, and is under its in-flight
  // cap. The in-flight count is reserved here and released in
  // FinishTicket, so the cap covers queued + running.
  QueryLimits limits;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.open) {
      return Status::NotFound(
          StrFormat("session %lld is not open",
                    static_cast<long long>(session_id)));
    }
    Session& session = it->second;
    if (config_.max_inflight_per_session > 0 &&
        session.inflight >= config_.max_inflight_per_session) {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed_session_cap;
      return Status::ResourceExhausted(
          StrFormat("session %lld at its in-flight limit (%d)",
                    static_cast<long long>(session_id),
                    config_.max_inflight_per_session));
    }
    ++session.inflight;
    limits = session.limits;
  }

  TicketRef ticket(new QueryTicket(
      next_ticket_id_.fetch_add(1, std::memory_order_relaxed), session_id,
      sql, limits));
  ticket->guard_.set_shared_budget(&budget_);

  // Admission gate 3: bounded queue — shed, never block.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      ReleaseSessionSlot(session_id, /*ticket=*/nullptr);
      return Status::Cancelled("query service is shut down");
    }
    size_t bound = std::max<size_t>(1, config_.queue_depth);
    if (queue_.size() >= bound) {
      ReleaseSessionSlot(session_id, /*ticket=*/nullptr);
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.shed_queue_full;
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%lld queries queued)",
                    static_cast<long long>(queue_.size())));
    }
    queue_.push_back(ticket);
  }
  queue_cv_.notify_one();

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) {
      it->second.tickets.push_back(ticket);
      // Prune dead weak_ptrs so a long-lived session's vector stays
      // proportional to its in-flight count.
      if (it->second.tickets.size() >
          static_cast<size_t>(it->second.inflight) * 2 + 8) {
        auto& v = it->second.tickets;
        v.erase(std::remove_if(v.begin(), v.end(),
                               [](const std::weak_ptr<QueryTicket>& w) {
                                 return w.expired();
                               }),
                v.end());
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admitted;
  }
  return ticket;
}

Result<QueryResult> QueryService::Execute(int64_t session_id,
                                          const std::string& sql) {
  ORDOPT_ASSIGN_OR_RETURN(TicketRef ticket, Submit(session_id, sql));
  return ticket->Wait();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Second and later calls find every worker already joined.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void QueryService::WorkerLoop() {
  // Engine-per-worker: no shared mutable engine state, so workers only
  // meet at the queue, the plan cache, and the budget.
  QueryEngine engine(db_, config_.engine_config);
  while (true) {
    TicketRef ticket;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTicket(&engine, ticket);
  }
}

void QueryService::RunTicket(QueryEngine* engine, const TicketRef& ticket) {
  auto picked_up = std::chrono::steady_clock::now();
  ticket->queued_seconds_ =
      std::chrono::duration<double>(picked_up - ticket->submit_time_).count();

  // A cancel that lands while the query is still queued skips execution
  // (and planning) entirely.
  if (ticket->guard_.cancel_requested()) {
    ticket->exec_seconds_ = 0.0;
    FinishTicket(*ticket, /*ok=*/false);
    ticket->Complete(Status::Cancelled("query cancelled while queued"));
    return;
  }

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (plan_cache_.capacity() == 0) {
      return engine->Run(ticket->sql_, &ticket->guard_);
    }
    // Capture the epoch before planning so a stats refresh that lands
    // mid-optimization can only make the published entry *stale* (dropped
    // at next lookup), never wrongly fresh.
    uint64_t epoch = db_->stats_epoch();
    std::shared_ptr<const PreparedPlan> cached =
        plan_cache_.GetOrBeginPlanning(ticket->sql_, epoch);
    if (cached != nullptr) {
      return engine->RunPrepared(*cached, &ticket->guard_);
    }
    // This worker is the planner for the key: it must resolve the slot.
    Result<QueryResult> planned = engine->Run(ticket->sql_, &ticket->guard_);
    if (planned.ok()) {
      plan_cache_.Publish(ticket->sql_, epoch,
                          PreparedPlan::FromResult(planned.value()));
    } else {
      plan_cache_.Abandon(ticket->sql_, epoch);
    }
    return planned;
  }();

  ticket->exec_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    picked_up)
          .count();
  FinishTicket(*ticket, result.ok());
  ticket->Complete(std::move(result));
}

void QueryService::FinishTicket(const QueryTicket& ticket, bool ok) {
  ReleaseSessionSlot(ticket.session_id(), &ticket);
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (ok) {
    ++stats_.completed;
  } else {
    ++stats_.failed;
  }
}

void QueryService::ReleaseSessionSlot(int64_t session_id,
                                      const QueryTicket* ticket) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (it->second.inflight > 0) --it->second.inflight;
  if (ticket != nullptr) {
    auto& v = it->second.tickets;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [ticket](const std::weak_ptr<QueryTicket>& w) {
                             TicketRef t = w.lock();
                             return t == nullptr || t.get() == ticket;
                           }),
            v.end());
  }
}

}  // namespace ordopt
