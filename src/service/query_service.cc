#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "common/retry.h"
#include "common/str_util.h"

namespace ordopt {

const Result<QueryResult>& QueryTicket::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void QueryTicket::Complete(Result<QueryResult> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

QueryService::QueryService(Database* db, ServiceConfig config)
    : db_(db),
      config_(config),
      plan_cache_(config.plan_cache_capacity, &metrics_),
      budget_(config.global_budget_bytes),
      resilience_(config.resilience, &budget_) {
  c_submitted_ = metrics_.GetCounter("service.submitted");
  c_admitted_ = metrics_.GetCounter("service.admitted");
  c_shed_queue_full_ = metrics_.GetCounter("service.shed_queue_full");
  c_shed_session_cap_ = metrics_.GetCounter("service.shed_session_cap");
  c_shed_budget_ = metrics_.GetCounter("service.shed_budget");
  c_completed_ = metrics_.GetCounter("service.completed");
  c_failed_ = metrics_.GetCounter("service.failed");
  c_retried_ = metrics_.GetCounter("service.retried");
  c_breaker_rejected_ = metrics_.GetCounter("service.breaker_rejected");
  c_degraded_ = metrics_.GetCounter("service.degraded");
  c_quarantined_ = metrics_.GetCounter("service.quarantined");

  degraded_engine_config_ = config_.engine_config;
  degraded_engine_config_.degraded_mode = true;
  degraded_engine_config_.cost_params.sort_memory_rows = std::max<int64_t>(
      16, static_cast<int64_t>(
              static_cast<double>(
                  config_.engine_config.cost_params.sort_memory_rows) *
              config_.resilience.degraded_sort_budget_factor));
  worker_engine_config_ = config_.engine_config;

  if (config_.enable_metrics) {
    h_queue_wait_us_ = metrics_.GetHistogram("service.queue_wait_us");
    h_latency_ok_us_ = metrics_.GetHistogram("service.latency_ok_us");
    h_latency_failed_us_ = metrics_.GetHistogram("service.latency_failed_us");
    g_inflight_ = metrics_.GetGauge("service.inflight");
    metrics_.RegisterCallbackGauge("service.queue_depth", [this] {
      return static_cast<int64_t>(queue_depth());
    });
    metrics_.RegisterCallbackGauge("service.degraded_mode", [this] {
      return resilience_.InDegradedMode() ? int64_t{1} : int64_t{0};
    });
    metrics_.RegisterCallbackGauge("budget.used_bytes",
                                   [this] { return budget_.used_bytes(); });
    metrics_.RegisterCallbackGauge("budget.peak_bytes",
                                   [this] { return budget_.peak_bytes(); });
    metrics_.RegisterCallbackGauge("budget.limit_bytes",
                                   [this] { return budget_.limit_bytes(); });
    metrics_.RegisterCallbackGauge("budget.rejections",
                                   [this] { return budget_.rejections(); });
    resilience_.AttachMetrics(&metrics_);
    worker_engine_config_.metrics = &metrics_;
    degraded_engine_config_.metrics = &metrics_;
  }

  int workers = std::max(1, config_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

int64_t QueryService::OpenSession() {
  return OpenSession(config_.default_limits);
}

int64_t QueryService::OpenSession(QueryLimits limits) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  int64_t id = next_session_id_++;
  Session& session = sessions_[id];
  session.limits = limits;
  return id;
}

void QueryService::CloseSession(int64_t session_id) {
  std::vector<std::weak_ptr<QueryTicket>> to_cancel;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.open) return;
    it->second.open = false;
    to_cancel = std::move(it->second.tickets);
    it->second.tickets.clear();
  }
  // Cancel outside the lock: RequestCancel is a relaxed store, but a
  // worker completing a ticket takes sessions_mu_ in FinishTicket.
  for (const std::weak_ptr<QueryTicket>& weak : to_cancel) {
    if (TicketRef ticket = weak.lock()) ticket->Cancel();
  }
}

Result<TicketRef> QueryService::Submit(int64_t session_id,
                                       const std::string& sql) {
  c_submitted_->Increment();

  // Admission gate 1: global memory budget fully committed. Checked before
  // touching the session so an exhausted pool sheds uniformly.
  if (budget_.Exhausted()) {
    c_shed_budget_->Increment();
    return Status::ResourceExhausted(StrFormat(
        "global memory budget exhausted: %lld/%lld bytes committed",
        static_cast<long long>(budget_.used_bytes()),
        static_cast<long long>(budget_.limit_bytes())));
  }

  // Admission gate 2: session exists, is open, and is under its in-flight
  // cap. The in-flight count is reserved here and released in
  // FinishTicket, so the cap covers queued + running.
  QueryLimits limits;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end() || !it->second.open) {
      return Status::NotFound(
          StrFormat("session %lld is not open",
                    static_cast<long long>(session_id)));
    }
    Session& session = it->second;
    if (config_.max_inflight_per_session > 0 &&
        session.inflight >= config_.max_inflight_per_session) {
      c_shed_session_cap_->Increment();
      return Status::ResourceExhausted(
          StrFormat("session %lld at its in-flight limit (%d)",
                    static_cast<long long>(session_id),
                    config_.max_inflight_per_session));
    }
    ++session.inflight;
    limits = session.limits;
  }

  TicketRef ticket(new QueryTicket(
      next_ticket_id_.fetch_add(1, std::memory_order_relaxed), session_id,
      sql, limits));
  ticket->guard_.set_shared_budget(&budget_);
  // The ticket id doubles as the query's end-to-end correlation id: the
  // guard carries it to the engine, which stamps it on the result, every
  // trace event, and the EXPLAIN ANALYZE summary. It survives
  // ResetForRetry, so all attempts of one ticket share one id.
  ticket->guard_.set_query_id(ticket->id());

  // Admission gate 3: bounded queue — shed, never block.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      ReleaseSessionSlot(session_id, /*ticket=*/nullptr);
      return Status::Cancelled("query service is shut down");
    }
    size_t bound = std::max<size_t>(1, config_.queue_depth);
    if (queue_.size() >= bound) {
      ReleaseSessionSlot(session_id, /*ticket=*/nullptr);
      c_shed_queue_full_->Increment();
      return Status::ResourceExhausted(
          StrFormat("admission queue full (%lld queries queued)",
                    static_cast<long long>(queue_.size())));
    }
    queue_.push_back(ticket);
  }
  queue_cv_.notify_one();

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) {
      it->second.tickets.push_back(ticket);
      // Prune dead weak_ptrs so a long-lived session's vector stays
      // proportional to its in-flight count.
      if (it->second.tickets.size() >
          static_cast<size_t>(it->second.inflight) * 2 + 8) {
        auto& v = it->second.tickets;
        v.erase(std::remove_if(v.begin(), v.end(),
                               [](const std::weak_ptr<QueryTicket>& w) {
                                 return w.expired();
                               }),
                v.end());
      }
    }
  }

  c_admitted_->Increment();
  return ticket;
}

Result<QueryResult> QueryService::Execute(int64_t session_id,
                                          const std::string& sql) {
  ORDOPT_ASSIGN_OR_RETURN(TicketRef ticket, Submit(session_id, sql));
  return ticket->Wait();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Second and later calls find every worker already joined.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats QueryService::stats() const {
  MetricsSnapshot snap = metrics_.Snap();
  ServiceStats s;
  s.submitted = snap.CounterValue("service.submitted");
  s.admitted = snap.CounterValue("service.admitted");
  s.shed_queue_full = snap.CounterValue("service.shed_queue_full");
  s.shed_session_cap = snap.CounterValue("service.shed_session_cap");
  s.shed_budget = snap.CounterValue("service.shed_budget");
  s.completed = snap.CounterValue("service.completed");
  s.failed = snap.CounterValue("service.failed");
  s.retried = snap.CounterValue("service.retried");
  s.breaker_rejected = snap.CounterValue("service.breaker_rejected");
  s.degraded = snap.CounterValue("service.degraded");
  s.quarantined = snap.CounterValue("service.quarantined");
  return s;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void QueryService::WorkerLoop() {
  // Engine-per-worker: no shared mutable engine state, so workers only
  // meet at the queue, the plan cache, the budget, the breakers, and the
  // (sharded, relaxed-atomic) metrics registry.
  WorkerState state(db_, worker_engine_config_);
  while (true) {
    TicketRef ticket;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      ticket = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTicket(&state, ticket);
  }
}

void QueryService::RunTicket(WorkerState* state, const TicketRef& ticket) {
  auto picked_up = std::chrono::steady_clock::now();
  if (ticket->attempts_ == 0) {
    ticket->queued_seconds_ =
        std::chrono::duration<double>(picked_up - ticket->submit_time_)
            .count();
    if (h_queue_wait_us_ != nullptr) {
      h_queue_wait_us_->Record(
          static_cast<int64_t>(ticket->queued_seconds_ * 1e6));
    }
  }

  // A cancel that lands while the query is still queued skips execution
  // (and planning) entirely.
  if (ticket->guard_.cancel_requested()) {
    FinishTicket(*ticket, /*ok=*/false);
    ticket->Complete(Status::Cancelled("query cancelled while queued"));
    return;
  }

  // Breaker gate: while a fault domain is melting down, admitted work
  // fast-fails instead of piling onto the broken resource. In half-open
  // state this query may carry probe tokens whose outcome re-closes (or
  // re-opens) the breaker.
  uint32_t probe_mask = 0;
  Status admit = resilience_.AdmitExecution(&probe_mask);
  if (!admit.ok()) {
    c_breaker_rejected_->Increment();
    FinishTicket(*ticket, /*ok=*/false);
    ticket->Complete(std::move(admit));
    return;
  }

  // Degraded-mode admission: over the budget's high-water mark new work
  // runs with the squeezed config (sorts spill earlier) rather than
  // queueing up to be shed at full commitment. The swap is cheap and
  // sticky — the engine keeps whichever config the last query needed.
  bool degraded = resilience_.InDegradedMode();
  if (degraded != state->degraded) {
    state->engine.set_config(degraded ? degraded_engine_config_
                                      : worker_engine_config_);
    state->degraded = degraded;
  }
  if (degraded) c_degraded_->Increment();

  bool from_cache = false;
  uint64_t epoch = 0;
  if (g_inflight_ != nullptr) g_inflight_->Add(1);
  Result<QueryResult> result =
      ExecuteAttempt(&state->engine, ticket, degraded, &from_cache, &epoch);
  if (g_inflight_ != nullptr) g_inflight_->Add(-1);

  ticket->exec_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    picked_up)
          .count();

  resilience_.OnQueryOutcome(result.status(), probe_mask);

  if (!result.ok() && from_cache &&
      ResilienceManager::ShouldQuarantine(result.status())) {
    // A plan that planned fine but fails execution non-transiently is
    // presumed poisoned: stop re-serving it while the same statistics
    // would just rebuild it.
    plan_cache_.Quarantine(ticket->sql_, epoch);
    c_quarantined_->Increment();
  }

  if (!result.ok() &&
      resilience_.ShouldRetry(result.status(), ticket->attempts_ + 1)) {
    // Transient failure with tries left: re-admit at the back of the
    // queue. The ticket stays pending and the session slot stays
    // reserved; only the guard resets (a cancel request survives).
    ticket->guard_.ResetForRetry();
    bool requeued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!stopping_) {
        ++ticket->attempts_;
        queue_.push_back(ticket);
        requeued = true;
      }
    }
    if (requeued) {
      c_retried_->Increment();
      // Deterministic backoff, served by this worker *after* handing the
      // retry off so a healthy queue keeps draining.
      queue_cv_.notify_one();
      SleepForBackoff(resilience_.retry_policy(), ticket->attempts_);
      return;
    }
    // Shutting down: no re-admission, the transient error stands.
  }

  if (result.ok()) {
    result.value().retry_attempts = ticket->attempts_;
  }
  FinishTicket(*ticket, result.ok());
  ticket->Complete(std::move(result));
}

Result<QueryResult> QueryService::ExecuteAttempt(QueryEngine* engine,
                                                 const TicketRef& ticket,
                                                 bool degraded,
                                                 bool* from_cache,
                                                 uint64_t* epoch) {
  *from_cache = false;
  *epoch = 0;
  if (plan_cache_.capacity() == 0) {
    return engine->Run(ticket->sql_, &ticket->guard_);
  }
  // Capture the epoch before planning so a stats refresh that lands
  // mid-optimization can only make the published entry *stale* (dropped
  // at next lookup), never wrongly fresh.
  *epoch = db_->stats_epoch();
  if (degraded) {
    // Degraded admissions read the cache but never write it: Peek elects
    // no planner, so a miss carries no publish obligation and the squeezed
    // plan this attempt would build never pollutes the cache.
    std::shared_ptr<const PreparedPlan> cached =
        plan_cache_.Peek(ticket->sql_, *epoch);
    if (cached != nullptr) {
      *from_cache = true;
      return engine->RunPrepared(*cached, &ticket->guard_);
    }
    return engine->Run(ticket->sql_, &ticket->guard_);
  }
  std::shared_ptr<const PreparedPlan> cached =
      plan_cache_.GetOrBeginPlanning(ticket->sql_, *epoch);
  if (cached != nullptr) {
    *from_cache = true;
    return engine->RunPrepared(*cached, &ticket->guard_);
  }
  // This worker is the planner for the key: it must resolve the slot.
  // (Under quarantine the lookup elects no planner; Publish is refused
  // and Abandon no-ops, so the protocol below stays safe to run.)
  Result<QueryResult> planned = engine->Run(ticket->sql_, &ticket->guard_);
  if (planned.ok()) {
    plan_cache_.Publish(ticket->sql_, *epoch,
                        PreparedPlan::FromResult(planned.value()));
  } else {
    plan_cache_.Abandon(ticket->sql_, *epoch);
  }
  return planned;
}

void QueryService::FinishTicket(const QueryTicket& ticket, bool ok) {
  ReleaseSessionSlot(ticket.session_id(), &ticket);
  (ok ? c_completed_ : c_failed_)->Increment();
  Histogram* latency = ok ? h_latency_ok_us_ : h_latency_failed_us_;
  if (latency != nullptr) {
    latency->Record(static_cast<int64_t>(
        (ticket.queued_seconds_ + ticket.exec_seconds_) * 1e6));
  }
}

void QueryService::ReleaseSessionSlot(int64_t session_id,
                                      const QueryTicket* ticket) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  if (it->second.inflight > 0) --it->second.inflight;
  if (ticket != nullptr) {
    auto& v = it->second.tickets;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [ticket](const std::weak_ptr<QueryTicket>& w) {
                             TicketRef t = w.lock();
                             return t == nullptr || t.get() == ticket;
                           }),
            v.end());
  }
}

}  // namespace ordopt
