#ifndef ORDOPT_SERVICE_RESILIENCE_H_
#define ORDOPT_SERVICE_RESILIENCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "exec/query_guard.h"

namespace ordopt {

/// Infrastructure fault domains the service tracks independently: a flaky
/// disk under the spill directory must not take index scans with it, and a
/// poisoned planner path must not block cached executions. Failures that
/// say nothing about shared infrastructure health — user errors, per-query
/// guard trips, cancellations — classify as kNone and feed no breaker.
enum class FaultDomain {
  kStorage = 0,  ///< base-table access: B+-tree reads, CSV ingestion
  kSpill = 1,    ///< external-sort run files: write/read/merge/cleanup
  kPlanner = 2,  ///< plan construction
  kNone = 3,     ///< unclassified (user error, guard trip, unknown site)
};

inline constexpr int kNumFaultDomains = 3;

/// Maps a failed Status onto the domain whose breaker should see it. Only
/// kIoError and kInternal failures are infrastructure-shaped; the domain
/// is recovered from the failure message's probe-site vocabulary
/// ("spill", "storage.", "planner.") — the same names ORDOPT_FAULTS arms.
FaultDomain ClassifyFaultDomain(const Status& status);

const char* FaultDomainName(FaultDomain domain);

/// Circuit-breaker tuning shared by every domain.
struct BreakerConfig {
  /// Failures within the rolling window that trip the breaker open;
  /// <= 0 disables breakers entirely (Allow always passes).
  int failure_threshold = 5;
  /// Rolling window the threshold counts over.
  double window_seconds = 10.0;
  /// Cooldown after a trip before the breaker half-opens and lets one
  /// probe query through.
  double open_seconds = 0.25;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Per-fault-domain circuit breaker: trips open after
/// `failure_threshold` failures inside `window_seconds`, fast-fails every
/// request for `open_seconds`, then half-opens and admits exactly one
/// probe — a successful probe closes the breaker, a failed one re-opens
/// it. Thread-safe; the closed-state fast path is one relaxed atomic load.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerConfig config) : config_(config) {}

  /// Admission decision. True → the request may run; `*probe` is set when
  /// this request is the half-open probe (the caller must report its
  /// outcome with the probe flag). False → fast-fail with kUnavailable.
  bool Allow(bool* probe);

  /// The request finished OK. Only meaningful work happens for probes
  /// (closing a half-open breaker); closed-state successes are free.
  void OnSuccess(bool probe);

  /// The request failed *in this breaker's domain*.
  void OnFailure(bool probe);

  /// The probe carrier failed for an unrelated reason (another domain, a
  /// guard trip): the probe token goes back so the next request re-probes.
  void OnProbeInconclusive();

  BreakerState state() const {
    return state_.load(std::memory_order_relaxed);
  }
  /// Times the breaker has tripped open.
  int64_t trips() const { return trips_.load(std::memory_order_relaxed); }
  /// Requests fast-failed while open (or while a probe was in flight).
  int64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  /// Attaches an open-duration histogram: when the breaker re-closes after
  /// a trip, the microseconds the whole open episode lasted (first trip
  /// through probe success, including half-open re-trips) are recorded.
  /// `open_duration_us` must outlive the breaker; null detaches.
  void AttachMetrics(Histogram* open_duration_us);

 private:
  using Clock = std::chrono::steady_clock;

  /// Called with mu_ held.
  void TripLocked(Clock::time_point now);

  BreakerConfig config_;
  mutable std::mutex mu_;
  std::atomic<BreakerState> state_{BreakerState::kClosed};
  Clock::time_point open_until_{};
  bool probe_in_flight_ = false;
  std::deque<Clock::time_point> failures_;
  std::atomic<int64_t> trips_{0};
  std::atomic<int64_t> rejections_{0};
  /// Open-episode tracking for the attached histogram (guarded by mu_):
  /// an episode starts at the closed->open trip and ends when a probe
  /// success re-closes the breaker.
  Histogram* open_duration_us_ = nullptr;
  bool open_episode_ = false;
  Clock::time_point opened_at_{};
};

/// Failure-handling policy for one QueryService instance.
struct ResilienceConfig {
  /// Service-level retry: a query that fails with a transient status
  /// (kIoError — e.g. spill I/O that exhausted its own low-level RetryIo
  /// attempts) is re-admitted to the back of the queue, up to
  /// retry.max_attempts total tries, with retry's deterministic backoff
  /// between attempts.
  bool enable_retry = true;
  RetryPolicy retry;
  /// Per-fault-domain circuit breakers (storage / spill / planner).
  BreakerConfig breaker;
  /// Degraded-mode high-water mark: when the shared memory budget's
  /// occupancy reaches this fraction of its limit, new admissions run
  /// degraded — reduced sort budget (spill earlier) and plan-cache writes
  /// disabled — instead of waiting to be shed at full commitment.
  /// <= 0 disables; also inert when the budget is unlimited.
  double degraded_high_water = 0.85;
  /// Multiplier applied to cost_params.sort_memory_rows for degraded
  /// admissions (clamped to >= 16 rows).
  double degraded_sort_budget_factor = 0.25;
};

/// The QueryService's failure-policy brain: owns the three domain
/// breakers, decides degraded-mode admission from budget occupancy, and
/// centralizes the retry and plan-quarantine predicates so every layer
/// applies the same rules. Thread-safe.
class ResilienceManager {
 public:
  ResilienceManager(ResilienceConfig config, const SharedMemoryBudget* budget)
      : config_(config),
        budget_(budget),
        breakers_{CircuitBreaker(config.breaker), CircuitBreaker(config.breaker),
                  CircuitBreaker(config.breaker)} {}

  /// Execution gate, consulted when a worker picks a query up. OK → run,
  /// with `*probe_mask` carrying one bit per half-open domain this query
  /// probes (pass it back to OnQueryOutcome). kUnavailable → fast-fail
  /// without executing.
  Status AdmitExecution(uint32_t* probe_mask);

  /// Reports a finished query: classifies a failure onto its domain's
  /// breaker, settles any probe tokens, and returns the charged domain
  /// (kNone for success or unclassified failures).
  FaultDomain OnQueryOutcome(const Status& status, uint32_t probe_mask);

  /// True when new admissions should run degraded (budget occupancy at or
  /// over the high-water mark).
  bool InDegradedMode() const;

  /// True when a failed query should be re-admitted: retry is enabled,
  /// the status is transient, and tries remain (`attempts_so_far` counts
  /// completed tries including the first).
  bool ShouldRetry(const Status& status, int attempts_so_far) const {
    return config_.enable_retry && IsTransient(status) &&
           attempts_so_far < std::max(1, config_.retry.max_attempts);
  }

  /// The quarantine rule: a cached plan whose execution failed for a
  /// reason that is neither transient nor attributable to the caller
  /// (cancel, deadline, resource limits) is presumed poisoned — evict it
  /// and refuse to re-serve the key for the current stats epoch.
  static bool ShouldQuarantine(const Status& status) {
    if (status.ok()) return false;
    switch (status.code()) {
      case StatusCode::kIoError:            // transient: retry, don't blame
      case StatusCode::kCancelled:          // caller's decision
      case StatusCode::kTimeout:            // caller's deadline
      case StatusCode::kResourceExhausted:  // caller's limits / shared pool
      case StatusCode::kUnavailable:        // breaker fast-fail
        return false;
      default:
        return true;
    }
  }

  /// Registers this manager's observability on `registry`: per-domain
  /// callback gauges `breaker.<domain>.state` (0 closed / 1 open / 2
  /// half-open), `.trips`, and `.rejections`, plus a
  /// `breaker.<domain>.open_duration_us` histogram fed by each breaker
  /// when an open episode ends. Call once; the manager must outlive every
  /// Snap of the registry.
  void AttachMetrics(MetricsRegistry* registry);

  const RetryPolicy& retry_policy() const { return config_.retry; }
  const ResilienceConfig& config() const { return config_; }
  const CircuitBreaker& breaker(FaultDomain domain) const {
    return breakers_[static_cast<int>(domain)];
  }
  /// Breaker trips summed over all domains.
  int64_t total_trips() const;
  /// Requests fast-failed by any breaker.
  int64_t total_rejections() const;

 private:
  const ResilienceConfig config_;
  const SharedMemoryBudget* budget_;
  CircuitBreaker breakers_[kNumFaultDomains];
};

}  // namespace ordopt

#endif  // ORDOPT_SERVICE_RESILIENCE_H_
