#include "service/plan_cache.h"

#include <cctype>
#include <utility>

namespace ordopt {

std::string NormalizeQueryText(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      // A doubled '' inside a literal is an escaped quote, not the end.
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out += '\'';
          ++i;
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
    } else {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

std::shared_ptr<const PreparedPlan> PlanCache::GetOrBeginPlanning(
    const std::string& sql, uint64_t stats_epoch) {
  std::string key = NormalizeQueryText(sql);
  std::unique_lock<std::mutex> lock(mu_);
  bool counted_wait = false;
  while (true) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      // Caller becomes the planner. The in-flight marker is invisible to
      // the LRU (it holds no plan yet).
      Slot slot;
      slot.stats_epoch = stats_epoch;
      slot.planning = true;
      slots_.emplace(key, std::move(slot));
      ++stats_.misses;
      return nullptr;
    }
    Slot& slot = it->second;
    if (!slot.planning) {
      if (slot.stats_epoch == stats_epoch) {
        ++stats_.hits;
        TouchLocked(&slot, key);
        return slot.plan;
      }
      // The statistics moved under the cached plan: drop it and take the
      // planner role for the new epoch.
      ++stats_.invalidations;
      if (slot.in_lru) lru_.erase(slot.lru_pos);
      slots_.erase(it);
      continue;
    }
    // A planner is in flight (possibly under an older epoch — its result
    // will be epoch-checked when it lands). Wait for it to resolve.
    if (!counted_wait) {
      ++stats_.stampede_waits;
      counted_wait = true;
    }
    int64_t seen_generation = slot.generation;
    cv_.wait(lock, [&] {
      auto cur = slots_.find(key);
      return cur == slots_.end() || !cur->second.planning ||
             cur->second.generation != seen_generation;
    });
  }
}

std::shared_ptr<const PreparedPlan> PlanCache::Peek(
    const std::string& sql, uint64_t stats_epoch) const {
  std::string key = NormalizeQueryText(sql);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.planning ||
      it->second.stats_epoch != stats_epoch) {
    return nullptr;
  }
  return it->second.plan;
}

void PlanCache::Publish(const std::string& sql, uint64_t stats_epoch,
                        PreparedPlan plan) {
  std::string key = NormalizeQueryText(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) return;  // Clear() raced the planner; drop it
    Slot& slot = it->second;
    slot.plan = std::make_shared<const PreparedPlan>(std::move(plan));
    slot.stats_epoch = stats_epoch;
    slot.planning = false;
    if (capacity_ == 0) {
      // Caching disabled: resolve waiters, keep nothing.
      slots_.erase(it);
    } else {
      TouchLocked(&slot, key);
      EvictIfOverCapacityLocked();
    }
  }
  cv_.notify_all();
}

void PlanCache::Abandon(const std::string& sql, uint64_t stats_epoch) {
  (void)stats_epoch;
  std::string key = NormalizeQueryText(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end() || !it->second.planning) return;
    // Erase the marker; the first waiter to wake re-misses and becomes
    // the next planner.
    ++it->second.generation;
    slots_.erase(it);
  }
  cv_.notify_all();
}

void PlanCache::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->second.planning) {
        ++it;  // leave in-flight markers to their planners
      } else {
        if (it->second.in_lru) lru_.erase(it->second.lru_pos);
        it = slots_.erase(it);
      }
    }
  }
  cv_.notify_all();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

double PlanCache::HitRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t lookups = stats_.hits + stats_.misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats_.hits) /
                            static_cast<double>(lookups);
}

void PlanCache::TouchLocked(Slot* slot, const std::string& key) {
  if (slot->in_lru) lru_.erase(slot->lru_pos);
  lru_.push_front(key);
  slot->lru_pos = lru_.begin();
  slot->in_lru = true;
}

void PlanCache::EvictIfOverCapacityLocked() {
  while (lru_.size() > capacity_) {
    const std::string& victim = lru_.back();
    auto it = slots_.find(victim);
    if (it != slots_.end()) slots_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace ordopt
