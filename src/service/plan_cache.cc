#include "service/plan_cache.h"

#include <cctype>
#include <chrono>
#include <utility>

namespace ordopt {

namespace {

/// Joins a literal vector into a slot signature. '\x1f' (ASCII unit
/// separator) cannot appear in parsed SQL text, so the join is injective.
std::string JoinLiterals(const std::vector<std::string>& literals) {
  std::string sig;
  for (const std::string& lit : literals) {
    sig += lit;
    sig += '\x1f';
  }
  return sig;
}

}  // namespace

PlanCache::PlanCache(size_t capacity, MetricsRegistry* registry)
    : capacity_(capacity) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<MetricsRegistry>();
    registry = owned_registry_.get();
  }
  metrics_ = registry;
  c_hits_ = registry->GetCounter("plan_cache.hits");
  c_misses_ = registry->GetCounter("plan_cache.misses");
  c_evictions_ = registry->GetCounter("plan_cache.evictions");
  c_invalidations_ = registry->GetCounter("plan_cache.invalidations");
  c_stampede_waits_ = registry->GetCounter("plan_cache.stampede_waits");
  c_literal_evictions_ = registry->GetCounter("plan_cache.literal_evictions");
  c_quarantined_ = registry->GetCounter("plan_cache.quarantined");
  c_quarantine_rejections_ =
      registry->GetCounter("plan_cache.quarantine_rejections");
  h_stampede_wait_us_ = registry->GetHistogram("plan_cache.stampede_wait_us");
  registry->RegisterCallbackGauge(
      "plan_cache.entries", [this] { return static_cast<int64_t>(size()); });
}

PlanCache::~PlanCache() {
  metrics_->UnregisterCallbackGauge("plan_cache.entries");
}

std::string NormalizeQueryText(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (size_t i = 0; i < sql.size(); ++i) {
    char c = sql[i];
    if (in_string) {
      out += c;
      // A doubled '' inside a literal is an escaped quote, not the end.
      if (c == '\'') {
        if (i + 1 < sql.size() && sql[i + 1] == '\'') {
          out += '\'';
          ++i;
        } else {
          in_string = false;
        }
      }
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'') {
      in_string = true;
      out += c;
    } else {
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

std::string ParameterizeQueryText(const std::string& sql,
                                  std::vector<std::string>* literals) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  // A digit run is a numeric literal only when it does not continue an
  // identifier: `24` and the `24` in `p > 24` are literals, the `2` in
  // `col2` and the `1` in `e1.salary` are not. The last emitted character
  // decides (a flushed space or punctuation means a fresh token).
  auto continues_identifier = [&out]() {
    if (out.empty()) return false;
    char p = out.back();
    return std::isalnum(static_cast<unsigned char>(p)) || p == '_' ||
           p == '.';
  };
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      ++i;
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    if (c == '\'') {
      // String literal, '' escapes included, captured verbatim.
      std::string lit(1, '\'');
      ++i;
      while (i < sql.size()) {
        char s = sql[i];
        lit += s;
        ++i;
        if (s == '\'') {
          if (i < sql.size() && sql[i] == '\'') {
            lit += '\'';
            ++i;
          } else {
            break;
          }
        }
      }
      if (literals != nullptr) literals->push_back(lit);
      out += '?';
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        !continues_identifier()) {
      std::string lit;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        lit += sql[i];
        ++i;
      }
      if (literals != nullptr) literals->push_back(lit);
      out += '?';
      continue;
    }
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ++i;
  }
  return out;
}

std::shared_ptr<const PreparedPlan> PlanCache::GetOrBeginPlanning(
    const std::string& sql, uint64_t stats_epoch) {
  std::vector<std::string> literals;
  std::string key = ParameterizeQueryText(sql, &literals);
  std::string sig = JoinLiterals(literals);
  std::unique_lock<std::mutex> lock(mu_);
  bool counted_wait = false;
  std::chrono::steady_clock::time_point wait_start;
  // Time a lookup spent blocked on another thread's in-flight planning;
  // recorded only for lookups that actually waited, so the fast paths
  // never read a clock.
  auto record_wait = [&] {
    if (!counted_wait) return;
    h_stampede_wait_us_->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wait_start)
            .count());
  };
  while (true) {
    if (QuarantinedLocked(key, stats_epoch)) {
      // Quarantined: no entry is served and no planner is elected (a
      // marker would obligate a Publish that Quarantine refuses). Every
      // caller plans fresh until the epoch moves on.
      c_quarantine_rejections_->Increment();
      c_misses_->Increment();
      record_wait();
      return nullptr;
    }
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      // Caller becomes the planner. The in-flight marker is invisible to
      // the LRU (it holds no plan yet).
      Slot slot;
      slot.stats_epoch = stats_epoch;
      slot.literal_sig = sig;
      slot.planning = true;
      slots_.emplace(key, std::move(slot));
      c_misses_->Increment();
      record_wait();
      return nullptr;
    }
    Slot& slot = it->second;
    if (!slot.planning) {
      if (slot.stats_epoch != stats_epoch) {
        // The statistics moved under the cached plan: drop it and take
        // the planner role for the new epoch.
        c_invalidations_->Increment();
        if (slot.in_lru) lru_.erase(slot.lru_pos);
        slots_.erase(it);
        continue;
      }
      if (slot.literal_sig != sig) {
        // Same template, different constants: the cached plan embeds the
        // old literals and cannot be served. Replace rather than grow.
        c_literal_evictions_->Increment();
        if (slot.in_lru) lru_.erase(slot.lru_pos);
        slots_.erase(it);
        continue;
      }
      c_hits_->Increment();
      TouchLocked(&slot, key);
      record_wait();
      return slot.plan;
    }
    // A planner is in flight (possibly under an older epoch or different
    // literals — its result will be checked when it lands). Wait for it
    // to resolve.
    if (!counted_wait) {
      c_stampede_waits_->Increment();
      counted_wait = true;
      wait_start = std::chrono::steady_clock::now();
    }
    int64_t seen_generation = slot.generation;
    cv_.wait(lock, [&] {
      auto cur = slots_.find(key);
      return cur == slots_.end() || !cur->second.planning ||
             cur->second.generation != seen_generation;
    });
  }
}

std::shared_ptr<const PreparedPlan> PlanCache::Peek(
    const std::string& sql, uint64_t stats_epoch) const {
  std::vector<std::string> literals;
  std::string key = ParameterizeQueryText(sql, &literals);
  std::string sig = JoinLiterals(literals);
  std::lock_guard<std::mutex> lock(mu_);
  if (QuarantinedLocked(key, stats_epoch)) return nullptr;
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.planning ||
      it->second.stats_epoch != stats_epoch ||
      it->second.literal_sig != sig) {
    return nullptr;
  }
  return it->second.plan;
}

void PlanCache::Publish(const std::string& sql, uint64_t stats_epoch,
                        PreparedPlan plan) {
  std::vector<std::string> literals;
  std::string key = ParameterizeQueryText(sql, &literals);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (QuarantinedLocked(key, stats_epoch)) {
      // Refused. Resolve a leftover planning marker anyway (a planner
      // elected just before the quarantine landed must not strand its
      // waiters — they wake, see the quarantine, and plan themselves).
      c_quarantine_rejections_->Increment();
      auto it = slots_.find(key);
      if (it != slots_.end() && it->second.planning) slots_.erase(it);
    } else {
      auto it = slots_.find(key);
      if (it == slots_.end()) return;  // Clear() raced the planner; drop it
      Slot& slot = it->second;
      slot.plan = std::make_shared<const PreparedPlan>(std::move(plan));
      slot.stats_epoch = stats_epoch;
      slot.literal_sig = JoinLiterals(literals);
      slot.planning = false;
      if (capacity_ == 0) {
        // Caching disabled: resolve waiters, keep nothing.
        slots_.erase(it);
      } else {
        TouchLocked(&slot, key);
        EvictIfOverCapacityLocked();
      }
    }
  }
  cv_.notify_all();
}

void PlanCache::Abandon(const std::string& sql, uint64_t stats_epoch) {
  (void)stats_epoch;
  std::string key = ParameterizeQueryText(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end() || !it->second.planning) return;
    // Erase the marker; the first waiter to wake re-misses and becomes
    // the next planner.
    ++it->second.generation;
    slots_.erase(it);
  }
  cv_.notify_all();
}

void PlanCache::Quarantine(const std::string& sql, uint64_t stats_epoch) {
  std::string key = ParameterizeQueryText(sql);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto q = quarantine_.find(key);
    if (q == quarantine_.end() || q->second != stats_epoch) {
      quarantine_[key] = stats_epoch;
      c_quarantined_->Increment();
    }
    // Evict the resident entry now; in-flight markers are left to their
    // planners (their Publish will be refused and will resolve waiters).
    auto it = slots_.find(key);
    if (it != slots_.end() && !it->second.planning) {
      if (it->second.in_lru) lru_.erase(it->second.lru_pos);
      slots_.erase(it);
    }
  }
}

bool PlanCache::IsQuarantined(const std::string& sql,
                              uint64_t stats_epoch) const {
  std::string key = ParameterizeQueryText(sql);
  std::lock_guard<std::mutex> lock(mu_);
  return QuarantinedLocked(key, stats_epoch);
}

void PlanCache::Clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (it->second.planning) {
        ++it;  // leave in-flight markers to their planners
      } else {
        if (it->second.in_lru) lru_.erase(it->second.lru_pos);
        it = slots_.erase(it);
      }
    }
    quarantine_.clear();
  }
  cv_.notify_all();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  MetricsSnapshot snap = metrics_->Snap();
  PlanCacheStats s;
  s.hits = snap.CounterValue("plan_cache.hits");
  s.misses = snap.CounterValue("plan_cache.misses");
  s.evictions = snap.CounterValue("plan_cache.evictions");
  s.invalidations = snap.CounterValue("plan_cache.invalidations");
  s.stampede_waits = snap.CounterValue("plan_cache.stampede_waits");
  s.literal_evictions = snap.CounterValue("plan_cache.literal_evictions");
  s.quarantined = snap.CounterValue("plan_cache.quarantined");
  s.quarantine_rejections =
      snap.CounterValue("plan_cache.quarantine_rejections");
  return s;
}

double PlanCache::HitRate() const {
  PlanCacheStats s = stats();
  int64_t lookups = s.hits + s.misses;
  return lookups == 0 ? 0.0
                      : static_cast<double>(s.hits) /
                            static_cast<double>(lookups);
}

void PlanCache::TouchLocked(Slot* slot, const std::string& key) {
  if (slot->in_lru) lru_.erase(slot->lru_pos);
  lru_.push_front(key);
  slot->lru_pos = lru_.begin();
  slot->in_lru = true;
}

void PlanCache::EvictIfOverCapacityLocked() {
  while (lru_.size() > capacity_) {
    const std::string& victim = lru_.back();
    auto it = slots_.find(victim);
    if (it != slots_.end()) slots_.erase(it);
    lru_.pop_back();
    c_evictions_->Increment();
  }
}

bool PlanCache::QuarantinedLocked(const std::string& key,
                                  uint64_t stats_epoch) const {
  auto it = quarantine_.find(key);
  if (it == quarantine_.end()) return false;
  if (it->second == stats_epoch) return true;
  // The epoch moved on: statistics changed, a fresh plan is a different
  // plan — the quarantine has served its purpose.
  quarantine_.erase(it);
  return false;
}

}  // namespace ordopt
