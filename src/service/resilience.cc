#include "service/resilience.h"

#include <algorithm>
#include <string>

namespace ordopt {

namespace {

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

FaultDomain ClassifyFaultDomain(const Status& status) {
  if (status.ok()) return FaultDomain::kNone;
  // Only infrastructure failures feed breakers. User errors (parse, bind,
  // unknown tables) and per-query guard trips (limits, cancel, deadline)
  // say nothing about shared resource health.
  if (status.code() != StatusCode::kIoError &&
      status.code() != StatusCode::kInternal) {
    return FaultDomain::kNone;
  }
  const std::string& m = status.message();
  // Spill before storage: spill-site names ("exec.sort.spill.write",
  // "ordopt-spill-*" temp files) never mention "storage.".
  if (Contains(m, "spill")) return FaultDomain::kSpill;
  if (Contains(m, "storage.") || Contains(m, "btree") || Contains(m, "csv")) {
    return FaultDomain::kStorage;
  }
  if (Contains(m, "planner")) return FaultDomain::kPlanner;
  return FaultDomain::kNone;
}

const char* FaultDomainName(FaultDomain domain) {
  switch (domain) {
    case FaultDomain::kStorage:
      return "storage";
    case FaultDomain::kSpill:
      return "spill";
    case FaultDomain::kPlanner:
      return "planner";
    case FaultDomain::kNone:
      return "none";
  }
  return "none";
}

bool CircuitBreaker::Allow(bool* probe) {
  *probe = false;
  if (config_.failure_threshold <= 0) return true;
  // Hot path: a closed breaker admits without taking the lock. The race
  // (state changes right after the load) only lets one extra request
  // through or rejects one early — both harmless.
  if (state_.load(std::memory_order_relaxed) == BreakerState::kClosed) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Clock::time_point now = Clock::now();
  if (state_.load(std::memory_order_relaxed) == BreakerState::kOpen) {
    if (now < open_until_) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    state_.store(BreakerState::kHalfOpen, std::memory_order_relaxed);
    probe_in_flight_ = false;
  }
  if (state_.load(std::memory_order_relaxed) == BreakerState::kHalfOpen) {
    if (probe_in_flight_) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    probe_in_flight_ = true;
    *probe = true;
  }
  return true;
}

void CircuitBreaker::OnSuccess(bool probe) {
  if (config_.failure_threshold <= 0) return;
  if (!probe &&
      state_.load(std::memory_order_relaxed) == BreakerState::kClosed) {
    return;  // the common case stays lock-free
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (probe) {
    // The probe came back healthy: close and forget the failure history.
    state_.store(BreakerState::kClosed, std::memory_order_relaxed);
    probe_in_flight_ = false;
    failures_.clear();
    if (open_episode_) {
      if (open_duration_us_ != nullptr) {
        open_duration_us_->Record(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - opened_at_)
                .count());
      }
      open_episode_ = false;
    }
  }
  // A non-probe success while open/half-open is a straggler admitted
  // before the trip; it proves nothing about current health.
}

void CircuitBreaker::OnFailure(bool probe) {
  if (config_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  Clock::time_point now = Clock::now();
  if (probe) {
    // The probe failed in-domain: straight back to open for another
    // cooldown.
    probe_in_flight_ = false;
    TripLocked(now);
    return;
  }
  failures_.push_back(now);
  auto window = std::chrono::duration<double>(
      std::max(0.0, config_.window_seconds));
  while (!failures_.empty() && now - failures_.front() > window) {
    failures_.pop_front();
  }
  if (state_.load(std::memory_order_relaxed) == BreakerState::kClosed &&
      static_cast<int>(failures_.size()) >= config_.failure_threshold) {
    TripLocked(now);
  }
}

void CircuitBreaker::OnProbeInconclusive() {
  if (config_.failure_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state_.load(std::memory_order_relaxed) == BreakerState::kHalfOpen) {
    probe_in_flight_ = false;
  }
}

void CircuitBreaker::TripLocked(Clock::time_point now) {
  state_.store(BreakerState::kOpen, std::memory_order_relaxed);
  open_until_ = now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              std::max(0.0, config_.open_seconds)));
  trips_.fetch_add(1, std::memory_order_relaxed);
  failures_.clear();
  // A half-open re-trip continues the episode the first trip started.
  if (!open_episode_) {
    open_episode_ = true;
    opened_at_ = now;
  }
}

void CircuitBreaker::AttachMetrics(Histogram* open_duration_us) {
  std::lock_guard<std::mutex> lock(mu_);
  open_duration_us_ = open_duration_us;
}

Status ResilienceManager::AdmitExecution(uint32_t* probe_mask) {
  *probe_mask = 0;
  for (int d = 0; d < kNumFaultDomains; ++d) {
    bool probe = false;
    if (!breakers_[d].Allow(&probe)) {
      // Settle probe tokens already granted by earlier domains: this
      // request will not run, so it cannot report their outcome.
      for (int p = 0; p < d; ++p) {
        if (*probe_mask & (1u << p)) breakers_[p].OnProbeInconclusive();
      }
      *probe_mask = 0;
      return Status::Unavailable(std::string("circuit breaker open for ") +
                                 FaultDomainName(static_cast<FaultDomain>(d)) +
                                 " fault domain");
    }
    if (probe) *probe_mask |= 1u << d;
  }
  return Status::OK();
}

FaultDomain ResilienceManager::OnQueryOutcome(const Status& status,
                                              uint32_t probe_mask) {
  if (status.ok()) {
    for (int d = 0; d < kNumFaultDomains; ++d) {
      if (probe_mask & (1u << d)) breakers_[d].OnSuccess(true);
    }
    return FaultDomain::kNone;
  }
  FaultDomain domain = ClassifyFaultDomain(status);
  for (int d = 0; d < kNumFaultDomains; ++d) {
    bool probed = (probe_mask & (1u << d)) != 0;
    if (static_cast<FaultDomain>(d) == domain) {
      breakers_[d].OnFailure(probed);
    } else if (probed) {
      // The probe carrier failed elsewhere; its domain learned nothing.
      breakers_[d].OnProbeInconclusive();
    }
  }
  return domain;
}

bool ResilienceManager::InDegradedMode() const {
  if (budget_ == nullptr || config_.degraded_high_water <= 0) return false;
  int64_t limit = budget_->limit_bytes();
  if (limit <= 0) return false;
  double occupancy =
      static_cast<double>(budget_->used_bytes()) / static_cast<double>(limit);
  return occupancy >= config_.degraded_high_water;
}

void ResilienceManager::AttachMetrics(MetricsRegistry* registry) {
  for (int d = 0; d < kNumFaultDomains; ++d) {
    std::string prefix =
        std::string("breaker.") + FaultDomainName(static_cast<FaultDomain>(d));
    CircuitBreaker* breaker = &breakers_[d];
    breaker->AttachMetrics(
        registry->GetHistogram(prefix + ".open_duration_us"));
    registry->RegisterCallbackGauge(prefix + ".state", [breaker] {
      return static_cast<int64_t>(breaker->state());
    });
    registry->RegisterCallbackGauge(
        prefix + ".trips", [breaker] { return breaker->trips(); });
    registry->RegisterCallbackGauge(
        prefix + ".rejections", [breaker] { return breaker->rejections(); });
  }
}

int64_t ResilienceManager::total_trips() const {
  int64_t total = 0;
  for (const CircuitBreaker& b : breakers_) total += b.trips();
  return total;
}

int64_t ResilienceManager::total_rejections() const {
  int64_t total = 0;
  for (const CircuitBreaker& b : breakers_) total += b.rejections();
  return total;
}

}  // namespace ordopt
