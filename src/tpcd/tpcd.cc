#include "tpcd/tpcd.h"

#include <algorithm>

#include "common/random.h"
#include "common/str_util.h"

namespace ordopt {

namespace {

const char* kSegments[] = {"automobile", "building", "furniture", "machinery",
                           "household"};
const char* kNations[] = {"algeria", "argentina", "brazil", "canada", "egypt",
                          "ethiopia", "france", "germany", "india",
                          "indonesia", "iran", "iraq", "japan", "jordan",
                          "kenya", "morocco", "mozambique", "peru", "china",
                          "romania", "saudi arabia", "vietnam", "russia",
                          "united kingdom", "united states"};
const char* kRegions[] = {"africa", "america", "asia", "europe",
                          "middle east"};
// Region of each nation, parallel to kNations.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

int64_t Days(const char* iso) {
  int64_t d = 0;
  ParseDate(iso, &d);
  return d;
}

}  // namespace

Status LoadTpcd(Database* db, const TpcdConfig& config) {
  const int64_t customers =
      std::max<int64_t>(10, static_cast<int64_t>(150000 * config.scale_factor));
  const int64_t orders = customers * 10;
  Rng rng(config.seed);

  const int64_t date_lo = Days("1992-01-01");
  const int64_t date_hi = Days("1998-08-02");

  // ---- region / nation ------------------------------------------------------
  {
    TableDef def;
    def.name = "region";
    def.columns = {{"r_regionkey", DataType::kInt64},
                   {"r_name", DataType::kString}};
    def.AddUniqueKey({"r_regionkey"});
    ORDOPT_ASSIGN_OR_RETURN(Table * t, db->CreateTable(std::move(def)));
    for (int i = 0; i < 5; ++i) {
      t->AppendRow({Value::Int(i), Value::Str(kRegions[i])});
    }
  }
  {
    TableDef def;
    def.name = "nation";
    def.columns = {{"n_nationkey", DataType::kInt64},
                   {"n_name", DataType::kString},
                   {"n_regionkey", DataType::kInt64}};
    def.AddUniqueKey({"n_nationkey"});
    if (config.with_indexes) {
      def.AddIndex("nation_pk", {"n_nationkey"}, /*unique=*/true);
    }
    ORDOPT_ASSIGN_OR_RETURN(Table * t, db->CreateTable(std::move(def)));
    for (int i = 0; i < 25; ++i) {
      t->AppendRow({Value::Int(i), Value::Str(kNations[i]),
                    Value::Int(kNationRegion[i])});
    }
  }

  // ---- customer -------------------------------------------------------------
  {
    TableDef def;
    def.name = "customer";
    def.columns = {{"c_custkey", DataType::kInt64},
                   {"c_name", DataType::kString},
                   {"c_mktsegment", DataType::kString},
                   {"c_nationkey", DataType::kInt64},
                   {"c_acctbal", DataType::kDouble}};
    def.AddUniqueKey({"c_custkey"});
    if (config.with_indexes) {
      def.AddIndex("customer_pk", {"c_custkey"}, /*unique=*/true);
    }
    ORDOPT_ASSIGN_OR_RETURN(Table * t, db->CreateTable(std::move(def)));
    for (int64_t k = 1; k <= customers; ++k) {
      t->AppendRow({Value::Int(k),
                    Value::Str(StrFormat("customer#%06lld",
                                         static_cast<long long>(k))),
                    Value::Str(kSegments[rng.Uniform(0, 4)]),
                    Value::Int(rng.Uniform(0, 24)),
                    Value::Double(rng.Uniform(-999, 9999) / 1.0)});
    }
  }

  // ---- orders + lineitem ------------------------------------------------------
  {
    TableDef odef;
    odef.name = "orders";
    odef.columns = {{"o_orderkey", DataType::kInt64},
                    {"o_custkey", DataType::kInt64},
                    {"o_orderdate", DataType::kDate},
                    {"o_shippriority", DataType::kInt64},
                    {"o_totalprice", DataType::kDouble},
                    {"o_orderstatus", DataType::kString}};
    odef.AddUniqueKey({"o_orderkey"});
    if (config.with_indexes) {
      // Unclustered, as in the paper's database: the qualifying orders come
      // out of the customer join in no useful order, which is what makes
      // the pushed-down o_orderkey sort (Figure 7) earn its keep.
      odef.AddIndex("orders_pk", {"o_orderkey"}, /*unique=*/true);
      odef.AddIndex("orders_custkey", {"o_custkey"});
    }
    ORDOPT_ASSIGN_OR_RETURN(Table * ot, db->CreateTable(std::move(odef)));

    TableDef ldef;
    ldef.name = "lineitem";
    ldef.columns = {{"l_orderkey", DataType::kInt64},
                    {"l_linenumber", DataType::kInt64},
                    {"l_shipdate", DataType::kDate},
                    {"l_extendedprice", DataType::kDouble},
                    {"l_discount", DataType::kDouble},
                    {"l_quantity", DataType::kInt64},
                    {"l_returnflag", DataType::kString},
                    {"l_linestatus", DataType::kString}};
    ldef.AddUniqueKey({"l_orderkey", "l_linenumber"});
    if (config.with_indexes) {
      // The clustered index the paper's ordered nested-loop join exploits.
      ldef.AddIndex("lineitem_orderkey", {"l_orderkey"}, /*unique=*/false,
                    /*clustered=*/true);
      ldef.AddIndex("lineitem_shipdate", {"l_shipdate"});
    }
    ORDOPT_ASSIGN_OR_RETURN(Table * lt, db->CreateTable(std::move(ldef)));

    // Load orders in shuffled key order so the heap carries no accidental
    // o_orderkey order (dbgen's sparse keys have the same effect).
    std::vector<int64_t> order_keys(static_cast<size_t>(orders));
    for (int64_t i = 0; i < orders; ++i) {
      order_keys[static_cast<size_t>(i)] = i + 1;
    }
    for (int64_t i = orders - 1; i > 0; --i) {
      std::swap(order_keys[static_cast<size_t>(i)],
                order_keys[static_cast<size_t>(rng.Uniform(0, i))]);
    }
    for (int64_t oi = 0; oi < orders; ++oi) {
      int64_t ok = order_keys[static_cast<size_t>(oi)];
      int64_t odate = rng.Uniform(date_lo, date_hi - 151);
      ot->AppendRow({Value::Int(ok), Value::Int(rng.Uniform(1, customers)),
                     Value::Date(odate), Value::Int(0),
                     Value::Double(rng.Uniform(1000, 450000) / 1.0),
                     Value::Str(rng.Chance(0.5) ? "F" : "O")});
      int64_t lines = rng.Uniform(1, 7);
      for (int64_t ln = 1; ln <= lines; ++ln) {
        int64_t sdate = odate + rng.Uniform(1, 121);
        double price = static_cast<double>(rng.Uniform(900, 105000)) / 1.0;
        lt->AppendRow({Value::Int(ok), Value::Int(ln), Value::Date(sdate),
                       Value::Double(price),
                       Value::Double(static_cast<double>(rng.Uniform(0, 10)) /
                                     100.0),
                       Value::Int(rng.Uniform(1, 50)),
                       Value::Str(rng.Chance(0.25) ? "R"
                                  : rng.Chance(0.5) ? "A"
                                                    : "N"),
                       Value::Str(sdate > Days("1995-06-17") ? "O" : "F")});
      }
    }
  }

  return db->FinalizeAll();
}

namespace tpcd_queries {

const char kQuery3[] = R"sql(
select l_orderkey,
       sum(l_extendedprice * (1 - l_discount)) as rev,
       o_orderdate, o_shippriority
from customer, orders, lineitem
where o_orderkey = l_orderkey
  and c_custkey = o_custkey
  and c_mktsegment = 'building'
  and o_orderdate < date('1995-03-15')
  and l_shipdate > date('1995-03-15')
group by l_orderkey, o_orderdate, o_shippriority
order by rev desc, o_orderdate
)sql";

const char kPricingSummary[] = R"sql(
select l_returnflag, l_linestatus,
       sum(l_quantity) as sum_qty,
       sum(l_extendedprice) as sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
       avg(l_quantity) as avg_qty,
       avg(l_extendedprice) as avg_price,
       avg(l_discount) as avg_disc,
       count(*) as count_order
from lineitem
where l_shipdate <= date('1998-08-01')
group by l_returnflag, l_linestatus
order by l_returnflag, l_linestatus
)sql";

const char kDistinctShipdates[] = R"sql(
select distinct l_shipdate, l_orderkey
from lineitem
where l_shipdate > date('1997-01-01')
order by l_shipdate
)sql";

const char kLateOrders[] = R"sql(
select o_orderdate, count(*) as order_count
from orders
where o_orderdate >= date('1994-01-01')
  and o_orderdate < date('1995-01-01')
  and o_orderkey in (select l_orderkey from lineitem
                     where l_shipdate > date('1994-06-01'))
group by o_orderdate
order by order_count desc, o_orderdate
limit 20
)sql";

const char kRegionRevenue[] = R"sql(
select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
from customer, orders, lineitem, nation, region
where c_custkey = o_custkey
  and l_orderkey = o_orderkey
  and c_nationkey = n_nationkey
  and n_regionkey = r_regionkey
  and r_name = 'asia'
  and o_orderdate >= date('1994-01-01')
group by n_name
order by revenue desc
)sql";

}  // namespace tpcd_queries

}  // namespace ordopt
