#ifndef ORDOPT_TPCD_TPCD_H_
#define ORDOPT_TPCD_TPCD_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace ordopt {

/// Deterministic TPC-D-subset data generator (the paper's evaluation
/// database, §8.1). Substitutes for the official dbgen: same schema shape
/// for the tables Query 3 touches (customer, orders, lineitem, plus
/// nation/region for wider examples), uniform value distributions from a
/// seeded PRNG, and the indexes the paper's plans rely on — most
/// importantly the clustered index on lineitem(l_orderkey) that makes the
/// ordered nested-loop join of Figure 7 pay off.
///
/// Scale factor 1.0 corresponds to 150k customers / 1.5M orders / ~6M
/// lineitems as in TPC-D; the default 0.01 keeps test runs fast.
struct TpcdConfig {
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Build the benchmark indexes (clustered lineitem(l_orderkey), unique
  /// orders(o_orderkey), orders(o_custkey), unique customer(c_custkey)).
  bool with_indexes = true;
};

/// Creates and loads the TPC-D tables into `db` and finalizes them.
Status LoadTpcd(Database* db, const TpcdConfig& config);

namespace tpcd_queries {

/// TPC-D Query 3 (§8.1): shipping priority / potential revenue of the
/// largest-revenue orders not yet shipped as of 1995-03-15.
extern const char kQuery3[];

/// Simplified Q1-style pricing summary (order-based GROUP BY workout).
extern const char kPricingSummary[];

/// A DISTINCT + ORDER BY combination query (cover-order workout).
extern const char kDistinctShipdates[];

/// Q4-style: orders with at least one late lineitem (IN-subquery
/// semi-join workout).
extern const char kLateOrders[];

/// Q5-style: revenue by nation for one region (5-way join workout).
extern const char kRegionRevenue[];

}  // namespace tpcd_queries

}  // namespace ordopt

#endif  // ORDOPT_TPCD_TPCD_H_
