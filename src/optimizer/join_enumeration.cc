#include "optimizer/join_enumeration.h"

#include <algorithm>
#include <optional>

#include "common/macros.h"

namespace ordopt {

// ---------------------------------------------------------------------------
// SelectContext
// ---------------------------------------------------------------------------

SelectContext SelectContext::Build(const QgmBox* box, const BoxOrderInfo& info,
                                   int max_sort_ahead_orders) {
  SelectContext ctx;
  ctx.box = box;
  ctx.info = &info;
  const size_t n = box->quantifiers.size();

  ctx.sort_ahead = info.sort_ahead;
  if (ctx.sort_ahead.size() > static_cast<size_t>(max_sort_ahead_orders)) {
    ctx.sort_ahead.resize(static_cast<size_t>(max_sort_ahead_orders));
  }

  // Per-quantifier column sets and the ColumnId.table -> quantifier map.
  ctx.qcols.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const Quantifier& q = box->quantifiers[i];
    if (q.IsBase()) {
      for (size_t c = 0; c < q.table->def().columns.size(); ++c) {
        ctx.qcols[i].Add(ColumnId(q.id, static_cast<int32_t>(c)));
      }
    } else {
      ctx.qcols[i] = q.input->OutputColumns();
    }
    for (const ColumnId& c : ctx.qcols[i]) {
      ctx.owner[c.table] = i;
    }
  }

  // Predicates touching an outer-join's null-supplying side cannot run
  // inside the inner-join DP: they apply after that join step (e.g. the
  // IS NULL anti-join filter). Defer each to the last step it references.
  std::vector<ColumnSet> oj_cols;
  for (const OuterJoinStep& step : box->outer_joins) {
    const Quantifier& oq = step.quantifier;
    ColumnSet cols;
    if (oq.IsBase()) {
      for (size_t c = 0; c < oq.table->def().columns.size(); ++c) {
        cols.Add(ColumnId(oq.id, static_cast<int32_t>(c)));
      }
    } else {
      cols = oq.input->OutputColumns();
    }
    oj_cols.push_back(std::move(cols));
  }
  ctx.deferred.resize(box->outer_joins.size());
  std::vector<const Predicate*> dp_preds;
  for (const Predicate& p : box->predicates) {
    int last_step = -1;
    for (size_t s = 0; s < oj_cols.size(); ++s) {
      if (!p.referenced.Intersect(oj_cols[s]).empty()) {
        last_step = static_cast<int>(s);
      }
    }
    if (last_step >= 0) {
      ctx.deferred[static_cast<size_t>(last_step)].push_back(p);
    } else {
      dp_preds.push_back(&p);
    }
  }

  // Classify predicates: local to one quantifier vs multi-quantifier.
  ctx.local_preds.resize(n);
  for (const Predicate* pp : dp_preds) {
    const Predicate& p = *pp;
    uint32_t pmask = ctx.QuantifierMask(p.referenced);
    if (pmask == 0) {
      // Constant predicate; treat as local to quantifier 0.
      ctx.local_preds[0].push_back(&p);
    } else if ((pmask & (pmask - 1)) == 0) {
      size_t i = static_cast<size_t>(__builtin_ctz(pmask));
      ctx.local_preds[i].push_back(&p);
    } else {
      ctx.multi_preds.push_back(&p);
      ctx.multi_masks.push_back(pmask);
    }
  }

  ctx.mask_card.assign(1u << n, -1.0);
  return ctx;
}

ColumnSet SelectContext::MaskColumns(uint32_t mask) const {
  ColumnSet cols;
  for (size_t i = 0; i < qcols.size(); ++i) {
    if (mask & (1u << i)) cols = cols.Union(qcols[i]);
  }
  return cols;
}

uint32_t SelectContext::QuantifierMask(const ColumnSet& referenced) const {
  uint32_t mask = 0;
  for (const ColumnId& c : referenced) {
    auto it = owner.find(c.table);
    if (it != owner.end()) mask |= 1u << it->second;
  }
  return mask;
}

std::vector<size_t> SelectContext::ApplicablePreds(uint32_t mask) const {
  std::vector<size_t> out;
  for (size_t k = 0; k < multi_preds.size(); ++k) {
    if ((multi_masks[k] & mask) == multi_masks[k]) out.push_back(k);
  }
  return out;
}

// ---------------------------------------------------------------------------
// JoinStrategy
// ---------------------------------------------------------------------------

void JoinStrategy::FinishJoin(Planner& planner, const JoinSplit& split,
                              std::shared_ptr<PlanNode> node,
                              const PlanRef& outer, const PlanRef& inner,
                              bool preserves_outer_order,
                              CandidateSet* out) const {
  // Callers price the join before deriving properties; deriving replaces
  // node->props wholesale, so carry the cost across.
  double cost = node->props.cost;
  node->props = JoinProperties(outer->props, inner->props, split.pairs,
                               preserves_outer_order, split.out_card);
  node->props.cost = cost;
  for (const auto& [l, r] : split.pairs) {
    node->props.mutable_eq().AddEquivalence(l, r);
  }
  node->props.keys.Simplify(node->props.eq());
  PlanRef result = node;
  if (!split.residual.empty()) {
    // Filter scales cardinality again; rescale to the mask's deterministic
    // estimate afterwards.
    result = Filter(planner, result, split.residual, split.ctx->box);
    auto fixed = std::make_shared<PlanNode>(*result);
    fixed->props.cardinality = split.out_card;
    result = fixed;
  }
  Insert(planner, out, std::move(result));
}

namespace {

class HashJoinStrategy : public JoinStrategy {
 public:
  const char* name() const override { return "hash"; }

  void Emit(Planner& p, const JoinSplit& s, const PlanRef& outer,
            const PlanRef& inner, CandidateSet* out) const override {
    if (s.pairs.empty() || !Config(p).enable_hash_join) return;
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kHashJoin;
    node->join_pairs = s.pairs;
    node->children = {outer, inner};
    node->props.cost = outer->props.cost + inner->props.cost +
                       Cost(p).HashJoinCost(outer->props.cardinality,
                                            inner->props.cardinality,
                                            s.out_card);
    FinishJoin(p, s, node, outer, inner, /*preserves_outer_order=*/false, out);
  }
};

class MergeJoinStrategy : public JoinStrategy {
 public:
  const char* name() const override { return "merge"; }

  void Emit(Planner& p, const JoinSplit& s, const PlanRef& outer,
            const PlanRef& inner, CandidateSet* out) const override {
    if (s.pairs.empty()) return;
    const OptimizerConfig& config = Config(p);
    // Candidate outer orders: the merge order itself plus any sort-ahead
    // order coverable with it (§5.2: "In the case of a merge-join, a cover
    // with the merge-join order is also required").
    std::vector<OrderSpec> outer_specs = {s.merge_outer};
    if (config.enable_order_optimization && config.enable_sort_ahead) {
      OrderContext octx = outer->props.Context(config.transitive_fds);
      ColumnSet targets = s.ctx->MaskColumns(s.outer_mask);
      for (const OrderSpec& want : s.ctx->sort_ahead) {
        OrderSpec homog = HomogenizeOrderPrefix(
            want, targets, s.ctx->info->optimistic_ctx.eq,
            s.ctx->info->optimistic_ctx);
        if (homog.empty()) continue;
        std::optional<OrderSpec> covered =
            CoverOrder(homog, s.merge_outer, octx);
        if (covered.has_value() && !covered->empty()) {
          if (Tracing(p)) {
            const ColumnNamer namer = GetQuery(p).namer();
            Trace(p)->Add("optimizer", "order.cover")
                .Set("site", "merge_join")
                .Set("i1", homog.ToString(namer))
                .Set("i2", s.merge_outer.ToString(namer))
                .Set("cover", covered->ToString(namer));
          }
          outer_specs.push_back(*covered);
        }
      }
    }
    std::vector<PlanRef> sorted_outers;
    bool outer_sat = Satisfied(p, s.merge_outer, *outer);
    EmitOrderTest(p, "merge_join.outer", s.merge_outer, *outer, outer_sat);
    if (outer_sat) {
      EmitSortDecision(p, "merge_join.outer", s.merge_outer, *outer,
                       /*avoided=*/true, nullptr);
      sorted_outers.push_back(outer);
    } else {
      for (const OrderSpec& spec : outer_specs) {
        OrderSpec sorted = SortSpec(p, spec, *outer);
        if (sorted.empty()) sorted = spec;
        EmitSortDecision(p, "merge_join.outer", spec, *outer,
                         /*avoided=*/false, &sorted);
        sorted_outers.push_back(Sort(p, outer, sorted));
      }
    }
    PlanRef sorted_inner = inner;
    bool inner_sat = Satisfied(p, s.merge_inner, *inner);
    EmitOrderTest(p, "merge_join.inner", s.merge_inner, *inner, inner_sat);
    if (!inner_sat) {
      OrderSpec sorted = SortSpec(p, s.merge_inner, *inner);
      if (sorted.empty()) sorted = s.merge_inner;
      EmitSortDecision(p, "merge_join.inner", s.merge_inner, *inner,
                       /*avoided=*/false, &sorted);
      sorted_inner = Sort(p, inner, sorted);
    } else {
      EmitSortDecision(p, "merge_join.inner", s.merge_inner, *inner,
                       /*avoided=*/true, nullptr);
    }
    for (const PlanRef& so : sorted_outers) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kMergeJoin;
      node->join_pairs = s.pairs;
      node->children = {so, sorted_inner};
      node->props.cost = so->props.cost + sorted_inner->props.cost +
                         Cost(p).MergeJoinCost(so->props.cardinality,
                                               sorted_inner->props.cardinality,
                                               s.out_card);
      FinishJoin(p, s, node, so, sorted_inner, /*preserves_outer_order=*/true,
                 out);
    }
  }
};

class CartesianNLStrategy : public JoinStrategy {
 public:
  const char* name() const override { return "cartesian_nl"; }

  void Emit(Planner& p, const JoinSplit& s, const PlanRef& outer,
            const PlanRef& inner, CandidateSet* out) const override {
    if (!s.pairs.empty()) return;
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kNaiveNLJoin;
    node->children = {outer, inner};
    node->props.cost = outer->props.cost +
                       Cost(p).NaiveNestedLoopCost(outer->props.cardinality,
                                                   inner->props.cardinality,
                                                   inner->props.cost);
    FinishJoin(p, s, node, outer, inner, /*preserves_outer_order=*/true, out);
  }
};

class IndexNLStrategy : public JoinStrategy {
 public:
  const char* name() const override { return "index_nl"; }

  void Emit(Planner& p, const JoinSplit& s, const PlanRef& outer,
            const PlanRef& inner, CandidateSet* out) const override {
    (void)inner;  // the inner side is rebuilt as index probes
    if (s.pairs.empty() || __builtin_popcount(s.inner_mask) != 1) return;
    const QgmBox* box = s.ctx->box;
    size_t qi = static_cast<size_t>(__builtin_ctz(s.inner_mask));
    const Quantifier& q = box->quantifiers[qi];
    if (!q.IsBase()) return;
    const Query& query = GetQuery(p);
    const OptimizerConfig& config = Config(p);
    for (size_t x = 0; x < q.table->def().indexes.size(); ++x) {
      const IndexDef& idx = q.table->def().indexes[x];
      // Greedy prefix of index columns covered by join pairs.
      std::vector<std::pair<ColumnId, ColumnId>> matched;
      for (int ord : idx.column_ordinals) {
        ColumnId target(q.id, ord);
        bool hit = false;
        for (const auto& pr : s.pairs) {
          if (pr.second == target) {
            matched.push_back(pr);
            hit = true;
            break;
          }
        }
        if (!hit) break;
      }
      if (matched.empty()) continue;
      double distinct = 1.0;
      for (const auto& pr : matched) {
        distinct = std::max(distinct, Cost(p).DistinctCount(pr.second, query));
      }
      double inner_rows = static_cast<double>(q.table->row_count());
      double rows_per_probe = std::max(1.0, inner_rows / distinct);
      // Recognizing that the outer's order makes probes clustered is itself
      // order reasoning (§8.1: the disabled optimizer, "without an
      // awareness of equivalence classes, was unable to determine that the
      // same sort could be used to generate an ordered nested-loop join").
      bool ordered = false;
      if (config.enable_order_optimization && !outer->props.order.empty()) {
        const ColumnId& lead = outer->props.order.at(0).col;
        ordered = lead == matched[0].first ||
                  outer->props.eq().AreEquivalent(lead, matched[0].first);
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kIndexNLJoin;
      node->table = q.table;
      node->table_id = q.id;
      node->index_ordinal = static_cast<int>(x);
      node->join_pairs = matched;
      node->ordered_probes = ordered;
      node->children = {outer};
      // Residual: unmatched join pairs + inner local predicates.
      std::vector<Predicate> probe_residual = s.residual;
      for (const auto& pr : s.pairs) {
        bool used =
            std::find(matched.begin(), matched.end(), pr) != matched.end();
        if (used) continue;
        BoundExpr cmp = BoundExpr::Binary(
            BinOp::kEq,
            BoundExpr::Column(pr.first, query.TypeOf(pr.first),
                              query.namer()(pr.first)),
            BoundExpr::Column(pr.second, query.TypeOf(pr.second),
                              query.namer()(pr.second)),
            DataType::kInt64);
        probe_residual.push_back(ClassifyPredicate(std::move(cmp)));
      }
      for (const Predicate* lp : s.ctx->local_preds[qi]) {
        probe_residual.push_back(*lp);
      }
      node->props = JoinProperties(outer->props,
                                   BaseTableProperties(*q.table, q.id),
                                   s.pairs, /*preserves_outer_order=*/true,
                                   s.out_card);
      node->props.cost = outer->props.cost +
                         Cost(p).IndexNestedLoopCost(
                             *q.table, idx.clustered, outer->props.cardinality,
                             rows_per_probe, ordered);
      for (const auto& [l, r] : s.pairs) {
        node->props.mutable_eq().AddEquivalence(l, r);
      }
      node->props.keys.Simplify(node->props.eq());
      PlanRef result = node;
      if (!probe_residual.empty()) {
        result = Filter(p, result, probe_residual, box);
        auto fixed = std::make_shared<PlanNode>(*result);
        fixed->props.cardinality = s.out_card;
        result = fixed;
      }
      Insert(p, out, std::move(result));
    }
  }
};

}  // namespace

const std::vector<std::unique_ptr<JoinStrategy>>& DefaultJoinStrategies() {
  static const auto* strategies = [] {
    auto* v = new std::vector<std::unique_ptr<JoinStrategy>>();
    v->push_back(std::make_unique<HashJoinStrategy>());
    v->push_back(std::make_unique<MergeJoinStrategy>());
    v->push_back(std::make_unique<CartesianNLStrategy>());
    v->push_back(std::make_unique<IndexNLStrategy>());
    return v;
  }();
  return *strategies;
}

// ---------------------------------------------------------------------------
// DP enumeration over quantifier masks
// ---------------------------------------------------------------------------

double Planner::MaskCardinality(SelectContext* sctx, uint32_t mask) const {
  // Product of leaf cardinalities times the selectivity of every multi-
  // quantifier predicate applicable within the mask, shared by all plans of
  // the mask so pruning compares like with like.
  if (sctx->mask_card[mask] >= 0) return sctx->mask_card[mask];
  double card = 1.0;
  for (size_t i = 0; i < sctx->qcols.size(); ++i) {
    if (mask & (1u << i)) card *= sctx->mask_card[1u << i];
  }
  for (size_t k : sctx->ApplicablePreds(mask)) {
    card *= cost_model_.Selectivity(*sctx->multi_preds[k], query_);
  }
  card = std::max(card, 1.0);
  sctx->mask_card[mask] = card;
  return card;
}

void Planner::EnumerateJoins(SelectContext* sctx, Memo* memo) {
  const QgmBox* box = sctx->box;
  const size_t n = box->quantifiers.size();
  const uint32_t full = (1u << n) - 1;
  const auto& strategies = DefaultJoinStrategies();

  // Enumerate joins bottom-up by mask population count.
  std::vector<uint32_t> masks_by_size;
  for (uint32_t mask = 1; mask <= full; ++mask) masks_by_size.push_back(mask);
  std::sort(masks_by_size.begin(), masks_by_size.end(),
            [](uint32_t a, uint32_t b) {
              int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
              return pa != pb ? pa < pb : a < b;
            });

  for (uint32_t mask : masks_by_size) {
    if (__builtin_popcount(mask) < 2) continue;
    double out_card = MaskCardinality(sctx, mask);
    CandidateSet& group = memo->Group(mask);
    std::vector<size_t> applicable = sctx->ApplicablePreds(mask);

    bool found_connected = false;
    for (int pass = 0; pass < 2; ++pass) {
      bool allow_cartesian = pass == 1;
      if (allow_cartesian && found_connected) break;
      for (uint32_t outer_mask = (mask - 1) & mask; outer_mask != 0;
           outer_mask = (outer_mask - 1) & mask) {
        uint32_t inner_mask = mask ^ outer_mask;
        const CandidateSet* outer_group = memo->FindGroup(outer_mask);
        const CandidateSet* inner_group = memo->FindGroup(inner_mask);
        if (inner_mask == 0 || outer_group == nullptr ||
            outer_group->empty() || inner_group == nullptr ||
            inner_group->empty()) {
          continue;
        }

        JoinSplit split;
        split.ctx = sctx;
        split.mask = mask;
        split.outer_mask = outer_mask;
        split.inner_mask = inner_mask;
        split.out_card = out_card;

        // Predicates newly applicable at this split; equality predicates
        // crossing it become (outer col, inner col) join pairs.
        for (size_t k : applicable) {
          uint32_t pm = sctx->multi_masks[k];
          if ((pm & outer_mask) == pm || (pm & inner_mask) == pm) continue;
          const Predicate* p = sctx->multi_preds[k];
          if (p->kind == Predicate::Kind::kColEqCol) {
            uint32_t lm = sctx->QuantifierMask(ColumnSet{p->left_col});
            uint32_t rm = sctx->QuantifierMask(ColumnSet{p->right_col});
            if ((lm & outer_mask) && (rm & inner_mask)) {
              split.pairs.emplace_back(p->left_col, p->right_col);
              continue;
            }
            if ((rm & outer_mask) && (lm & inner_mask)) {
              split.pairs.emplace_back(p->right_col, p->left_col);
              continue;
            }
          }
          split.residual.push_back(*p);
        }
        if (split.pairs.empty() && !allow_cartesian) continue;
        if (!split.pairs.empty()) found_connected = true;

        // Join-pair columns as order specs.
        std::vector<ColumnId> outer_cols, inner_cols;
        for (const auto& [l, r] : split.pairs) {
          outer_cols.push_back(l);
          inner_cols.push_back(r);
        }
        split.merge_outer = OrderSpec::Ascending(outer_cols);
        split.merge_inner = OrderSpec::Ascending(inner_cols);

        for (const PlanRef& outer : outer_group->plans()) {
          for (const PlanRef& inner : inner_group->plans()) {
            for (const auto& strategy : strategies) {
              strategy->Emit(*this, split, outer, inner, &group);
            }
          }
        }
      }
      if (found_connected) break;
    }

    // Sort-ahead at intermediate levels (§5.2: "an arbitrary number of
    // levels in a join tree").
    if (config_.enable_order_optimization && config_.enable_sort_ahead &&
        !group.empty() && mask != full) {
      PlanRef cheapest = group.Cheapest();
      ColumnSet targets = sctx->MaskColumns(mask);
      for (const OrderSpec& want : sctx->sort_ahead) {
        OrderSpec homog =
            HomogenizeOrderPrefix(want, targets, sctx->info->optimistic_ctx.eq,
                                  sctx->info->optimistic_ctx);
        if (homog.empty() || OrderSatisfied(homog, *cheapest)) continue;
        if (tracing() && homog != want) {
          trace_->Add("optimizer", "order.homogenize")
              .Set("site", "intermediate")
              .Set("requested", want.ToString(query_.namer()))
              .Set("translated", homog.ToString(query_.namer()));
        }
        PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
        bool retained = InsertCandidate(&group, sorted);
        TraceSortAhead("intermediate", homog, *sorted, retained);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// LEFT OUTER JOIN folding
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::FoldOuterJoin(
    const QgmBox* box, const OuterJoinStep& step,
    std::vector<PlanRef> outers) {
  const Quantifier& q = step.quantifier;

  // Columns of the null-supplying side.
  ColumnSet inner_cols;
  if (q.IsBase()) {
    for (size_t c = 0; c < q.table->def().columns.size(); ++c) {
      inner_cols.Add(ColumnId(q.id, static_cast<int32_t>(c)));
    }
  } else {
    inner_cols = q.input->OutputColumns();
  }

  // Split the ON conjuncts: predicates local to the null side can be
  // applied below the join (they only shrink the match set); equality
  // predicates crossing the join drive merge/hash variants; anything else
  // forces the general nested-loop form.
  std::vector<const Predicate*> inner_local;
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  std::vector<Predicate> residual;
  for (const Predicate& p : step.on_predicates) {
    if (p.referenced.IsSubsetOf(inner_cols)) {
      inner_local.push_back(&p);
      continue;
    }
    if (p.kind == Predicate::Kind::kColEqCol) {
      bool l_inner = inner_cols.Contains(p.left_col);
      bool r_inner = inner_cols.Contains(p.right_col);
      if (l_inner != r_inner) {
        if (l_inner) {
          pairs.emplace_back(p.right_col, p.left_col);
        } else {
          pairs.emplace_back(p.left_col, p.right_col);
        }
        continue;
      }
    }
    residual.push_back(p);
  }

  // Access paths for the null-supplying side (no sort-ahead through it:
  // only the preserved side's order survives the join).
  CandidateSet inners;
  if (q.IsBase()) {
    inners = BaseAccessPaths(box, q, inner_local, {});
  } else {
    ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> child_plans,
                            PlanBox(q.input));
    for (PlanRef& child : child_plans) {
      std::vector<Predicate> preds;
      for (const Predicate* p : inner_local) preds.push_back(*p);
      InsertCandidate(&inners, MakeFilter(std::move(child), preds, box));
    }
  }
  if (inners.empty()) {
    return Status::Internal("no access path for outer-join quantifier " +
                            q.alias);
  }
  PlanRef cheapest_inner = inners.Cheapest();

  OrderSpec merge_outer, merge_inner;
  for (const auto& [o, i] : pairs) {
    merge_outer.Append(OrderElement(o));
    merge_inner.Append(OrderElement(i));
  }

  CandidateSet result;
  for (const PlanRef& outer : outers) {
    double match_card = std::max(
        1.0, outer->props.cardinality * cheapest_inner->props.cardinality *
                 cost_model_.JoinSelectivity(pairs, query_));
    double out_card = std::max(outer->props.cardinality, match_card);

    if (residual.empty() && !pairs.empty()) {
      if (config_.enable_hash_join) {
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kHashLeftJoin;
        node->join_pairs = pairs;
        node->children = {outer, cheapest_inner};
        node->props = LeftJoinProperties(outer->props, cheapest_inner->props,
                                         pairs, /*preserves=*/false, out_card);
        node->props.cost =
            outer->props.cost + cheapest_inner->props.cost +
            cost_model_.HashJoinCost(outer->props.cardinality,
                                     cheapest_inner->props.cardinality,
                                     out_card);
        InsertCandidate(&result, std::move(node));
      }
      // Merge-left: preserves the outer's order.
      PlanRef sorted_outer = outer;
      bool lo_sat = OrderSatisfied(merge_outer, *outer);
      TraceOrderTest("merge_left_join.outer", merge_outer, *outer, lo_sat);
      if (!lo_sat) {
        OrderSpec s = SortSpecFor(merge_outer, *outer);
        if (s.empty()) s = merge_outer;
        TraceSortDecision("merge_left_join.outer", merge_outer, *outer,
                          /*avoided=*/false, &s);
        sorted_outer = MakeSort(outer, s);
      } else {
        TraceSortDecision("merge_left_join.outer", merge_outer, *outer,
                          /*avoided=*/true, nullptr);
      }
      PlanRef sorted_inner = cheapest_inner;
      bool li_sat = OrderSatisfied(merge_inner, *cheapest_inner);
      TraceOrderTest("merge_left_join.inner", merge_inner, *cheapest_inner,
                     li_sat);
      if (!li_sat) {
        OrderSpec s = SortSpecFor(merge_inner, *cheapest_inner);
        if (s.empty()) s = merge_inner;
        TraceSortDecision("merge_left_join.inner", merge_inner,
                          *cheapest_inner, /*avoided=*/false, &s);
        sorted_inner = MakeSort(cheapest_inner, s);
      } else {
        TraceSortDecision("merge_left_join.inner", merge_inner,
                          *cheapest_inner, /*avoided=*/true, nullptr);
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kMergeLeftJoin;
      node->join_pairs = pairs;
      node->children = {sorted_outer, sorted_inner};
      node->props = LeftJoinProperties(sorted_outer->props,
                                       sorted_inner->props, pairs,
                                       /*preserves=*/true, out_card);
      node->props.cost =
          sorted_outer->props.cost + sorted_inner->props.cost +
          cost_model_.MergeJoinCost(sorted_outer->props.cardinality,
                                    sorted_inner->props.cardinality, out_card);
      InsertCandidate(&result, std::move(node));
    } else {
      // General form: every ON conjunct evaluated inside the join.
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kNaiveLeftJoin;
      node->predicates = step.on_predicates;
      node->children = {outer, cheapest_inner};
      node->props = LeftJoinProperties(outer->props, cheapest_inner->props,
                                       pairs, /*preserves=*/true, out_card);
      node->props.cost = outer->props.cost +
                         cost_model_.NaiveNestedLoopCost(
                             outer->props.cardinality,
                             cheapest_inner->props.cardinality,
                             cheapest_inner->props.cost);
      InsertCandidate(&result, std::move(node));
    }
  }
  return std::move(result.mutable_plans());
}

}  // namespace ordopt
