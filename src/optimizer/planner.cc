// Planner orchestration. The heavy lifting lives in sibling translation
// units: access_paths.cc (leaf access paths, Sort/Filter constructors),
// join_enumeration.cc (the System-R DP over quantifier masks, JoinStrategy
// implementations, outer-join folding), finishing.cc (DISTINCT / output
// order / projection, GROUP BY and UNION boxes), planner_trace.cc (decision
// tracing), and memo.{h,cc} (CandidateSet domination, memo groups).

#include "optimizer/planner.h"

#include <algorithm>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "optimizer/join_enumeration.h"

namespace ordopt {

namespace {

// Naive order comparison used by the disabled baseline: exact column and
// direction prefix, no reduction, no equivalence classes.
bool NaiveSatisfied(const OrderSpec& interesting, const OrderSpec& property) {
  return interesting.IsPrefixOf(property);
}

}  // namespace

Planner::Planner(const Query& query, OptimizerConfig config,
                 TraceCollector* trace)
    : query_(query),
      config_(config),
      cost_model_(config.cost_params),
      order_scan_(query, config.enable_order_optimization),
      trace_(trace) {
  order_scan_.Run();
}

bool Planner::OrderSatisfied(const OrderSpec& interesting,
                             const PlanNode& plan) const {
  if (interesting.empty()) return true;
  // Mutation seam for the verification oracles: a deliberately wrong test
  // injected here corrupts every order-driven decision (domination, sort
  // avoidance, stream grouping), and the oracles must catch the fallout.
  if (config_.order_test_override != nullptr) {
    return config_.order_test_override->Satisfies(interesting, plan);
  }
  if (!config_.enable_order_optimization) {
    return NaiveSatisfied(interesting, plan.props.order);
  }
  OrderContext ctx = plan.props.Context(config_.transitive_fds);
  return reduce_cache_.Test(interesting, plan.props.order, ctx);
}

OrderSpec Planner::SortSpecFor(const OrderSpec& interesting,
                               const PlanNode& input) const {
  if (!config_.enable_order_optimization) return interesting;
  OrderContext ctx = input.props.Context(config_.transitive_fds);
  // The memoized reduction: when OrderSatisfied already reduced this
  // (interesting, context) pair at the same decision site, this lookup is
  // the hit that makes one reduction serve both the test and the sort key.
  OrderSpec reduced = reduce_cache_.Reduce(interesting, ctx);
  TraceReduce("sort.spec", interesting, reduced, ctx);
  // Reduction rewrites to equivalence-class heads, which need not be
  // visible in this stream (e.g. the head lives in a table the group-by
  // projected away). Substitute a visible class member for the executor.
  OrderSpec visible;
  for (const OrderElement& e : reduced) {
    if (input.props.columns.Contains(e.col)) {
      visible.Append(e);
      continue;
    }
    bool substituted = false;
    for (const ColumnId& member : input.props.eq().ClassMembers(e.col)) {
      if (input.props.columns.Contains(member)) {
        visible.Append(OrderElement(member, e.dir));
        substituted = true;
        break;
      }
    }
    if (!substituted) visible.Append(e);  // caller validates visibility
  }
  return visible;
}

bool Planner::InsertCandidate(CandidateSet* candidates, PlanRef plan) {
  ++plans_generated_;
  return candidates->Insert(std::move(plan), domination_);
}

void Planner::FinalInsert(CandidateSet* candidates, PlanRef plan) {
  if (enumerate_keep_all_) {
    ++plans_generated_;
    candidates->mutable_plans().push_back(std::move(plan));
    return;
  }
  InsertCandidate(candidates, std::move(plan));
}

// ---------------------------------------------------------------------------
// SELECT box: leaf seeding, DP join enumeration, outer joins, finishing
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanSelectBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  const size_t n = box->quantifiers.size();
  if (n == 0) return Status::Unsupported("SELECT box without quantifiers");
  if (n > 16) return Status::Unsupported("joins of more than 16 tables");

  SelectContext sctx =
      SelectContext::Build(box, info, config_.max_sort_ahead_orders);
  Memo memo;

  // Seed the memo's single-quantifier groups with access paths, pinning
  // every candidate of a mask to the mask's deterministic cardinality so
  // pruning compares like with like.
  for (size_t i = 0; i < n; ++i) {
    ORDOPT_ASSIGN_OR_RETURN(CandidateSet leafs,
                            QuantifierAccessPaths(box, sctx, i));
    if (leafs.empty()) {
      return Status::Internal("no access path for quantifier " +
                              box->quantifiers[i].alias);
    }
    sctx.mask_card[1u << i] = leafs.plans().front()->props.cardinality;
    CandidateSet& group = memo.Group(1u << i);
    for (const PlanRef& p : leafs.plans()) {
      // All candidates of one mask share the deterministic estimate. Leaf
      // seeding bypasses domination exactly as the historical DP did.
      auto fixed = std::make_shared<PlanNode>(*p);
      fixed->props.cardinality = sctx.mask_card[1u << i];
      group.mutable_plans().push_back(std::move(fixed));
    }
  }

  EnumerateJoins(&sctx, &memo);

  const uint32_t full = (1u << n) - 1;
  const CandidateSet* full_group = memo.FindGroup(full);
  if (full_group == nullptr || full_group->empty()) {
    return Status::Internal("join enumeration produced no plan");
  }

  // LEFT OUTER JOIN steps (applied in syntax order), with the predicates
  // deferred past each step filtered in right after it.
  std::vector<PlanRef> current = full_group->plans();
  for (size_t s = 0; s < box->outer_joins.size(); ++s) {
    ORDOPT_ASSIGN_OR_RETURN(
        current, FoldOuterJoin(box, box->outer_joins[s], std::move(current)));
    if (!sctx.deferred[s].empty()) {
      CandidateSet filtered;
      for (const PlanRef& p : current) {
        InsertCandidate(&filtered, MakeFilter(p, sctx.deferred[s], box));
      }
      current = std::move(filtered.mutable_plans());
    }
  }

  return FinishSelectBox(box, current);
}

Result<std::vector<PlanRef>> Planner::PlanBox(const QgmBox* box) {
  // Models an allocation failure while the planner expands candidates.
  ORDOPT_FAULT_POINT("planner.alloc");
  if (box->kind == QgmBox::Kind::kGroupBy) return PlanGroupByBox(box);
  if (box->kind == QgmBox::Kind::kUnion) return PlanUnionBox(box);
  return PlanSelectBox(box);
}

// Finishes a root-group candidate the way the chosen plan is finished:
// anything that is not already the output Project gets wrapped in one, so
// every enumerated candidate produces the query's declared output columns.
PlanRef Planner::FinishRootCandidate(PlanRef candidate) const {
  if (candidate->kind == OpKind::kProject) return candidate;
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kProject;
  node->projections = query_.root->outputs;
  node->children = {candidate};
  node->props = ProjectProperties(candidate->props,
                                  query_.root->OutputColumns());
  node->props.columns = query_.root->OutputColumns();
  node->props.cost = candidate->props.cost;
  return node;
}

Result<PlanRef> Planner::BuildPlan() {
  ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> candidates,
                          PlanBox(query_.root));
  ORDOPT_CHECK(!candidates.empty());
  PlanRef best = *std::min_element(candidates.begin(), candidates.end(),
                                   [](const PlanRef& a, const PlanRef& b) {
                                     return a->props.cost < b->props.cost;
                                   });
  best = FinishRootCandidate(std::move(best));
  // Morsel-parallel post-pass on the chosen plan only. EnumerateAllPlans
  // stays serial: the oracle compares plan alternatives, not schedulers.
  // Row-shim execution has no batch path for exchanges, and degraded mode
  // must not multiply the per-query memory footprint by the worker count.
  if (config_.parallel_workers > 1 && !config_.row_shim_exec &&
      !config_.degraded_mode) {
    best = Parallelize(std::move(best));
  }
  if (tracing()) {
    trace_->Add("optimizer", "plan.chosen")
        .SetDouble("est_cost", best->props.cost)
        .SetDouble("est_rows", best->props.cardinality)
        .SetInt("nodes", best->NodeCount())
        .SetInt("plans_generated", plans_generated_)
        .SetInt("plans_retained", plans_retained_)
        .SetInt("reduce_cache_hits", reduce_cache_.hits())
        .SetInt("reduce_cache_misses", reduce_cache_.misses());
  }
  return best;
}

Result<std::vector<PlanRef>> Planner::EnumerateAllPlans(size_t budget) {
  // Enumeration mode: the finishers' FinalInsert keeps every survivor of
  // the memo's interior domination instead of collapsing the finished set
  // (identical order after the output sort ⇒ cost-only domination would
  // leave exactly one plan).
  enumerate_keep_all_ = true;
  Result<std::vector<PlanRef>> enumerated = PlanBox(query_.root);
  enumerate_keep_all_ = false;
  if (!enumerated.ok()) return enumerated.status();
  std::vector<PlanRef> candidates = std::move(enumerated).value();
  ORDOPT_CHECK(!candidates.empty());
  // Winner first (ties break toward the earliest candidate, matching
  // min_element in BuildPlan), then the survivors in enumeration order.
  size_t best = 0;
  for (size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i]->props.cost < candidates[best]->props.cost) best = i;
  }
  std::swap(candidates[0], candidates[best]);
  if (candidates.size() > budget) candidates.resize(budget);
  for (PlanRef& plan : candidates) {
    plan = FinishRootCandidate(std::move(plan));
  }
  return candidates;
}

}  // namespace ordopt
