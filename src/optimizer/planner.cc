#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

namespace {

// Concrete ascending order over the given columns.
OrderSpec ConcreteAscending(const std::vector<ColumnId>& cols) {
  return OrderSpec::Ascending(cols);
}

// Naive order comparison used by the disabled baseline: exact column and
// direction prefix, no reduction, no equivalence classes.
bool NaiveSatisfied(const OrderSpec& interesting, const OrderSpec& property) {
  return interesting.IsPrefixOf(property);
}

std::string ColName(const ColumnNamer& namer, const ColumnId& col) {
  return namer ? namer(col) : DefaultColumnName(col);
}

}  // namespace

Planner::Planner(const Query& query, OptimizerConfig config,
                 TraceCollector* trace)
    : query_(query),
      config_(config),
      cost_model_(config.cost_params),
      order_scan_(query, config.enable_order_optimization),
      trace_(trace) {
  order_scan_.Run();
}

// ---------------------------------------------------------------------------
// Trace emission. Decision sites call these; each is a no-op without a
// collector, so the untraced planning path costs one null check.
// ---------------------------------------------------------------------------

void Planner::TraceReduce(const char* site, const OrderSpec& interesting,
                          const OrderSpec& reduced,
                          const OrderContext& octx) const {
  if (trace_ == nullptr || reduced == interesting) return;
  // Re-run the reduction with step reporting — only paid when tracing and
  // the spec actually changed.
  std::vector<ReduceStep> steps;
  ReduceOrder(interesting, octx, &steps);
  const ColumnNamer namer = query_.namer();
  TraceEvent& e = trace_->Add("optimizer", "order.reduce");
  e.Set("site", site);
  e.Set("requested", interesting.ToString(namer));
  e.Set("reduced", reduced.ToString(namer));
  std::vector<std::string> detail;
  for (const ReduceStep& s : steps) {
    switch (s.action) {
      case ReduceStep::Action::kKept:
        break;
      case ReduceStep::Action::kHeadSubstituted:
        detail.push_back(ColName(namer, s.original) + "->" +
                         ColName(namer, s.column) + " (eq-class head)");
        break;
      case ReduceStep::Action::kRemovedDetermined:
        detail.push_back(ColName(namer, s.original) +
                         " removed (constant/FD-determined)");
        break;
    }
  }
  if (!detail.empty()) e.Set("steps", Join(detail, "; "));
}

void Planner::TraceOrderTest(const char* site, const OrderSpec& interesting,
                             const PlanNode& plan, bool satisfied) const {
  if (trace_ == nullptr || interesting.empty()) return;
  const ColumnNamer namer = query_.namer();
  trace_->Add("optimizer", "order.test")
      .Set("site", site)
      .Set("interesting", interesting.ToString(namer))
      .Set("property", plan.props.order.ToString(namer))
      .SetBool("satisfied", satisfied);
}

void Planner::TraceSortDecision(const char* site, const OrderSpec& interesting,
                                const PlanNode& input, bool avoided,
                                const OrderSpec* sort_spec) const {
  if (trace_ == nullptr || interesting.empty()) return;
  const ColumnNamer namer = query_.namer();
  if (avoided) {
    // Surface the reduction that let the existing order satisfy the
    // requirement (Test Order reduces internally, so nothing else
    // reports it on this path).
    if (config_.enable_order_optimization) {
      OrderContext octx = input.props.MakeContext(config_.transitive_fds);
      TraceReduce(site, interesting, ReduceOrder(interesting, octx), octx);
    }
    trace_->Add("optimizer", "sort.avoided")
        .Set("site", site)
        .Set("interesting", interesting.ToString(namer))
        .Set("property", input.props.order.ToString(namer))
        .SetDouble("input_rows", input.props.cardinality);
    return;
  }
  size_t width = sort_spec != nullptr ? sort_spec->size() : interesting.size();
  TraceEvent& e = trace_->Add("optimizer", "sort.placed");
  e.Set("site", site);
  e.Set("interesting", interesting.ToString(namer));
  if (sort_spec != nullptr) e.Set("spec", sort_spec->ToString(namer));
  e.SetDouble("input_rows", input.props.cardinality);
  e.SetDouble("est_cost", cost_model_.SortCost(input.props.cardinality, width));
}

void Planner::TraceSortAhead(const char* site, const OrderSpec& spec,
                             const PlanNode& plan, bool retained) const {
  if (trace_ == nullptr) return;
  trace_->Add("optimizer",
              retained ? "sortahead.candidate" : "sortahead.pruned")
      .Set("site", site)
      .Set("spec", spec.ToString(query_.namer()))
      .SetDouble("est_cost", plan.cost)
      .SetDouble("est_rows", plan.props.cardinality);
}

bool Planner::OrderSatisfied(const OrderSpec& interesting,
                             const PlanNode& plan) const {
  if (interesting.empty()) return true;
  if (!config_.enable_order_optimization) {
    return NaiveSatisfied(interesting, plan.props.order);
  }
  OrderContext ctx = plan.props.MakeContext(config_.transitive_fds);
  return TestOrder(interesting, plan.props.order, ctx);
}

OrderSpec Planner::SortSpecFor(const OrderSpec& interesting,
                               const PlanNode& input) const {
  if (!config_.enable_order_optimization) return interesting;
  OrderContext ctx = input.props.MakeContext(config_.transitive_fds);
  OrderSpec reduced = ReduceOrder(interesting, ctx);
  TraceReduce("sort.spec", interesting, reduced, ctx);
  // Reduction rewrites to equivalence-class heads, which need not be
  // visible in this stream (e.g. the head lives in a table the group-by
  // projected away). Substitute a visible class member for the executor.
  OrderSpec visible;
  for (const OrderElement& e : reduced) {
    if (input.props.columns.Contains(e.col)) {
      visible.Append(e);
      continue;
    }
    bool substituted = false;
    for (const ColumnId& member : input.props.eq.ClassMembers(e.col)) {
      if (input.props.columns.Contains(member)) {
        visible.Append(OrderElement(member, e.dir));
        substituted = true;
        break;
      }
    }
    if (!substituted) visible.Append(e);  // caller validates visibility
  }
  return visible;
}

PlanRef Planner::MakeSort(PlanRef input, OrderSpec spec) {
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kSort;
  node->sort_spec = spec;
  node->props = SortProperties(input->props, spec);
  node->cost = input->cost + cost_model_.SortCost(input->props.cardinality,
                                                  spec.size());
  node->children.push_back(std::move(input));
  return node;
}

PlanRef Planner::MakeFilter(PlanRef input, std::vector<Predicate> preds,
                            const QgmBox* box) {
  (void)box;
  if (preds.empty()) return input;
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kFilter;
  node->props = input->props;
  double sel = 1.0;
  for (const Predicate& p : preds) {
    sel *= cost_model_.Selectivity(p, query_);
  }
  // Apply each predicate's equivalence/constant effects; cardinality is
  // scaled once below.
  for (const Predicate& p : preds) {
    ApplyPredicate(&node->props, p, 1.0);
  }
  node->props.cardinality =
      std::max(1.0, input->props.cardinality * sel);
  node->cost = input->cost + cost_model_.FilterCost(input->props.cardinality,
                                                    preds.size());
  node->predicates = std::move(preds);
  node->children.push_back(std::move(input));
  return node;
}

bool Planner::InsertCandidate(std::vector<PlanRef>* candidates, PlanRef plan) {
  ++plans_generated_;
  // Dominated by an existing plan?
  for (const PlanRef& existing : *candidates) {
    bool cheaper = existing->cost <= plan->cost;
    if (cheaper && OrderSatisfied(plan->props.order, *existing)) {
      return false;  // pruned (§5.2: costlier subplan, comparable props)
    }
  }
  // Remove plans the newcomer dominates.
  candidates->erase(
      std::remove_if(candidates->begin(), candidates->end(),
                     [&](const PlanRef& existing) {
                       return plan->cost <= existing->cost &&
                              OrderSatisfied(existing->props.order, *plan);
                     }),
      candidates->end());
  candidates->push_back(std::move(plan));
  return true;
}

// ---------------------------------------------------------------------------
// Leaf access paths
// ---------------------------------------------------------------------------

std::vector<PlanRef> Planner::BaseAccessPaths(
    const QgmBox* box, const Quantifier& q,
    const std::vector<const Predicate*>& local_preds,
    const std::vector<OrderSpec>& sort_ahead) {
  std::vector<PlanRef> out;
  const Table& table = *q.table;
  StreamProperties base_props = BaseTableProperties(table, q.id);

  auto apply_locals = [&](PlanRef scan,
                          const std::vector<const Predicate*>& remaining) {
    std::vector<Predicate> preds;
    for (const Predicate* p : remaining) preds.push_back(*p);
    return MakeFilter(std::move(scan), std::move(preds), box);
  };

  // Heap scan.
  {
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kTableScan;
    node->table = &table;
    node->table_id = q.id;
    node->props = base_props;
    node->cost = cost_model_.TableScanCost(table);
    InsertCandidate(&out, apply_locals(node, local_preds));
  }

  // Index scans.
  for (size_t i = 0; i < table.def().indexes.size(); ++i) {
    const IndexDef& idx = table.def().indexes[i];
    // The order an index scan provides.
    OrderSpec fwd_order;
    for (size_t k = 0; k < idx.column_ordinals.size(); ++k) {
      fwd_order.Append(OrderElement(ColumnId(q.id, idx.column_ordinals[k]),
                                    idx.directions[k]));
    }
    OrderSpec rev_order;
    for (const OrderElement& e : fwd_order) {
      rev_order.Append(OrderElement(e.col, Reverse(e.dir)));
    }

    // Split local predicates into those the index prefix can absorb as a
    // range (equality chain on leading columns plus at most one comparison
    // on the next) and the rest.
    std::vector<const Predicate*> range_preds;
    std::vector<const Predicate*> residual = local_preds;
    size_t prefix = 0;
    bool range_open = false;
    while (prefix < idx.column_ordinals.size() && !range_open) {
      ColumnId col(q.id, idx.column_ordinals[prefix]);
      const Predicate* taken = nullptr;
      for (const Predicate* p : residual) {
        if (p->kind == Predicate::Kind::kColEqConst && p->left_col == col) {
          taken = p;
          break;
        }
      }
      if (taken == nullptr) {
        for (const Predicate* p : residual) {
          if (p->kind == Predicate::Kind::kColCmpConst &&
              p->left_col == col && p->cmp != BinOp::kNe) {
            taken = p;
            range_open = true;
            break;
          }
        }
      }
      if (taken == nullptr) break;
      range_preds.push_back(taken);
      residual.erase(std::find(residual.begin(), residual.end(), taken));
      if (!range_open) ++prefix;
    }

    double sel = 1.0;
    for (const Predicate* p : range_preds) {
      sel *= cost_model_.Selectivity(*p, query_);
    }
    double range_rows =
        std::max(1.0, static_cast<double>(table.row_count()) * sel);

    for (bool reverse : {false, true}) {
      // Reverse scans are full scans only (the executor does not run range
      // bounds backwards), and only worth generating when some requirement
      // wants the reversed order.
      if (reverse && !range_preds.empty()) continue;
      if (reverse) {
        bool useful = false;
        const OrderSpec& probe = rev_order;
        const BoxOrderInfo& info = order_scan_.info(box);
        for (const OrderSpec& want : info.sort_ahead) {
          if (!want.empty() && !probe.empty() &&
              want.at(0).dir == probe.at(0).dir &&
              want.at(0).col == probe.at(0).col) {
            useful = true;
          }
        }
        if (!info.required_output.empty() && !probe.empty() &&
            info.required_output.at(0) == probe.at(0)) {
          useful = true;
        }
        if (!useful) continue;
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kIndexScan;
      node->table = &table;
      node->table_id = q.id;
      node->index_ordinal = static_cast<int>(i);
      node->reverse_scan = reverse;
      node->props = base_props;
      node->props.order = reverse ? rev_order : fwd_order;
      if (range_preds.empty()) {
        node->cost = cost_model_.IndexFullScanCost(table, idx.clustered);
      } else {
        for (const Predicate* p : range_preds) {
          node->range_predicates.push_back(*p);
          ApplyPredicate(&node->props, *p, 1.0);
        }
        node->props.cardinality = range_rows;
        node->cost =
            cost_model_.IndexRangeScanCost(table, idx.clustered, range_rows);
      }
      InsertCandidate(&out, apply_locals(node, residual));
    }
  }

  // Sort-ahead at the leaf (§5.2): sort the access on each interesting
  // order homogenizable to this table's columns.
  if (config_.enable_order_optimization && config_.enable_sort_ahead &&
      !sort_ahead.empty() && !out.empty()) {
    PlanRef cheapest = *std::min_element(
        out.begin(), out.end(),
        [](const PlanRef& a, const PlanRef& b) { return a->cost < b->cost; });
    const OrderContext& octx = order_scan_.info(box).optimistic_ctx;
    ColumnSet targets;
    for (size_t c = 0; c < table.def().columns.size(); ++c) {
      targets.Add(ColumnId(q.id, static_cast<int32_t>(c)));
    }
    for (const OrderSpec& want : sort_ahead) {
      OrderSpec homog = HomogenizeOrderPrefix(want, targets, octx.eq, octx);
      if (homog.empty()) continue;
      if (tracing() && homog != want) {
        trace_->Add("optimizer", "order.homogenize")
            .Set("site", "leaf")
            .Set("requested", want.ToString(query_.namer()))
            .Set("translated", homog.ToString(query_.namer()));
      }
      if (OrderSatisfied(homog, *cheapest)) continue;
      PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
      bool retained = InsertCandidate(&out, sorted);
      TraceSortAhead("leaf", homog, *sorted, retained);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SELECT box: DP join enumeration + finishing
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanSelectBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  const size_t n = box->quantifiers.size();
  if (n == 0) return Status::Unsupported("SELECT box without quantifiers");
  if (n > 16) return Status::Unsupported("joins of more than 16 tables");

  std::vector<OrderSpec> sort_ahead = info.sort_ahead;
  if (sort_ahead.size() >
      static_cast<size_t>(config_.max_sort_ahead_orders)) {
    sort_ahead.resize(static_cast<size_t>(config_.max_sort_ahead_orders));
  }

  // Per-quantifier column sets and the ColumnId.table -> quantifier map.
  std::vector<ColumnSet> qcols(n);
  std::unordered_map<int32_t, size_t> owner;
  for (size_t i = 0; i < n; ++i) {
    const Quantifier& q = box->quantifiers[i];
    if (q.IsBase()) {
      for (size_t c = 0; c < q.table->def().columns.size(); ++c) {
        qcols[i].Add(ColumnId(q.id, static_cast<int32_t>(c)));
      }
    } else {
      qcols[i] = q.input->OutputColumns();
    }
    for (const ColumnId& c : qcols[i]) {
      owner[c.table] = i;
    }
  }
  auto mask_columns = [&](uint32_t mask) {
    ColumnSet cols;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) cols = cols.Union(qcols[i]);
    }
    return cols;
  };
  auto quantifier_mask = [&](const ColumnSet& referenced) {
    uint32_t mask = 0;
    for (const ColumnId& c : referenced) {
      auto it = owner.find(c.table);
      if (it != owner.end()) mask |= 1u << it->second;
    }
    return mask;
  };

  // Predicates touching an outer-join's null-supplying side cannot run
  // inside the inner-join DP: they apply after that join step (e.g. the
  // IS NULL anti-join filter). Defer each to the last step it references.
  std::vector<ColumnSet> oj_cols;
  for (const OuterJoinStep& step : box->outer_joins) {
    const Quantifier& oq = step.quantifier;
    ColumnSet cols;
    if (oq.IsBase()) {
      for (size_t c = 0; c < oq.table->def().columns.size(); ++c) {
        cols.Add(ColumnId(oq.id, static_cast<int32_t>(c)));
      }
    } else {
      cols = oq.input->OutputColumns();
    }
    oj_cols.push_back(std::move(cols));
  }
  std::vector<std::vector<Predicate>> deferred(box->outer_joins.size());
  std::vector<const Predicate*> dp_preds;
  for (const Predicate& p : box->predicates) {
    int last_step = -1;
    for (size_t s = 0; s < oj_cols.size(); ++s) {
      if (!p.referenced.Intersect(oj_cols[s]).empty()) {
        last_step = static_cast<int>(s);
      }
    }
    if (last_step >= 0) {
      deferred[static_cast<size_t>(last_step)].push_back(p);
    } else {
      dp_preds.push_back(&p);
    }
  }

  // Classify predicates: local to one quantifier vs multi-quantifier.
  std::vector<std::vector<const Predicate*>> local_preds(n);
  std::vector<const Predicate*> multi_preds;
  std::vector<uint32_t> multi_masks;
  for (const Predicate* pp : dp_preds) {
    const Predicate& p = *pp;
    uint32_t pmask = quantifier_mask(p.referenced);
    if (pmask == 0) {
      // Constant predicate; treat as local to quantifier 0.
      local_preds[0].push_back(&p);
    } else if ((pmask & (pmask - 1)) == 0) {
      size_t i = static_cast<size_t>(__builtin_ctz(pmask));
      local_preds[i].push_back(&p);
    } else {
      multi_preds.push_back(&p);
      multi_masks.push_back(pmask);
    }
  }

  // Applicable multi-predicate set per mask.
  auto applicable = [&](uint32_t mask) {
    std::vector<size_t> out;
    for (size_t k = 0; k < multi_preds.size(); ++k) {
      if ((multi_masks[k] & mask) == multi_masks[k]) out.push_back(k);
    }
    return out;
  };

  // Deterministic cardinality per quantifier mask, shared by all plans of
  // the mask so pruning compares like with like.
  std::vector<double> mask_card(1u << n, -1.0);
  std::vector<std::vector<PlanRef>> dp(1u << n);

  for (size_t i = 0; i < n; ++i) {
    const Quantifier& q = box->quantifiers[i];
    std::vector<PlanRef> leafs;
    if (q.IsBase()) {
      leafs = BaseAccessPaths(box, q, local_preds[i], sort_ahead);
    } else {
      ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> child_plans,
                              PlanBox(q.input));
      for (PlanRef& child : child_plans) {
        std::vector<Predicate> preds;
        for (const Predicate* p : local_preds[i]) preds.push_back(*p);
        InsertCandidate(&leafs, MakeFilter(std::move(child), preds, box));
      }
      // Sort-ahead over a derived quantifier.
      if (config_.enable_order_optimization && config_.enable_sort_ahead &&
          !leafs.empty()) {
        PlanRef cheapest = *std::min_element(
            leafs.begin(), leafs.end(), [](const PlanRef& a, const PlanRef& b) {
              return a->cost < b->cost;
            });
        for (const OrderSpec& want : sort_ahead) {
          OrderSpec homog = HomogenizeOrderPrefix(
              want, qcols[i], info.optimistic_ctx.eq, info.optimistic_ctx);
          if (homog.empty() || OrderSatisfied(homog, *cheapest)) continue;
          if (tracing() && homog != want) {
            trace_->Add("optimizer", "order.homogenize")
                .Set("site", "derived")
                .Set("requested", want.ToString(query_.namer()))
                .Set("translated", homog.ToString(query_.namer()));
          }
          PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
          bool retained = InsertCandidate(&leafs, sorted);
          TraceSortAhead("derived", homog, *sorted, retained);
        }
      }
    }
    if (leafs.empty()) {
      return Status::Internal("no access path for quantifier " + q.alias);
    }
    mask_card[1u << i] = leafs.front()->props.cardinality;
    for (PlanRef& p : leafs) {
      // All candidates of one mask share the deterministic estimate.
      auto fixed = std::make_shared<PlanNode>(*p);
      fixed->props.cardinality = mask_card[1u << i];
      dp[1u << i].push_back(std::move(fixed));
    }
  }

  // Cardinality of a composite mask: product of leaf cards times the
  // selectivity of every multi-quantifier predicate applicable within it.
  auto card_of = [&](uint32_t mask) {
    if (mask_card[mask] >= 0) return mask_card[mask];
    double card = 1.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) card *= mask_card[1u << i];
    }
    for (size_t k : applicable(mask)) {
      card *= cost_model_.Selectivity(*multi_preds[k], query_);
    }
    card = std::max(card, 1.0);
    mask_card[mask] = card;
    return card;
  };

  const uint32_t full = (1u << n) - 1;

  // Enumerate joins bottom-up by mask population count.
  std::vector<uint32_t> masks_by_size;
  for (uint32_t mask = 1; mask <= full; ++mask) masks_by_size.push_back(mask);
  std::sort(masks_by_size.begin(), masks_by_size.end(),
            [](uint32_t a, uint32_t b) {
              int pa = __builtin_popcount(a), pb = __builtin_popcount(b);
              return pa != pb ? pa < pb : a < b;
            });

  for (uint32_t mask : masks_by_size) {
    if (__builtin_popcount(mask) < 2) continue;
    double out_card = card_of(mask);

    // Predicates newly applicable at this mask.
    auto newly_applicable = [&](uint32_t outer_mask, uint32_t inner_mask) {
      std::vector<const Predicate*> out;
      for (size_t k : applicable(mask)) {
        uint32_t pm = multi_masks[k];
        if ((pm & outer_mask) != pm && (pm & inner_mask) != pm) {
          out.push_back(multi_preds[k]);
        }
      }
      return out;
    };

    bool found_connected = false;
    for (int pass = 0; pass < 2; ++pass) {
      bool allow_cartesian = pass == 1;
      if (allow_cartesian && found_connected) break;
      for (uint32_t outer_mask = (mask - 1) & mask; outer_mask != 0;
           outer_mask = (outer_mask - 1) & mask) {
        uint32_t inner_mask = mask ^ outer_mask;
        if (inner_mask == 0 || dp[outer_mask].empty() ||
            dp[inner_mask].empty()) {
          continue;
        }
        // Equality join pairs crossing this split (outer col, inner col).
        std::vector<std::pair<ColumnId, ColumnId>> pairs;
        std::vector<const Predicate*> applied = newly_applicable(outer_mask,
                                                                 inner_mask);
        std::vector<Predicate> residual;
        for (const Predicate* p : applied) {
          if (p->kind == Predicate::Kind::kColEqCol) {
            uint32_t lm = quantifier_mask(ColumnSet{p->left_col});
            uint32_t rm = quantifier_mask(ColumnSet{p->right_col});
            if ((lm & outer_mask) && (rm & inner_mask)) {
              pairs.emplace_back(p->left_col, p->right_col);
              continue;
            }
            if ((rm & outer_mask) && (lm & inner_mask)) {
              pairs.emplace_back(p->right_col, p->left_col);
              continue;
            }
          }
          residual.push_back(*p);
        }
        if (pairs.empty() && !allow_cartesian) continue;
        if (!pairs.empty()) found_connected = true;

        auto finish_join = [&](std::shared_ptr<PlanNode> node,
                               const PlanRef& outer, const PlanRef& inner,
                               bool preserves_outer_order) {
          node->props =
              JoinProperties(outer->props, inner->props, pairs,
                             preserves_outer_order, out_card);
          for (const auto& [l, r] : pairs) {
            node->props.eq.AddEquivalence(l, r);
          }
          node->props.keys.Simplify(node->props.eq);
          PlanRef result = node;
          if (!residual.empty()) {
            // Filter scales cardinality again; rescale to the mask's
            // deterministic estimate afterwards.
            result = MakeFilter(result, residual, box);
            auto fixed = std::make_shared<PlanNode>(*result);
            fixed->props.cardinality = out_card;
            result = fixed;
          }
          InsertCandidate(&dp[mask], std::move(result));
        };

        // Join-pair columns as order specs.
        std::vector<ColumnId> outer_cols, inner_cols;
        for (const auto& [l, r] : pairs) {
          outer_cols.push_back(l);
          inner_cols.push_back(r);
        }
        OrderSpec merge_outer = ConcreteAscending(outer_cols);
        OrderSpec merge_inner = ConcreteAscending(inner_cols);

        for (const PlanRef& outer : dp[outer_mask]) {
          for (const PlanRef& inner : dp[inner_mask]) {
            double join_cpu_rows = out_card;

            if (!pairs.empty()) {
              // --- Hash join ---
              if (config_.enable_hash_join) {
                auto node = std::make_shared<PlanNode>();
                node->kind = OpKind::kHashJoin;
                node->join_pairs = pairs;
                node->children = {outer, inner};
                node->cost = outer->cost + inner->cost +
                             cost_model_.HashJoinCost(
                                 outer->props.cardinality,
                                 inner->props.cardinality, join_cpu_rows);
                finish_join(node, outer, inner, /*preserves=*/false);
              }

              // --- Merge join ---
              {
                // Candidate outer orders: the merge order itself plus any
                // sort-ahead order coverable with it (§5.2: "In the case of
                // a merge-join, a cover with the merge-join order is also
                // required").
                std::vector<OrderSpec> outer_specs = {merge_outer};
                if (config_.enable_order_optimization &&
                    config_.enable_sort_ahead) {
                  OrderContext octx =
                      outer->props.MakeContext(config_.transitive_fds);
                  ColumnSet targets = mask_columns(outer_mask);
                  for (const OrderSpec& want : sort_ahead) {
                    OrderSpec homog = HomogenizeOrderPrefix(
                        want, targets, info.optimistic_ctx.eq,
                        info.optimistic_ctx);
                    if (homog.empty()) continue;
                    std::optional<OrderSpec> covered =
                        CoverOrder(homog, merge_outer, octx);
                    if (covered.has_value() && !covered->empty()) {
                      if (tracing()) {
                        const ColumnNamer namer = query_.namer();
                        trace_->Add("optimizer", "order.cover")
                            .Set("site", "merge_join")
                            .Set("i1", homog.ToString(namer))
                            .Set("i2", merge_outer.ToString(namer))
                            .Set("cover", covered->ToString(namer));
                      }
                      outer_specs.push_back(*covered);
                    }
                  }
                }
                std::vector<PlanRef> sorted_outers;
                bool outer_sat = OrderSatisfied(merge_outer, *outer);
                TraceOrderTest("merge_join.outer", merge_outer, *outer,
                               outer_sat);
                if (outer_sat) {
                  TraceSortDecision("merge_join.outer", merge_outer, *outer,
                                    /*avoided=*/true, nullptr);
                  sorted_outers.push_back(outer);
                } else {
                  for (const OrderSpec& spec : outer_specs) {
                    OrderSpec s = SortSpecFor(spec, *outer);
                    if (s.empty()) s = spec;
                    TraceSortDecision("merge_join.outer", spec, *outer,
                                      /*avoided=*/false, &s);
                    sorted_outers.push_back(MakeSort(outer, s));
                  }
                }
                PlanRef sorted_inner = inner;
                bool inner_sat = OrderSatisfied(merge_inner, *inner);
                TraceOrderTest("merge_join.inner", merge_inner, *inner,
                               inner_sat);
                if (!inner_sat) {
                  OrderSpec s = SortSpecFor(merge_inner, *inner);
                  if (s.empty()) s = merge_inner;
                  TraceSortDecision("merge_join.inner", merge_inner, *inner,
                                    /*avoided=*/false, &s);
                  sorted_inner = MakeSort(inner, s);
                } else {
                  TraceSortDecision("merge_join.inner", merge_inner, *inner,
                                    /*avoided=*/true, nullptr);
                }
                for (const PlanRef& so : sorted_outers) {
                  auto node = std::make_shared<PlanNode>();
                  node->kind = OpKind::kMergeJoin;
                  node->join_pairs = pairs;
                  node->children = {so, sorted_inner};
                  node->cost =
                      so->cost + sorted_inner->cost +
                      cost_model_.MergeJoinCost(so->props.cardinality,
                                                sorted_inner->props.cardinality,
                                                join_cpu_rows);
                  finish_join(node, so, sorted_inner, /*preserves=*/true);
                }
              }
            } else {
              // --- Cartesian / naive nested loop ---
              auto node = std::make_shared<PlanNode>();
              node->kind = OpKind::kNaiveNLJoin;
              node->children = {outer, inner};
              node->cost = outer->cost +
                           cost_model_.NaiveNestedLoopCost(
                               outer->props.cardinality,
                               inner->props.cardinality, inner->cost);
              finish_join(node, outer, inner, /*preserves=*/true);
            }

            // --- Index nested-loop join (inner must be one base table) ---
            if (!pairs.empty() && __builtin_popcount(inner_mask) == 1) {
              size_t qi = static_cast<size_t>(__builtin_ctz(inner_mask));
              const Quantifier& q = box->quantifiers[qi];
              if (!q.IsBase()) continue;
              for (size_t x = 0; x < q.table->def().indexes.size(); ++x) {
                const IndexDef& idx = q.table->def().indexes[x];
                // Greedy prefix of index columns covered by join pairs.
                std::vector<std::pair<ColumnId, ColumnId>> matched;
                for (int ord : idx.column_ordinals) {
                  ColumnId target(q.id, ord);
                  bool hit = false;
                  for (const auto& pr : pairs) {
                    if (pr.second == target) {
                      matched.push_back(pr);
                      hit = true;
                      break;
                    }
                  }
                  if (!hit) break;
                }
                if (matched.empty()) continue;
                double distinct = 1.0;
                for (const auto& pr : matched) {
                  distinct = std::max(
                      distinct, cost_model_.DistinctCount(pr.second, query_));
                }
                double inner_rows = static_cast<double>(q.table->row_count());
                double rows_per_probe = std::max(1.0, inner_rows / distinct);
                // Recognizing that the outer's order makes probes clustered
                // is itself order reasoning (§8.1: the disabled optimizer,
                // "without an awareness of equivalence classes, was unable
                // to determine that the same sort could be used to generate
                // an ordered nested-loop join").
                bool ordered = false;
                if (config_.enable_order_optimization &&
                    !outer->props.order.empty()) {
                  const ColumnId& lead = outer->props.order.at(0).col;
                  ordered = lead == matched[0].first ||
                            outer->props.eq.AreEquivalent(lead,
                                                          matched[0].first);
                }
                auto node = std::make_shared<PlanNode>();
                node->kind = OpKind::kIndexNLJoin;
                node->table = q.table;
                node->table_id = q.id;
                node->index_ordinal = static_cast<int>(x);
                node->join_pairs = matched;
                node->ordered_probes = ordered;
                node->children = {outer};
                // Residual: unmatched join pairs + inner local predicates.
                std::vector<Predicate> probe_residual = residual;
                for (const auto& pr : pairs) {
                  bool used = std::find(matched.begin(), matched.end(), pr) !=
                              matched.end();
                  if (used) continue;
                  BoundExpr cmp = BoundExpr::Binary(
                      BinOp::kEq,
                      BoundExpr::Column(pr.first, query_.TypeOf(pr.first),
                                        query_.namer()(pr.first)),
                      BoundExpr::Column(pr.second, query_.TypeOf(pr.second),
                                        query_.namer()(pr.second)),
                      DataType::kInt64);
                  probe_residual.push_back(ClassifyPredicate(std::move(cmp)));
                }
                for (const Predicate* p : local_preds[qi]) {
                  probe_residual.push_back(*p);
                }
                node->cost = outer->cost +
                             cost_model_.IndexNestedLoopCost(
                                 *q.table, idx.clustered,
                                 outer->props.cardinality, rows_per_probe,
                                 ordered);
                node->props = JoinProperties(
                    outer->props, BaseTableProperties(*q.table, q.id), pairs,
                    /*preserves_outer_order=*/true, out_card);
                for (const auto& [l, r] : pairs) {
                  node->props.eq.AddEquivalence(l, r);
                }
                node->props.keys.Simplify(node->props.eq);
                PlanRef result = node;
                if (!probe_residual.empty()) {
                  result = MakeFilter(result, probe_residual, box);
                  auto fixed = std::make_shared<PlanNode>(*result);
                  fixed->props.cardinality = out_card;
                  result = fixed;
                }
                InsertCandidate(&dp[mask], std::move(result));
              }
            }
          }
        }
      }
      if (found_connected) break;
    }

    // Sort-ahead at intermediate levels (§5.2: "an arbitrary number of
    // levels in a join tree").
    if (config_.enable_order_optimization && config_.enable_sort_ahead &&
        !dp[mask].empty() && mask != full) {
      PlanRef cheapest = *std::min_element(
          dp[mask].begin(), dp[mask].end(),
          [](const PlanRef& a, const PlanRef& b) { return a->cost < b->cost; });
      ColumnSet targets = mask_columns(mask);
      for (const OrderSpec& want : sort_ahead) {
        OrderSpec homog = HomogenizeOrderPrefix(
            want, targets, info.optimistic_ctx.eq, info.optimistic_ctx);
        if (homog.empty() || OrderSatisfied(homog, *cheapest)) continue;
        if (tracing() && homog != want) {
          trace_->Add("optimizer", "order.homogenize")
              .Set("site", "intermediate")
              .Set("requested", want.ToString(query_.namer()))
              .Set("translated", homog.ToString(query_.namer()));
        }
        PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
        bool retained = InsertCandidate(&dp[mask], sorted);
        TraceSortAhead("intermediate", homog, *sorted, retained);
      }
    }
  }

  if (dp[full].empty()) {
    return Status::Internal("join enumeration produced no plan");
  }

  // ---- LEFT OUTER JOIN steps (applied in syntax order) ---------------------
  std::vector<PlanRef> current = dp[full];
  for (size_t s = 0; s < box->outer_joins.size(); ++s) {
    ORDOPT_ASSIGN_OR_RETURN(
        current, FoldOuterJoin(box, box->outer_joins[s], std::move(current)));
    if (!deferred[s].empty()) {
      std::vector<PlanRef> filtered;
      for (const PlanRef& p : current) {
        InsertCandidate(&filtered, MakeFilter(p, deferred[s], box));
      }
      current = std::move(filtered);
    }
  }
  dp[full] = std::move(current);

  // ---- finishing: DISTINCT, required order, projection ---------------------
  bool all_passthrough = true;
  for (const OutputColumn& oc : box->outputs) {
    if (!oc.expr.IsColumn() || oc.expr.column() != oc.id) {
      all_passthrough = false;
    }
  }

  std::vector<PlanRef> finished;
  for (const PlanRef& base : dp[full]) {
    std::vector<PlanRef> variants = {base};

    if (box->distinct) {
      std::vector<PlanRef> next;
      ColumnSet out_cols = box->OutputColumns();
      std::vector<ColumnId> out_col_list;
      for (const OutputColumn& oc : box->outputs) {
        out_col_list.push_back(oc.id);
      }
      for (const PlanRef& v : variants) {
        double dcard = std::max(1.0, v->props.cardinality * 0.5);
        bool adjacent;
        if (config_.enable_order_optimization) {
          OrderContext ctx = v->props.MakeContext(config_.transitive_fds);
          adjacent = info.distinct_requirement.Satisfies(v->props.order, ctx) ||
                     v->props.IsOneRecord() ||
                     v->props.keys.IsUniqueOn(out_cols);
        } else {
          adjacent = NaiveSatisfied(ConcreteAscending(out_col_list),
                                    v->props.order);
        }
        if (tracing()) {
          trace_->Add("optimizer", "order.test")
              .Set("site", "distinct")
              .Set("interesting", "DISTINCT grouping")
              .Set("property", v->props.order.ToString(query_.namer()))
              .SetBool("satisfied", adjacent);
          if (adjacent) {
            trace_->Add("optimizer", "sort.avoided")
                .Set("site", "distinct")
                .Set("property", v->props.order.ToString(query_.namer()))
                .SetDouble("input_rows", v->props.cardinality);
          }
        }
        if (adjacent) {
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kStreamDistinct;
          node->distinct_columns = out_cols;
          node->children = {v};
          node->props = DistinctProperties(v->props, out_cols,
                                           /*preserves_order=*/true, dcard);
          node->cost = v->cost + cost_model_.StreamGroupByCost(
                                     v->props.cardinality, 0);
          InsertCandidate(&next, node);
        } else {
          // Sort-based distinct.
          OrderSpec spec;
          if (config_.enable_order_optimization) {
            OrderContext ctx = v->props.MakeContext(config_.transitive_fds);
            std::optional<OrderSpec> covered =
                info.distinct_requirement.CoverConcrete(info.required_output,
                                                        ctx);
            if (tracing() && covered.has_value()) {
              const ColumnNamer namer = query_.namer();
              trace_->Add("optimizer", "order.cover")
                  .Set("site", "distinct")
                  .Set("i1", "DISTINCT grouping")
                  .Set("i2", info.required_output.ToString(namer))
                  .Set("cover", covered->ToString(namer));
            }
            spec = covered.has_value()
                       ? *covered
                       : info.distinct_requirement.DefaultSortSpec(ctx);
          } else {
            spec = ConcreteAscending(out_col_list);
          }
          if (!spec.empty()) {
            TraceSortDecision("distinct", spec, *v, /*avoided=*/false, &spec);
            PlanRef sorted = MakeSort(v, spec);
            auto node = std::make_shared<PlanNode>();
            node->kind = OpKind::kStreamDistinct;
            node->distinct_columns = out_cols;
            node->children = {sorted};
            node->props = DistinctProperties(sorted->props, out_cols, true,
                                             dcard);
            node->cost = sorted->cost + cost_model_.StreamGroupByCost(
                                            sorted->props.cardinality, 0);
            InsertCandidate(&next, node);
          }
          // Hash distinct.
          if (!config_.enable_hash_grouping) continue;
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kHashDistinct;
          node->distinct_columns = out_cols;
          node->children = {v};
          node->props = DistinctProperties(v->props, out_cols,
                                           /*preserves_order=*/false, dcard);
          node->cost = v->cost + cost_model_.HashGroupByCost(
                                     v->props.cardinality, 0);
          InsertCandidate(&next, node);
        }
      }
      variants = std::move(next);
    }

    for (PlanRef v : variants) {
      bool limited = box->limit >= 0;
      bool output_sat =
          info.required_output.empty() ||
          OrderSatisfied(info.required_output, *v);
      if (!info.required_output.empty()) {
        TraceOrderTest("select.output", info.required_output, *v, output_sat);
        if (output_sat) {
          TraceSortDecision("select.output", info.required_output, *v,
                            /*avoided=*/true, nullptr);
        }
      }
      if (!output_sat) {
        OrderSpec spec = SortSpecFor(info.required_output, *v);
        if (spec.empty()) spec = info.required_output;
        TraceSortDecision("select.output", info.required_output, *v,
                          /*avoided=*/false, &spec);
        if (limited) {
          // ORDER BY + LIMIT fuse into a bounded-heap Top-N.
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kTopN;
          node->sort_spec = spec;
          node->limit = box->limit;
          node->children = {v};
          node->props = SortProperties(v->props, spec);
          node->props.cardinality = std::min(
              v->props.cardinality, static_cast<double>(box->limit));
          double n = std::max(2.0, v->props.cardinality);
          double k = std::max(2.0, static_cast<double>(box->limit));
          node->cost = v->cost +
                       n * std::log2(std::min(n, k)) *
                           cost_model_.params().cpu_compare_cost *
                           (0.5 + 0.5 * static_cast<double>(spec.size()));
          v = node;
          limited = false;  // the Top-N already enforced the limit
        } else {
          v = MakeSort(v, spec);
        }
      }
      if (!all_passthrough) {
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kProject;
        node->projections = box->outputs;
        node->children = {v};
        node->props = ProjectProperties(v->props, box->OutputColumns());
        node->props.columns = box->OutputColumns();
        node->cost = v->cost + v->props.cardinality *
                                   cost_model_.params().cpu_eval_cost *
                                   static_cast<double>(box->outputs.size());
        v = node;
      }
      if (limited) {
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kLimit;
        node->limit = box->limit;
        node->children = {v};
        node->props = v->props;
        node->props.cardinality = std::min(
            v->props.cardinality, static_cast<double>(box->limit));
        node->cost = v->cost;
        v = node;
      }
      InsertCandidate(&finished, std::move(v));
    }
  }
  plans_retained_ += static_cast<int64_t>(finished.size());
  return finished;
}

// ---------------------------------------------------------------------------
// LEFT OUTER JOIN folding
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::FoldOuterJoin(
    const QgmBox* box, const OuterJoinStep& step,
    std::vector<PlanRef> outers) {
  const Quantifier& q = step.quantifier;

  // Columns of the null-supplying side.
  ColumnSet inner_cols;
  if (q.IsBase()) {
    for (size_t c = 0; c < q.table->def().columns.size(); ++c) {
      inner_cols.Add(ColumnId(q.id, static_cast<int32_t>(c)));
    }
  } else {
    inner_cols = q.input->OutputColumns();
  }

  // Split the ON conjuncts: predicates local to the null side can be
  // applied below the join (they only shrink the match set); equality
  // predicates crossing the join drive merge/hash variants; anything else
  // forces the general nested-loop form.
  std::vector<const Predicate*> inner_local;
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  std::vector<Predicate> residual;
  for (const Predicate& p : step.on_predicates) {
    if (p.referenced.IsSubsetOf(inner_cols)) {
      inner_local.push_back(&p);
      continue;
    }
    if (p.kind == Predicate::Kind::kColEqCol) {
      bool l_inner = inner_cols.Contains(p.left_col);
      bool r_inner = inner_cols.Contains(p.right_col);
      if (l_inner != r_inner) {
        if (l_inner) {
          pairs.emplace_back(p.right_col, p.left_col);
        } else {
          pairs.emplace_back(p.left_col, p.right_col);
        }
        continue;
      }
    }
    residual.push_back(p);
  }

  // Access paths for the null-supplying side (no sort-ahead through it:
  // only the preserved side's order survives the join).
  std::vector<PlanRef> inners;
  if (q.IsBase()) {
    inners = BaseAccessPaths(box, q, inner_local, {});
  } else {
    ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> child_plans,
                            PlanBox(q.input));
    for (PlanRef& child : child_plans) {
      std::vector<Predicate> preds;
      for (const Predicate* p : inner_local) preds.push_back(*p);
      InsertCandidate(&inners, MakeFilter(std::move(child), preds, box));
    }
  }
  if (inners.empty()) {
    return Status::Internal("no access path for outer-join quantifier " +
                            q.alias);
  }
  PlanRef cheapest_inner = *std::min_element(
      inners.begin(), inners.end(),
      [](const PlanRef& a, const PlanRef& b) { return a->cost < b->cost; });

  OrderSpec merge_outer, merge_inner;
  for (const auto& [o, i] : pairs) {
    merge_outer.Append(OrderElement(o));
    merge_inner.Append(OrderElement(i));
  }

  std::vector<PlanRef> result;
  for (const PlanRef& outer : outers) {
    double match_card = std::max(
        1.0, outer->props.cardinality * cheapest_inner->props.cardinality *
                 cost_model_.JoinSelectivity(pairs, query_));
    double out_card = std::max(outer->props.cardinality, match_card);

    if (residual.empty() && !pairs.empty()) {
      if (config_.enable_hash_join) {
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kHashLeftJoin;
        node->join_pairs = pairs;
        node->children = {outer, cheapest_inner};
        node->cost = outer->cost + cheapest_inner->cost +
                     cost_model_.HashJoinCost(outer->props.cardinality,
                                              cheapest_inner->props.cardinality,
                                              out_card);
        node->props = LeftJoinProperties(outer->props, cheapest_inner->props,
                                         pairs, /*preserves=*/false,
                                         out_card);
        InsertCandidate(&result, std::move(node));
      }
      // Merge-left: preserves the outer's order.
      PlanRef sorted_outer = outer;
      bool lo_sat = OrderSatisfied(merge_outer, *outer);
      TraceOrderTest("merge_left_join.outer", merge_outer, *outer, lo_sat);
      if (!lo_sat) {
        OrderSpec s = SortSpecFor(merge_outer, *outer);
        if (s.empty()) s = merge_outer;
        TraceSortDecision("merge_left_join.outer", merge_outer, *outer,
                          /*avoided=*/false, &s);
        sorted_outer = MakeSort(outer, s);
      } else {
        TraceSortDecision("merge_left_join.outer", merge_outer, *outer,
                          /*avoided=*/true, nullptr);
      }
      PlanRef sorted_inner = cheapest_inner;
      bool li_sat = OrderSatisfied(merge_inner, *cheapest_inner);
      TraceOrderTest("merge_left_join.inner", merge_inner, *cheapest_inner,
                     li_sat);
      if (!li_sat) {
        OrderSpec s = SortSpecFor(merge_inner, *cheapest_inner);
        if (s.empty()) s = merge_inner;
        TraceSortDecision("merge_left_join.inner", merge_inner,
                          *cheapest_inner, /*avoided=*/false, &s);
        sorted_inner = MakeSort(cheapest_inner, s);
      } else {
        TraceSortDecision("merge_left_join.inner", merge_inner,
                          *cheapest_inner, /*avoided=*/true, nullptr);
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kMergeLeftJoin;
      node->join_pairs = pairs;
      node->children = {sorted_outer, sorted_inner};
      node->cost = sorted_outer->cost + sorted_inner->cost +
                   cost_model_.MergeJoinCost(sorted_outer->props.cardinality,
                                             sorted_inner->props.cardinality,
                                             out_card);
      node->props = LeftJoinProperties(sorted_outer->props,
                                       sorted_inner->props, pairs,
                                       /*preserves=*/true, out_card);
      InsertCandidate(&result, std::move(node));
    } else {
      // General form: every ON conjunct evaluated inside the join.
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kNaiveLeftJoin;
      node->predicates = step.on_predicates;
      node->children = {outer, cheapest_inner};
      node->cost = outer->cost +
                   cost_model_.NaiveNestedLoopCost(
                       outer->props.cardinality,
                       cheapest_inner->props.cardinality,
                       cheapest_inner->cost);
      node->props = LeftJoinProperties(outer->props, cheapest_inner->props,
                                       pairs, /*preserves=*/true, out_card);
      InsertCandidate(&result, std::move(node));
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// GROUP BY box
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanGroupByBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> children,
                          PlanBox(box->quantifiers[0].input));

  ColumnSet agg_outputs;
  for (const AggregateSpec& a : box->aggregates) agg_outputs.Add(a.output);

  std::vector<PlanRef> out;
  for (const PlanRef& child : children) {
    double card = cost_model_.GroupCardinality(
        box->group_columns, child->props.cardinality, query_);

    bool grouped_input;
    if (config_.enable_order_optimization) {
      OrderContext ctx = child->props.MakeContext(config_.transitive_fds);
      grouped_input =
          info.grouping_requirement.Satisfies(child->props.order, ctx) ||
          child->props.IsOneRecord();
    } else {
      grouped_input = NaiveSatisfied(ConcreteAscending(box->group_columns),
                                     child->props.order);
    }
    if (tracing()) {
      trace_->Add("optimizer", "order.test")
          .Set("site", "groupby")
          .Set("interesting", "GROUP BY grouping")
          .Set("property", child->props.order.ToString(query_.namer()))
          .SetBool("satisfied", grouped_input);
      if (grouped_input) {
        trace_->Add("optimizer", "sort.avoided")
            .Set("site", "groupby")
            .Set("property", child->props.order.ToString(query_.namer()))
            .SetDouble("input_rows", child->props.cardinality);
      }
    }

    if (grouped_input) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamGroupBy;
      node->group_columns = box->group_columns;
      node->aggregates = box->aggregates;
      node->children = {child};
      node->props = GroupByProperties(child->props, box->group_columns,
                                      agg_outputs, /*preserves_order=*/true,
                                      card);
      node->cost = child->cost + cost_model_.StreamGroupByCost(
                                     child->props.cardinality,
                                     box->aggregates.size());
      InsertCandidate(&out, node);
    } else {
      // Sort + streaming aggregation.
      std::vector<OrderSpec> specs;
      if (config_.enable_order_optimization) {
        OrderContext ctx = child->props.MakeContext(config_.transitive_fds);
        for (const OrderSpec& pref : info.preferred_sorts) {
          OrderSpec reduced = ReduceOrder(pref, ctx);
          TraceReduce("groupby.preferred", pref, reduced, ctx);
          if (reduced.empty()) continue;
          bool dup = false;
          for (const OrderSpec& s : specs) dup = dup || s == reduced;
          if (!dup) specs.push_back(reduced);
        }
        if (specs.empty()) {
          OrderSpec fallback = info.grouping_requirement.DefaultSortSpec(ctx);
          if (!fallback.empty()) specs.push_back(fallback);
        }
      } else {
        specs.push_back(ConcreteAscending(box->group_columns));
      }
      for (const OrderSpec& spec : specs) {
        TraceSortDecision("groupby", spec, *child, /*avoided=*/false, &spec);
        PlanRef sorted = MakeSort(child, spec);
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kSortGroupBy;
        node->group_columns = box->group_columns;
        node->aggregates = box->aggregates;
        node->children = {sorted};
        node->props = GroupByProperties(sorted->props, box->group_columns,
                                        agg_outputs, /*preserves_order=*/true,
                                        card);
        node->cost = sorted->cost + cost_model_.StreamGroupByCost(
                                        sorted->props.cardinality,
                                        box->aggregates.size());
        InsertCandidate(&out, node);
      }
      // Hash aggregation.
      if (!config_.enable_hash_grouping) continue;
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kHashGroupBy;
      node->group_columns = box->group_columns;
      node->aggregates = box->aggregates;
      node->children = {child};
      node->props = GroupByProperties(child->props, box->group_columns,
                                      agg_outputs, /*preserves_order=*/false,
                                      card);
      node->cost = child->cost + cost_model_.HashGroupByCost(
                                     child->props.cardinality,
                                     box->aggregates.size());
      InsertCandidate(&out, node);
    }
  }
  plans_retained_ += static_cast<int64_t>(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// UNION box
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanUnionBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  ColumnSet out_cols = box->OutputColumns();

  // Ensures a branch plan produces exactly its box outputs, in order.
  auto projected = [&](PlanRef plan, const QgmBox* branch) -> PlanRef {
    if (plan->kind == OpKind::kProject &&
        plan->projections.size() == branch->outputs.size()) {
      bool same = true;
      for (size_t i = 0; i < branch->outputs.size(); ++i) {
        if (!(plan->projections[i].id == branch->outputs[i].id)) same = false;
      }
      if (same) return plan;
    }
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kProject;
    node->projections = branch->outputs;
    node->children = {plan};
    node->props = ProjectProperties(plan->props, branch->OutputColumns());
    node->props.columns = branch->OutputColumns();
    node->cost = plan->cost + plan->props.cardinality *
                                  cost_model_.params().cpu_eval_cost;
    return node;
  };

  // Per branch: the cheapest plan, and (order optimization only) the
  // cheapest plan delivering the all-columns ascending order that the
  // merge union needs.
  std::vector<PlanRef> cheapest;
  std::vector<PlanRef> ordered;
  double total_card = 0.0;
  for (const Quantifier& q : box->quantifiers) {
    const QgmBox* branch = q.input;
    ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> plans, PlanBox(branch));
    PlanRef best;
    for (const PlanRef& p : plans) {
      if (best == nullptr || p->cost < best->cost) best = p;
    }
    PlanRef best_proj = projected(best, branch);
    cheapest.push_back(best_proj);
    total_card += best_proj->props.cardinality;

    if (config_.enable_order_optimization && box->distinct) {
      std::vector<ColumnId> branch_cols;
      for (const OutputColumn& oc : branch->outputs) {
        branch_cols.push_back(oc.id);
      }
      OrderSpec want = OrderSpec::Ascending(branch_cols);
      PlanRef best_ordered;
      for (const PlanRef& p : plans) {
        if (!OrderSatisfied(want, *p)) continue;
        if (best_ordered == nullptr || p->cost < best_ordered->cost) {
          best_ordered = p;
        }
      }
      if (best_ordered == nullptr) {
        // Sort the cheapest branch on (the reduced form of) the full list.
        OrderSpec spec = SortSpecFor(want, *best);
        if (spec.empty()) spec = want;
        best_ordered = MakeSort(best, spec);
      }
      // A reduced branch sort still yields a fully lexicographically
      // sorted stream: reduction only drops columns that are constant or
      // FD-determined within the preceding prefix (§4.1's proof).
      ordered.push_back(projected(best_ordered, branch));
    }
  }
  std::vector<PlanRef> candidates;

  // Plain concatenation.
  auto union_all = std::make_shared<PlanNode>();
  union_all->kind = OpKind::kUnionAll;
  union_all->projections = box->outputs;
  union_all->children = {cheapest.begin(), cheapest.end()};
  union_all->props.columns = out_cols;
  union_all->props.cardinality = std::max(1.0, total_card);
  union_all->cost = 0;
  for (const PlanRef& c : cheapest) union_all->cost += c->cost;
  union_all->cost += total_card * cost_model_.params().cpu_tuple_cost;

  if (!box->distinct) {
    candidates.push_back(union_all);
  } else {
    double dcard = std::max(1.0, total_card * 0.7);
    // Hash-based duplicate elimination over the concatenation.
    if (config_.enable_hash_grouping) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kHashDistinct;
      node->distinct_columns = out_cols;
      node->children = {union_all};
      node->props = DistinctProperties(union_all->props, out_cols,
                                       /*preserves_order=*/false, dcard);
      node->cost = union_all->cost +
                   cost_model_.HashGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
    // Sort-based: sort the concatenation, then stream.
    {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      PlanRef sorted = MakeSort(union_all, OrderSpec::Ascending(cols));
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamDistinct;
      node->distinct_columns = out_cols;
      node->children = {sorted};
      node->props = DistinctProperties(sorted->props, out_cols,
                                       /*preserves_order=*/true, dcard);
      node->cost = sorted->cost +
                   cost_model_.StreamGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
    // Order-optimized: merge pre-sorted branches, stream-dedupe; the
    // output arrives sorted on all output columns.
    if (config_.enable_order_optimization && !ordered.empty()) {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      auto merge = std::make_shared<PlanNode>();
      merge->kind = OpKind::kMergeUnion;
      merge->projections = box->outputs;
      merge->children = {ordered.begin(), ordered.end()};
      merge->props.columns = out_cols;
      merge->props.cardinality = std::max(1.0, total_card);
      merge->props.order = OrderSpec::Ascending(cols);
      merge->cost = 0;
      for (const PlanRef& c : ordered) merge->cost += c->cost;
      merge->cost += total_card * cost_model_.params().cpu_compare_cost *
                     static_cast<double>(cols.size());
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamDistinct;
      node->distinct_columns = out_cols;
      node->children = {merge};
      node->props = DistinctProperties(merge->props, out_cols,
                                       /*preserves_order=*/true, dcard);
      node->cost = merge->cost +
                   cost_model_.StreamGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
  }

  // Finishing: ORDER BY + LIMIT on the union.
  std::vector<PlanRef> finished;
  for (PlanRef v : candidates) {
    if (!info.required_output.empty()) {
      bool sat = OrderSatisfied(info.required_output, *v);
      TraceOrderTest("union.output", info.required_output, *v, sat);
      if (!sat) {
        OrderSpec spec = SortSpecFor(info.required_output, *v);
        if (spec.empty()) spec = info.required_output;
        TraceSortDecision("union.output", info.required_output, *v,
                          /*avoided=*/false, &spec);
        v = MakeSort(v, spec);
      } else {
        TraceSortDecision("union.output", info.required_output, *v,
                          /*avoided=*/true, nullptr);
      }
    }
    if (box->limit >= 0) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kLimit;
      node->limit = box->limit;
      node->children = {v};
      node->props = v->props;
      node->props.cardinality =
          std::min(v->props.cardinality, static_cast<double>(box->limit));
      node->cost = v->cost;
      v = node;
    }
    InsertCandidate(&finished, std::move(v));
  }
  plans_retained_ += static_cast<int64_t>(finished.size());
  return finished;
}

Result<std::vector<PlanRef>> Planner::PlanBox(const QgmBox* box) {
  // Models an allocation failure while the planner expands candidates.
  ORDOPT_FAULT_POINT("planner.alloc");
  if (box->kind == QgmBox::Kind::kGroupBy) return PlanGroupByBox(box);
  if (box->kind == QgmBox::Kind::kUnion) return PlanUnionBox(box);
  return PlanSelectBox(box);
}

Result<PlanRef> Planner::BuildPlan() {
  ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> candidates,
                          PlanBox(query_.root));
  ORDOPT_CHECK(!candidates.empty());
  PlanRef best = *std::min_element(
      candidates.begin(), candidates.end(),
      [](const PlanRef& a, const PlanRef& b) { return a->cost < b->cost; });
  if (best->kind != OpKind::kProject) {
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kProject;
    node->projections = query_.root->outputs;
    node->children = {best};
    node->props = ProjectProperties(best->props,
                                    query_.root->OutputColumns());
    node->props.columns = query_.root->OutputColumns();
    node->cost = best->cost;
    best = node;
  }
  if (tracing()) {
    trace_->Add("optimizer", "plan.chosen")
        .SetDouble("est_cost", best->cost)
        .SetDouble("est_rows", best->props.cardinality)
        .SetInt("nodes", best->NodeCount())
        .SetInt("plans_generated", plans_generated_)
        .SetInt("plans_retained", plans_retained_);
  }
  return best;
}

}  // namespace ordopt
