#ifndef ORDOPT_OPTIMIZER_MEMO_H_
#define ORDOPT_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "optimizer/plan.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// How the candidate set decides that one plan's order property satisfies
/// another plan's interesting order. The planner supplies its Test Order
/// (reduced, equivalence-aware, memoized) or the naive prefix comparison of
/// the disabled baseline; tests supply deterministic fakes.
class OrderDomination {
 public:
  virtual ~OrderDomination() = default;

  /// True when `plan`'s physical order satisfies `interesting`.
  virtual bool Satisfies(const OrderSpec& interesting,
                         const PlanNode& plan) const = 0;
};

/// One memo group's candidate plans under the (cost, order) domination rule
/// of §5.2: a plan is kept only while no cheaper plan provides an order at
/// least as useful.
///
/// Insert order is part of the contract: candidates iterate in insertion
/// order, the arrival check uses `existing cost <= newcomer cost` (ties
/// favor the incumbent) while eviction uses `newcomer cost <= existing
/// cost`, and Cheapest() returns the *first* strict cost minimum. The
/// planner's choice among equal-cost plans — and therefore the golden plan
/// fingerprints — depends on these tie-breaks; do not "simplify" them.
class CandidateSet {
 public:
  /// Inserts under the domination rule. Returns false (set unchanged) when
  /// an incumbent no costlier than `plan` already satisfies `plan`'s order;
  /// otherwise evicts every incumbent that `plan` dominates the same way
  /// and appends `plan`.
  bool Insert(PlanRef plan, const OrderDomination& dom);

  /// The first strict cost minimum, in insertion order; null when empty.
  PlanRef Cheapest() const;

  bool empty() const { return plans_.size() == 0; }
  size_t size() const { return plans_.size(); }
  const std::vector<PlanRef>& plans() const { return plans_; }

  /// Direct access for enumeration phases that seed or move whole groups
  /// (leaf seeding bypasses domination exactly as the historical DP did).
  std::vector<PlanRef>& mutable_plans() { return plans_; }

 private:
  std::vector<PlanRef> plans_;
};

/// The planner's memo: candidate sets keyed by the quantifier subset
/// (bitmask over the SELECT box's quantifiers) plus the required order
/// property of the group. The bottom-up DP currently requires no particular
/// order from join inputs (sorts are explicit plans inside the groups), so
/// every group today uses an empty required spec; the key shape is what a
/// required-property-driven search (Cascades-style) plugs into.
class Memo {
 public:
  CandidateSet& Group(uint32_t quantifier_mask,
                      const OrderSpec& required = OrderSpec());
  const CandidateSet* FindGroup(uint32_t quantifier_mask,
                                const OrderSpec& required = OrderSpec()) const;

  size_t group_count() const { return groups_.size(); }

 private:
  struct Key {
    uint32_t mask;
    OrderSpec required;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = OrderSpecHash{}(k.required);
      return h ^ (k.mask + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  std::unordered_map<Key, CandidateSet, KeyHash> groups_;
};

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_MEMO_H_
