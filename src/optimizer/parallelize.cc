#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "optimizer/planner.h"

namespace ordopt {

namespace {

bool IsLeafScan(OpKind kind) {
  return kind == OpKind::kTableScan || kind == OpKind::kIndexScan;
}

/// Chain-interior operators: single-child operators a morsel worker can run
/// over its partition with the partition's serial semantics intact. Filter
/// is trivially partitionable; IndexNLJoin probes a read-only base table per
/// outer row, so partitioning the outer stream partitions the join; Sort
/// joins the chain only when the order-preserving merge exchange is enabled
/// — workers then sort their partitions and the exchange merges the sorted
/// streams (parallel run formation, §5.2's sorts become the parallel work).
bool ChainInterior(OpKind kind, bool allow_sort) {
  switch (kind) {
    case OpKind::kFilter:
    case OpKind::kIndexNLJoin:
      return true;
    case OpKind::kSort:
      return allow_sort;
    default:
      return false;
  }
}

/// True when `node` heads a parallelizable chain: a linear path of
/// chain-interior operators ending in a base-table leaf scan.
bool IsChain(const PlanNode* node, bool allow_sort) {
  while (ChainInterior(node->kind, allow_sort)) {
    node = node->children[0].get();
  }
  return IsLeafScan(node->kind);
}

/// The provenance order element every worker-side sort and merge key ends
/// in: ties on the user-visible key cannot span workers (each provenance
/// value — a rid or index-walk ordinal — belongs to exactly one morsel), so
/// the merged stream reproduces the serial row sequence exactly.
OrderElement ProvenanceElement() {
  return OrderElement(ProvenanceColumnId(), SortDirection::kAscending);
}

/// Deep-copies the chain for execution inside exchange workers: the leaf
/// scan becomes a morsel driver that emits the provenance column, and every
/// Sort's specification is extended with the provenance tie-break so the
/// worker-local sort equals the serial sort restricted to the partition
/// (the serial SortOp breaks ties by input order, which *is* provenance
/// order). `merge_spec` receives the topmost Sort's extended spec — the
/// order the chain's output stream actually has, hence the exchange's merge
/// key; it stays untouched for sortless chains.
PlanRef CloneChainForWorkers(const PlanNode* node, bool allow_sort,
                             bool* saw_sort, OrderSpec* merge_spec) {
  auto clone = std::make_shared<PlanNode>(*node);
  if (IsLeafScan(node->kind)) {
    clone->morsel_driver = true;
    clone->emit_provenance = true;
    return clone;
  }
  if (node->kind == OpKind::kSort) {
    OrderSpec extended = node->sort_spec;
    extended.Append(ProvenanceElement());
    clone->sort_spec = extended;
    if (!*saw_sort) {  // top-down walk: the first Sort seen is the topmost
      *saw_sort = true;
      *merge_spec = std::move(extended);
    }
  }
  clone->children = {CloneChainForWorkers(node->children[0].get(), allow_sort,
                                          saw_sort, merge_spec)};
  return clone;
}

}  // namespace

PlanRef Planner::Parallelize(PlanRef plan) const {
  const bool allow_sort = config_.parallel_merge_exchange;
  const int workers =
      std::clamp(config_.parallel_workers, 1, 64);
  if (workers <= 1) return plan;

  // A maximal chain: `plan` heads one, and the caller (recursing only into
  // non-chain nodes) guarantees no eligible parent extends it upward.
  if (IsChain(plan.get(), allow_sort)) {
    bool saw_sort = false;
    OrderSpec merge_spec;
    PlanRef worker_chain =
        CloneChainForWorkers(plan.get(), allow_sort, &saw_sort, &merge_spec);
    auto exchange = std::make_shared<PlanNode>();
    exchange->kind = OpKind::kExchange;
    exchange->exchange_workers = workers;
    // Always the order-preserving merge variant: a sortless chain's worker
    // streams are provenance-monotone (morsels are claimed in ascending
    // ranges), so merging on provenance alone resequences them into the
    // serial emission order, keeping parallel execution deterministic and
    // byte-identical to serial for every consumer above the exchange.
    exchange->exchange_merge = true;
    exchange->sort_spec =
        saw_sort ? merge_spec : OrderSpec({ProvenanceElement()});
    exchange->props = ExchangeProperties(plan->props, /*merge=*/true);
    exchange->children = {std::move(worker_chain)};
    // The new decision site: the chain's order claim crosses the exchange
    // without a serial re-sort — the §4.2 sort-avoidance argument applied
    // to parallel recombination.
    if (!plan->props.order.empty()) {
      TraceSortDecision("exchange.merge", plan->props.order, *plan,
                        /*avoided=*/true, nullptr);
    }
    return exchange;
  }

  // Re-sort-above ablation: with the merge exchange disabled, a Sort whose
  // input chain is parallelized stays serial above the exchange — record
  // the placement the merge variant would have avoided.
  if (!allow_sort && plan->kind == OpKind::kSort &&
      IsChain(plan->children[0].get(), /*allow_sort=*/false)) {
    TraceSortDecision("exchange.resort", plan->sort_spec,
                      *plan->children[0], /*avoided=*/false, &plan->sort_spec);
  }

  // Not a chain head: recurse into children, sharing untouched subtrees.
  bool changed = false;
  std::vector<PlanRef> children;
  children.reserve(plan->children.size());
  for (const PlanRef& child : plan->children) {
    PlanRef parallelized = Parallelize(child);
    changed = changed || parallelized.get() != child.get();
    children.push_back(std::move(parallelized));
  }
  if (!changed) return plan;
  auto clone = std::make_shared<PlanNode>(*plan);
  clone->children = std::move(children);
  return clone;
}

}  // namespace ordopt
