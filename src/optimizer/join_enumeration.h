#ifndef ORDOPT_OPTIMIZER_JOIN_ENUMERATION_H_
#define ORDOPT_OPTIMIZER_JOIN_ENUMERATION_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "optimizer/planner.h"

namespace ordopt {

/// Per-SELECT-box state shared by leaf seeding and join enumeration:
/// quantifier column sets, predicate classification (local / multi-
/// quantifier / deferred past an outer join), the capped sort-ahead list,
/// and the deterministic per-mask cardinality memo.
struct SelectContext {
  const QgmBox* box = nullptr;
  const BoxOrderInfo* info = nullptr;
  /// info->sort_ahead capped at config.max_sort_ahead_orders.
  std::vector<OrderSpec> sort_ahead;
  /// Per-quantifier output column sets.
  std::vector<ColumnSet> qcols;
  /// ColumnId.table -> quantifier position.
  std::unordered_map<int32_t, size_t> owner;
  /// Predicates referencing exactly one quantifier (position-indexed).
  std::vector<std::vector<const Predicate*>> local_preds;
  /// Multi-quantifier predicates eligible for the join DP, with the mask of
  /// quantifiers each references.
  std::vector<const Predicate*> multi_preds;
  std::vector<uint32_t> multi_masks;
  /// Predicates touching an outer join's null-supplying side, deferred to
  /// the last step they reference (index = outer-join step).
  std::vector<std::vector<Predicate>> deferred;
  /// Memoized cardinality per quantifier mask; -1 = not yet computed.
  std::vector<double> mask_card;

  static SelectContext Build(const QgmBox* box, const BoxOrderInfo& info,
                             int max_sort_ahead_orders);

  /// Union of the column sets of the quantifiers in `mask`.
  ColumnSet MaskColumns(uint32_t mask) const;
  /// Mask of quantifiers owning any column in `referenced`.
  uint32_t QuantifierMask(const ColumnSet& referenced) const;
  /// Indexes into multi_preds of predicates fully contained in `mask`.
  std::vector<size_t> ApplicablePreds(uint32_t mask) const;
};

/// One (outer, inner) split of a quantifier mask, with the join predicates
/// classified for this split: `pairs` are the equality pairs crossing it
/// (outer column, inner column), `residual` the other newly applicable
/// predicates, and merge_outer/merge_inner the merge-join sort requirements
/// derived from `pairs`.
struct JoinSplit {
  const SelectContext* ctx = nullptr;
  uint32_t mask = 0;
  uint32_t outer_mask = 0;
  uint32_t inner_mask = 0;
  /// The mask's deterministic output cardinality.
  double out_card = 0.0;
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  std::vector<Predicate> residual;
  OrderSpec merge_outer;
  OrderSpec merge_inner;
};

/// One physical join flavor (hash, merge, cartesian nested-loop, index
/// nested-loop). EnumerateJoins runs every registered strategy, in
/// registration order, for every (outer, inner) candidate pair of every
/// split; each strategy self-guards on its applicability and inserts the
/// plans it builds into the mask's candidate group.
///
/// Strategy order is part of the plan-preservation contract: candidate
/// insertion order drives the equal-cost tie-breaks behind the golden plan
/// fingerprints.
class JoinStrategy {
 public:
  virtual ~JoinStrategy() = default;

  virtual const char* name() const = 0;

  /// Builds this strategy's join plans for one (outer, inner) pair and
  /// inserts them into `out` (the candidate group of `split.mask`). A
  /// strategy that does not apply to the split emits nothing.
  virtual void Emit(Planner& planner, const JoinSplit& split,
                    const PlanRef& outer, const PlanRef& inner,
                    CandidateSet* out) const = 0;

 protected:
  // Bridges into the planner for derived strategies: JoinStrategy is a
  // friend of Planner, but friendship is not inherited.
  static const OptimizerConfig& Config(const Planner& p) { return p.config_; }
  static const CostModel& Cost(const Planner& p) { return p.cost_model_; }
  static const Query& GetQuery(const Planner& p) { return p.query_; }
  static bool Tracing(const Planner& p) { return p.tracing(); }
  static TraceCollector* Trace(const Planner& p) { return p.trace_; }
  static bool Satisfied(const Planner& p, const OrderSpec& interesting,
                        const PlanNode& plan) {
    return p.OrderSatisfied(interesting, plan);
  }
  static OrderSpec SortSpec(const Planner& p, const OrderSpec& interesting,
                            const PlanNode& input) {
    return p.SortSpecFor(interesting, input);
  }
  static PlanRef Sort(Planner& p, PlanRef input, OrderSpec spec) {
    return p.MakeSort(std::move(input), std::move(spec));
  }
  static PlanRef Filter(Planner& p, PlanRef input, std::vector<Predicate> preds,
                        const QgmBox* box) {
    return p.MakeFilter(std::move(input), std::move(preds), box);
  }
  static bool Insert(Planner& p, CandidateSet* out, PlanRef plan) {
    return p.InsertCandidate(out, std::move(plan));
  }
  static void EmitOrderTest(const Planner& p, const char* site,
                            const OrderSpec& interesting, const PlanNode& plan,
                            bool satisfied) {
    p.TraceOrderTest(site, interesting, plan, satisfied);
  }
  static void EmitSortDecision(const Planner& p, const char* site,
                               const OrderSpec& interesting,
                               const PlanNode& input, bool avoided,
                               const OrderSpec* sort_spec) {
    p.TraceSortDecision(site, interesting, input, avoided, sort_spec);
  }

  /// Shared tail of every join emission: derives the join's properties
  /// (preserving the cost the strategy already priced into `node`), adds
  /// the join-pair equivalences, applies the split's residual predicates,
  /// re-pins the mask's deterministic cardinality, and inserts the result.
  void FinishJoin(Planner& planner, const JoinSplit& split,
                  std::shared_ptr<PlanNode> node, const PlanRef& outer,
                  const PlanRef& inner, bool preserves_outer_order,
                  CandidateSet* out) const;
};

/// The built-in strategies — hash, merge, cartesian nested-loop, index
/// nested-loop — in the fixed generation order described above.
const std::vector<std::unique_ptr<JoinStrategy>>& DefaultJoinStrategies();

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_JOIN_ENUMERATION_H_
