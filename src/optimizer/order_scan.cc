#include "optimizer/order_scan.h"

#include <algorithm>

#include "common/macros.h"
#include "properties/plan_properties.h"

namespace ordopt {

OrderScan::OrderScan(const Query& query, bool enable_order_optimization)
    : query_(query), enabled_(enable_order_optimization) {}

const OrderContext& OrderScan::ContextOf(const QgmBox* box) {
  auto it = contexts_.find(box);
  if (it != contexts_.end()) return it->second;

  OrderContext ctx;
  if (box->kind == QgmBox::Kind::kUnion) {
    // Nothing survives a union: branch equivalences/FDs apply to branch
    // rows only, and outputs are fresh columns.
    return contexts_.emplace(box, std::move(ctx)).first->second;
  }
  if (box->kind == QgmBox::Kind::kGroupBy) {
    const QgmBox* child = box->quantifiers[0].input;
    ORDOPT_CHECK(child != nullptr);
    ctx = ContextOf(child);
    // {group columns} functionally determine every box output, and the
    // grouping columns are a key of the grouped stream.
    ColumnSet group_set;
    for (const ColumnId& c : box->group_columns) group_set.Add(c);
    ctx.fds.Add(group_set, box->OutputColumns());
  } else {
    for (const Quantifier& q : box->quantifiers) {
      if (q.IsBase()) {
        PlanProperties base = BaseTableProperties(*q.table, q.id);
        ctx.fds.MergeFrom(base.fds());
      } else {
        const OrderContext& child = ContextOf(q.input);
        ctx.fds.MergeFrom(child.fds);
        ctx.eq.MergeFrom(child.eq);
      }
    }
    // Optimistically assume every predicate of this box will be applied.
    for (const Predicate& p : box->predicates) {
      if (p.kind == Predicate::Kind::kColEqCol) {
        ctx.eq.AddEquivalence(p.left_col, p.right_col);
      } else if (p.kind == Predicate::Kind::kColEqConst) {
        ctx.eq.AddConstant(p.left_col, p.constant);
      }
    }
    // LEFT OUTER JOIN steps: the null-supplying side contributes its FDs
    // and (per §4.1) a one-way FD per equality ON predicate — never an
    // equivalence class, and never its constants.
    for (const OuterJoinStep& step : box->outer_joins) {
      const Quantifier& q = step.quantifier;
      ColumnSet null_side;
      if (q.IsBase()) {
        PlanProperties base = BaseTableProperties(*q.table, q.id);
        ctx.fds.MergeFrom(base.fds());
        null_side = base.columns;
      } else {
        const OrderContext& child = ContextOf(q.input);
        ctx.fds.MergeFrom(child.fds);
        null_side = q.input->OutputColumns();
      }
      for (const Predicate& p : step.on_predicates) {
        if (p.kind != Predicate::Kind::kColEqCol) continue;
        bool l_inner = null_side.Contains(p.left_col);
        bool r_inner = null_side.Contains(p.right_col);
        if (l_inner == r_inner) continue;
        if (l_inner) {
          ctx.fds.Add(ColumnSet{p.right_col}, ColumnSet{p.left_col});
        } else {
          ctx.fds.Add(ColumnSet{p.left_col}, ColumnSet{p.right_col});
        }
      }
    }
  }
  return contexts_.emplace(box, std::move(ctx)).first->second;
}

void OrderScan::AddInterestingOrder(BoxOrderInfo* info, const OrderSpec& spec,
                                    const OrderContext& ctx) {
  OrderSpec reduced = ReduceOrder(spec, ctx);
  if (reduced.empty()) return;
  for (const OrderSpec& existing : info->sort_ahead) {
    if (existing == reduced) return;
  }
  info->sort_ahead.push_back(std::move(reduced));
}

void OrderScan::Visit(const QgmBox* box, std::vector<OrderSpec> pushed) {
  BoxOrderInfo& info = info_[box];
  const OrderContext& ctx = ContextOf(box);
  info.optimistic_ctx = ctx;

  if (box->kind == QgmBox::Kind::kUnion) {
    // A union's outputs are fresh columns; nothing from above survives
    // except positionally. The union's own requirements (ORDER BY on the
    // union, the distinct requirement of UNION) become per-branch
    // interesting orders by output position.
    info.required_output = box->output_order_requirement;
    if (enabled_) {
      if (!info.required_output.empty()) {
        AddInterestingOrder(&info, info.required_output, ctx);
      }
      if (box->distinct) {
        std::vector<ColumnId> cols;
        for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
        info.distinct_requirement = GeneralOrderSpec::ForGrouping(cols);
        std::optional<OrderSpec> covered =
            info.distinct_requirement.CoverConcrete(info.required_output,
                                                    ctx);
        if (covered.has_value()) AddInterestingOrder(&info, *covered, ctx);
      }
    } else if (box->distinct) {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      info.distinct_requirement = GeneralOrderSpec::ForGrouping(cols);
    }
    for (const Quantifier& q : box->quantifiers) {
      std::vector<OrderSpec> down;
      if (enabled_) {
        // Positional remap: union output i -> branch output i.
        for (const OrderSpec& spec : info.sort_ahead) {
          OrderSpec mapped;
          bool ok = true;
          for (const OrderElement& e : spec) {
            int ordinal = box->FindOutput(e.col);
            if (ordinal < 0) {
              ok = false;
              break;
            }
            mapped.Append(OrderElement(
                q.input->outputs[static_cast<size_t>(ordinal)].id, e.dir));
          }
          if (ok && !mapped.empty()) down.push_back(std::move(mapped));
        }
      }
      Visit(q.input, std::move(down));
    }
    return;
  }

  if (box->kind == QgmBox::Kind::kGroupBy) {
    // Input order requirement: the general grouping order (§5.1, §7).
    info.grouping_requirement =
        GeneralOrderSpec::ForGrouping(box->group_columns);

    std::vector<OrderSpec> down;
    if (enabled_) {
      // Cover each pushed-down interesting order with the grouping
      // requirement so one sort below can serve both (§4.3, §7).
      for (const OrderSpec& p : pushed) {
        std::optional<OrderSpec> covered =
            info.grouping_requirement.CoverConcrete(p, ctx);
        if (covered.has_value() && !covered->empty()) {
          down.push_back(*covered);
        }
      }
      OrderSpec fallback = info.grouping_requirement.DefaultSortSpec(ctx);
      if (!fallback.empty()) down.push_back(fallback);
      info.preferred_sorts = down;
    } else {
      // Disabled baseline: the grouping order is taken verbatim, ascending,
      // in the declared column order; nothing is combined or pushed.
      down.clear();
    }
    Visit(box->quantifiers[0].input, std::move(down));
    return;
  }

  // SELECT box.
  info.required_output = box->output_order_requirement;
  if (enabled_) {
    if (!info.required_output.empty()) {
      AddInterestingOrder(&info, info.required_output, ctx);
    }
    if (box->distinct) {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      info.distinct_requirement = GeneralOrderSpec::ForGrouping(cols);
      // A sort that serves both DISTINCT and ORDER BY, when one exists.
      std::optional<OrderSpec> covered =
          info.distinct_requirement.CoverConcrete(info.required_output, ctx);
      if (covered.has_value()) AddInterestingOrder(&info, *covered, ctx);
    }
    for (const OrderSpec& p : pushed) AddInterestingOrder(&info, p, ctx);
  } else if (box->distinct) {
    std::vector<ColumnId> cols;
    for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
    info.distinct_requirement = GeneralOrderSpec::ForGrouping(cols);
  }

  // Push down along quantifier arcs into child boxes, homogenizing to each
  // child's output columns (largest homogenizable prefix, §5.1).
  for (const Quantifier& q : box->quantifiers) {
    if (q.IsBase()) continue;
    std::vector<OrderSpec> down;
    if (enabled_) {
      ColumnSet targets = q.input->OutputColumns();
      for (const OrderSpec& spec : info.sort_ahead) {
        OrderSpec prefix = HomogenizeOrderPrefix(spec, targets, ctx.eq, ctx);
        if (prefix.empty()) continue;
        bool dup = false;
        for (const OrderSpec& existing : down) {
          if (existing == prefix) dup = true;
        }
        if (!dup) down.push_back(std::move(prefix));
      }
    }
    Visit(q.input, std::move(down));
  }
}

void OrderScan::Run() { Visit(query_.root, {}); }

const BoxOrderInfo& OrderScan::info(const QgmBox* box) const {
  auto it = info_.find(box);
  ORDOPT_CHECK_MSG(it != info_.end(), "order scan did not visit box");
  return it->second;
}

}  // namespace ordopt
