#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace ordopt {

namespace {

double Log2(double n) { return n > 2.0 ? std::log2(n) : 1.0; }

// Fraction of [min, max] selected by `op const` on a numeric/date column.
double RangeFraction(BinOp op, const Value& constant, const Value& min_v,
                     const Value& max_v) {
  if (min_v.is_null() || max_v.is_null() || constant.is_null()) return 0.33;
  if (constant.type() == DataType::kString) return 0.33;
  double lo = min_v.AsDouble();
  double hi = max_v.AsDouble();
  double c = constant.AsDouble();
  if (hi <= lo) return 0.5;
  double frac_below = std::clamp((c - lo) / (hi - lo), 0.0, 1.0);
  switch (op) {
    case BinOp::kLt:
    case BinOp::kLe:
      return std::max(frac_below, 0.001);
    case BinOp::kGt:
    case BinOp::kGe:
      return std::max(1.0 - frac_below, 0.001);
    default:
      return 0.33;
  }
}

}  // namespace

double CostModel::DistinctCount(const ColumnId& col, const Query& query) const {
  auto it = query.base_tables.find(col.table);
  if (it == query.base_tables.end()) return 0.0;
  const TableStats& stats = it->second->def().stats;
  size_t ord = static_cast<size_t>(col.column);
  if (ord >= stats.distinct_counts.size()) return 0.0;
  return static_cast<double>(stats.distinct_counts[ord]);
}

double CostModel::Selectivity(const Predicate& pred,
                              const Query& query) const {
  switch (pred.kind) {
    case Predicate::Kind::kColEqConst: {
      // Histogram estimate when available, else uniform over distincts.
      auto it = query.base_tables.find(pred.left_col.table);
      if (params_.use_histograms && it != query.base_tables.end()) {
        const TableStats& stats = it->second->def().stats;
        size_t ord = static_cast<size_t>(pred.left_col.column);
        if (ord < stats.histograms.size() && !stats.histograms[ord].empty()) {
          return std::max(stats.histograms[ord].SelectivityEq(pred.constant),
                          1e-6);
        }
      }
      double distinct = DistinctCount(pred.left_col, query);
      return distinct > 0 ? 1.0 / distinct : pred.default_selectivity;
    }
    case Predicate::Kind::kColCmpConst: {
      auto it = query.base_tables.find(pred.left_col.table);
      if (it == query.base_tables.end()) return pred.default_selectivity;
      const TableStats& stats = it->second->def().stats;
      size_t ord = static_cast<size_t>(pred.left_col.column);
      if (params_.use_histograms && ord < stats.histograms.size() &&
          !stats.histograms[ord].empty()) {
        const EquiDepthHistogram& h = stats.histograms[ord];
        double sel;
        switch (pred.cmp) {
          case BinOp::kLt:
            sel = h.SelectivityLt(pred.constant);
            break;
          case BinOp::kLe:
            sel = h.SelectivityLe(pred.constant);
            break;
          case BinOp::kGt:
            sel = h.SelectivityGt(pred.constant);
            break;
          case BinOp::kGe:
            sel = h.SelectivityGe(pred.constant);
            break;
          default:  // <>
            sel = 1.0 - h.SelectivityEq(pred.constant);
            break;
        }
        return std::clamp(sel, 1e-6, 1.0);
      }
      if (ord >= stats.min_values.size()) return pred.default_selectivity;
      return RangeFraction(pred.cmp, pred.constant, stats.min_values[ord],
                           stats.max_values[ord]);
    }
    case Predicate::Kind::kColEqCol: {
      double dl = DistinctCount(pred.left_col, query);
      double dr = DistinctCount(pred.right_col, query);
      double d = std::max(dl, dr);
      return d > 0 ? 1.0 / d : pred.default_selectivity;
    }
    default:
      return pred.default_selectivity;
  }
}

double CostModel::JoinSelectivity(
    const std::vector<std::pair<ColumnId, ColumnId>>& pairs,
    const Query& query) const {
  double sel = 1.0;
  for (const auto& [l, r] : pairs) {
    double d = std::max(DistinctCount(l, query), DistinctCount(r, query));
    sel *= d > 0 ? 1.0 / d : 0.1;
  }
  return sel;
}

double CostModel::GroupCardinality(const std::vector<ColumnId>& group_columns,
                                   double input_cardinality,
                                   const Query& query) const {
  if (group_columns.empty()) return 1.0;
  double combos = 1.0;
  for (const ColumnId& c : group_columns) {
    double d = DistinctCount(c, query);
    combos *= d > 0 ? d : 10.0;
    if (combos > input_cardinality) break;
  }
  return std::max(1.0, std::min(combos, input_cardinality));
}

double CostModel::TableScanCost(const Table& table) const {
  return static_cast<double>(table.page_count()) * params_.seq_page_cost +
         static_cast<double>(table.row_count()) * params_.cpu_tuple_cost;
}

double CostModel::IndexFullScanCost(const Table& table, bool clustered) const {
  double rows = static_cast<double>(table.row_count());
  double pages = static_cast<double>(table.page_count());
  double cpu = rows * params_.cpu_tuple_cost;
  if (clustered) {
    return pages * params_.seq_page_cost + cpu;
  }
  // Unclustered: every distinct page is eventually fetched randomly; the
  // buffer pool absorbs re-touches (per-page charge capped by table size),
  // and per-row pointer chasing adds CPU.
  double io = std::min(rows, pages) * params_.random_page_cost;
  return io + cpu * 1.2;
}

double CostModel::IndexRangeScanCost(const Table& table, bool clustered,
                                     double rows) const {
  double pages = static_cast<double>(table.page_count());
  double descend = Log2(static_cast<double>(table.row_count())) *
                   params_.cpu_compare_cost;
  double cpu = rows * params_.cpu_tuple_cost;
  double io = clustered
                  ? std::ceil(rows / kRowsPerPage) * params_.seq_page_cost
                  : std::min(rows, pages) * params_.random_page_cost;
  return descend + cpu + io;
}

double CostModel::SortCost(double rows, size_t key_columns) const {
  if (rows < 2) return params_.cpu_tuple_cost;
  // Comparisons scale with key width: wider keys compare more columns.
  double width = 0.5 + 0.5 * static_cast<double>(key_columns);
  double cpu =
      rows * Log2(rows) * params_.cpu_compare_cost * width +
      rows * params_.cpu_tuple_cost;
  if (params_.sort_memory_rows > 0 &&
      rows > static_cast<double>(params_.sort_memory_rows)) {
    double pages = std::ceil(rows / kRowsPerPage);
    cpu += 2.0 * pages * params_.seq_page_cost;  // spill + merge pass
  }
  return cpu;
}

double CostModel::IndexNestedLoopCost(const Table& table, bool clustered,
                                      double outer_rows, double rows_per_probe,
                                      bool ordered_probes) const {
  double descend = outer_rows *
                   Log2(static_cast<double>(table.row_count())) *
                   params_.cpu_compare_cost;
  double matched = outer_rows * rows_per_probe;
  double cpu = matched * params_.cpu_tuple_cost;
  double pages = static_cast<double>(table.page_count());
  double io;
  if (ordered_probes && clustered) {
    // Probes arrive in index order against index-ordered pages: the whole
    // probe sequence sweeps forward once, sequentially (prefetch).
    io = std::min(std::ceil(matched / kRowsPerPage), pages) *
         params_.seq_page_cost;
  } else if (ordered_probes) {
    // Ordered probes on an unclustered index gain nothing: the data pages
    // are scattered regardless of probe order; the buffer pool caps the
    // damage at one random fetch per page.
    io = std::min(matched, pages) * params_.random_page_cost;
  } else if (clustered) {
    // Unordered probes: each probe lands on a random page (its matches are
    // contiguous); the buffer pool caps total fetches at the table size.
    io = std::min(outer_rows * std::ceil(rows_per_probe / kRowsPerPage),
                  pages) *
         params_.random_page_cost;
  } else {
    io = std::min(matched, pages) * params_.random_page_cost;
  }
  return descend + cpu + io;
}

double CostModel::MergeJoinCost(double outer_rows, double inner_rows,
                                double output_rows) const {
  return (outer_rows + inner_rows) * params_.cpu_compare_cost +
         output_rows * params_.cpu_tuple_cost;
}

double CostModel::HashJoinCost(double outer_rows, double inner_rows,
                               double output_rows) const {
  return inner_rows * params_.hash_tuple_cost +
         outer_rows * params_.hash_tuple_cost * 0.5 +
         output_rows * params_.cpu_tuple_cost;
}

double CostModel::NaiveNestedLoopCost(double outer_rows, double inner_rows,
                                      double inner_cost) const {
  return outer_rows * inner_cost +
         outer_rows * inner_rows * params_.cpu_compare_cost;
}

double CostModel::StreamGroupByCost(double rows, size_t agg_count) const {
  return rows * (params_.cpu_compare_cost +
                 params_.cpu_eval_cost * static_cast<double>(agg_count));
}

double CostModel::HashGroupByCost(double rows, size_t agg_count) const {
  return rows * (params_.hash_tuple_cost +
                 params_.cpu_eval_cost * static_cast<double>(agg_count));
}

double CostModel::FilterCost(double rows, size_t predicate_count) const {
  return rows * params_.cpu_eval_cost * static_cast<double>(predicate_count);
}

}  // namespace ordopt
