#ifndef ORDOPT_OPTIMIZER_COST_MODEL_H_
#define ORDOPT_OPTIMIZER_COST_MODEL_H_

#include "qgm/predicate.h"
#include "qgm/qgm.h"
#include "storage/table.h"

namespace ordopt {

/// Tunable unit costs. The absolute values are arbitrary units; the ratios
/// (random vs sequential I/O, CPU vs I/O) are what shape plan choices —
/// they mirror the paper's environment, where ordered (clustered) probes
/// turn random I/O into sequential prefetched I/O (§8.1).
struct CostParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_compare_cost = 0.004;
  double cpu_eval_cost = 0.002;   ///< per predicate/expression evaluation
  double hash_tuple_cost = 0.02;  ///< build+probe overhead per tuple
  /// Rows that fit in sort memory; beyond this a sort spills and pays two
  /// sequential passes over its input pages. This is the same number the
  /// executor's SpillManager enforces (QueryEngine copies it into
  /// SpillConfig), so the plan the optimizer priced is the plan that runs.
  /// Zero or negative disables spilling.
  int64_t sort_memory_rows = 200000;
  /// Use per-column equi-depth histograms for selectivity (falls back to
  /// uniform min/max interpolation and distinct counts when off). Exposed
  /// for the histogram ablation bench.
  bool use_histograms = true;
};

/// Cardinality and cost formulas. Stateless except for the parameters; all
/// estimates flow from base-table statistics.
class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  // ---- selectivity / cardinality ----------------------------------------

  /// Selectivity of one predicate, using distinct counts and min/max when
  /// the column belongs to a base table in `query`.
  double Selectivity(const Predicate& pred, const Query& query) const;

  /// Join selectivity of equality pairs: 1 / max(distinct(l), distinct(r))
  /// per pair, defaulting per Predicate shape.
  double JoinSelectivity(
      const std::vector<std::pair<ColumnId, ColumnId>>& pairs,
      const Query& query) const;

  /// Grouping output cardinality: product of per-column distinct counts
  /// capped by input cardinality.
  double GroupCardinality(const std::vector<ColumnId>& group_columns,
                          double input_cardinality, const Query& query) const;

  /// Distinct count of a column (0 when unknown).
  double DistinctCount(const ColumnId& col, const Query& query) const;

  // ---- operator costs -----------------------------------------------------

  /// Full heap scan: sequential pages + per-tuple CPU.
  double TableScanCost(const Table& table) const;

  /// Full ordered index scan returning `rows` of `table`. Clustered scans
  /// read pages sequentially; unclustered scans pay a random fetch per row.
  double IndexFullScanCost(const Table& table, bool clustered) const;

  /// Index range scan returning `rows` matching rows.
  double IndexRangeScanCost(const Table& table, bool clustered,
                            double rows) const;

  /// Sort of `rows` records with `key_columns` sort columns — the
  /// per-comparison cost scales with key width, which is why reducing to
  /// the minimal sort columns (§4.2) pays off.
  double SortCost(double rows, size_t key_columns) const;

  /// Nested-loop join driving `outer_rows` probes into an index of `table`,
  /// `rows_per_probe` matches each. When `ordered_probes` (the outer stream
  /// is sorted on the probe key — the paper's ordered nested-loop join),
  /// page fetches are sequential and shared between adjacent probes;
  /// otherwise every probe pays random I/O.
  double IndexNestedLoopCost(const Table& table, bool clustered,
                             double outer_rows, double rows_per_probe,
                             bool ordered_probes) const;

  /// Merge join of two sorted streams.
  double MergeJoinCost(double outer_rows, double inner_rows,
                       double output_rows) const;

  /// Hash join (build inner, probe outer).
  double HashJoinCost(double outer_rows, double inner_rows,
                      double output_rows) const;

  /// Naive nested-loop (inner rescanned per outer row).
  double NaiveNestedLoopCost(double outer_rows, double inner_rows,
                             double inner_cost) const;

  /// Streaming (sort-based) group-by over an already-ordered input.
  double StreamGroupByCost(double rows, size_t agg_count) const;

  /// Hash group-by.
  double HashGroupByCost(double rows, size_t agg_count) const;

  /// Filter application.
  double FilterCost(double rows, size_t predicate_count) const;

 private:
  CostParams params_;
};

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_COST_MODEL_H_
