#include "optimizer/plan.h"

#include "common/str_util.h"

namespace ordopt {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kTableScan:
      return "TableScan";
    case OpKind::kIndexScan:
      return "IndexScan";
    case OpKind::kFilter:
      return "Filter";
    case OpKind::kSort:
      return "Sort";
    case OpKind::kMergeJoin:
      return "MergeJoin";
    case OpKind::kIndexNLJoin:
      return "IndexNLJoin";
    case OpKind::kNaiveNLJoin:
      return "NestedLoopJoin";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kMergeLeftJoin:
      return "MergeLeftJoin";
    case OpKind::kHashLeftJoin:
      return "HashLeftJoin";
    case OpKind::kNaiveLeftJoin:
      return "NestedLoopLeftJoin";
    case OpKind::kStreamGroupBy:
      return "StreamGroupBy";
    case OpKind::kSortGroupBy:
      return "SortGroupBy";
    case OpKind::kHashGroupBy:
      return "HashGroupBy";
    case OpKind::kStreamDistinct:
      return "StreamDistinct";
    case OpKind::kHashDistinct:
      return "HashDistinct";
    case OpKind::kProject:
      return "Project";
    case OpKind::kLimit:
      return "Limit";
    case OpKind::kUnionAll:
      return "UnionAll";
    case OpKind::kMergeUnion:
      return "MergeUnion";
    case OpKind::kTopN:
      return "TopN";
    case OpKind::kExchange:
      return "Exchange";
  }
  return "?";
}

std::string NodeLabel(const PlanNode& node_ref, const ColumnNamer& namer) {
  const PlanNode* node = &node_ref;
  std::string label = OpKindName(node->kind);
  std::string* out = &label;
  switch (node->kind) {
    case OpKind::kTableScan:
      *out += StrFormat("(%s)", node->table->name().c_str());
      break;
    case OpKind::kIndexScan: {
      const IndexDef& idx =
          node->table->def().indexes[static_cast<size_t>(node->index_ordinal)];
      *out += StrFormat("(%s.%s%s%s)", node->table->name().c_str(),
                        idx.name.c_str(), node->reverse_scan ? " reverse" : "",
                        idx.clustered ? " clustered" : "");
      if (!node->range_predicates.empty()) {
        std::vector<std::string> preds;
        for (const Predicate& p : node->range_predicates) {
          preds.push_back(p.ToString());
        }
        *out += " range[" + Join(preds, " AND ") + "]";
      }
      break;
    }
    case OpKind::kFilter: {
      std::vector<std::string> preds;
      for (const Predicate& p : node->predicates) preds.push_back(p.ToString());
      *out += "[" + Join(preds, " AND ") + "]";
      break;
    }
    case OpKind::kSort:
      *out += node->sort_spec.ToString(namer);
      break;
    case OpKind::kMergeJoin:
    case OpKind::kHashJoin:
    case OpKind::kIndexNLJoin:
    case OpKind::kNaiveNLJoin:
    case OpKind::kMergeLeftJoin:
    case OpKind::kHashLeftJoin:
    case OpKind::kNaiveLeftJoin: {
      std::vector<std::string> pairs;
      for (const auto& [l, r] : node->join_pairs) {
        std::string ln = namer ? namer(l) : DefaultColumnName(l);
        std::string rn = namer ? namer(r) : DefaultColumnName(r);
        pairs.push_back(ln + " = " + rn);
      }
      if (!pairs.empty()) *out += "[" + Join(pairs, " AND ") + "]";
      if (!node->predicates.empty()) {
        std::vector<std::string> preds;
        for (const Predicate& p : node->predicates) {
          preds.push_back(p.ToString());
        }
        *out += " on[" + Join(preds, " AND ") + "]";
      }
      if (node->kind == OpKind::kIndexNLJoin) {
        const IndexDef& idx = node->table->def()
                                  .indexes[static_cast<size_t>(
                                      node->index_ordinal)];
        *out += StrFormat(" probe %s.%s%s%s", node->table->name().c_str(),
                          idx.name.c_str(), idx.clustered ? " clustered" : "",
                          node->ordered_probes ? " ordered" : "");
      }
      break;
    }
    case OpKind::kStreamGroupBy:
    case OpKind::kSortGroupBy:
    case OpKind::kHashGroupBy: {
      std::vector<std::string> cols;
      for (const ColumnId& c : node->group_columns) {
        cols.push_back(namer ? namer(c) : DefaultColumnName(c));
      }
      *out += "[" + Join(cols, ", ") + "]";
      cols.clear();
      for (const AggregateSpec& a : node->aggregates) cols.push_back(a.name);
      if (!cols.empty()) *out += " aggs[" + Join(cols, ", ") + "]";
      break;
    }
    case OpKind::kStreamDistinct:
    case OpKind::kHashDistinct:
      break;
    case OpKind::kProject: {
      std::vector<std::string> cols;
      for (const OutputColumn& oc : node->projections) cols.push_back(oc.name);
      *out += "[" + Join(cols, ", ") + "]";
      break;
    }
    case OpKind::kLimit:
      *out += StrFormat("(%lld)", static_cast<long long>(node->limit));
      break;
    case OpKind::kUnionAll:
    case OpKind::kMergeUnion:
      *out += StrFormat("(%zu branches)", node->children.size());
      break;
    case OpKind::kTopN:
      *out += node->sort_spec.ToString(namer) +
              StrFormat(" limit %lld", static_cast<long long>(node->limit));
      break;
    case OpKind::kExchange:
      *out += StrFormat("(%s, %d workers)",
                        node->exchange_merge ? "merge" : "union",
                        node->exchange_workers);
      if (node->exchange_merge && !node->sort_spec.empty()) {
        *out += " on" + node->sort_spec.ToString(namer);
      }
      break;
  }
  return label;
}

namespace {

void FingerprintNode(const PlanNode* node, std::string* out) {
  *out += NodeLabel(*node);
  // Distinct columns are not part of the label; include them so two
  // duplicate-elimination plans over different column sets differ.
  if (node->kind == OpKind::kStreamDistinct ||
      node->kind == OpKind::kHashDistinct) {
    std::vector<std::string> cols;
    for (const ColumnId& c : node->distinct_columns) {
      cols.push_back(DefaultColumnName(c));
    }
    *out += "[" + Join(cols, ", ") + "]";
  }
  *out += StrFormat("{cost=%.6g rows=%.6g", node->props.cost,
                    node->props.cardinality);
  if (!node->props.order.empty()) {
    *out += " order" + node->props.order.ToString();
  }
  *out += "}";
  if (!node->children.empty()) {
    *out += "(";
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (i != 0) *out += ", ";
      FingerprintNode(node->children[i].get(), out);
    }
    *out += ")";
  }
}

void Print(const PlanNode* node, const ColumnNamer& namer, int indent,
           std::string* out) {
  *out += std::string(static_cast<size_t>(indent) * 2, ' ');
  *out += NodeLabel(*node, namer);
  *out += StrFormat("  {cost=%.1f rows=%.0f", node->props.cost,
                    node->props.cardinality);
  if (!node->props.order.empty()) {
    *out += " order" + node->props.order.ToString(namer);
  }
  *out += "}\n";
  for (const auto& child : node->children) {
    Print(child.get(), namer, indent + 1, out);
  }
}

}  // namespace

std::string PlanNode::ToString(const ColumnNamer& namer) const {
  std::string out;
  Print(this, namer, 0, &out);
  return out;
}

std::string PlanFingerprint(const PlanNode& node) {
  std::string out;
  FingerprintNode(&node, &out);
  return out;
}

int PlanNode::NodeCount() const {
  int count = 1;
  for (const auto& child : children) count += child->NodeCount();
  return count;
}

bool PlanNode::ContainsKind(OpKind k) const {
  if (kind == k) return true;
  for (const auto& child : children) {
    if (child->ContainsKind(k)) return true;
  }
  return false;
}

void PlanNode::CollectKind(OpKind k, std::vector<const PlanNode*>* out) const {
  if (kind == k) out->push_back(this);
  for (const auto& child : children) child->CollectKind(k, out);
}

}  // namespace ordopt
