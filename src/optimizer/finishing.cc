// Box finishing: DISTINCT / required output order / projection / LIMIT on
// SELECT boxes, and the GROUP BY and UNION box planners.

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "optimizer/planner.h"

namespace ordopt {

namespace {

// Naive order comparison used by the disabled baseline (§8): exact column
// and direction prefix, no reduction, no equivalence classes.
bool NaiveSatisfied(const OrderSpec& interesting, const OrderSpec& property) {
  return interesting.IsPrefixOf(property);
}

}  // namespace

// ---------------------------------------------------------------------------
// SELECT box finishing: DISTINCT, required order, projection
// ---------------------------------------------------------------------------

std::vector<PlanRef> Planner::FinishSelectBox(
    const QgmBox* box, const std::vector<PlanRef>& bases) {
  const BoxOrderInfo& info = order_scan_.info(box);

  bool all_passthrough = true;
  for (const OutputColumn& oc : box->outputs) {
    if (!oc.expr.IsColumn() || oc.expr.column() != oc.id) {
      all_passthrough = false;
    }
  }

  CandidateSet finished;
  for (const PlanRef& base : bases) {
    std::vector<PlanRef> variants = {base};

    if (box->distinct) {
      CandidateSet next;
      ColumnSet out_cols = box->OutputColumns();
      std::vector<ColumnId> out_col_list;
      for (const OutputColumn& oc : box->outputs) {
        out_col_list.push_back(oc.id);
      }
      for (const PlanRef& v : variants) {
        double dcard = std::max(1.0, v->props.cardinality * 0.5);
        bool adjacent;
        if (config_.enable_order_optimization) {
          OrderContext ctx = v->props.Context(config_.transitive_fds);
          adjacent = info.distinct_requirement.Satisfies(v->props.order, ctx) ||
                     v->props.IsOneRecord() ||
                     v->props.keys.IsUniqueOn(out_cols);
        } else {
          adjacent = NaiveSatisfied(OrderSpec::Ascending(out_col_list),
                                    v->props.order);
        }
        if (tracing()) {
          trace_->Add("optimizer", "order.test")
              .Set("site", "distinct")
              .Set("interesting", "DISTINCT grouping")
              .Set("property", v->props.order.ToString(query_.namer()))
              .SetBool("satisfied", adjacent);
          if (adjacent) {
            trace_->Add("optimizer", "sort.avoided")
                .Set("site", "distinct")
                .Set("property", v->props.order.ToString(query_.namer()))
                .SetDouble("input_rows", v->props.cardinality);
          }
        }
        if (adjacent) {
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kStreamDistinct;
          node->distinct_columns = out_cols;
          node->children = {v};
          node->props = DistinctProperties(v->props, out_cols,
                                           /*preserves_order=*/true, dcard);
          node->props.cost = v->props.cost + cost_model_.StreamGroupByCost(
                                                 v->props.cardinality, 0);
          FinalInsert(&next, node);
        }
        if (!adjacent || enumerate_keep_all_) {
          // Sort-based distinct.
          OrderSpec spec;
          if (config_.enable_order_optimization) {
            OrderContext ctx = v->props.Context(config_.transitive_fds);
            std::optional<OrderSpec> covered =
                info.distinct_requirement.CoverConcrete(info.required_output,
                                                        ctx);
            if (tracing() && covered.has_value()) {
              const ColumnNamer namer = query_.namer();
              trace_->Add("optimizer", "order.cover")
                  .Set("site", "distinct")
                  .Set("i1", "DISTINCT grouping")
                  .Set("i2", info.required_output.ToString(namer))
                  .Set("cover", covered->ToString(namer));
            }
            spec = covered.has_value()
                       ? *covered
                       : info.distinct_requirement.DefaultSortSpec(ctx);
          } else {
            spec = OrderSpec::Ascending(out_col_list);
          }
          if (!spec.empty()) {
            TraceSortDecision("distinct", spec, *v, /*avoided=*/false, &spec);
            PlanRef sorted = MakeSort(v, spec);
            auto node = std::make_shared<PlanNode>();
            node->kind = OpKind::kStreamDistinct;
            node->distinct_columns = out_cols;
            node->children = {sorted};
            node->props = DistinctProperties(sorted->props, out_cols, true,
                                             dcard);
            node->props.cost =
                sorted->props.cost +
                cost_model_.StreamGroupByCost(sorted->props.cardinality, 0);
            FinalInsert(&next, node);
          }
          // Hash distinct.
          if (config_.enable_hash_grouping) {
            auto node = std::make_shared<PlanNode>();
            node->kind = OpKind::kHashDistinct;
            node->distinct_columns = out_cols;
            node->children = {v};
            node->props = DistinctProperties(v->props, out_cols,
                                             /*preserves_order=*/false, dcard);
            node->props.cost = v->props.cost + cost_model_.HashGroupByCost(
                                                   v->props.cardinality, 0);
            FinalInsert(&next, node);
          }
        }
      }
      variants = std::move(next.mutable_plans());
    }

    for (const PlanRef& variant : variants) {
      bool output_sat = info.required_output.empty() ||
                        OrderSatisfied(info.required_output, *variant);
      if (!info.required_output.empty()) {
        TraceOrderTest("select.output", info.required_output, *variant,
                       output_sat);
        if (output_sat) {
          TraceSortDecision("select.output", info.required_output, *variant,
                            /*avoided=*/true, nullptr);
        }
      }
      // Plans with the output order enforced, paired with whether a LIMIT
      // is still pending on top. Enumeration mode routes one variant more
      // than one way: the avoided sort's explicit-sort sibling and the
      // Top-N's sort+limit sibling are the §4 alternatives the
      // differential oracle cross-checks against the optimized choice.
      std::vector<std::pair<PlanRef, bool>> routed;
      bool limited = box->limit >= 0;
      if (output_sat) {
        routed.emplace_back(variant, limited);
        if (enumerate_keep_all_ && !info.required_output.empty()) {
          OrderSpec spec = SortSpecFor(info.required_output, *variant);
          if (spec.empty()) spec = info.required_output;
          routed.emplace_back(MakeSort(variant, spec), limited);
        }
      } else {
        OrderSpec spec = SortSpecFor(info.required_output, *variant);
        if (spec.empty()) spec = info.required_output;
        TraceSortDecision("select.output", info.required_output, *variant,
                          /*avoided=*/false, &spec);
        if (limited) {
          // ORDER BY + LIMIT fuse into a bounded-heap Top-N.
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kTopN;
          node->sort_spec = spec;
          node->limit = box->limit;
          node->children = {variant};
          node->props = SortProperties(variant->props, spec);
          node->props.cardinality = std::min(
              variant->props.cardinality, static_cast<double>(box->limit));
          double n = std::max(2.0, variant->props.cardinality);
          double k = std::max(2.0, static_cast<double>(box->limit));
          node->props.cost = variant->props.cost +
                             n * std::log2(std::min(n, k)) *
                                 cost_model_.params().cpu_compare_cost *
                                 (0.5 + 0.5 * static_cast<double>(spec.size()));
          // The Top-N already enforced the limit.
          routed.emplace_back(std::move(node), false);
          if (enumerate_keep_all_) {
            routed.emplace_back(MakeSort(variant, spec), true);
          }
        } else {
          routed.emplace_back(MakeSort(variant, spec), false);
        }
      }
      for (std::pair<PlanRef, bool>& r : routed) {
        PlanRef v = std::move(r.first);
        if (!all_passthrough) {
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kProject;
          node->projections = box->outputs;
          node->children = {v};
          node->props = ProjectProperties(v->props, box->OutputColumns());
          node->props.columns = box->OutputColumns();
          node->props.cost = v->props.cost +
                             v->props.cardinality *
                                 cost_model_.params().cpu_eval_cost *
                                 static_cast<double>(box->outputs.size());
          v = node;
        }
        if (r.second) {
          auto node = std::make_shared<PlanNode>();
          node->kind = OpKind::kLimit;
          node->limit = box->limit;
          node->children = {v};
          node->props = v->props;
          node->props.cardinality = std::min(
              v->props.cardinality, static_cast<double>(box->limit));
          node->props.cost = v->props.cost;
          v = node;
        }
        FinalInsert(&finished, std::move(v));
      }
    }
  }
  plans_retained_ += static_cast<int64_t>(finished.size());
  return std::move(finished.mutable_plans());
}

// ---------------------------------------------------------------------------
// GROUP BY box
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanGroupByBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> children,
                          PlanBox(box->quantifiers[0].input));

  ColumnSet agg_outputs;
  for (const AggregateSpec& a : box->aggregates) agg_outputs.Add(a.output);

  CandidateSet out;
  for (const PlanRef& child : children) {
    double card = cost_model_.GroupCardinality(
        box->group_columns, child->props.cardinality, query_);

    bool grouped_input;
    if (config_.enable_order_optimization) {
      OrderContext ctx = child->props.Context(config_.transitive_fds);
      grouped_input =
          info.grouping_requirement.Satisfies(child->props.order, ctx) ||
          child->props.IsOneRecord();
    } else {
      grouped_input = NaiveSatisfied(OrderSpec::Ascending(box->group_columns),
                                     child->props.order);
    }
    if (tracing()) {
      trace_->Add("optimizer", "order.test")
          .Set("site", "groupby")
          .Set("interesting", "GROUP BY grouping")
          .Set("property", child->props.order.ToString(query_.namer()))
          .SetBool("satisfied", grouped_input);
      if (grouped_input) {
        trace_->Add("optimizer", "sort.avoided")
            .Set("site", "groupby")
            .Set("property", child->props.order.ToString(query_.namer()))
            .SetDouble("input_rows", child->props.cardinality);
      }
    }

    if (grouped_input) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamGroupBy;
      node->group_columns = box->group_columns;
      node->aggregates = box->aggregates;
      node->children = {child};
      node->props = GroupByProperties(child->props, box->group_columns,
                                      agg_outputs, /*preserves_order=*/true,
                                      card);
      node->props.cost = child->props.cost +
                         cost_model_.StreamGroupByCost(
                             child->props.cardinality, box->aggregates.size());
      FinalInsert(&out, node);
    }
    if (!grouped_input || enumerate_keep_all_) {
      // Sort + streaming aggregation.
      std::vector<OrderSpec> specs;
      if (config_.enable_order_optimization) {
        OrderContext ctx = child->props.Context(config_.transitive_fds);
        for (const OrderSpec& pref : info.preferred_sorts) {
          OrderSpec reduced = reduce_cache_.Reduce(pref, ctx);
          TraceReduce("groupby.preferred", pref, reduced, ctx);
          if (reduced.empty()) continue;
          bool dup = false;
          for (const OrderSpec& s : specs) dup = dup || s == reduced;
          if (!dup) specs.push_back(reduced);
        }
        if (specs.empty()) {
          OrderSpec fallback = info.grouping_requirement.DefaultSortSpec(ctx);
          if (!fallback.empty()) specs.push_back(fallback);
        }
      } else {
        specs.push_back(OrderSpec::Ascending(box->group_columns));
      }
      for (const OrderSpec& spec : specs) {
        TraceSortDecision("groupby", spec, *child, /*avoided=*/false, &spec);
        PlanRef sorted = MakeSort(child, spec);
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kSortGroupBy;
        node->group_columns = box->group_columns;
        node->aggregates = box->aggregates;
        node->children = {sorted};
        node->props = GroupByProperties(sorted->props, box->group_columns,
                                        agg_outputs, /*preserves_order=*/true,
                                        card);
        node->props.cost = sorted->props.cost +
                           cost_model_.StreamGroupByCost(
                               sorted->props.cardinality,
                               box->aggregates.size());
        FinalInsert(&out, node);
      }
      // Hash aggregation.
      if (config_.enable_hash_grouping) {
        auto node = std::make_shared<PlanNode>();
        node->kind = OpKind::kHashGroupBy;
        node->group_columns = box->group_columns;
        node->aggregates = box->aggregates;
        node->children = {child};
        node->props = GroupByProperties(child->props, box->group_columns,
                                        agg_outputs,
                                        /*preserves_order=*/false, card);
        node->props.cost = child->props.cost +
                           cost_model_.HashGroupByCost(
                               child->props.cardinality,
                               box->aggregates.size());
        FinalInsert(&out, node);
      }
    }
  }
  plans_retained_ += static_cast<int64_t>(out.size());
  return std::move(out.mutable_plans());
}

// ---------------------------------------------------------------------------
// UNION box
// ---------------------------------------------------------------------------

Result<std::vector<PlanRef>> Planner::PlanUnionBox(const QgmBox* box) {
  const BoxOrderInfo& info = order_scan_.info(box);
  ColumnSet out_cols = box->OutputColumns();

  // Ensures a branch plan produces exactly its box outputs, in order.
  auto projected = [&](PlanRef plan, const QgmBox* branch) -> PlanRef {
    if (plan->kind == OpKind::kProject &&
        plan->projections.size() == branch->outputs.size()) {
      bool same = true;
      for (size_t i = 0; i < branch->outputs.size(); ++i) {
        if (!(plan->projections[i].id == branch->outputs[i].id)) same = false;
      }
      if (same) return plan;
    }
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kProject;
    node->projections = branch->outputs;
    node->children = {plan};
    node->props = ProjectProperties(plan->props, branch->OutputColumns());
    node->props.columns = branch->OutputColumns();
    node->props.cost = plan->props.cost + plan->props.cardinality *
                                              cost_model_.params().cpu_eval_cost;
    return node;
  };

  // Per branch: the cheapest plan, and (order optimization only) the
  // cheapest plan delivering the all-columns ascending order that the
  // merge union needs.
  std::vector<PlanRef> cheapest;
  std::vector<PlanRef> ordered;
  double total_card = 0.0;
  for (const Quantifier& q : box->quantifiers) {
    const QgmBox* branch = q.input;
    ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> plans, PlanBox(branch));
    PlanRef best;
    for (const PlanRef& p : plans) {
      if (best == nullptr || p->props.cost < best->props.cost) best = p;
    }
    PlanRef best_proj = projected(best, branch);
    cheapest.push_back(best_proj);
    total_card += best_proj->props.cardinality;

    if (config_.enable_order_optimization && box->distinct) {
      std::vector<ColumnId> branch_cols;
      for (const OutputColumn& oc : branch->outputs) {
        branch_cols.push_back(oc.id);
      }
      OrderSpec want = OrderSpec::Ascending(branch_cols);
      PlanRef best_ordered;
      for (const PlanRef& p : plans) {
        if (!OrderSatisfied(want, *p)) continue;
        if (best_ordered == nullptr ||
            p->props.cost < best_ordered->props.cost) {
          best_ordered = p;
        }
      }
      if (best_ordered == nullptr) {
        // Sort the cheapest branch on (the reduced form of) the full list.
        OrderSpec spec = SortSpecFor(want, *best);
        if (spec.empty()) spec = want;
        best_ordered = MakeSort(best, spec);
      }
      // A reduced branch sort still yields a fully lexicographically
      // sorted stream: reduction only drops columns that are constant or
      // FD-determined within the preceding prefix (§4.1's proof).
      ordered.push_back(projected(best_ordered, branch));
    }
  }
  CandidateSet candidates;

  // Plain concatenation.
  auto union_all = std::make_shared<PlanNode>();
  union_all->kind = OpKind::kUnionAll;
  union_all->projections = box->outputs;
  union_all->children = {cheapest.begin(), cheapest.end()};
  union_all->props.columns = out_cols;
  union_all->props.cardinality = std::max(1.0, total_card);
  union_all->props.cost = 0;
  for (const PlanRef& c : cheapest) union_all->props.cost += c->props.cost;
  union_all->props.cost += total_card * cost_model_.params().cpu_tuple_cost;

  if (!box->distinct) {
    candidates.mutable_plans().push_back(union_all);
  } else {
    double dcard = std::max(1.0, total_card * 0.7);
    // Hash-based duplicate elimination over the concatenation.
    if (config_.enable_hash_grouping) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kHashDistinct;
      node->distinct_columns = out_cols;
      node->children = {union_all};
      node->props = DistinctProperties(union_all->props, out_cols,
                                       /*preserves_order=*/false, dcard);
      node->props.cost = union_all->props.cost +
                         cost_model_.HashGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
    // Sort-based: sort the concatenation, then stream.
    {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      PlanRef sorted = MakeSort(union_all, OrderSpec::Ascending(cols));
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamDistinct;
      node->distinct_columns = out_cols;
      node->children = {sorted};
      node->props = DistinctProperties(sorted->props, out_cols,
                                       /*preserves_order=*/true, dcard);
      node->props.cost = sorted->props.cost +
                         cost_model_.StreamGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
    // Order-optimized: merge pre-sorted branches, stream-dedupe; the
    // output arrives sorted on all output columns.
    if (config_.enable_order_optimization && !ordered.empty()) {
      std::vector<ColumnId> cols;
      for (const OutputColumn& oc : box->outputs) cols.push_back(oc.id);
      auto merge = std::make_shared<PlanNode>();
      merge->kind = OpKind::kMergeUnion;
      merge->projections = box->outputs;
      merge->children = {ordered.begin(), ordered.end()};
      merge->props.columns = out_cols;
      merge->props.cardinality = std::max(1.0, total_card);
      merge->props.order = OrderSpec::Ascending(cols);
      merge->props.cost = 0;
      for (const PlanRef& c : ordered) merge->props.cost += c->props.cost;
      merge->props.cost += total_card * cost_model_.params().cpu_compare_cost *
                           static_cast<double>(cols.size());
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kStreamDistinct;
      node->distinct_columns = out_cols;
      node->children = {merge};
      node->props = DistinctProperties(merge->props, out_cols,
                                       /*preserves_order=*/true, dcard);
      node->props.cost = merge->props.cost +
                         cost_model_.StreamGroupByCost(total_card, 0);
      InsertCandidate(&candidates, std::move(node));
    }
  }

  // Finishing: ORDER BY + LIMIT on the union.
  CandidateSet finished;
  for (PlanRef v : candidates.plans()) {
    if (!info.required_output.empty()) {
      bool sat = OrderSatisfied(info.required_output, *v);
      TraceOrderTest("union.output", info.required_output, *v, sat);
      if (!sat) {
        OrderSpec spec = SortSpecFor(info.required_output, *v);
        if (spec.empty()) spec = info.required_output;
        TraceSortDecision("union.output", info.required_output, *v,
                          /*avoided=*/false, &spec);
        v = MakeSort(v, spec);
      } else {
        TraceSortDecision("union.output", info.required_output, *v,
                          /*avoided=*/true, nullptr);
      }
    }
    if (box->limit >= 0) {
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kLimit;
      node->limit = box->limit;
      node->children = {v};
      node->props = v->props;
      node->props.cardinality =
          std::min(v->props.cardinality, static_cast<double>(box->limit));
      node->props.cost = v->props.cost;
      v = node;
    }
    FinalInsert(&finished, std::move(v));
  }
  plans_retained_ += static_cast<int64_t>(finished.size());
  return std::move(finished.mutable_plans());
}

}  // namespace ordopt
