#ifndef ORDOPT_OPTIMIZER_PLAN_H_
#define ORDOPT_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "properties/plan_properties.h"
#include "qgm/qgm.h"

namespace ordopt {

/// Physical operator kinds of the execution engine.
enum class OpKind {
  kTableScan,      ///< heap scan of a base table
  kIndexScan,      ///< ordered (optionally range-bounded) index scan
  kFilter,         ///< predicate application
  kSort,           ///< in-memory sort on an OrderSpec
  kMergeJoin,      ///< both inputs sorted on the join key
  kIndexNLJoin,    ///< outer stream drives index probes into a base table
  kNaiveNLJoin,    ///< inner fully rescanned per outer row
  kHashJoin,       ///< build inner, probe outer
  kMergeLeftJoin,  ///< LEFT OUTER merge join (preserves outer order)
  kHashLeftJoin,   ///< LEFT OUTER hash join
  kNaiveLeftJoin,  ///< LEFT OUTER nested loop with arbitrary ON condition
  kStreamGroupBy,  ///< input already grouped (order satisfies grouping)
  kSortGroupBy,    ///< sort below is explicit; this node only aggregates
  kHashGroupBy,
  kStreamDistinct,  ///< input order makes duplicates adjacent
  kHashDistinct,
  kProject,    ///< final projection to output expressions
  kLimit,      ///< emit at most N rows
  kUnionAll,   ///< concatenation of branch streams (positional columns)
  kMergeUnion, ///< order-preserving merge of sorted branch streams
  kTopN,       ///< bounded-heap sort: ORDER BY + LIMIT in one operator
  kExchange,   ///< morsel-parallel workers each run the child subtree;
               ///< merge variant losslessly recombines ordered streams
};

const char* OpKindName(OpKind kind);

struct PlanNode;

/// One-line label for a plan node: the operator kind plus its defining
/// arguments — "IndexScan(emp.emp_pk clustered)", "Sort(a ASC, b DESC)",
/// "MergeJoin[x = y]" — without costs, properties, or children. Shared by
/// PlanNode::ToString and the EXPLAIN ANALYZE renderer.
std::string NodeLabel(const PlanNode& node, const ColumnNamer& namer = nullptr);

/// Canonical single-line serialization of a whole plan tree, used by the
/// golden plan-stability tests: every node's label plus its estimated cost,
/// cardinality, and physical order property, with children nested in
/// parentheses. Columns render via the default "t<i>.c<j>" form so the
/// result is independent of any ColumnNamer, and floats use %.6g so the
/// string is byte-stable for identical estimates.
std::string PlanFingerprint(const PlanNode& node);

/// One node of a physical plan. Immutable after construction; subtrees are
/// shared between the dynamic-programming table's candidate plans.
struct PlanNode {
  OpKind kind;
  std::vector<std::shared_ptr<const PlanNode>> children;

  // -- scans ---------------------------------------------------------------
  const Table* table = nullptr;
  int table_id = -1;      ///< table-instance id (quantifier)
  int index_ordinal = -1; ///< into table->def().indexes
  bool reverse_scan = false;
  /// Range bounds for index scans: predicates over the index's leading
  /// column(s), already reflected in props.cardinality.
  std::vector<Predicate> range_predicates;

  // -- filter / residual ----------------------------------------------------
  std::vector<Predicate> predicates;

  // -- sort -----------------------------------------------------------------
  OrderSpec sort_spec;

  // -- joins ----------------------------------------------------------------
  /// Equality pairs (outer column, inner column).
  std::vector<std::pair<ColumnId, ColumnId>> join_pairs;
  /// True when probes of an index nested-loop join arrive in index order
  /// (the paper's ordered nested-loop join, §8.1).
  bool ordered_probes = false;

  // -- grouping / distinct ---------------------------------------------------
  std::vector<ColumnId> group_columns;
  std::vector<AggregateSpec> aggregates;
  ColumnSet distinct_columns;

  // -- projection -----------------------------------------------------------
  std::vector<OutputColumn> projections;

  // -- limit ------------------------------------------------------------------
  int64_t limit = -1;

  // -- parallel (Parallelize post-pass; see optimizer/parallelize.cc) --------
  /// kExchange: worker count and whether the exchange is the
  /// order-preserving merge variant (merging per-worker streams on
  /// `sort_spec`, which always ends in the hidden provenance column) or the
  /// unordered union variant (sort_spec empty, no order claim).
  int exchange_workers = 0;
  bool exchange_merge = false;
  /// Scans: true when this scan is the chain's morsel driver inside an
  /// exchange worker — it pulls rid/ordinal ranges from the shared
  /// MorselScheduler instead of scanning its full range.
  bool morsel_driver = false;
  /// Scans: append the hidden provenance column (the row's serial emission
  /// ordinal) so downstream sorts and the exchange merge can reproduce the
  /// serial row sequence byte-identically.
  bool emit_provenance = false;

  // -- derived --------------------------------------------------------------
  /// Unified property bundle: columns, order, eq/FD context, keys,
  /// cardinality, and the subtree's estimated cost (props.cost).
  PlanProperties props;

  /// Multi-line indented plan rendering (Figure 7/8-style).
  std::string ToString(const ColumnNamer& namer = nullptr) const;

  /// Number of nodes in this subtree.
  int NodeCount() const;

  /// Depth-first search for an operator kind.
  bool ContainsKind(OpKind k) const;

  /// Collects nodes of kind `k` in preorder.
  void CollectKind(OpKind k, std::vector<const PlanNode*>* out) const;
};

using PlanRef = std::shared_ptr<const PlanNode>;

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_PLAN_H_
