#ifndef ORDOPT_OPTIMIZER_PLANNER_H_
#define ORDOPT_OPTIMIZER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/trace.h"
#include "exec/query_guard.h"
#include "optimizer/cost_model.h"
#include "optimizer/memo.h"
#include "optimizer/order_scan.h"
#include "optimizer/plan.h"
#include "orderopt/reduce_cache.h"
#include "qgm/qgm.h"

namespace ordopt {

struct SelectContext;
class JoinStrategy;
class MetricsRegistry;

/// Optimizer switches. `enable_order_optimization=false` reproduces the
/// paper's §8 baseline ("a modified version of DB2 with order optimization
/// disabled"): order specifications are compared naively column-by-column
/// with no reduction, no equivalence classes, no covers, no homogenization,
/// and no sort-ahead; sorts use the full requested column lists. Index
/// orders are still recognized syntactically, as in System R.
struct OptimizerConfig {
  bool enable_order_optimization = true;
  /// Sort-ahead can be ablated independently (§5.2).
  bool enable_sort_ahead = true;
  /// Use transitive FD closure in reductions instead of the paper's simple
  /// single-FD subset test (§4.1).
  bool transitive_fds = false;
  /// Cap on sort-ahead orders per box (the paper observes n < 3 in
  /// practice, §5.2).
  int max_sort_ahead_orders = 8;
  /// Hash-based alternatives. The library supports them (§1: "always
  /// consider both hash- and order-based operations"), but DB2/CS in 1996
  /// had neither hash join nor hash aggregation — Figures 7/8 and Table 1
  /// are reproduced with both disabled ("DB2/CS engine profile").
  bool enable_hash_join = true;
  bool enable_hash_grouping = true;
  CostParams cost_params;
  /// Execution guardrails: QueryEngine::Run enforces these per query
  /// (deadline, scan/output caps, buffered-row/byte caps). Default:
  /// unlimited.
  QueryLimits limits;
  /// Directory for external-sort run files. Empty resolves to
  /// $ORDOPT_TMPDIR, then the system temp directory. The row budget that
  /// triggers spilling is cost_params.sort_memory_rows — one knob for
  /// the cost model and the executor.
  std::string spill_temp_dir;
  /// Retry policy for spill-file I/O (bounded attempts, deterministic
  /// backoff) before a flaky write/read degrades to a clean error.
  RetryPolicy spill_retry;
  /// Observability. kOff records nothing; kOptimizer records planner
  /// decision events (order reduced, sort avoided/placed, covers,
  /// homogenizations, sort-ahead candidates); kFull additionally collects
  /// per-operator execution stats. EXPLAIN ANALYZE and a set trace path
  /// both force kFull for that query.
  TraceLevel trace_level = TraceLevel::kOff;
  /// When non-empty, the engine writes the query's event stream (plus
  /// per-operator stats and final metrics) to this path as line-delimited
  /// JSON after execution. The ORDOPT_TRACE environment variable supplies
  /// a default when this is empty.
  std::string trace_path;
  /// Runtime order verification: execute every query with an OrderCheckOp
  /// above each operator whose plan properties claim a non-empty order or
  /// key property, failing the query with kInternal on the first violated
  /// claim (see exec/order_check.h). The ORDOPT_VERIFY_ORDERS environment
  /// variable (any non-empty value except "0") supplies a default when
  /// this is false.
  bool verify_orders = false;
  /// Rows per execution batch (ExecContext::batch_rows). 1 degenerates to
  /// single-row batches through the same columnar code path. <= 0 is
  /// clamped to 1.
  int64_t batch_rows = kDefaultBatchRows;
  /// Legacy row-at-a-time execution (ExecContext::row_shim): operators
  /// with columnar kernels pull children through the Next(Row*) shim and
  /// evaluate row-wise, materializing a Row at every operator boundary.
  /// Implies batch_rows = 1. The baseline of the batch-size sweep and the
  /// batch-vs-row differential suite; never the default.
  bool row_shim_exec = false;
  /// Set by the QueryService when it admits a query in degraded mode
  /// (shared-memory-budget occupancy over the high-water mark): the
  /// service has already reduced cost_params.sort_memory_rows so sorts
  /// spill earlier; the engine only *reports* the mode — the result's
  /// `degraded` flag, a `service.degraded` trace event, and an EXPLAIN
  /// ANALYZE summary line — so operators can see which runs were squeezed.
  bool degraded_mode = false;
  /// When non-null, the engine records per-query series here after every
  /// run: planning/execution time histograms (`engine.plan_us`,
  /// `engine.exec_us`), spill activity (`engine.spill_runs`,
  /// `engine.spill_bytes`), and guard consumption high-water histograms
  /// (`engine.buffered_rows_peak`, `engine.buffered_bytes_peak`). The
  /// registry must outlive every query run under this config; null (the
  /// default) records nothing and costs nothing.
  MetricsRegistry* metrics = nullptr;
  /// Morsel-parallel execution (src/exec/parallel/): number of worker
  /// threads per exchange. 1 (the default) plans and executes exactly as
  /// before — the Parallelize post-pass never runs and plan fingerprints
  /// are byte-identical. >1 wraps each parallelizable scan chain of the
  /// chosen plan in an Exchange operator whose workers split the leaf scan
  /// into morsels. Clamped to [1, 64].
  int parallel_workers = 1;
  /// When true (default), a chain that contains a Sort is parallelized
  /// through the *order-preserving merge* exchange: workers sort their
  /// partitions and the exchange merges the sorted streams, so the Sort's
  /// order claim survives the exchange and no serial re-sort is needed
  /// (sort.avoided at site exchange.merge). When false, Sorts are excluded
  /// from chains and a serial Sort is re-placed above the unordered
  /// exchange (sort.placed at site exchange.resort) — the ablation that
  /// shows what order-propagation through exchanges buys.
  bool parallel_merge_exchange = true;
  /// Testing-only seam for the plan-space oracle's mutation check: when
  /// non-null, replaces the planner's order-satisfaction test (Test Order /
  /// naive prefix) everywhere it drives decisions — candidate domination,
  /// sort avoidance, stream-vs-sort grouping. Deliberately wrong
  /// implementations let tests prove the differential and runtime oracles
  /// catch the resulting plans. Must outlive the planner. Never set in
  /// production configs.
  const OrderDomination* order_test_override = nullptr;
};

/// Cost-based bottom-up planner (§5.2): walks the QGM box tree, runs
/// System-R dynamic programming over each SELECT box's quantifiers, prunes
/// costlier subplans with comparable properties, tries sort-ahead orders at
/// every level, and finishes each box with distinct / order-requirement /
/// projection operators.
class Planner {
 public:
  /// `trace`, when non-null, receives structured decision events while
  /// planning; it must outlive the planner.
  Planner(const Query& query, OptimizerConfig config = OptimizerConfig(),
          TraceCollector* trace = nullptr);

  /// Plans the whole query; the returned plan's root is a Project with the
  /// query's output columns.
  Result<PlanRef> BuildPlan();

  /// Plan-space enumeration for the differential oracle: every candidate
  /// that survived (cost, order) domination at the root group, each
  /// finished with the query's output projection exactly as BuildPlan
  /// finishes its winner. The winner comes first; the rest follow in
  /// enumeration order, truncated to `budget` plans. Every returned plan
  /// must produce the same rows (modulo order the query didn't request) —
  /// the oracle executes them all and fails on any divergence.
  Result<std::vector<PlanRef>> EnumerateAllPlans(size_t budget = 64);

  /// Join-enumeration effort counters (for the §5.2 complexity study).
  int64_t plans_generated() const { return plans_generated_; }
  int64_t plans_retained() const { return plans_retained_; }

  /// Reduce-cache statistics for this planner's optimization run: how many
  /// Reduce/Test Order reductions were served from the memo vs computed.
  int64_t reduce_cache_hits() const { return reduce_cache_.hits(); }
  int64_t reduce_cache_misses() const { return reduce_cache_.misses(); }

 private:
  // Derived strategies reach planner internals through JoinStrategy's
  // protected bridges (friendship is not inherited).
  friend class JoinStrategy;

  /// Adapts this planner's OrderSatisfied (Test Order when order
  /// optimization is enabled, the naive prefix baseline otherwise) to the
  /// CandidateSet domination interface.
  class PlannerDomination : public OrderDomination {
   public:
    explicit PlannerDomination(const Planner* planner) : planner_(planner) {}
    bool Satisfies(const OrderSpec& interesting,
                   const PlanNode& plan) const override {
      return planner_->OrderSatisfied(interesting, plan);
    }

   private:
    const Planner* planner_;
  };

  Result<std::vector<PlanRef>> PlanBox(const QgmBox* box);

  // Wraps a root-group candidate in the query's output Project when it is
  // not one already; shared by BuildPlan and EnumerateAllPlans so every
  // candidate the oracle executes has the chosen plan's output shape.
  PlanRef FinishRootCandidate(PlanRef candidate) const;

  // --- planner.cc: orchestration ------------------------------------------
  Result<std::vector<PlanRef>> PlanSelectBox(const QgmBox* box);

  // --- parallelize.cc ------------------------------------------------------
  // Post-pass over the chosen plan (BuildPlan only — never the enumeration
  // oracle): wraps every maximal parallelizable scan chain in an Exchange,
  // choosing the order-preserving merge variant when the chain's top claims
  // an order and tracing the sort decision at the new site. Identity when
  // config_.parallel_workers <= 1.
  PlanRef Parallelize(PlanRef plan) const;

  // --- finishing.cc --------------------------------------------------------
  Result<std::vector<PlanRef>> PlanGroupByBox(const QgmBox* box);
  Result<std::vector<PlanRef>> PlanUnionBox(const QgmBox* box);
  // DISTINCT, required output order (Sort / Top-N), projection and LIMIT on
  // top of the join-enumeration candidates of a SELECT box.
  std::vector<PlanRef> FinishSelectBox(const QgmBox* box,
                                       const std::vector<PlanRef>& bases);

  // --- join_enumeration.cc -------------------------------------------------
  // System-R DP over quantifier subsets: for every mask (by population
  // count) and every (outer, inner) split, runs each registered
  // JoinStrategy, then tries sort-ahead on the mask's candidate group.
  void EnumerateJoins(SelectContext* sctx, Memo* memo);
  // Deterministic cardinality for a quantifier mask, memoized in
  // `sctx->mask_card` so every plan of the mask prices against the same
  // estimate.
  double MaskCardinality(SelectContext* sctx, uint32_t mask) const;
  // Applies one LEFT OUTER JOIN step on top of the candidate plans for the
  // preserved side, generating merge-left / hash-left / nested-loop-left
  // alternatives with §4.1 outer-join property propagation.
  Result<std::vector<PlanRef>> FoldOuterJoin(const QgmBox* box,
                                             const OuterJoinStep& step,
                                             std::vector<PlanRef> outers);

  // --- access_paths.cc -----------------------------------------------------
  // Leaf access paths for one base-table quantifier (scan, index scans,
  // range scans), with local predicates applied.
  CandidateSet BaseAccessPaths(const QgmBox* box, const Quantifier& q,
                               const std::vector<const Predicate*>& local_preds,
                               const std::vector<OrderSpec>& sort_ahead);
  // Access paths for quantifier `index` of the SELECT box: BaseAccessPaths
  // for a base table, recursive PlanBox + local filters (+ sort-ahead) for
  // a derived quantifier.
  Result<CandidateSet> QuantifierAccessPaths(const QgmBox* box,
                                             const SelectContext& sctx,
                                             size_t index);

  // True when `property` (a plan's physical order) satisfies `interesting`
  // under this config: the paper's Test Order when enabled, a naive exact
  // prefix comparison when disabled.
  bool OrderSatisfied(const OrderSpec& interesting, const PlanNode& plan) const;

  // The sort specification actually used to enforce `interesting`:
  // minimal (reduced) when enabled, verbatim when disabled (§4.2).
  OrderSpec SortSpecFor(const OrderSpec& interesting,
                        const PlanNode& input) const;

  // Adds `plan` to `candidates` under the (cost, order) domination rule —
  // CandidateSet::Insert with this planner's order test — and counts the
  // attempt in plans_generated_. Returns false when the plan was pruned on
  // arrival (dominated by a retained candidate), true when it joined the
  // candidate set.
  bool InsertCandidate(CandidateSet* candidates, PlanRef plan);

  // Insertion used at the *final* (root-facing) candidate sets of the box
  // finishers. Normally identical to InsertCandidate; in enumeration mode
  // (EnumerateAllPlans) it keeps every plan, because after the output
  // order is enforced all finished plans carry the same order property and
  // cost-only domination would collapse the plan space to one winner —
  // exactly the alternatives the differential oracle needs to execute.
  void FinalInsert(CandidateSet* candidates, PlanRef plan);

  PlanRef MakeSort(PlanRef input, OrderSpec spec);
  PlanRef MakeFilter(PlanRef input, std::vector<Predicate> preds,
                     const QgmBox* box);

  // --- planner_trace.cc: trace helpers (no-ops when trace_ is null) --------
  bool tracing() const { return trace_ != nullptr; }
  // Emits order.reduce when reduction changed `interesting`, detailing
  // which elements were head-substituted or removed and why.
  void TraceReduce(const char* site, const OrderSpec& interesting,
                   const OrderSpec& reduced, const OrderContext& octx) const;
  // Emits order.test with the verdict of testing `interesting` against a
  // plan's order property.
  void TraceOrderTest(const char* site, const OrderSpec& interesting,
                      const PlanNode& plan, bool satisfied) const;
  // Emits sort.avoided / sort.placed for an order requirement at `site`.
  void TraceSortDecision(const char* site, const OrderSpec& interesting,
                         const PlanNode& input, bool avoided,
                         const OrderSpec* sort_spec) const;
  // Emits sortahead.candidate (considered) or sortahead.pruned.
  void TraceSortAhead(const char* site, const OrderSpec& spec,
                      const PlanNode& plan, bool retained) const;

  const Query& query_;
  OptimizerConfig config_;
  CostModel cost_model_;
  OrderScan order_scan_;
  TraceCollector* trace_ = nullptr;
  int64_t plans_generated_ = 0;
  int64_t plans_retained_ = 0;
  /// Memoized Reduce/Test Order results keyed by context epoch; mutable
  /// because the const decision helpers (OrderSatisfied, SortSpecFor) are
  /// where memoization pays off.
  mutable ReduceCache reduce_cache_;
  PlannerDomination domination_{this};
  /// True only inside EnumerateAllPlans: FinalInsert keeps every finished
  /// candidate instead of letting cost domination pick one winner.
  bool enumerate_keep_all_ = false;
};

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_PLANNER_H_
