// Trace emission for planner decision sites. Each helper is a no-op without
// a collector, so the untraced planning path costs one null check.

#include "optimizer/planner.h"

#include "common/str_util.h"

namespace ordopt {

namespace {

std::string ColName(const ColumnNamer& namer, const ColumnId& col) {
  return namer ? namer(col) : DefaultColumnName(col);
}

}  // namespace

void Planner::TraceReduce(const char* site, const OrderSpec& interesting,
                          const OrderSpec& reduced,
                          const OrderContext& octx) const {
  if (trace_ == nullptr || reduced == interesting) return;
  // Re-run the reduction with step reporting — only paid when tracing and
  // the spec actually changed.
  std::vector<ReduceStep> steps;
  ReduceOrder(interesting, octx, &steps);
  const ColumnNamer namer = query_.namer();
  TraceEvent& e = trace_->Add("optimizer", "order.reduce");
  e.Set("site", site);
  e.Set("requested", interesting.ToString(namer));
  e.Set("reduced", reduced.ToString(namer));
  std::vector<std::string> detail;
  for (const ReduceStep& s : steps) {
    switch (s.action) {
      case ReduceStep::Action::kKept:
        break;
      case ReduceStep::Action::kHeadSubstituted:
        detail.push_back(ColName(namer, s.original) + "->" +
                         ColName(namer, s.column) + " (eq-class head)");
        break;
      case ReduceStep::Action::kRemovedDetermined:
        detail.push_back(ColName(namer, s.original) +
                         " removed (constant/FD-determined)");
        break;
    }
  }
  if (!detail.empty()) e.Set("steps", Join(detail, "; "));
}

void Planner::TraceOrderTest(const char* site, const OrderSpec& interesting,
                             const PlanNode& plan, bool satisfied) const {
  if (trace_ == nullptr || interesting.empty()) return;
  const ColumnNamer namer = query_.namer();
  trace_->Add("optimizer", "order.test")
      .Set("site", site)
      .Set("interesting", interesting.ToString(namer))
      .Set("property", plan.props.order.ToString(namer))
      .SetBool("satisfied", satisfied);
}

void Planner::TraceSortDecision(const char* site, const OrderSpec& interesting,
                                const PlanNode& input, bool avoided,
                                const OrderSpec* sort_spec) const {
  if (trace_ == nullptr || interesting.empty()) return;
  const ColumnNamer namer = query_.namer();
  if (avoided) {
    // Surface the reduction that let the existing order satisfy the
    // requirement (Test Order reduces internally, so nothing else
    // reports it on this path).
    if (config_.enable_order_optimization) {
      OrderContext octx = input.props.Context(config_.transitive_fds);
      TraceReduce(site, interesting, reduce_cache_.Reduce(interesting, octx),
                  octx);
    }
    trace_->Add("optimizer", "sort.avoided")
        .Set("site", site)
        .Set("interesting", interesting.ToString(namer))
        .Set("property", input.props.order.ToString(namer))
        .SetDouble("input_rows", input.props.cardinality);
    return;
  }
  size_t width = sort_spec != nullptr ? sort_spec->size() : interesting.size();
  TraceEvent& e = trace_->Add("optimizer", "sort.placed");
  e.Set("site", site);
  e.Set("interesting", interesting.ToString(namer));
  if (sort_spec != nullptr) e.Set("spec", sort_spec->ToString(namer));
  e.SetDouble("input_rows", input.props.cardinality);
  e.SetDouble("est_cost", cost_model_.SortCost(input.props.cardinality, width));
}

void Planner::TraceSortAhead(const char* site, const OrderSpec& spec,
                             const PlanNode& plan, bool retained) const {
  if (trace_ == nullptr) return;
  trace_->Add("optimizer",
              retained ? "sortahead.candidate" : "sortahead.pruned")
      .Set("site", site)
      .Set("spec", spec.ToString(query_.namer()))
      .SetDouble("est_cost", plan.props.cost)
      .SetDouble("est_rows", plan.props.cardinality);
}

}  // namespace ordopt
