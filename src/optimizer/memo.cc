#include "optimizer/memo.h"

#include <algorithm>

namespace ordopt {

bool CandidateSet::Insert(PlanRef plan, const OrderDomination& dom) {
  // Dominated by an existing plan?
  for (const PlanRef& existing : plans_) {
    bool cheaper = existing->props.cost <= plan->props.cost;
    if (cheaper && dom.Satisfies(plan->props.order, *existing)) {
      return false;  // pruned (§5.2: costlier subplan, comparable props)
    }
  }
  // Remove plans the newcomer dominates.
  plans_.erase(std::remove_if(plans_.begin(), plans_.end(),
                              [&](const PlanRef& existing) {
                                return plan->props.cost <=
                                           existing->props.cost &&
                                       dom.Satisfies(existing->props.order,
                                                     *plan);
                              }),
               plans_.end());
  plans_.push_back(std::move(plan));
  return true;
}

PlanRef CandidateSet::Cheapest() const {
  if (plans_.empty()) return nullptr;
  return *std::min_element(plans_.begin(), plans_.end(),
                           [](const PlanRef& a, const PlanRef& b) {
                             return a->props.cost < b->props.cost;
                           });
}

CandidateSet& Memo::Group(uint32_t quantifier_mask, const OrderSpec& required) {
  return groups_[Key{quantifier_mask, required}];
}

const CandidateSet* Memo::FindGroup(uint32_t quantifier_mask,
                                    const OrderSpec& required) const {
  auto it = groups_.find(Key{quantifier_mask, required});
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace ordopt
