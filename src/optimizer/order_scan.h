#ifndef ORDOPT_OPTIMIZER_ORDER_SCAN_H_
#define ORDOPT_OPTIMIZER_ORDER_SCAN_H_

#include <unordered_map>
#include <vector>

#include "orderopt/general_order.h"
#include "orderopt/operations.h"
#include "qgm/qgm.h"

namespace ordopt {

/// Per-box results of the order scan (§5.1): the box's own order
/// requirements plus the interesting orders pushed down into it, ready to
/// be used as sort-ahead orders during join enumeration.
struct BoxOrderInfo {
  /// Hard output requirement (ORDER BY): the finished box must deliver it.
  OrderSpec required_output;

  /// GROUP BY boxes: the degrees-of-freedom input requirement (§7). The
  /// planner may still choose hash grouping — this is a requirement only
  /// for the order-based implementation.
  GeneralOrderSpec grouping_requirement;

  /// SELECT boxes with DISTINCT: the general order that makes duplicates
  /// adjacent.
  GeneralOrderSpec distinct_requirement;

  /// GROUP BY boxes: concrete sort specifications worth using when an
  /// explicit grouping sort is needed — covers of the grouping requirement
  /// with orders pushed down from above (so one sort serves both), plus the
  /// canonical fallback.
  std::vector<OrderSpec> preferred_sorts;

  /// Interesting orders usable as sort-ahead orders in this box's join
  /// enumeration: reduced, concrete, deduplicated.
  std::vector<OrderSpec> sort_ahead;

  /// The optimistic reduction context (§5.1): equivalences/constants from
  /// *all* predicates at or below this box and FDs from every base-table
  /// key below it, assuming everything will have been applied.
  OrderContext optimistic_ctx;
};

/// The top-down order scan over the QGM (§5.1). Runs before planning:
/// interesting orders arise from ORDER BY, GROUP BY, DISTINCT (and merge
/// joins, which the planner generates in situ); they are pushed down along
/// quantifier arcs, covered with each box's requirements, and homogenized
/// to each box's columns. Proceeds optimistically: all predicates below a
/// box are assumed applied, and when an order cannot be fully homogenized
/// its largest homogenizable prefix is pushed instead.
class OrderScan {
 public:
  /// `enable_order_optimization=false` reproduces the paper's disabled
  /// baseline: no reduction, no covering, no homogenization, no sort-ahead
  /// orders — requirements are taken verbatim.
  OrderScan(const Query& query, bool enable_order_optimization);

  /// Runs the scan; results via info().
  void Run();

  const BoxOrderInfo& info(const QgmBox* box) const;

 private:
  const OrderContext& ContextOf(const QgmBox* box);
  void Visit(const QgmBox* box, std::vector<OrderSpec> pushed);
  static void AddInterestingOrder(BoxOrderInfo* info, const OrderSpec& spec,
                                  const OrderContext& ctx);

  const Query& query_;
  bool enabled_;
  std::unordered_map<const QgmBox*, BoxOrderInfo> info_;
  std::unordered_map<const QgmBox*, OrderContext> contexts_;
};

}  // namespace ordopt

#endif  // ORDOPT_OPTIMIZER_ORDER_SCAN_H_
