// Leaf access-path generation: heap scans, forward/reverse index scans with
// range-predicate absorption, derived-quantifier plans, and sort-ahead at
// the leaves (§5.2), plus the Sort/Filter node constructors they share with
// the rest of the planner.

#include <algorithm>

#include "common/macros.h"
#include "optimizer/join_enumeration.h"
#include "optimizer/planner.h"

namespace ordopt {

PlanRef Planner::MakeSort(PlanRef input, OrderSpec spec) {
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kSort;
  node->sort_spec = spec;
  node->props = SortProperties(input->props, spec);
  node->props.cost = input->props.cost +
                     cost_model_.SortCost(input->props.cardinality,
                                          spec.size());
  node->children.push_back(std::move(input));
  return node;
}

PlanRef Planner::MakeFilter(PlanRef input, std::vector<Predicate> preds,
                            const QgmBox* box) {
  (void)box;
  if (preds.empty()) return input;
  auto node = std::make_shared<PlanNode>();
  node->kind = OpKind::kFilter;
  node->props = input->props;
  double sel = 1.0;
  for (const Predicate& p : preds) {
    sel *= cost_model_.Selectivity(p, query_);
  }
  // Apply each predicate's equivalence/constant effects; cardinality is
  // scaled once below.
  for (const Predicate& p : preds) {
    ApplyPredicate(&node->props, p, 1.0);
  }
  node->props.cardinality = std::max(1.0, input->props.cardinality * sel);
  node->props.cost = input->props.cost +
                     cost_model_.FilterCost(input->props.cardinality,
                                            preds.size());
  node->predicates = std::move(preds);
  node->children.push_back(std::move(input));
  return node;
}

CandidateSet Planner::BaseAccessPaths(
    const QgmBox* box, const Quantifier& q,
    const std::vector<const Predicate*>& local_preds,
    const std::vector<OrderSpec>& sort_ahead) {
  CandidateSet out;
  const Table& table = *q.table;
  PlanProperties base_props = BaseTableProperties(table, q.id);

  auto apply_locals = [&](PlanRef scan,
                          const std::vector<const Predicate*>& remaining) {
    std::vector<Predicate> preds;
    for (const Predicate* p : remaining) preds.push_back(*p);
    return MakeFilter(std::move(scan), std::move(preds), box);
  };

  // Heap scan.
  {
    auto node = std::make_shared<PlanNode>();
    node->kind = OpKind::kTableScan;
    node->table = &table;
    node->table_id = q.id;
    node->props = base_props;
    node->props.cost = cost_model_.TableScanCost(table);
    InsertCandidate(&out, apply_locals(node, local_preds));
  }

  // Index scans.
  for (size_t i = 0; i < table.def().indexes.size(); ++i) {
    const IndexDef& idx = table.def().indexes[i];
    // The order an index scan provides.
    OrderSpec fwd_order;
    for (size_t k = 0; k < idx.column_ordinals.size(); ++k) {
      fwd_order.Append(OrderElement(ColumnId(q.id, idx.column_ordinals[k]),
                                    idx.directions[k]));
    }
    OrderSpec rev_order;
    for (const OrderElement& e : fwd_order) {
      rev_order.Append(OrderElement(e.col, Reverse(e.dir)));
    }

    // Split local predicates into those the index prefix can absorb as a
    // range (equality chain on leading columns plus at most one comparison
    // on the next) and the rest.
    std::vector<const Predicate*> range_preds;
    std::vector<const Predicate*> residual = local_preds;
    size_t prefix = 0;
    bool range_open = false;
    while (prefix < idx.column_ordinals.size() && !range_open) {
      ColumnId col(q.id, idx.column_ordinals[prefix]);
      const Predicate* taken = nullptr;
      for (const Predicate* p : residual) {
        if (p->kind == Predicate::Kind::kColEqConst && p->left_col == col) {
          taken = p;
          break;
        }
      }
      if (taken == nullptr) {
        for (const Predicate* p : residual) {
          if (p->kind == Predicate::Kind::kColCmpConst &&
              p->left_col == col && p->cmp != BinOp::kNe) {
            taken = p;
            range_open = true;
            break;
          }
        }
      }
      if (taken == nullptr) break;
      range_preds.push_back(taken);
      residual.erase(std::find(residual.begin(), residual.end(), taken));
      if (!range_open) ++prefix;
    }

    double sel = 1.0;
    for (const Predicate* p : range_preds) {
      sel *= cost_model_.Selectivity(*p, query_);
    }
    double range_rows =
        std::max(1.0, static_cast<double>(table.row_count()) * sel);

    for (bool reverse : {false, true}) {
      // Reverse scans are full scans only (the executor does not run range
      // bounds backwards), and only worth generating when some requirement
      // wants the reversed order.
      if (reverse && !range_preds.empty()) continue;
      if (reverse) {
        bool useful = false;
        const OrderSpec& probe = rev_order;
        const BoxOrderInfo& info = order_scan_.info(box);
        for (const OrderSpec& want : info.sort_ahead) {
          if (!want.empty() && !probe.empty() &&
              want.at(0).dir == probe.at(0).dir &&
              want.at(0).col == probe.at(0).col) {
            useful = true;
          }
        }
        if (!info.required_output.empty() && !probe.empty() &&
            info.required_output.at(0) == probe.at(0)) {
          useful = true;
        }
        if (!useful) continue;
      }
      auto node = std::make_shared<PlanNode>();
      node->kind = OpKind::kIndexScan;
      node->table = &table;
      node->table_id = q.id;
      node->index_ordinal = static_cast<int>(i);
      node->reverse_scan = reverse;
      node->props = base_props;
      node->props.order = reverse ? rev_order : fwd_order;
      if (range_preds.empty()) {
        node->props.cost = cost_model_.IndexFullScanCost(table, idx.clustered);
      } else {
        for (const Predicate* p : range_preds) {
          node->range_predicates.push_back(*p);
          ApplyPredicate(&node->props, *p, 1.0);
        }
        node->props.cardinality = range_rows;
        node->props.cost =
            cost_model_.IndexRangeScanCost(table, idx.clustered, range_rows);
      }
      InsertCandidate(&out, apply_locals(node, residual));
    }
  }

  // Sort-ahead at the leaf (§5.2): sort the access on each interesting
  // order homogenizable to this table's columns.
  if (config_.enable_order_optimization && config_.enable_sort_ahead &&
      !sort_ahead.empty() && !out.empty()) {
    PlanRef cheapest = out.Cheapest();
    const OrderContext& octx = order_scan_.info(box).optimistic_ctx;
    ColumnSet targets;
    for (size_t c = 0; c < table.def().columns.size(); ++c) {
      targets.Add(ColumnId(q.id, static_cast<int32_t>(c)));
    }
    for (const OrderSpec& want : sort_ahead) {
      OrderSpec homog = HomogenizeOrderPrefix(want, targets, octx.eq, octx);
      if (homog.empty()) continue;
      if (tracing() && homog != want) {
        trace_->Add("optimizer", "order.homogenize")
            .Set("site", "leaf")
            .Set("requested", want.ToString(query_.namer()))
            .Set("translated", homog.ToString(query_.namer()));
      }
      if (OrderSatisfied(homog, *cheapest)) continue;
      PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
      bool retained = InsertCandidate(&out, sorted);
      TraceSortAhead("leaf", homog, *sorted, retained);
    }
  }
  return out;
}

Result<CandidateSet> Planner::QuantifierAccessPaths(const QgmBox* box,
                                                    const SelectContext& sctx,
                                                    size_t index) {
  const Quantifier& q = box->quantifiers[index];
  if (q.IsBase()) {
    return BaseAccessPaths(box, q, sctx.local_preds[index], sctx.sort_ahead);
  }
  CandidateSet leafs;
  ORDOPT_ASSIGN_OR_RETURN(std::vector<PlanRef> child_plans, PlanBox(q.input));
  for (PlanRef& child : child_plans) {
    std::vector<Predicate> preds;
    for (const Predicate* p : sctx.local_preds[index]) preds.push_back(*p);
    InsertCandidate(&leafs, MakeFilter(std::move(child), preds, box));
  }
  // Sort-ahead over a derived quantifier.
  if (config_.enable_order_optimization && config_.enable_sort_ahead &&
      !leafs.empty()) {
    PlanRef cheapest = leafs.Cheapest();
    for (const OrderSpec& want : sctx.sort_ahead) {
      OrderSpec homog =
          HomogenizeOrderPrefix(want, sctx.qcols[index],
                                sctx.info->optimistic_ctx.eq,
                                sctx.info->optimistic_ctx);
      if (homog.empty() || OrderSatisfied(homog, *cheapest)) continue;
      if (tracing() && homog != want) {
        trace_->Add("optimizer", "order.homogenize")
            .Set("site", "derived")
            .Set("requested", want.ToString(query_.namer()))
            .Set("translated", homog.ToString(query_.namer()));
      }
      PlanRef sorted = MakeSort(cheapest, SortSpecFor(homog, *cheapest));
      bool retained = InsertCandidate(&leafs, sorted);
      TraceSortAhead("derived", homog, *sorted, retained);
    }
  }
  return leafs;
}

}  // namespace ordopt
