#include "orderopt/equivalence.h"

#include <algorithm>

namespace ordopt {

ColumnId EquivalenceClasses::FindRoot(const ColumnId& col) {
  auto it = parent_.find(col);
  if (it == parent_.end()) {
    parent_.emplace(col, col);
    head_.emplace(col, col);
    return col;
  }
  // Path compression (iterative).
  ColumnId root = col;
  while (parent_.at(root) != root) root = parent_.at(root);
  ColumnId walk = col;
  while (parent_.at(walk) != root) {
    ColumnId next = parent_.at(walk);
    parent_[walk] = root;
    walk = next;
  }
  return root;
}

ColumnId EquivalenceClasses::FindRootConst(const ColumnId& col) const {
  auto it = parent_.find(col);
  if (it == parent_.end()) return col;
  ColumnId root = col;
  while (parent_.at(root) != root) root = parent_.at(root);
  return root;
}

void EquivalenceClasses::AddEquivalence(const ColumnId& a, const ColumnId& b) {
  ColumnId ra = FindRoot(a);
  ColumnId rb = FindRoot(b);
  if (ra == rb) return;
  // Union by attaching rb under ra; keep the smallest member as head and a
  // single constant binding.
  parent_[rb] = ra;
  ColumnId new_head = std::min(head_.at(ra), head_.at(rb));
  head_[ra] = new_head;
  head_.erase(rb);
  auto cb = constant_.find(rb);
  if (cb != constant_.end()) {
    // If both sides had constants they must agree at runtime; keep ra's if
    // present, else adopt rb's.
    constant_.emplace(ra, cb->second);
    constant_.erase(rb);
  }
}

void EquivalenceClasses::AddConstant(const ColumnId& col, const Value& value) {
  ColumnId root = FindRoot(col);
  constant_.emplace(root, value);
}

ColumnId EquivalenceClasses::Head(const ColumnId& col) const {
  ColumnId root = FindRootConst(col);
  auto it = head_.find(root);
  return it == head_.end() ? col : it->second;
}

bool EquivalenceClasses::IsConstant(const ColumnId& col) const {
  return constant_.find(FindRootConst(col)) != constant_.end();
}

std::optional<Value> EquivalenceClasses::ConstantValue(
    const ColumnId& col) const {
  auto it = constant_.find(FindRootConst(col));
  if (it == constant_.end()) return std::nullopt;
  return it->second;
}

bool EquivalenceClasses::AreEquivalent(const ColumnId& a,
                                       const ColumnId& b) const {
  if (a == b) return true;
  if (parent_.find(a) == parent_.end() || parent_.find(b) == parent_.end()) {
    return false;
  }
  return FindRootConst(a) == FindRootConst(b);
}

std::vector<ColumnId> EquivalenceClasses::ClassMembers(
    const ColumnId& col) const {
  std::vector<ColumnId> out;
  if (parent_.find(col) == parent_.end()) {
    out.push_back(col);
    return out;
  }
  ColumnId root = FindRootConst(col);
  for (const auto& [c, _] : parent_) {
    if (FindRootConst(c) == root) out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ColumnId> EquivalenceClasses::KnownColumns() const {
  std::vector<ColumnId> out;
  out.reserve(parent_.size());
  for (const auto& [c, _] : parent_) out.push_back(c);
  std::sort(out.begin(), out.end());
  return out;
}

void EquivalenceClasses::MergeFrom(const EquivalenceClasses& other) {
  // Re-play other's classes: for each class, equate all members; re-play
  // constants on heads.
  for (const auto& [c, _] : other.parent_) {
    ColumnId head = other.Head(c);
    if (!(head == c)) AddEquivalence(head, c);
    std::optional<Value> cv = other.ConstantValue(c);
    if (cv.has_value()) AddConstant(c, *cv);
  }
}

void EquivalenceClasses::MergeEquivalencesFrom(
    const EquivalenceClasses& other) {
  for (const auto& [c, _] : other.parent_) {
    ColumnId head = other.Head(c);
    if (!(head == c)) AddEquivalence(head, c);
  }
}

}  // namespace ordopt
