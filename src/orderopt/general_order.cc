#include "orderopt/general_order.h"

#include <algorithm>
#include <unordered_map>

#include "common/str_util.h"

namespace ordopt {

GeneralOrderSpec GeneralOrderSpec::ForGrouping(
    const std::vector<ColumnId>& cols) {
  GeneralOrderSpec out;
  Group g;
  for (const ColumnId& c : cols) g.elements.emplace_back(c);
  if (!g.elements.empty()) out.groups_.push_back(std::move(g));
  return out;
}

GeneralOrderSpec GeneralOrderSpec::FromConcrete(const OrderSpec& spec) {
  GeneralOrderSpec out;
  for (const OrderElement& e : spec) {
    Group g;
    g.elements.emplace_back(e.col, e.dir);
    out.groups_.push_back(std::move(g));
  }
  return out;
}

ColumnSet GeneralOrderSpec::Columns() const {
  ColumnSet out;
  for (const Group& g : groups_) {
    for (const Element& e : g.elements) out.Add(e.col);
  }
  return out;
}

namespace {

// Direction pins keyed by equivalence-class head.
using PinMap = std::unordered_map<ColumnId, SortDirection, ColumnIdHash>;

// The group's columns that still constrain the order: equivalence-class
// heads of non-constant members, deduplicated. Also collects direction pins.
ColumnSet EffectiveColumns(const GeneralOrderSpec::Group& group,
                           const OrderContext& ctx, PinMap* pins) {
  ColumnSet out;
  for (const GeneralOrderSpec::Element& e : group.elements) {
    ColumnId head = ctx.eq.Head(e.col);
    if (ctx.eq.IsConstant(head)) continue;
    out.Add(head);
    if (e.fixed_dir.has_value() && pins != nullptr) {
      pins->emplace(head, *e.fixed_dir);
    }
  }
  return out;
}

bool AllDetermined(const ColumnSet& required, const ColumnSet& by,
                   const OrderContext& ctx) {
  for (const ColumnId& c : required) {
    if (!ctx.Determines(by, c)) return false;
  }
  return true;
}

}  // namespace

bool GeneralOrderSpec::Satisfies(const OrderSpec& property,
                                 const OrderContext& ctx) const {
  OrderSpec op = ReduceOrder(property, ctx);
  PinMap pins;
  ColumnSet cum_required;  // union of processed groups' effective columns
  ColumnSet prefix;        // columns of op[0..pos)
  size_t pos = 0;

  for (const Group& group : groups_) {
    cum_required = cum_required.Union(EffectiveColumns(group, ctx, &pins));
    // Consume property columns until the prefix and the cumulative
    // requirement mutually determine each other; a group of R is contiguous
    // under O exactly when some prefix P of O has P -> R and R -> P.
    while (!AllDetermined(cum_required, prefix, ctx)) {
      if (pos == op.size()) return false;
      const OrderElement& e = op.at(pos);
      // Every consumed column must be determined by the requirement so far,
      // otherwise it splits groups apart.
      if (!ctx.Determines(cum_required, e.col)) return false;
      auto pin = pins.find(e.col);
      if (pin != pins.end() && pin->second != e.dir) return false;
      prefix.Add(e.col);
      ++pos;
    }
  }
  return true;
}

std::optional<OrderSpec> GeneralOrderSpec::CoverConcrete(
    const OrderSpec& concrete, const OrderContext& ctx) const {
  OrderSpec c = ReduceOrder(concrete, ctx);
  PinMap pins;
  OrderSpec result;
  ColumnSet consumed;

  size_t group_idx = 0;
  ColumnSet remaining;  // effective columns of the current group not yet laid
  if (!groups_.empty()) {
    remaining = EffectiveColumns(groups_[0], ctx, &pins);
  }

  auto append_remaining_group = [&]() {
    // Lay the group's leftover columns in canonical (ColumnId) order with
    // pinned or ascending direction.
    for (const ColumnId& col : remaining) {
      auto pin = pins.find(col);
      SortDirection dir =
          pin != pins.end() ? pin->second : SortDirection::kAscending;
      result.Append(OrderElement(col, dir));
      consumed.Add(col);
    }
    remaining = ColumnSet();
  };

  for (const OrderElement& e : c) {
    ColumnId head = ctx.eq.Head(e.col);
    bool placed = false;
    while (!placed) {
      if (remaining.Contains(head)) {
        auto pin = pins.find(head);
        if (pin != pins.end() && pin->second != e.dir) return std::nullopt;
        result.Append(OrderElement(head, e.dir));
        consumed.Add(head);
        remaining.Remove(head);
        placed = true;
      } else if (ctx.Determines(consumed, head)) {
        placed = true;  // redundant given what is already laid down
      } else if (remaining.empty() && group_idx + 1 < groups_.size()) {
        ++group_idx;
        remaining = EffectiveColumns(groups_[group_idx], ctx, &pins);
        // Columns already consumed do not need laying again.
        for (const ColumnId& done : consumed) remaining.Remove(done);
      } else if (remaining.empty() && group_idx + 1 >= groups_.size()) {
        // All groups exhausted: trailing concrete columns refine within the
        // final groups, which is always safe.
        result.Append(OrderElement(head, e.dir));
        consumed.Add(head);
        placed = true;
      } else {
        // The concrete order needs `head` before the current group is
        // exhausted, but `head` is not part of the group: no single order
        // can satisfy both.
        return std::nullopt;
      }
    }
  }

  // Lay down everything the concrete order did not mention.
  append_remaining_group();
  while (group_idx + 1 < groups_.size()) {
    ++group_idx;
    remaining = EffectiveColumns(groups_[group_idx], ctx, &pins);
    for (const ColumnId& done : consumed) remaining.Remove(done);
    append_remaining_group();
  }

  return ReduceOrder(result, ctx);
}

OrderSpec GeneralOrderSpec::DefaultSortSpec(const OrderContext& ctx) const {
  std::optional<OrderSpec> out = CoverConcrete(OrderSpec(), ctx);
  return out.has_value() ? *out : OrderSpec();
}

std::string GeneralOrderSpec::ToString(const ColumnNamer& namer) const {
  std::vector<std::string> group_strs;
  for (const Group& g : groups_) {
    std::vector<std::string> parts;
    for (const Element& e : g.elements) {
      std::string name = namer ? namer(e.col) : DefaultColumnName(e.col);
      if (e.fixed_dir.has_value()) {
        name += *e.fixed_dir == SortDirection::kDescending ? " DESC" : " ASC";
      }
      parts.push_back(std::move(name));
    }
    group_strs.push_back("{" + Join(parts, ", ") + "}");
  }
  return "general[" + Join(group_strs, " then ") + "]";
}

}  // namespace ordopt
