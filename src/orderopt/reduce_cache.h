#ifndef ORDOPT_ORDEROPT_REDUCE_CACHE_H_
#define ORDOPT_ORDEROPT_REDUCE_CACHE_H_

#include <cstdint>
#include <unordered_map>

#include "orderopt/operations.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// Memoizes Reduce Order (and through it Test Order) results across the
/// planner's many decision sites. Reduction is a pure function of
/// (specification, context eq/fds, transitive flag); instead of hashing the
/// context structurally, the cache keys on the context's *epoch* — the
/// identity PlanProperties stamps on each distinct (eq, fds) content (see
/// PlanProperties::Context). Copied properties share an epoch, so the many
/// candidate plans over the same quantifier subset all hit the same
/// entries; a mutated context gets a fresh epoch and simply never collides
/// with stale entries. A context with epoch 0 has unknown identity and
/// bypasses the cache (counted as neither hit nor miss).
///
/// One cache lives per Planner, so entries never outlive the statistics
/// they are charged to; an unbounded map is safe because a single
/// optimization touches at most (contexts x interesting orders) entries.
class ReduceCache {
 public:
  /// ReduceOrder(spec, ctx), memoized per (ctx.epoch, ctx.transitive_fds,
  /// spec).
  OrderSpec Reduce(const OrderSpec& spec, const OrderContext& ctx);

  /// TestOrder(interesting, property, ctx) computed from two memoized
  /// reductions: reduced `interesting` must be empty or a prefix of
  /// reduced `property` (§4.2) — identical semantics, one reduction shared
  /// with any SortSpecFor at the same site.
  bool Test(const OrderSpec& interesting, const OrderSpec& property,
            const OrderContext& ctx);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Key {
    uint64_t epoch;
    bool transitive;
    OrderSpec spec;

    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = OrderSpecHash{}(k.spec);
      h ^= k.epoch + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h * 2 + (k.transitive ? 1 : 0);
    }
  };

  std::unordered_map<Key, OrderSpec, KeyHash> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_REDUCE_CACHE_H_
