#ifndef ORDOPT_ORDEROPT_FD_H_
#define ORDOPT_ORDEROPT_FD_H_

#include <string>
#include <vector>

#include "common/column_id.h"
#include "orderopt/equivalence.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// A functional dependency head -> tail (§4.1): any two records agreeing on
/// every head column also agree on every tail column. Keys are stored as
/// FDs whose tail is the full column list of their stream; `col = const`
/// predicates are *not* stored here — they live in EquivalenceClasses and
/// are treated as empty-headed FDs by the membership tests.
struct FunctionalDependency {
  ColumnSet head;
  ColumnSet tail;

  FunctionalDependency() = default;
  FunctionalDependency(ColumnSet h, ColumnSet t)
      : head(std::move(h)), tail(std::move(t)) {}

  friend bool operator==(const FunctionalDependency&,
                         const FunctionalDependency&) = default;

  std::string ToString(const ColumnNamer& namer = nullptr) const;
};

/// A set of functional dependencies attached to a stream, interpreted
/// modulo an EquivalenceClasses instance: every membership test maps
/// columns through their equivalence-class head, and constant-bound columns
/// behave as determined by the empty set ({} -> {c}, the "empty-headed FD"
/// of §4.1 / [DD92]).
class FDSet {
 public:
  FDSet() = default;

  /// Adds head -> tail. No-op if tail ⊆ head (trivial).
  void Add(ColumnSet head, ColumnSet tail);

  /// Adds a key FD: `key` determines every column in `all_columns`
  /// (callers pass the column list of the key's stream).
  void AddKey(const ColumnSet& key, const ColumnSet& all_columns);

  size_t size() const { return fds_.size(); }
  bool empty() const { return fds_.empty(); }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }

  /// The paper's §4.1 test: B -> {c} iff c ∈ B, or c is constant-bound, or
  /// some stored FD B' -> C has B' ⊆ B (after dropping constant-bound head
  /// columns) and c ∈ C. This is the "simple subset operation" the paper
  /// uses — deliberately not transitive.
  bool Determines(const ColumnSet& b, const ColumnId& c,
                  const EquivalenceClasses& eq) const;

  /// Transitive variant: c ∈ Closure(B). Strictly more powerful; exposed so
  /// reduction can run in either fidelity mode.
  bool DeterminesTransitive(const ColumnSet& b, const ColumnId& c,
                            const EquivalenceClasses& eq) const;

  /// Fixpoint closure of `b` under the stored FDs, modulo equivalence:
  /// the result contains the head of every determined column (plus all
  /// constant-bound columns known to `eq`).
  ColumnSet Closure(const ColumnSet& b, const EquivalenceClasses& eq) const;

  /// Merges another stream's FDs (used at joins).
  void MergeFrom(const FDSet& other);

  std::string ToString(const ColumnNamer& namer = nullptr) const;

 private:
  std::vector<FunctionalDependency> fds_;
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_FD_H_
