#include "orderopt/reduce_cache.h"

namespace ordopt {

OrderSpec ReduceCache::Reduce(const OrderSpec& spec, const OrderContext& ctx) {
  if (ctx.epoch == 0) {
    // Unknown context identity: compute without memoizing.
    return ReduceOrder(spec, ctx);
  }
  Key key{ctx.epoch, ctx.transitive_fds, spec};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  OrderSpec reduced = ReduceOrder(spec, ctx);
  entries_.emplace(std::move(key), reduced);
  return reduced;
}

bool ReduceCache::Test(const OrderSpec& interesting, const OrderSpec& property,
                       const OrderContext& ctx) {
  OrderSpec i = Reduce(interesting, ctx);
  if (i.empty()) return true;  // trivially satisfied (§4.1 end)
  return i.IsPrefixOf(Reduce(property, ctx));
}

}  // namespace ordopt
