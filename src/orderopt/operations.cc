#include "orderopt/operations.h"

#include <algorithm>

namespace ordopt {

OrderSpec ReduceOrder(const OrderSpec& spec, const OrderContext& ctx) {
  return ReduceOrder(spec, ctx, nullptr);
}

OrderSpec ReduceOrder(const OrderSpec& spec, const OrderContext& ctx,
                      std::vector<ReduceStep>* steps) {
  // Step 1 (Figure 2, line 1): rewrite every column as its equivalence-class
  // head, keeping the requested direction.
  std::vector<OrderElement> elems;
  elems.reserve(spec.size());
  for (const OrderElement& e : spec) {
    elems.emplace_back(ctx.eq.Head(e.col), e.dir);
  }

  // Step 2 (lines 2-8): scan backwards; remove c_i when the columns that
  // precede it functionally determine it. Scanning backwards means the
  // preceding set B always reflects columns still present.
  std::vector<bool> removed(elems.size(), false);
  for (size_t i = elems.size(); i-- > 0;) {
    ColumnSet preceding;
    for (size_t j = 0; j < i; ++j) preceding.Add(elems[j].col);
    if (ctx.Determines(preceding, elems[i].col)) removed[i] = true;
  }

  if (steps != nullptr) {
    steps->clear();
    steps->reserve(elems.size());
    for (size_t i = 0; i < elems.size(); ++i) {
      ReduceStep step;
      step.original = spec.at(i).col;
      step.column = elems[i].col;
      if (removed[i]) {
        step.action = ReduceStep::Action::kRemovedDetermined;
      } else if (elems[i].col != spec.at(i).col) {
        step.action = ReduceStep::Action::kHeadSubstituted;
      } else {
        step.action = ReduceStep::Action::kKept;
      }
      steps->push_back(step);
    }
  }

  OrderSpec out;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (!removed[i]) out.Append(elems[i]);
  }
  return out;
}

bool TestOrder(const OrderSpec& interesting, const OrderSpec& property,
               const OrderContext& ctx) {
  OrderSpec i = ReduceOrder(interesting, ctx);
  if (i.empty()) return true;  // trivially satisfied (§4.1 end)
  OrderSpec op = ReduceOrder(property, ctx);
  return i.IsPrefixOf(op);
}

std::optional<OrderSpec> CoverOrder(const OrderSpec& i1, const OrderSpec& i2,
                                    const OrderContext& ctx) {
  OrderSpec r1 = ReduceOrder(i1, ctx);
  OrderSpec r2 = ReduceOrder(i2, ctx);
  // W.l.o.g. make r1 the shorter one (Figure 4, line 2).
  if (r1.size() > r2.size()) std::swap(r1, r2);
  if (r1.IsPrefixOf(r2)) return r2;
  return std::nullopt;
}

namespace {

// Finds a substitute for `col` among `targets` via `eq`: `col` itself if it
// is already a target, otherwise the smallest equivalent target column.
std::optional<ColumnId> SubstituteColumn(const ColumnId& col,
                                         const ColumnSet& targets,
                                         const EquivalenceClasses& eq) {
  if (targets.Contains(col)) return col;
  for (const ColumnId& member : eq.ClassMembers(col)) {  // sorted
    if (targets.Contains(member)) return member;
  }
  return std::nullopt;
}

}  // namespace

std::optional<OrderSpec> HomogenizeOrder(
    const OrderSpec& spec, const ColumnSet& target_columns,
    const EquivalenceClasses& substitution_eq, const OrderContext& ctx) {
  OrderSpec reduced = ReduceOrder(spec, ctx);  // Figure 5, line 1
  OrderSpec out;
  for (const OrderElement& e : reduced) {
    std::optional<ColumnId> sub =
        SubstituteColumn(e.col, target_columns, substitution_eq);
    if (!sub.has_value()) return std::nullopt;
    out.Append(OrderElement(*sub, e.dir));
  }
  return out;
}

OrderSpec HomogenizeOrderPrefix(const OrderSpec& spec,
                                const ColumnSet& target_columns,
                                const EquivalenceClasses& substitution_eq,
                                const OrderContext& ctx) {
  OrderSpec reduced = ReduceOrder(spec, ctx);
  OrderSpec out;
  for (const OrderElement& e : reduced) {
    std::optional<ColumnId> sub =
        SubstituteColumn(e.col, target_columns, substitution_eq);
    if (!sub.has_value()) break;
    out.Append(OrderElement(*sub, e.dir));
  }
  return out;
}

}  // namespace ordopt
