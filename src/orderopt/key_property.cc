#include "orderopt/key_property.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

namespace {

// Growth bound for concatenated keys; redundancy removal usually keeps the
// set far smaller, this is a deterministic backstop.
constexpr size_t kMaxKeys = 16;

std::string SetToString(const ColumnSet& set, const ColumnNamer& namer) {
  std::vector<std::string> parts;
  for (const ColumnId& c : set) {
    parts.push_back(namer ? namer(c) : DefaultColumnName(c));
  }
  return "{" + Join(parts, ", ") + "}";
}

}  // namespace

KeyProperty KeyProperty::OneRecord() {
  KeyProperty out;
  out.keys_.push_back(ColumnSet());
  return out;
}

bool KeyProperty::IsOneRecord() const {
  for (const ColumnSet& k : keys_) {
    if (k.empty()) return true;
  }
  return false;
}

void KeyProperty::AddKey(ColumnSet key) {
  if (std::find(keys_.begin(), keys_.end(), key) != keys_.end()) return;
  keys_.push_back(std::move(key));
  RemoveRedundant();
}

bool KeyProperty::IsUniqueOn(const ColumnSet& cols) const {
  for (const ColumnSet& k : keys_) {
    if (k.IsSubsetOf(cols)) return true;
  }
  return false;
}

void KeyProperty::Simplify(const EquivalenceClasses& eq) {
  for (ColumnSet& key : keys_) {
    ColumnSet simplified;
    for (const ColumnId& c : key) {
      if (eq.IsConstant(c)) continue;  // bound by equality predicate
      simplified.Add(eq.Head(c));
    }
    key = std::move(simplified);
    // An emptied key is the one-record condition; RemoveRedundant below
    // discards everything else ("the entire key property is discarded and a
    // one-record condition is flagged").
  }
  RemoveRedundant();
}

void KeyProperty::Project(const ColumnSet& visible_columns) {
  keys_.erase(std::remove_if(keys_.begin(), keys_.end(),
                             [&](const ColumnSet& k) {
                               return !k.IsSubsetOf(visible_columns);
                             }),
              keys_.end());
}

KeyProperty KeyProperty::PropagateJoin(
    const KeyProperty& left, const KeyProperty& right,
    const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs) {
  ColumnSet left_qualified;   // left columns equated by join predicates
  ColumnSet right_qualified;  // right columns equated by join predicates
  for (const auto& [l, r] : join_pairs) {
    left_qualified.Add(l);
    right_qualified.Add(r);
  }

  // "If any key K of KP2 is fully qualified by predicates in JP ... then the
  // join is n-to-1 and KP1 is propagated."
  bool n_to_one = right.IsUniqueOn(right_qualified);  // each left row: <=1 match
  bool one_to_n = left.IsUniqueOn(left_qualified);    // each right row: <=1 match

  KeyProperty out;
  if (n_to_one) {
    for (const ColumnSet& k : left.keys_) out.AddKey(k);
  }
  if (one_to_n) {
    for (const ColumnSet& k : right.keys_) out.AddKey(k);
  }
  if (!n_to_one && !one_to_n) {
    // All concatenated key pairs K1 . K2.
    for (const ColumnSet& k1 : left.keys_) {
      for (const ColumnSet& k2 : right.keys_) {
        out.AddKey(k1.Union(k2));
      }
    }
  }
  return out;
}

void KeyProperty::RemoveRedundant() {
  // Prefer smaller keys; a key is redundant when some other key is a strict
  // subset (or an equal key earlier in the deterministic order).
  std::sort(keys_.begin(), keys_.end(),
            [](const ColumnSet& a, const ColumnSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  std::vector<ColumnSet> kept;
  for (const ColumnSet& k : keys_) {
    bool subsumed = false;
    for (const ColumnSet& small : kept) {
      if (small.IsSubsetOf(k)) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(k);
  }
  if (kept.size() > kMaxKeys) kept.resize(kMaxKeys);
  keys_ = std::move(kept);
}

std::string KeyProperty::ToString(const ColumnNamer& namer) const {
  if (IsOneRecord()) return "one-record";
  std::vector<std::string> parts;
  for (const ColumnSet& k : keys_) parts.push_back(SetToString(k, namer));
  return "keys[" + Join(parts, ", ") + "]";
}

}  // namespace ordopt
