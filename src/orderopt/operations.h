#ifndef ORDOPT_ORDEROPT_OPERATIONS_H_
#define ORDOPT_ORDEROPT_OPERATIONS_H_

#include <optional>

#include "orderopt/equivalence.h"
#include "orderopt/fd.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// The data-property context an order specification is interpreted in: the
/// equivalence classes and constant bindings from predicates applied to the
/// stream, plus the stream's functional dependencies (§4.1).
struct OrderContext {
  EquivalenceClasses eq;
  FDSet fds;

  /// When true, redundant-column tests use the transitive closure of the
  /// FDs instead of the paper's single-FD subset test. The paper's DB2
  /// implementation uses the simple test ("simple subset operations can be
  /// used on the input FDs"); the closure mode is strictly stronger and is
  /// compared against the simple mode in tests and benches.
  bool transitive_fds = false;

  /// Identity of this context's (eq, fds) content for memoization. Two
  /// contexts with the same nonzero epoch are guaranteed to hold identical
  /// classes and dependencies (PlanProperties assigns epochs and resets
  /// them on mutation). 0 means "unknown identity" and bypasses the
  /// ReduceCache.
  uint64_t epoch = 0;

  bool Determines(const ColumnSet& b, const ColumnId& c) const {
    return transitive_fds ? fds.DeterminesTransitive(b, c, eq)
                          : fds.Determines(b, c, eq);
  }
};

/// What Reduce Order did to one element of the input specification; used
/// by the optimizer trace to explain *why* an order shrank (§4.1).
struct ReduceStep {
  enum class Action {
    kKept,               ///< survived reduction (possibly head-substituted)
    kHeadSubstituted,    ///< rewritten to its equivalence-class head, kept
    kRemovedDetermined,  ///< deleted: preceding columns determine it (an FD,
                         ///< a constant binding, or a duplicate)
  };
  ColumnId original;  ///< column as requested
  ColumnId column;    ///< column after head substitution
  Action action = Action::kKept;
};

/// Reduce Order (§4.1, Figure 2). Rewrites an order specification into
/// canonical form: every column is replaced by its equivalence-class head,
/// then a backward scan deletes each column functionally determined by the
/// columns preceding it (constants and duplicates fall out as special
/// cases). The result may be empty, which is satisfied by any stream.
OrderSpec ReduceOrder(const OrderSpec& spec, const OrderContext& ctx);

/// As above, additionally reporting one ReduceStep per input element when
/// `steps` is non-null (trace instrumentation; cleared first).
OrderSpec ReduceOrder(const OrderSpec& spec, const OrderContext& ctx,
                      std::vector<ReduceStep>* steps);

/// Test Order (§4.2, Figure 3). True iff the stream order property
/// `property` satisfies the interesting order `interesting`: both are
/// reduced, then reduced `interesting` must be empty or a prefix (columns
/// and directions) of reduced `property`.
bool TestOrder(const OrderSpec& interesting, const OrderSpec& property,
               const OrderContext& ctx);

/// Cover Order (§4.3, Figure 4). Combines two interesting orders into one
/// specification `C` such that any order property satisfying `C` satisfies
/// both inputs: after reduction the shorter must be a prefix of the longer,
/// which is returned. nullopt when no cover exists.
std::optional<OrderSpec> CoverOrder(const OrderSpec& i1, const OrderSpec& i2,
                                    const OrderContext& ctx);

/// Homogenize Order (§4.4, Figure 5). Rewrites interesting order `spec`
/// (after reduction under `ctx`) purely in terms of `target_columns`,
/// substituting through `substitution_eq` — which, unlike reduction, may
/// include equivalences from predicates *not yet applied* (§4.4). Any class
/// member may be chosen; we pick deterministically (smallest eligible).
/// nullopt when some column has no equivalent among the targets.
std::optional<OrderSpec> HomogenizeOrder(
    const OrderSpec& spec, const ColumnSet& target_columns,
    const EquivalenceClasses& substitution_eq, const OrderContext& ctx);

/// Longest-prefix variant used by the order scan (§5.1): when `spec` cannot
/// be fully homogenized, returns the homogenization of its largest
/// homogenizable prefix ("in the hope that some FD will make the suffix
/// redundant"). May be empty.
OrderSpec HomogenizeOrderPrefix(const OrderSpec& spec,
                                const ColumnSet& target_columns,
                                const EquivalenceClasses& substitution_eq,
                                const OrderContext& ctx);

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_OPERATIONS_H_
