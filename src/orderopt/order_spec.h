#ifndef ORDOPT_ORDEROPT_ORDER_SPEC_H_
#define ORDOPT_ORDEROPT_ORDER_SPEC_H_

#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/column_id.h"

namespace ordopt {

/// Sort direction of one order column. The paper assumes ascending
/// throughout §4 "without loss of generality"; we carry the direction so
/// ORDER BY ... DESC and §7 direction freedom work end to end.
enum class SortDirection : uint8_t { kAscending, kDescending };

/// Flips ascending <-> descending.
SortDirection Reverse(SortDirection dir);

/// One column of an order specification.
struct OrderElement {
  ColumnId col;
  SortDirection dir = SortDirection::kAscending;

  OrderElement() = default;
  OrderElement(ColumnId c, SortDirection d = SortDirection::kAscending)
      : col(c), dir(d) {}

  friend bool operator==(const OrderElement&, const OrderElement&) = default;
};

/// Maps a ColumnId to a printable name; used by ToString diagnostics.
using ColumnNamer = std::function<std::string(const ColumnId&)>;

/// An order specification: a list of columns in major-to-minor significance,
/// each with a direction. Used both for *order properties* (the physical
/// order a stream actually has) and *interesting orders* (an order some
/// operation would like), exactly as in the paper (§3).
class OrderSpec {
 public:
  OrderSpec() = default;
  OrderSpec(std::initializer_list<OrderElement> elems) : elems_(elems) {}
  explicit OrderSpec(std::vector<OrderElement> elems)
      : elems_(std::move(elems)) {}

  /// Convenience: all-ascending order over `cols`.
  static OrderSpec Ascending(const std::vector<ColumnId>& cols);

  bool empty() const { return elems_.empty(); }
  size_t size() const { return elems_.size(); }
  const std::vector<OrderElement>& elements() const { return elems_; }
  const OrderElement& at(size_t i) const { return elems_[i]; }
  auto begin() const { return elems_.begin(); }
  auto end() const { return elems_.end(); }

  void Append(const OrderElement& e) { elems_.push_back(e); }
  void Truncate(size_t n) {
    if (n < elems_.size()) elems_.resize(n);
  }

  /// The set of columns mentioned (ignoring direction and position).
  ColumnSet Columns() const;

  /// True if this is a prefix of `other` (columns and directions both).
  bool IsPrefixOf(const OrderSpec& other) const;

  /// First `n` elements.
  OrderSpec Prefix(size_t n) const;

  /// "(a.x ASC, b.y DESC)" using `namer` for column names; falls back to
  /// "t<i>.c<j>" without one.
  std::string ToString(const ColumnNamer& namer = nullptr) const;

  friend bool operator==(const OrderSpec&, const OrderSpec&) = default;

 private:
  std::vector<OrderElement> elems_;
};

/// Default "t<i>.c<j>" rendering for a ColumnId.
std::string DefaultColumnName(const ColumnId& col);

/// Hash functor for OrderSpec (columns and directions, order-sensitive),
/// for unordered containers keyed by specifications — e.g. the ReduceCache.
struct OrderSpecHash {
  size_t operator()(const OrderSpec& spec) const {
    size_t h = spec.size();
    for (const OrderElement& e : spec) {
      size_t eh = ColumnIdHash{}(e.col) * 2 +
                  (e.dir == SortDirection::kDescending ? 1 : 0);
      h ^= eh + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_ORDER_SPEC_H_
