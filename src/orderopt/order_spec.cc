#include "orderopt/order_spec.h"

#include "common/str_util.h"

namespace ordopt {

SortDirection Reverse(SortDirection dir) {
  return dir == SortDirection::kAscending ? SortDirection::kDescending
                                          : SortDirection::kAscending;
}

OrderSpec OrderSpec::Ascending(const std::vector<ColumnId>& cols) {
  OrderSpec out;
  for (const ColumnId& c : cols) out.Append(OrderElement(c));
  return out;
}

ColumnSet OrderSpec::Columns() const {
  ColumnSet out;
  for (const OrderElement& e : elems_) out.Add(e.col);
  return out;
}

bool OrderSpec::IsPrefixOf(const OrderSpec& other) const {
  if (elems_.size() > other.elems_.size()) return false;
  for (size_t i = 0; i < elems_.size(); ++i) {
    if (!(elems_[i] == other.elems_[i])) return false;
  }
  return true;
}

OrderSpec OrderSpec::Prefix(size_t n) const {
  OrderSpec out = *this;
  out.Truncate(n);
  return out;
}

std::string DefaultColumnName(const ColumnId& col) {
  return StrFormat("t%d.c%d", col.table, col.column);
}

std::string OrderSpec::ToString(const ColumnNamer& namer) const {
  std::vector<std::string> parts;
  parts.reserve(elems_.size());
  for (const OrderElement& e : elems_) {
    std::string name = namer ? namer(e.col) : DefaultColumnName(e.col);
    if (e.dir == SortDirection::kDescending) name += " DESC";
    parts.push_back(std::move(name));
  }
  return "(" + Join(parts, ", ") + ")";
}

}  // namespace ordopt
