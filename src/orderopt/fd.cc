#include "orderopt/fd.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

namespace {

std::string SetToString(const ColumnSet& set, const ColumnNamer& namer) {
  std::vector<std::string> parts;
  for (const ColumnId& c : set) {
    parts.push_back(namer ? namer(c) : DefaultColumnName(c));
  }
  return "{" + Join(parts, ", ") + "}";
}

// Maps every column of `set` to its equivalence-class head.
ColumnSet MapToHeads(const ColumnSet& set, const EquivalenceClasses& eq) {
  ColumnSet out;
  for (const ColumnId& c : set) out.Add(eq.Head(c));
  return out;
}

// Drops constant-bound columns (they are determined by {}).
ColumnSet DropConstants(const ColumnSet& set, const EquivalenceClasses& eq) {
  ColumnSet out;
  for (const ColumnId& c : set) {
    if (!eq.IsConstant(c)) out.Add(c);
  }
  return out;
}

}  // namespace

std::string FunctionalDependency::ToString(const ColumnNamer& namer) const {
  return SetToString(head, namer) + " -> " + SetToString(tail, namer);
}

void FDSet::Add(ColumnSet head, ColumnSet tail) {
  if (tail.IsSubsetOf(head)) return;  // trivial
  FunctionalDependency fd(std::move(head), std::move(tail));
  // Avoid exact duplicates; keep the set small for the subset scans.
  if (std::find(fds_.begin(), fds_.end(), fd) != fds_.end()) return;
  fds_.push_back(std::move(fd));
}

void FDSet::AddKey(const ColumnSet& key, const ColumnSet& all_columns) {
  Add(key, all_columns);
}

bool FDSet::Determines(const ColumnSet& b, const ColumnId& c,
                       const EquivalenceClasses& eq) const {
  ColumnId c_head = eq.Head(c);
  if (eq.IsConstant(c_head)) return true;  // {} -> {c}
  ColumnSet b_heads = MapToHeads(b, eq);
  if (b_heads.Contains(c_head)) return true;  // trivial {c} -> {c}
  for (const FunctionalDependency& fd : fds_) {
    ColumnSet head = DropConstants(MapToHeads(fd.head, eq), eq);
    if (!head.IsSubsetOf(b_heads)) continue;
    ColumnSet tail = MapToHeads(fd.tail, eq);
    if (tail.Contains(c_head)) return true;
  }
  return false;
}

ColumnSet FDSet::Closure(const ColumnSet& b,
                         const EquivalenceClasses& eq) const {
  ColumnSet closure = MapToHeads(b, eq);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const FunctionalDependency& fd : fds_) {
      ColumnSet head = DropConstants(MapToHeads(fd.head, eq), eq);
      if (!head.IsSubsetOf(closure)) continue;
      for (const ColumnId& t : fd.tail) {
        ColumnId th = eq.Head(t);
        if (!closure.Contains(th)) {
          closure.Add(th);
          changed = true;
        }
      }
    }
  }
  return closure;
}

bool FDSet::DeterminesTransitive(const ColumnSet& b, const ColumnId& c,
                                 const EquivalenceClasses& eq) const {
  ColumnId c_head = eq.Head(c);
  if (eq.IsConstant(c_head)) return true;
  return Closure(b, eq).Contains(c_head);
}

void FDSet::MergeFrom(const FDSet& other) {
  for (const FunctionalDependency& fd : other.fds_) {
    Add(fd.head, fd.tail);
  }
}

std::string FDSet::ToString(const ColumnNamer& namer) const {
  std::vector<std::string> parts;
  for (const FunctionalDependency& fd : fds_) parts.push_back(fd.ToString(namer));
  return "[" + Join(parts, "; ") + "]";
}

}  // namespace ordopt
