#ifndef ORDOPT_ORDEROPT_KEY_PROPERTY_H_
#define ORDOPT_ORDEROPT_KEY_PROPERTY_H_

#include <string>
#include <utility>
#include <vector>

#include "common/column_id.h"
#include "orderopt/equivalence.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// The key property of a stream (§5.2.1): a set of column sets, each of
/// which uniquely identifies a record of the stream. The paper's
/// *one-record condition* — at most one record in the stream, flagged when
/// some key becomes fully qualified by equality predicates — is represented
/// as the empty key {}: it is trivially a key of a one-record stream,
/// subsumes every other key under the redundancy rule, and concatenates as
/// the identity, so all of §5.2.1's rules fall out uniformly.
class KeyProperty {
 public:
  KeyProperty() = default;

  /// A key property asserting nothing (no known keys).
  static KeyProperty None() { return KeyProperty(); }

  /// The one-record condition.
  static KeyProperty OneRecord();

  /// True when the stream is known to contain at most one record.
  bool IsOneRecord() const;

  bool empty() const { return keys_.empty(); }
  const std::vector<ColumnSet>& keys() const { return keys_; }

  /// Registers `key` as a key of the stream (duplicates ignored).
  void AddKey(ColumnSet key);

  /// True if `cols` is a superset of some known key.
  bool IsUniqueOn(const ColumnSet& cols) const;

  /// §5.2.1 canonical simplification: rewrite each key column to its
  /// equivalence-class head, drop constant-bound columns (a key column
  /// bound by an equality predicate no longer discriminates), collapse to
  /// the one-record condition when a key empties out, and remove keys that
  /// another (smaller) key subsumes.
  void Simplify(const EquivalenceClasses& eq);

  /// Projection rule: a key survives only if every one of its columns is
  /// still visible downstream.
  void Project(const ColumnSet& visible_columns);

  /// Join propagation (§5.2.1). `join_pairs` holds the equality join
  /// predicates as (left column, right column). If some key of `right` is
  /// fully qualified by the pairs' right-side columns, the join is n-to-1
  /// and `left`'s keys propagate; symmetrically for 1-to-n. If neither,
  /// the result is all concatenations K_left ∪ K_right.
  static KeyProperty PropagateJoin(
      const KeyProperty& left, const KeyProperty& right,
      const std::vector<std::pair<ColumnId, ColumnId>>& join_pairs);

  std::string ToString(const ColumnNamer& namer = nullptr) const;

  friend bool operator==(const KeyProperty&, const KeyProperty&) = default;

 private:
  // Drops keys subsumed by a subset key and bounds the key count.
  void RemoveRedundant();

  std::vector<ColumnSet> keys_;
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_KEY_PROPERTY_H_
