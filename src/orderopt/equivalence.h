#ifndef ORDOPT_ORDEROPT_EQUIVALENCE_H_
#define ORDOPT_ORDEROPT_EQUIVALENCE_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/column_id.h"
#include "common/value.h"

namespace ordopt {

/// Column equivalence classes plus column-to-constant bindings (§4.1).
///
/// `col = col` predicates merge two columns into one class; `col = const`
/// predicates bind a whole class to a constant. The designated *head* of a
/// class is its smallest ColumnId, which makes reduction deterministic
/// ("the equivalence class head is chosen from those columns made
/// equivalent by predicates already applied to the stream").
///
/// Implemented as a union-find with path compression; constants live on the
/// root so that after merging {x,y} with x=10, y is constant-bound too.
class EquivalenceClasses {
 public:
  EquivalenceClasses() = default;

  /// Records `a = b` (both directions).
  void AddEquivalence(const ColumnId& a, const ColumnId& b);

  /// Records `col = value` (literal, host variable, or correlated column —
  /// anything constant for the duration of the stream, per §4.1).
  void AddConstant(const ColumnId& col, const Value& value);

  /// Canonical representative of col's class (smallest member). A column
  /// never seen by Add* is its own head.
  ColumnId Head(const ColumnId& col) const;

  /// True when the column's class is bound to a constant.
  bool IsConstant(const ColumnId& col) const;

  /// The binding when IsConstant; nullopt otherwise.
  std::optional<Value> ConstantValue(const ColumnId& col) const;

  /// True if a and b are in the same class.
  bool AreEquivalent(const ColumnId& a, const ColumnId& b) const;

  /// All known members of col's class (including col itself, even if never
  /// added). Order is deterministic (sorted).
  std::vector<ColumnId> ClassMembers(const ColumnId& col) const;

  /// All columns ever mentioned, sorted.
  std::vector<ColumnId> KnownColumns() const;

  /// Merges every class and constant binding from `other` into this.
  /// Used when joining two streams: the join output sees both sides'
  /// applied predicates.
  void MergeFrom(const EquivalenceClasses& other);

  /// Merges only the equivalence classes from `other`, dropping its
  /// constant bindings. Used across the null-supplying side of an outer
  /// join: `col = col` classes survive null-extension (two NULLs compare
  /// equal in the engine's total order), but `col = const` does not —
  /// null-extended rows hold NULL, not the constant.
  void MergeEquivalencesFrom(const EquivalenceClasses& other);

 private:
  // Returns the root of col's tree, inserting col if unseen.
  ColumnId FindRoot(const ColumnId& col);
  // Const lookup: root if col known, col itself otherwise.
  ColumnId FindRootConst(const ColumnId& col) const;

  // parent_[c] == c for roots. Path compression happens only in the
  // non-const FindRoot; const lookups never mutate, so concurrent readers
  // of a shared (e.g. plan-cached) instance are safe.
  std::unordered_map<ColumnId, ColumnId, ColumnIdHash> parent_;
  // Root -> smallest member of the class.
  std::unordered_map<ColumnId, ColumnId, ColumnIdHash> head_;
  // Root -> bound constant.
  std::unordered_map<ColumnId, Value, ColumnIdHash> constant_;
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_EQUIVALENCE_H_
