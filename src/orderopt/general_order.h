#ifndef ORDOPT_ORDEROPT_GENERAL_ORDER_H_
#define ORDOPT_ORDEROPT_GENERAL_ORDER_H_

#include <optional>
#include <string>
#include <vector>

#include "orderopt/operations.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// §7 "degrees of freedom": order-based GROUP BY and DISTINCT do not
/// dictate one exact order — `GROUP BY x, y` is satisfied by any
/// permutation of {x, y} in any mix of ascending/descending. Instead of
/// enumerating the exponentially many concrete orders, one *general*
/// interesting order records which columns are permutable and which
/// directions are free, and all order operations work against it.
///
/// A GeneralOrderSpec is an ordered sequence of *groups*. Columns within a
/// group may appear in any permutation; groups must be exhausted in
/// sequence (a GROUP BY under an ORDER BY prefix uses two groups: the
/// fixed ORDER BY columns first, then the free remainder). Each element
/// optionally pins a direction; unpinned elements accept either.
class GeneralOrderSpec {
 public:
  /// One column with an optional pinned direction.
  struct Element {
    ColumnId col;
    std::optional<SortDirection> fixed_dir;

    Element() = default;
    explicit Element(ColumnId c,
                     std::optional<SortDirection> d = std::nullopt)
        : col(c), fixed_dir(d) {}
  };

  /// A permutable block of columns.
  struct Group {
    std::vector<Element> elements;
  };

  GeneralOrderSpec() = default;

  /// The general order of `GROUP BY cols` / `DISTINCT cols`: one group,
  /// all permutations, both directions.
  static GeneralOrderSpec ForGrouping(const std::vector<ColumnId>& cols);

  /// A fully pinned general order equivalent to a concrete OrderSpec:
  /// singleton groups with fixed directions.
  static GeneralOrderSpec FromConcrete(const OrderSpec& spec);

  void AppendGroup(Group group) { groups_.push_back(std::move(group)); }
  const std::vector<Group>& groups() const { return groups_; }
  bool empty() const { return groups_.empty(); }

  /// All columns mentioned.
  ColumnSet Columns() const;

  /// True iff the stream order property `property` satisfies this general
  /// order under `ctx`. Uses the FD-equivalence criterion: after reduction,
  /// some prefix P_i of the property must mutually determine the union of
  /// the first i groups' (non-constant) columns, for every i, with pinned
  /// directions respected.
  bool Satisfies(const OrderSpec& property, const OrderContext& ctx) const;

  /// Builds a concrete sort specification that satisfies both this general
  /// order and the concrete order `concrete` — the §7 analogue of Cover
  /// Order, e.g. aligning a GROUP BY's permutation freedom with an ORDER BY
  /// so one sort serves both. nullopt when impossible.
  std::optional<OrderSpec> CoverConcrete(const OrderSpec& concrete,
                                         const OrderContext& ctx) const;

  /// A canonical minimal concrete sort satisfying this general order:
  /// groups in sequence, columns within a group in ColumnId order,
  /// unpinned directions ascending, then reduced under `ctx`.
  OrderSpec DefaultSortSpec(const OrderContext& ctx) const;

  std::string ToString(const ColumnNamer& namer = nullptr) const;

 private:
  std::vector<Group> groups_;
};

}  // namespace ordopt

#endif  // ORDOPT_ORDEROPT_GENERAL_ORDER_H_
