#include "catalog/schema.h"

#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

int TableDef::FindColumn(const std::string& col_name) const {
  std::string lower = ToLower(col_name);
  for (size_t i = 0; i < columns.size(); ++i) {
    if (ToLower(columns[i].name) == lower) return static_cast<int>(i);
  }
  return -1;
}

void TableDef::AddUniqueKey(const std::vector<std::string>& col_names) {
  std::vector<int> ordinals;
  for (const std::string& n : col_names) {
    int ord = FindColumn(n);
    ORDOPT_CHECK_MSG(ord >= 0, "unknown key column '%s' in table '%s'",
                     n.c_str(), name.c_str());
    ordinals.push_back(ord);
  }
  unique_keys.push_back(std::move(ordinals));
}

void TableDef::AddIndex(const std::string& index_name,
                        const std::vector<std::string>& col_names, bool unique,
                        bool clustered) {
  std::vector<int> ordinals;
  for (const std::string& n : col_names) {
    int ord = FindColumn(n);
    ORDOPT_CHECK_MSG(ord >= 0, "unknown index column '%s' in table '%s'",
                     n.c_str(), name.c_str());
    ordinals.push_back(ord);
  }
  indexes.emplace_back(index_name, std::move(ordinals), unique, clustered);
}

}  // namespace ordopt
