#ifndef ORDOPT_CATALOG_HISTOGRAM_H_
#define ORDOPT_CATALOG_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace ordopt {

/// Equi-depth (equi-height) histogram over one column: bucket boundaries
/// chosen so each bucket holds ~the same number of rows, plus per-bucket
/// distinct counts. Gives the cost model selectivity estimates that track
/// skew — the uniform min/max interpolation it replaces is exact only for
/// uniform data.
class EquiDepthHistogram {
 public:
  EquiDepthHistogram() = default;

  /// Builds from a column's values (any order; NULLs allowed and tracked
  /// separately). `bucket_count` is a target; fewer buckets result when
  /// the column has few distinct values.
  static EquiDepthHistogram Build(const std::vector<Value>& values,
                                  int bucket_count = 32);

  bool empty() const { return buckets_.empty(); }
  int64_t row_count() const { return total_rows_; }
  int64_t null_count() const { return null_rows_; }
  size_t bucket_count() const { return buckets_.size(); }

  /// Estimated fraction of (all) rows with value < v / <= v / == v.
  /// NULL rows never qualify.
  double SelectivityLt(const Value& v) const;
  double SelectivityLe(const Value& v) const;
  double SelectivityEq(const Value& v) const;
  /// > and >= derive from the above (NULLs never qualify on either side).
  double SelectivityGt(const Value& v) const {
    double s = FracNonNull() - SelectivityLe(v);
    return s > 0.0 ? s : 0.0;
  }
  double SelectivityGe(const Value& v) const {
    double s = FracNonNull() - SelectivityLt(v);
    return s > 0.0 ? s : 0.0;
  }

  std::string ToString() const;

 private:
  struct Bucket {
    Value upper;        ///< inclusive upper boundary
    int64_t rows = 0;   ///< rows in (previous upper, upper]
    int64_t distinct = 0;
  };

  double FracNull() const {
    return total_rows_ > 0
               ? static_cast<double>(null_rows_) /
                     static_cast<double>(total_rows_)
               : 0.0;
  }
  double FracNonNull() const { return 1.0 - FracNull(); }

  Value lower_;  ///< minimum non-NULL value
  std::vector<Bucket> buckets_;
  int64_t total_rows_ = 0;
  int64_t null_rows_ = 0;
};

}  // namespace ordopt

#endif  // ORDOPT_CATALOG_HISTOGRAM_H_
