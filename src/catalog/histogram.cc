#include "catalog/histogram.h"

#include <algorithm>

#include "common/str_util.h"

namespace ordopt {

EquiDepthHistogram EquiDepthHistogram::Build(const std::vector<Value>& values,
                                             int bucket_count) {
  EquiDepthHistogram h;
  h.total_rows_ = static_cast<int64_t>(values.size());
  std::vector<Value> sorted;
  sorted.reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) {
      ++h.null_rows_;
    } else {
      sorted.push_back(v);
    }
  }
  if (sorted.empty() || bucket_count <= 0) return h;
  std::sort(sorted.begin(), sorted.end(),
            [](const Value& a, const Value& b) { return a.Compare(b) < 0; });
  h.lower_ = sorted.front();

  size_t n = sorted.size();
  size_t per_bucket =
      std::max<size_t>(1, n / static_cast<size_t>(bucket_count));

  // Pack runs of equal values into buckets: boundaries always fall between
  // distinct values, and a heavy run (>= one bucket's worth of rows) gets
  // a bucket of its own so its frequency is represented exactly rather
  // than smeared over neighbors.
  Bucket current;
  bool open = false;
  size_t i = 0;
  while (i < n) {
    size_t run_end = i + 1;
    while (run_end < n && sorted[run_end].Compare(sorted[i]) == 0) {
      ++run_end;
    }
    size_t run_len = run_end - i;
    if (run_len >= per_bucket && open) {
      // Close the partial bucket so the heavy run stands alone.
      h.buckets_.push_back(std::move(current));
      current = Bucket();
      open = false;
    }
    current.upper = sorted[i];
    current.rows += static_cast<int64_t>(run_len);
    current.distinct += 1;
    open = true;
    if (static_cast<size_t>(current.rows) >= per_bucket) {
      h.buckets_.push_back(std::move(current));
      current = Bucket();
      open = false;
    }
    i = run_end;
  }
  if (open) h.buckets_.push_back(std::move(current));
  return h;
}

double EquiDepthHistogram::SelectivityLt(const Value& v) const {
  if (empty() || v.is_null() || total_rows_ == 0) return 0.0;
  if (v.Compare(lower_) <= 0) return 0.0;
  double qualifying = 0.0;
  Value prev_upper = lower_;
  bool first = true;
  for (const Bucket& b : buckets_) {
    if (v.Compare(b.upper) > 0) {
      qualifying += static_cast<double>(b.rows);
      prev_upper = b.upper;
      first = false;
      continue;
    }
    // v falls inside this bucket. At the boundary, < excludes the upper
    // value's own rows; otherwise interpolate linearly over the bucket's
    // value range when numeric (half the bucket for strings).
    double fraction;
    if (v.Compare(b.upper) == 0) {
      double d = static_cast<double>(std::max<int64_t>(1, b.distinct));
      fraction = (d - 1.0) / d;
    } else {
      fraction = 0.5;
      const Value& lo = first ? lower_ : prev_upper;
      if (v.type() != DataType::kString && lo.type() != DataType::kNull &&
          b.upper.type() != DataType::kString) {
        double lo_d = lo.AsDouble();
        double hi_d = b.upper.AsDouble();
        if (hi_d > lo_d) {
          fraction = (v.AsDouble() - lo_d) / (hi_d - lo_d);
          fraction = std::clamp(fraction, 0.0, 1.0);
        }
      }
    }
    qualifying += fraction * static_cast<double>(b.rows);
    break;
  }
  return qualifying / static_cast<double>(total_rows_);
}

double EquiDepthHistogram::SelectivityEq(const Value& v) const {
  if (empty() || v.is_null() || total_rows_ == 0) return 0.0;
  Value prev_upper = lower_;
  bool first = true;
  for (const Bucket& b : buckets_) {
    bool in_bucket =
        v.Compare(b.upper) <= 0 &&
        (first ? v.Compare(lower_) >= 0 : v.Compare(prev_upper) > 0);
    if (in_bucket) {
      double rows_per_value =
          static_cast<double>(b.rows) /
          static_cast<double>(std::max<int64_t>(1, b.distinct));
      return rows_per_value / static_cast<double>(total_rows_);
    }
    prev_upper = b.upper;
    first = false;
  }
  return 0.0;  // outside the observed range
}

double EquiDepthHistogram::SelectivityLe(const Value& v) const {
  return std::min(1.0, SelectivityLt(v) + SelectivityEq(v));
}

std::string EquiDepthHistogram::ToString() const {
  std::string out = StrFormat("hist[rows=%lld nulls=%lld",
                              static_cast<long long>(total_rows_),
                              static_cast<long long>(null_rows_));
  if (!empty()) {
    out += " lo=" + lower_.ToString();
    for (const Bucket& b : buckets_) {
      out += StrFormat(" |%s:%lld/%lld", b.upper.ToString().c_str(),
                       static_cast<long long>(b.rows),
                       static_cast<long long>(b.distinct));
    }
  }
  return out + "]";
}

}  // namespace ordopt
