#ifndef ORDOPT_CATALOG_SCHEMA_H_
#define ORDOPT_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/histogram.h"
#include "common/value.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// One column of a base table.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;

  ColumnDef() = default;
  ColumnDef(std::string n, DataType t) : name(std::move(n)), type(t) {}
};

/// A secondary (or primary) index over a base table. Column ordinals refer
/// to the owning TableDef. A *clustered* index implies the table's rows are
/// stored in index-key order, so ordered probes through it touch pages
/// sequentially — the property the paper's ordered nested-loop join
/// exploits (§8.1).
struct IndexDef {
  std::string name;
  std::vector<int> column_ordinals;
  std::vector<SortDirection> directions;  ///< parallel to column_ordinals
  bool unique = false;
  bool clustered = false;

  IndexDef() = default;
  IndexDef(std::string n, std::vector<int> cols, bool uniq = false,
           bool clust = false)
      : name(std::move(n)),
        column_ordinals(std::move(cols)),
        unique(uniq),
        clustered(clust) {
    directions.assign(column_ordinals.size(), SortDirection::kAscending);
  }
};

/// Optimizer-visible statistics for a base table.
struct TableStats {
  int64_t row_count = 0;
  /// Per-column distinct-value estimates (parallel to columns; 0 = unknown).
  std::vector<int64_t> distinct_counts;
  /// Per-column min/max (parallel to columns; NULL = unknown). Used for
  /// range-predicate selectivity.
  std::vector<Value> min_values;
  std::vector<Value> max_values;
  /// Per-column equi-depth histograms (parallel to columns; may be empty
  /// when stats were not collected). Preferred over min/max interpolation
  /// when present.
  std::vector<EquiDepthHistogram> histograms;
};

/// Schema of one base table: columns, declared unique keys (as ordinal
/// lists; the first is treated as the primary key), and indexes.
struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::vector<int>> unique_keys;
  std::vector<IndexDef> indexes;
  TableStats stats;

  /// Ordinal of the column named `col_name` (case-insensitive), or -1.
  int FindColumn(const std::string& col_name) const;

  /// Declares a unique key by column names; aborts on unknown names
  /// (schema construction is programmer-driven, not user input).
  void AddUniqueKey(const std::vector<std::string>& col_names);

  /// Declares an index by column names.
  void AddIndex(const std::string& index_name,
                const std::vector<std::string>& col_names, bool unique = false,
                bool clustered = false);
};

}  // namespace ordopt

#endif  // ORDOPT_CATALOG_SCHEMA_H_
