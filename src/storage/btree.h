#ifndef ORDOPT_STORAGE_BTREE_H_
#define ORDOPT_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "orderopt/order_spec.h"

namespace ordopt {

/// Composite index key: one Value per indexed column.
using IndexKey = std::vector<Value>;

/// In-memory B+-tree mapping composite keys to row ids. Provides the two
/// things order optimization cares about: an *ordered* full scan (forward or
/// backward — an index on (c1, c2) yields order (c1, c2) scanned forward and
/// (c1 DESC, c2 DESC) scanned backward), and ordered range probes for
/// nested-loop index joins. Duplicate keys are allowed; ties are broken by
/// row id so iteration order is deterministic.
///
/// Non-unique multi-version concerns do not apply: the engine loads tables
/// once and then serves read-only queries, so only Insert and lookups are
/// provided (no delete).
class BTreeIndex {
 public:
  /// `directions` fixes the per-column collation of the key; its size is
  /// the key arity.
  explicit BTreeIndex(std::vector<SortDirection> directions);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Inserts one entry. `key` must have exactly the declared arity;
  /// a mismatched key returns Status::Internal without modifying the tree.
  Status Insert(IndexKey key, int64_t rid);

  int64_t size() const { return size_; }
  size_t arity() const { return directions_.size(); }
  const std::vector<SortDirection>& directions() const { return directions_; }

  /// Lexicographic comparison of (possibly prefix-length) keys under the
  /// index collation. Returns <0/0/>0. The shorter key is compared as a
  /// prefix: equal prefixes compare equal.
  int CompareKeys(const IndexKey& a, const IndexKey& b) const;

  /// Read cursor over index entries in key order.
  class Cursor {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const IndexKey& key() const;
    int64_t rid() const;
    void Next();
    void Prev();

   private:
    friend class BTreeIndex;
    const void* leaf_ = nullptr;  // LeafNode*
    size_t pos_ = 0;
  };

  /// Cursor at the first entry in key order (invalid when empty).
  Cursor SeekFirst() const;
  /// Cursor at the last entry in key order (invalid when empty).
  Cursor SeekLast() const;
  /// Cursor at the first entry whose key is >= `prefix` under the index
  /// collation, comparing only prefix.size() leading columns. Invalid when
  /// no such entry exists.
  Cursor SeekAtLeast(const IndexKey& prefix) const;
  /// Cursor at the first entry whose key is > `prefix` (strictly after all
  /// entries with that prefix).
  Cursor SeekAfter(const IndexKey& prefix) const;

  /// Structural self-check used by tests: node fill, key ordering, linked
  /// leaf chain, separator correctness.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct LeafNode;
  struct InnerNode;

  // Descends to the leaf that would contain `prefix`; `after` selects
  // upper-bound semantics.
  Cursor SeekInternal(const IndexKey& prefix, bool after) const;

  std::vector<SortDirection> directions_;
  Node* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  LeafNode* last_leaf_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace ordopt

#endif  // ORDOPT_STORAGE_BTREE_H_
