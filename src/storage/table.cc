#include "storage/table.h"

#include <algorithm>
#include <unordered_set>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

Result<int64_t> Table::AppendRow(Row row) {
  if (finalized_) {
    return Status::Internal("AppendRow after BuildIndexes on '" + def_.name +
                            "'");
  }
  if (row.size() != def_.columns.size()) {
    return Status::Internal(
        StrFormat("row arity %zu != schema arity %zu on '%s'", row.size(),
                  def_.columns.size(), def_.name.c_str()));
  }
  rows_.push_back(std::move(row));
  return static_cast<int64_t>(rows_.size()) - 1;
}

IndexKey Table::ExtractKey(const Row& row, const IndexDef& idx) const {
  IndexKey key;
  key.reserve(idx.column_ordinals.size());
  for (int ord : idx.column_ordinals) {
    key.push_back(row[static_cast<size_t>(ord)]);
  }
  return key;
}

Status Table::BuildIndexes() {
  if (finalized_) {
    return Status::Internal("BuildIndexes called twice on '" + def_.name +
                            "'");
  }
  finalized_ = true;

  // A clustered index dictates physical row order; sort the heap by its key
  // first so row ids correlate with index-key order.
  int clustered = -1;
  for (size_t i = 0; i < def_.indexes.size(); ++i) {
    if (def_.indexes[i].clustered) {
      if (clustered >= 0) {
        return Status::InvalidArgument("table '" + def_.name +
                                       "' declares two clustered indexes");
      }
      clustered = static_cast<int>(i);
    }
  }
  if (clustered >= 0) {
    const IndexDef& idx = def_.indexes[static_cast<size_t>(clustered)];
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < idx.column_ordinals.size();
                            ++k) {
                         size_t ord =
                             static_cast<size_t>(idx.column_ordinals[k]);
                         int c = a[ord].Compare(b[ord]);
                         if (c != 0) {
                           return idx.directions[k] ==
                                          SortDirection::kDescending
                                      ? c > 0
                                      : c < 0;
                         }
                       }
                       return false;
                     });
  }

  indexes_.clear();
  for (const IndexDef& idx : def_.indexes) {
    ORDOPT_FAULT_POINT("storage.table.build");
    auto tree = std::make_unique<BTreeIndex>(idx.directions);
    for (int64_t rid = 0; rid < row_count(); ++rid) {
      ORDOPT_RETURN_NOT_OK(
          tree->Insert(ExtractKey(rows_[static_cast<size_t>(rid)], idx), rid));
    }
    indexes_.push_back(std::move(tree));
  }

  // Refresh statistics: row count plus per-column distinct estimates
  // (exact for the in-memory data set).
  def_.stats.row_count = row_count();
  def_.stats.distinct_counts.assign(def_.columns.size(), 0);
  def_.stats.min_values.assign(def_.columns.size(), Value::Null());
  def_.stats.max_values.assign(def_.columns.size(), Value::Null());
  def_.stats.histograms.assign(def_.columns.size(), EquiDepthHistogram());
  std::vector<Value> column_values;
  for (size_t col = 0; col < def_.columns.size(); ++col) {
    std::unordered_set<size_t> hashes;
    hashes.reserve(rows_.size());
    column_values.clear();
    column_values.reserve(rows_.size());
    for (const Row& row : rows_) {
      const Value& v = row[col];
      hashes.insert(v.Hash());
      column_values.push_back(v);
      if (v.is_null()) continue;
      Value& mn = def_.stats.min_values[col];
      Value& mx = def_.stats.max_values[col];
      if (mn.is_null() || v.Compare(mn) < 0) mn = v;
      if (mx.is_null() || v.Compare(mx) > 0) mx = v;
    }
    def_.stats.distinct_counts[col] = static_cast<int64_t>(hashes.size());
    def_.stats.histograms[col] = EquiDepthHistogram::Build(column_values);
  }
  return Status::OK();
}

}  // namespace ordopt
