#include "storage/csv_loader.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/str_util.h"

namespace ordopt {

Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';  // "" escape
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument(
            "quote in the middle of an unquoted CSV field: " + line);
      }
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // Tolerate CRLF.
    } else {
      current += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field: " + line);
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> ParseCsvField(const std::string& field, DataType type,
                            const CsvOptions& options) {
  if (field.empty() || field == options.null_marker) return Value::Null();
  switch (type) {
    case DataType::kInt64: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(field.c_str(), &end, 10);
      if (end == nullptr || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 field '" + field + "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("int64 field '" + field +
                                       "' out of range");
      }
      return Value::Int(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(field.c_str(), &end);
      if (end == nullptr || end == field.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double field '" + field + "'");
      }
      if (errno == ERANGE) {
        return Status::InvalidArgument("double field '" + field +
                                       "' out of range");
      }
      return Value::Double(v);
    }
    case DataType::kDate: {
      int64_t days = 0;
      if (!ParseDate(field, &days)) {
        return Status::InvalidArgument("bad date field '" + field +
                                       "' (expected YYYY-MM-DD)");
      }
      return Value::Date(days);
    }
    case DataType::kString:
      return Value::Str(field);
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("column with unloadable type");
}

Result<int64_t> LoadCsvText(const std::string& text, Table* table,
                            const CsvOptions& options) {
  const TableDef& def = table->def();
  if (table->finalized()) {
    return Status::InvalidArgument("table '" + def.name +
                                   "' is finalized; cannot load more rows");
  }
  std::istringstream in(text);
  std::string line;
  int64_t line_no = 0;
  int64_t loaded = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no == 1 && options.has_header) continue;
    if (line.empty() || line == "\r") continue;
    ORDOPT_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                            SplitCsvLine(line, options.delimiter));
    if (fields.size() != def.columns.size()) {
      return Status::InvalidArgument(
          StrFormat("line %lld of table '%s': %zu fields, schema has %zu",
                    static_cast<long long>(line_no), def.name.c_str(),
                    fields.size(), def.columns.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      auto value = ParseCsvField(fields[c], def.columns[c].type, options);
      if (!value.ok()) {
        return Status::InvalidArgument(
            StrFormat("line %lld, column '%s': %s",
                      static_cast<long long>(line_no),
                      def.columns[c].name.c_str(),
                      value.status().message().c_str()));
      }
      row.push_back(std::move(value).value());
    }
    ORDOPT_FAULT_POINT("storage.csv.row");
    ORDOPT_RETURN_NOT_OK(table->AppendRow(std::move(row)).status());
    ++loaded;
  }
  return loaded;
}

Result<int64_t> LoadCsvFile(const std::string& path, Table* table,
                            const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvText(buffer.str(), table, options);
}

}  // namespace ordopt
