#include "storage/btree.h"

#include <algorithm>

#include "common/macros.h"
#include "common/str_util.h"

namespace ordopt {

namespace {
// Node capacities kept modest so tests exercise multi-level trees.
constexpr size_t kMaxLeafEntries = 32;
constexpr size_t kMaxInnerSeps = 32;
}  // namespace

struct BTreeIndex::Node {
  bool is_leaf = false;
  explicit Node(bool leaf) : is_leaf(leaf) {}
};

struct BTreeIndex::LeafNode : BTreeIndex::Node {
  LeafNode() : Node(true) {}
  std::vector<IndexKey> keys;
  std::vector<int64_t> rids;
  LeafNode* prev = nullptr;
  LeafNode* next = nullptr;
};

struct BTreeIndex::InnerNode : BTreeIndex::Node {
  InnerNode() : Node(false) {}
  // sep_keys[i]/sep_rids[i] is the smallest entry of children[i+1]'s
  // subtree; children.size() == sep_keys.size() + 1.
  std::vector<IndexKey> sep_keys;
  std::vector<int64_t> sep_rids;
  std::vector<Node*> children;
};

BTreeIndex::BTreeIndex(std::vector<SortDirection> directions)
    : directions_(std::move(directions)) {
  LeafNode* leaf = new LeafNode();
  root_ = leaf;
  first_leaf_ = leaf;
  last_leaf_ = leaf;
}

BTreeIndex::~BTreeIndex() {
  if (root_ == nullptr) return;
  // Iterative destruction via the leaf chain plus a stack for inner nodes.
  std::vector<Node*> stack = {root_};
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    if (!n->is_leaf) {
      InnerNode* inner = static_cast<InnerNode*>(n);
      for (Node* c : inner->children) stack.push_back(c);
      delete inner;
    } else {
      delete static_cast<LeafNode*>(n);
    }
  }
}

int BTreeIndex::CompareKeys(const IndexKey& a, const IndexKey& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) {
      bool desc = i < directions_.size() &&
                  directions_[i] == SortDirection::kDescending;
      return desc ? -c : c;
    }
  }
  return 0;  // equal on the shared prefix
}

Status BTreeIndex::Insert(IndexKey key, int64_t rid) {
  if (key.size() != directions_.size()) {
    return Status::Internal(
        StrFormat("index key arity %zu != declared %zu", key.size(),
                  directions_.size()));
  }
  // Compares (key, rid) entries under the index collation.
  auto entry_less = [this](const IndexKey& ak, int64_t ar, const IndexKey& bk,
                           int64_t br) {
    int c = CompareKeys(ak, bk);
    if (c != 0) return c < 0;
    return ar < br;
  };

  struct SplitResult {
    IndexKey sep_key;
    int64_t sep_rid;
    Node* right;
  };

  // Recursive insert returning a split description when the child divides.
  auto insert_rec = [&](auto&& self, Node* node) -> std::unique_ptr<SplitResult> {
    if (node->is_leaf) {
      LeafNode* leaf = static_cast<LeafNode*>(node);
      size_t pos = leaf->keys.size();
      // Binary search for the insertion point.
      size_t lo = 0, hi = leaf->keys.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (entry_less(leaf->keys[mid], leaf->rids[mid], key, rid)) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pos = lo;
      leaf->keys.insert(leaf->keys.begin() + pos, key);
      leaf->rids.insert(leaf->rids.begin() + pos, rid);
      if (leaf->keys.size() <= kMaxLeafEntries) return nullptr;

      // Split the leaf in half.
      LeafNode* right = new LeafNode();
      size_t half = leaf->keys.size() / 2;
      right->keys.assign(leaf->keys.begin() + half, leaf->keys.end());
      right->rids.assign(leaf->rids.begin() + half, leaf->rids.end());
      leaf->keys.resize(half);
      leaf->rids.resize(half);
      right->next = leaf->next;
      right->prev = leaf;
      if (leaf->next != nullptr) leaf->next->prev = right;
      leaf->next = right;
      if (last_leaf_ == leaf) last_leaf_ = right;
      auto split = std::make_unique<SplitResult>();
      split->sep_key = right->keys.front();
      split->sep_rid = right->rids.front();
      split->right = right;
      return split;
    }

    InnerNode* inner = static_cast<InnerNode*>(node);
    // First separator strictly greater than the entry -> descend before it.
    size_t child_idx = inner->sep_keys.size();
    {
      size_t lo = 0, hi = inner->sep_keys.size();
      while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (entry_less(key, rid, inner->sep_keys[mid], inner->sep_rids[mid])) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      child_idx = lo;
    }
    std::unique_ptr<SplitResult> child_split =
        self(self, inner->children[child_idx]);
    if (child_split == nullptr) return nullptr;

    inner->sep_keys.insert(inner->sep_keys.begin() + child_idx,
                           child_split->sep_key);
    inner->sep_rids.insert(inner->sep_rids.begin() + child_idx,
                           child_split->sep_rid);
    inner->children.insert(inner->children.begin() + child_idx + 1,
                           child_split->right);
    if (inner->sep_keys.size() <= kMaxInnerSeps) return nullptr;

    // Split the inner node: middle separator moves up.
    InnerNode* right = new InnerNode();
    size_t mid = inner->sep_keys.size() / 2;
    auto split = std::make_unique<SplitResult>();
    split->sep_key = inner->sep_keys[mid];
    split->sep_rid = inner->sep_rids[mid];
    right->sep_keys.assign(inner->sep_keys.begin() + mid + 1,
                           inner->sep_keys.end());
    right->sep_rids.assign(inner->sep_rids.begin() + mid + 1,
                           inner->sep_rids.end());
    right->children.assign(inner->children.begin() + mid + 1,
                           inner->children.end());
    inner->sep_keys.resize(mid);
    inner->sep_rids.resize(mid);
    inner->children.resize(mid + 1);
    split->right = right;
    return split;
  };

  auto split = insert_rec(insert_rec, root_);
  if (split != nullptr) {
    InnerNode* new_root = new InnerNode();
    new_root->sep_keys.push_back(split->sep_key);
    new_root->sep_rids.push_back(split->sep_rid);
    new_root->children.push_back(root_);
    new_root->children.push_back(split->right);
    root_ = new_root;
  }
  ++size_;
  return Status::OK();
}

const IndexKey& BTreeIndex::Cursor::key() const {
  const LeafNode* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->keys[pos_];
}

int64_t BTreeIndex::Cursor::rid() const {
  const LeafNode* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->rids[pos_];
}

void BTreeIndex::Cursor::Next() {
  const LeafNode* leaf = static_cast<const LeafNode*>(leaf_);
  if (pos_ + 1 < leaf->keys.size()) {
    ++pos_;
    return;
  }
  const LeafNode* next = leaf->next;
  while (next != nullptr && next->keys.empty()) next = next->next;
  leaf_ = next;
  pos_ = 0;
}

void BTreeIndex::Cursor::Prev() {
  const LeafNode* leaf = static_cast<const LeafNode*>(leaf_);
  if (pos_ > 0) {
    --pos_;
    return;
  }
  const LeafNode* prev = leaf->prev;
  while (prev != nullptr && prev->keys.empty()) prev = prev->prev;
  leaf_ = prev;
  pos_ = prev != nullptr ? prev->keys.size() - 1 : 0;
}

BTreeIndex::Cursor BTreeIndex::SeekFirst() const {
  Cursor c;
  const LeafNode* leaf = first_leaf_;
  while (leaf != nullptr && leaf->keys.empty()) leaf = leaf->next;
  c.leaf_ = leaf;
  c.pos_ = 0;
  return c;
}

BTreeIndex::Cursor BTreeIndex::SeekLast() const {
  Cursor c;
  const LeafNode* leaf = last_leaf_;
  while (leaf != nullptr && leaf->keys.empty()) leaf = leaf->prev;
  c.leaf_ = leaf;
  c.pos_ = leaf != nullptr ? leaf->keys.size() - 1 : 0;
  return c;
}

BTreeIndex::Cursor BTreeIndex::SeekInternal(const IndexKey& prefix,
                                            bool after) const {
  // Predicate: entry qualifies when key >= prefix (or > when `after`).
  auto qualifies = [&](const IndexKey& k) {
    int c = CompareKeys(k, prefix);
    return after ? c > 0 : c >= 0;
  };

  const Node* node = root_;
  while (!node->is_leaf) {
    const InnerNode* inner = static_cast<const InnerNode*>(node);
    // Descend into the first child whose separator could still contain a
    // qualifying entry to its left: first separator that qualifies.
    // Binary search is valid because qualification is monotone in key
    // order (separators are sorted under the index collation).
    size_t lo = 0, hi = inner->sep_keys.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (qualifies(inner->sep_keys[mid])) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = inner->children[lo];
  }

  const LeafNode* leaf = static_cast<const LeafNode*>(node);
  // First qualifying position in this leaf; binary search is valid because
  // qualification is monotone in key order.
  size_t lo = 0, hi = leaf->keys.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (qualifies(leaf->keys[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  Cursor c;
  if (lo < leaf->keys.size()) {
    c.leaf_ = leaf;
    c.pos_ = lo;
    return c;
  }
  // All entries here are below the target; the next non-empty leaf's first
  // entry (if any) is the answer.
  const LeafNode* next = leaf->next;
  while (next != nullptr && next->keys.empty()) next = next->next;
  c.leaf_ = next;
  c.pos_ = 0;
  return c;
}

BTreeIndex::Cursor BTreeIndex::SeekAtLeast(const IndexKey& prefix) const {
  return SeekInternal(prefix, /*after=*/false);
}

BTreeIndex::Cursor BTreeIndex::SeekAfter(const IndexKey& prefix) const {
  return SeekInternal(prefix, /*after=*/true);
}

Status BTreeIndex::CheckInvariants() const {
  // 1. Every path from the root has uniform depth; node fills respected.
  // 2. Within every node, entries/separators are strictly increasing.
  // 3. Separators bound their subtrees.
  // 4. The leaf chain enumerates size_ entries in nondecreasing order.
  auto entry_leq = [this](const IndexKey& ak, int64_t ar, const IndexKey& bk,
                          int64_t br) {
    int c = CompareKeys(ak, bk);
    if (c != 0) return c < 0;
    return ar <= br;
  };

  struct Bounds {
    const IndexKey* min_key = nullptr;
    int64_t min_rid = 0;
    const IndexKey* max_key = nullptr;
    int64_t max_rid = 0;
  };

  int expected_depth = -1;
  Status status = Status::OK();
  auto check_rec = [&](auto&& self, const Node* node, int depth,
                       Bounds* bounds) -> bool {
    if (node->is_leaf) {
      if (expected_depth == -1) expected_depth = depth;
      if (depth != expected_depth) {
        status = Status::Internal("non-uniform leaf depth");
        return false;
      }
      const LeafNode* leaf = static_cast<const LeafNode*>(node);
      for (size_t i = 1; i < leaf->keys.size(); ++i) {
        if (!entry_leq(leaf->keys[i - 1], leaf->rids[i - 1], leaf->keys[i],
                       leaf->rids[i])) {
          status = Status::Internal("leaf entries out of order");
          return false;
        }
      }
      if (!leaf->keys.empty()) {
        bounds->min_key = &leaf->keys.front();
        bounds->min_rid = leaf->rids.front();
        bounds->max_key = &leaf->keys.back();
        bounds->max_rid = leaf->rids.back();
      }
      return true;
    }
    const InnerNode* inner = static_cast<const InnerNode*>(node);
    if (inner->children.size() != inner->sep_keys.size() + 1 ||
        inner->sep_rids.size() != inner->sep_keys.size()) {
      status = Status::Internal("inner node arity mismatch");
      return false;
    }
    Bounds prev_child;
    for (size_t i = 0; i < inner->children.size(); ++i) {
      Bounds child_bounds;
      if (!self(self, inner->children[i], depth + 1, &child_bounds)) {
        return false;
      }
      if (i > 0 && child_bounds.min_key != nullptr) {
        // Separator i-1 must equal/lower-bound child i's minimum and
        // upper-bound child i-1's maximum.
        if (!entry_leq(inner->sep_keys[i - 1], inner->sep_rids[i - 1],
                       *child_bounds.min_key, child_bounds.min_rid)) {
          status = Status::Internal("separator exceeds right subtree min");
          return false;
        }
        if (prev_child.max_key != nullptr &&
            !entry_leq(*prev_child.max_key, prev_child.max_rid,
                       inner->sep_keys[i - 1], inner->sep_rids[i - 1])) {
          status = Status::Internal("separator below left subtree max");
          return false;
        }
      }
      if (i == 0) {
        bounds->min_key = child_bounds.min_key;
        bounds->min_rid = child_bounds.min_rid;
      }
      if (child_bounds.max_key != nullptr) {
        bounds->max_key = child_bounds.max_key;
        bounds->max_rid = child_bounds.max_rid;
      }
      prev_child = child_bounds;
    }
    return true;
  };

  Bounds root_bounds;
  if (!check_rec(check_rec, root_, 0, &root_bounds)) return status;

  // Leaf-chain check.
  int64_t count = 0;
  const IndexKey* prev_key = nullptr;
  int64_t prev_rid = 0;
  for (const LeafNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (prev_key != nullptr &&
          !entry_leq(*prev_key, prev_rid, leaf->keys[i], leaf->rids[i])) {
        return Status::Internal("leaf chain out of order");
      }
      prev_key = &leaf->keys[i];
      prev_rid = leaf->rids[i];
      ++count;
    }
  }
  if (count != size_) {
    return Status::Internal(
        StrFormat("leaf chain has %lld entries, expected %lld",
                  static_cast<long long>(count),
                  static_cast<long long>(size_)));
  }
  return Status::OK();
}

}  // namespace ordopt
