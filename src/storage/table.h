#ifndef ORDOPT_STORAGE_TABLE_H_
#define ORDOPT_STORAGE_TABLE_H_

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/btree.h"

namespace ordopt {

/// Rows stored per simulated disk page. The optimizer's I/O cost model and
/// the executor's I/O accounting both key off this: a heap scan of N rows
/// reads ceil(N / kRowsPerPage) sequential pages; an index probe reads the
/// page that holds the row (random unless the probe sequence is clustered).
constexpr int64_t kRowsPerPage = 64;

/// A base table: schema + row storage + built indexes. Loading is
/// append-then-finalize: call AppendRow for every row, then BuildIndexes
/// once; after that the table serves read-only queries.
class Table {
 public:
  explicit Table(TableDef def) : def_(std::move(def)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }
  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }
  const Row& row(int64_t rid) const { return rows_[static_cast<size_t>(rid)]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends one row; arity must match the schema and the table must not
  /// be finalized yet. Returns the row id, or Status::Internal on misuse.
  Result<int64_t> AppendRow(Row row);

  /// True once BuildIndexes has run and the table is read-only.
  bool finalized() const { return finalized_; }

  /// If some index is clustered, physically reorders rows into that index's
  /// key order, then builds every declared index and refreshes statistics.
  /// Must be called exactly once, after loading.
  Status BuildIndexes();

  /// Built index for def().indexes[i]; null before BuildIndexes.
  const BTreeIndex* index(size_t i) const {
    return i < indexes_.size() ? indexes_[i].get() : nullptr;
  }
  size_t index_count() const { return indexes_.size(); }

  /// Simulated page number holding row `rid`.
  int64_t PageOf(int64_t rid) const { return rid / kRowsPerPage; }
  int64_t page_count() const {
    return (row_count() + kRowsPerPage - 1) / kRowsPerPage;
  }

 private:
  IndexKey ExtractKey(const Row& row, const IndexDef& idx) const;

  TableDef def_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<BTreeIndex>> indexes_;
  bool finalized_ = false;
};

}  // namespace ordopt

#endif  // ORDOPT_STORAGE_TABLE_H_
