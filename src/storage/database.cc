#include "storage/database.h"

#include "common/str_util.h"

namespace ordopt {

Result<Table*> Database::CreateTable(TableDef def) {
  std::string key = ToLower(def.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table '" + def.name + "' already exists");
  }
  auto table = std::make_unique<Table>(std::move(def));
  Table* ptr = table.get();
  tables_.emplace(std::move(key), std::move(table));
  return ptr;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Database::FinalizeAll() {
  for (auto& [_, table] : tables_) {
    ORDOPT_RETURN_NOT_OK(table->BuildIndexes());
  }
  BumpStatsEpoch();
  return Status::OK();
}

}  // namespace ordopt
