#ifndef ORDOPT_STORAGE_CSV_LOADER_H_
#define ORDOPT_STORAGE_CSV_LOADER_H_

#include <string>

#include "common/status.h"
#include "storage/database.h"

namespace ordopt {

/// Options for CSV ingestion.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (header). Column order must match the schema.
  bool has_header = true;
  /// The spelling of SQL NULL in the file (empty fields are NULL too).
  std::string null_marker = "NULL";
};

/// Parses one CSV line into fields, honoring double-quoted fields with ""
/// escapes. Exposed for testing.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line,
                                              char delimiter);

/// Converts one CSV field to a Value of the given type. Empty fields and
/// the null marker load as NULL; dates parse as YYYY-MM-DD.
Result<Value> ParseCsvField(const std::string& field, DataType type,
                            const CsvOptions& options);

/// Loads CSV text (already read into memory) into `table`. The table must
/// not be finalized yet; the caller runs Database::FinalizeAll (or
/// Table::BuildIndexes) afterwards. Returns the number of rows appended.
Result<int64_t> LoadCsvText(const std::string& text, Table* table,
                            const CsvOptions& options = CsvOptions());

/// Convenience: reads `path` from disk and loads it into `table`.
Result<int64_t> LoadCsvFile(const std::string& path, Table* table,
                            const CsvOptions& options = CsvOptions());

}  // namespace ordopt

#endif  // ORDOPT_STORAGE_CSV_LOADER_H_
