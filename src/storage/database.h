#ifndef ORDOPT_STORAGE_DATABASE_H_
#define ORDOPT_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace ordopt {

/// The catalog-plus-storage registry: owns every table by (lowercased)
/// name. This is the root object an application creates, loads, and then
/// runs queries against (see QueryEngine in exec/engine.h).
///
/// Concurrency: load-then-serve. CreateTable/AppendRow/FinalizeAll are
/// single-threaded setup; after FinalizeAll the catalog and every table are
/// immutable, and any number of threads may plan and execute against them
/// (the QueryService relies on this). The stats epoch below is the one
/// mutable cell, and it is atomic.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table with the given schema. Fails on duplicates.
  Result<Table*> CreateTable(TableDef def);

  /// Lookup by name (case-insensitive); nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Finalizes every table (sorts clustered heaps, builds indexes, refreshes
  /// statistics). Call once after loading data. Bumps the stats epoch.
  Status FinalizeAll();

  /// Monotonic version of this database's schema + statistics content.
  /// Plans are valid for the epoch they were built under; the service's
  /// plan cache keys entries on it, so bumping the epoch invalidates every
  /// cached plan (the PR 4 ReduceCache invalidation rule, lifted to whole
  /// plans). Starts at 1; FinalizeAll bumps it, and tooling that refreshes
  /// statistics in place should call BumpStatsEpoch itself.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  const std::map<std::string, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::atomic<uint64_t> stats_epoch_{1};
};

}  // namespace ordopt

#endif  // ORDOPT_STORAGE_DATABASE_H_
