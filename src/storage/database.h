#ifndef ORDOPT_STORAGE_DATABASE_H_
#define ORDOPT_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace ordopt {

/// The catalog-plus-storage registry: owns every table by (lowercased)
/// name. This is the root object an application creates, loads, and then
/// runs queries against (see QueryEngine in exec/engine.h).
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table with the given schema. Fails on duplicates.
  Result<Table*> CreateTable(TableDef def);

  /// Lookup by name (case-insensitive); nullptr when absent.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Finalizes every table (sorts clustered heaps, builds indexes, refreshes
  /// statistics). Call once after loading data.
  Status FinalizeAll();

  const std::map<std::string, std::unique_ptr<Table>>& tables() const {
    return tables_;
  }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace ordopt

#endif  // ORDOPT_STORAGE_DATABASE_H_
