// Ablation D: the paper's §8 narrative — decision-support queries
// "frequently include a lot of redundancy: grouping on key columns,
// sorting on columns that are bound to constants through predicates, and
// so on. Order optimization is able to eliminate this kind of redundancy."
//
// A suite of such queries over the TPC-D database, reporting per query the
// sorts executed and simulated time with order optimization on vs off.

#include <cstdio>
#include <cstring>

#include "exec/engine.h"
#include "tpcd/tpcd.h"

using namespace ordopt;

int main(int argc, char** argv) {
  double sf = 0.01;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) sf = std::atof(argv[i] + 5);
  }
  Database db;
  TpcdConfig config;
  config.scale_factor = sf;
  if (!LoadTpcd(&db, config).ok()) return 1;

  struct Case {
    const char* label;
    const char* sql;
  };
  const Case cases[] = {
      {"grouping on a key column",
       "select o_orderkey, count(*) as n from orders group by o_orderkey"},
      {"sorting on a constant-bound column",
       "select o_orderkey, o_orderdate from orders "
       "where o_orderdate = date('1995-03-15') "
       "order by o_orderdate, o_orderkey"},
      {"order satisfied through a join equivalence",
       "select o_orderkey, l_linenumber from orders, lineitem "
       "where o_orderkey = l_orderkey order by l_orderkey"},
      {"grouping plus FD-redundant columns",
       "select o_orderkey, o_orderdate, o_shippriority, count(*) from "
       "orders group by o_orderkey, o_orderdate, o_shippriority"},
      {"one-record condition (key fully bound)",
       "select o_orderdate, o_totalprice from orders where o_orderkey = 77 "
       "order by o_totalprice desc"},
      {"DISTINCT on key plus other columns",
       "select distinct o_orderkey, o_custkey from orders"},
  };

  std::printf("=== Sorts avoided through predicates, keys, indexes, FDs "
              "(TPC-D SF=%.3f) ===\n\n",
              sf);
  std::printf("%-44s %10s %7s %8s %12s\n", "query", "mode", "sorts",
              "rows", "sim time(s)");
  double total[2] = {0, 0};
  for (const Case& c : cases) {
    for (int mode = 0; mode < 2; ++mode) {
      OptimizerConfig cfg;
      cfg.enable_order_optimization = mode == 0;
      cfg.enable_hash_join = false;
      cfg.enable_hash_grouping = false;
      QueryEngine engine(&db, cfg);
      Result<QueryResult> r = engine.Run(c.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", c.label,
                     r.status().ToString().c_str());
        return 1;
      }
      total[mode] += r.value().SimulatedElapsedSeconds();
      std::printf("%-44s %10s %7lld %8lld %12.3f\n",
                  mode == 0 ? c.label : "",
                  mode == 0 ? "enabled" : "disabled",
                  static_cast<long long>(r.value().metrics.sorts_performed),
                  static_cast<long long>(r.value().metrics.rows_sorted),
                  r.value().SimulatedElapsedSeconds());
    }
  }
  std::printf("\nsuite total: enabled %.3fs vs disabled %.3fs "
              "(%.2fx overall)\n",
              total[0], total[1], total[1] / total[0]);
  return 0;
}
