// Ablation A (google-benchmark micro-costs): the fundamental operations of
// §4 — Reduce Order, Test Order, Cover Order, Homogenize Order — across
// order-specification widths and FD counts. These run inside the
// optimizer's inner loop, so their constant factors matter; the paper's
// design keeps them to simple subset operations.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "orderopt/general_order.h"
#include "orderopt/operations.h"

namespace ordopt {
namespace {

// A context with `fd_count` FDs over a 32-column table plus an equivalence
// class and a constant binding.
OrderContext MakeContext(int fd_count, bool transitive) {
  OrderContext ctx;
  Rng rng(99);
  for (int i = 0; i < fd_count; ++i) {
    ColumnSet head{ColumnId(0, static_cast<int32_t>(rng.Uniform(0, 15)))};
    ColumnSet tail{ColumnId(0, static_cast<int32_t>(rng.Uniform(16, 31)))};
    ctx.fds.Add(head, tail);
  }
  ctx.eq.AddEquivalence({0, 0}, {1, 0});
  ctx.eq.AddConstant({0, 2}, Value::Int(5));
  ctx.transitive_fds = transitive;
  return ctx;
}

OrderSpec MakeSpec(int width) {
  OrderSpec spec;
  Rng rng(7);
  for (int i = 0; i < width; ++i) {
    spec.Append(OrderElement(
        ColumnId(0, static_cast<int32_t>(rng.Uniform(0, 31))),
        rng.Chance(0.5) ? SortDirection::kAscending
                        : SortDirection::kDescending));
  }
  return spec;
}

void BM_ReduceOrder(benchmark::State& state) {
  OrderContext ctx =
      MakeContext(static_cast<int>(state.range(1)), /*transitive=*/false);
  OrderSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceOrder(spec, ctx));
  }
}
BENCHMARK(BM_ReduceOrder)
    ->ArgsProduct({{2, 4, 8, 16}, {0, 4, 16, 64}})
    ->ArgNames({"width", "fds"});

void BM_ReduceOrderTransitive(benchmark::State& state) {
  OrderContext ctx =
      MakeContext(static_cast<int>(state.range(1)), /*transitive=*/true);
  OrderSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceOrder(spec, ctx));
  }
}
BENCHMARK(BM_ReduceOrderTransitive)
    ->ArgsProduct({{8}, {4, 16, 64}})
    ->ArgNames({"width", "fds"});

void BM_TestOrder(benchmark::State& state) {
  OrderContext ctx = MakeContext(16, false);
  OrderSpec interesting = MakeSpec(static_cast<int>(state.range(0)));
  OrderSpec property = MakeSpec(static_cast<int>(state.range(0)) + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TestOrder(interesting, property, ctx));
  }
}
BENCHMARK(BM_TestOrder)->Arg(2)->Arg(8)->Arg(16)->ArgName("width");

void BM_CoverOrder(benchmark::State& state) {
  OrderContext ctx = MakeContext(16, false);
  OrderSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  OrderSpec prefix = spec.Prefix(spec.size() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CoverOrder(prefix, spec, ctx));
  }
}
BENCHMARK(BM_CoverOrder)->Arg(4)->Arg(16)->ArgName("width");

void BM_HomogenizeOrder(benchmark::State& state) {
  OrderContext ctx = MakeContext(16, false);
  EquivalenceClasses future;
  for (int i = 0; i < 16; ++i) {
    future.AddEquivalence({0, i}, {1, i});
  }
  ColumnSet targets;
  for (int i = 0; i < 32; ++i) targets.Add({1, i});
  OrderSpec spec = MakeSpec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        HomogenizeOrderPrefix(spec, targets, future, ctx));
  }
}
BENCHMARK(BM_HomogenizeOrder)->Arg(4)->Arg(16)->ArgName("width");

void BM_GeneralOrderSatisfies(benchmark::State& state) {
  OrderContext ctx = MakeContext(16, false);
  std::vector<ColumnId> group;
  for (int i = 0; i < state.range(0); ++i) {
    group.emplace_back(0, static_cast<int32_t>(i));
  }
  GeneralOrderSpec g = GeneralOrderSpec::ForGrouping(group);
  OrderSpec property = MakeSpec(static_cast<int>(state.range(0)) + 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Satisfies(property, ctx));
  }
}
BENCHMARK(BM_GeneralOrderSatisfies)->Arg(2)->Arg(8)->ArgName("groupcols");

}  // namespace
}  // namespace ordopt

BENCHMARK_MAIN();
