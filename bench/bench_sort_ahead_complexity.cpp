// Reproduces the §5.2 complexity observation: "the process of pushing down
// sort-ahead orders increases the complexity of join enumeration ... by a
// factor of O(n^2) for n sort-ahead orders. In practice, this has not been
// a problem, since typically n < 3."
//
// Two sweeps over a chain-join workload:
//   1. join size (number of tables) with sort-ahead on vs off — the
//      overhead factor of carrying differently-ordered subplans;
//   2. the cap on sort-ahead orders (0, 1, 2, ...) on a query whose order
//      scan yields several interesting orders.
// The measured quantity is plans_generated, the number of candidate plans
// submitted to the DP table (the unit the O(n^2) claim is about).

#include <cstdio>

#include "common/random.h"
#include "common/str_util.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "qgm/binder.h"
#include "qgm/rewrite.h"
#include "storage/database.h"

using namespace ordopt;

namespace {

// Chain schema: t0..t7, each with columns (k, v, w), key k, index on k;
// joins t_i.k = t_{i+1}.v.
void BuildChain(Database* db, int tables) {
  Rng rng(23);
  for (int i = 0; i < tables; ++i) {
    TableDef def;
    def.name = StrFormat("t%d", i);
    def.columns = {{"k", DataType::kInt64},
                   {"v", DataType::kInt64},
                   {"w", DataType::kInt64}};
    def.AddUniqueKey({"k"});
    def.AddIndex(def.name + "_k", {"k"}, /*unique=*/true);
    Table* t = db->CreateTable(def).value();
    for (int r = 0; r < 200; ++r) {
      t->AppendRow({Value::Int(r), Value::Int(rng.Uniform(0, 199)),
                    Value::Int(rng.Uniform(0, 9))});
    }
  }
  ORDOPT_CHECK(db->FinalizeAll().ok());
}

std::string ChainQuery(int tables) {
  std::string sql = "select t0.k, t0.w from ";
  for (int i = 0; i < tables; ++i) {
    if (i > 0) sql += ", ";
    sql += StrFormat("t%d", i);
  }
  sql += " where ";
  for (int i = 0; i + 1 < tables; ++i) {
    if (i > 0) sql += " and ";
    sql += StrFormat("t%d.k = t%d.v", i, i + 1);
  }
  // A grouped, ordered tail so the order scan produces pushable orders.
  sql += " order by t0.w, t0.k";
  return sql;
}

int64_t CountPlans(Database* db, const std::string& sql,
                   OptimizerConfig cfg) {
  auto stmt = ParseSelect(sql);
  ORDOPT_CHECK(stmt.ok());
  auto query = BindQuery(*stmt.value(), *db);
  ORDOPT_CHECK(query.ok());
  MergeDerivedTables(query.value().get());
  Planner planner(*query.value(), cfg);
  auto plan = planner.BuildPlan();
  ORDOPT_CHECK(plan.ok());
  return planner.plans_generated();
}

}  // namespace

int main() {
  const int kMaxTables = 8;
  Database db;
  BuildChain(&db, kMaxTables);

  std::printf("=== Sweep 1: join enumeration effort vs join size ===\n");
  std::printf("%-8s %18s %18s %10s\n", "tables", "plans (no SA)",
              "plans (sort-ahead)", "factor");
  for (int n = 2; n <= kMaxTables; ++n) {
    std::string sql = ChainQuery(n);
    OptimizerConfig off;
    off.enable_sort_ahead = false;
    OptimizerConfig on;
    int64_t without = CountPlans(&db, sql, off);
    int64_t with_sa = CountPlans(&db, sql, on);
    std::printf("%-8d %18lld %18lld %9.2fx\n", n,
                static_cast<long long>(without),
                static_cast<long long>(with_sa),
                static_cast<double>(with_sa) /
                    static_cast<double>(without));
  }

  std::printf("\n=== Sweep 2: effort vs number of sort-ahead orders "
              "(cap) ===\n");
  // A grouped query whose order scan produces several candidate orders
  // (the group cover, the fallback, and the ORDER BY itself).
  std::string sql =
      "select t0.w, t1.w, count(*) from t0, t1, t2, t3 "
      "where t0.k = t1.v and t1.k = t2.v and t2.k = t3.v "
      "group by t0.w, t1.w order by t1.w";
  std::printf("%-18s %18s\n", "max sort-ahead n", "plans generated");
  int64_t base = 0;
  for (int cap = 0; cap <= 4; ++cap) {
    OptimizerConfig cfg;
    cfg.max_sort_ahead_orders = cap;
    if (cap == 0) cfg.enable_sort_ahead = false;
    int64_t plans = CountPlans(&db, sql, cfg);
    if (cap == 0) base = plans;
    std::printf("%-18d %18lld   (%.2fx of n=0)\n", cap,
                static_cast<long long>(plans),
                static_cast<double>(plans) / static_cast<double>(base));
  }
  std::printf("\nExpected shape: effort grows with n but stays polynomial "
              "(O(n^2)); the paper notes n < 3 in practice.\n");
  return 0;
}
