// Ablation B: the payoff of minimizing sort columns (§4.2: "the reduced
// version of I provides the minimal number of sorting columns, which is
// important for minimizing sort costs"). Sorts the same data on 1..6 key
// columns where the trailing columns are functionally redundant, and
// reports comparisons and simulated time — the work Reduce Order saves
// when it trims a sort list.

#include <chrono>
#include <cstdio>

#include "common/random.h"
#include "exec/operators.h"

using namespace ordopt;

namespace {

class VectorSource : public Operator {
 public:
  VectorSource(std::vector<ColumnId> layout, const std::vector<Row>* rows) {
    layout_ = std::move(layout);
    rows_ = rows;
  }
  void OpenImpl() override { pos_ = 0; }
  bool NextBatchImpl(RowBatch* out) override {
    return FillBatch(out, [this](Row* row) {
      if (pos_ >= rows_->size()) return false;
      *row = (*rows_)[pos_++];
      return true;
    });
  }

 private:
  const std::vector<Row>* rows_;
  size_t pos_ = 0;
};

}  // namespace

int main() {
  const int kRows = 100000;
  const int kCols = 6;
  std::vector<ColumnId> layout;
  for (int c = 0; c < kCols; ++c) layout.emplace_back(0, c);

  // Column 0 has ~20 duplicates per value; columns 1..5 are functions of
  // it. Sorting on (c0) or on (c0, c1, ..., ck) yields equivalent orders —
  // the trailing columns only burn comparisons resolving ties that the FDs
  // guarantee are full-row ties. This is the work Reduce Order saves.
  std::vector<Row> rows;
  rows.reserve(kRows);
  Rng rng(41);
  for (int i = 0; i < kRows; ++i) {
    Row row;
    int64_t k = rng.Uniform(0, kRows / 20);
    row.push_back(Value::Int(k));
    for (int c = 1; c < kCols; ++c) {
      row.push_back(Value::Int((k * (c + 7)) % 1000003));
    }
    rows.push_back(std::move(row));
  }

  std::printf("=== Sort cost vs number of sort columns (%d rows) ===\n",
              kRows);
  std::printf("%-14s %16s %16s %14s\n", "sort columns", "comparisons",
              "sim CPU (s)", "wall (ms)");
  for (int width = 1; width <= kCols; ++width) {
    OrderSpec spec;
    for (int c = 0; c < width; ++c) {
      spec.Append(OrderElement(ColumnId(0, c)));
    }
    RuntimeMetrics m;
    SortOp sort(std::make_unique<VectorSource>(layout, &rows), spec, &m);
    auto start = std::chrono::steady_clock::now();
    sort.Open();
    Row row;
    int64_t produced = 0;
    while (sort.Next(&row)) ++produced;
    sort.Close();
    auto end = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    ORDOPT_CHECK(produced == kRows);
    std::printf("%-14d %16lld %16.3f %13.1f\n", width,
                static_cast<long long>(m.comparisons),
                m.SimulatedCpuSeconds(), wall_ms);
  }
  std::printf("\nEvery sort produced the identical order: the trailing "
              "columns are FD-redundant, exactly what Reduce Order "
              "removes.\n");
  return 0;
}
