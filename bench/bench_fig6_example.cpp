// Reproduces Figure 6 (§6): the paper's worked example where one sort,
// pushed to the bottom of a three-way join tree, satisfies the merge join,
// the GROUP BY, and the ORDER BY simultaneously:
//
//     select a.x, a.y, b.y, sum(c.z)
//     from a, b, c
//     where a.x = b.x and b.x = c.x
//     group by a.x, a.y, b.y
//     order by a.x
//
// Schema per the paper: indexes on b.x and c.x (unique keys), a.x not a
// key. The sort on (a.x, a.y) below the first join produces the order that
// serves everything: b.y reduces away through b's key FD, the merge joins
// ride the a.x = b.x = c.x equivalence class, and the ORDER BY is a prefix.

#include <cstdio>

#include "common/random.h"
#include "exec/engine.h"

using namespace ordopt;

int main() {
  Database db;
  Rng rng(17);
  {
    TableDef def;
    def.name = "a";
    def.columns = {{"x", DataType::kInt64}, {"y", DataType::kInt64}};
    Table* t = db.CreateTable(def).value();
    for (int i = 0; i < 2000; ++i) {
      t->AppendRow({Value::Int(rng.Uniform(0, 499)),
                    Value::Int(rng.Uniform(0, 9))});
    }
  }
  for (const char* name : {"b", "c"}) {
    TableDef def;
    def.name = name;
    def.columns = {{"x", DataType::kInt64},
                   {name[0] == 'b' ? "y" : "z", DataType::kInt64}};
    def.AddUniqueKey({"x"});
    def.AddIndex(std::string(name) + "_x", {"x"}, /*unique=*/true,
                 /*clustered=*/true);
    Table* t = db.CreateTable(def).value();
    for (int i = 0; i < 500; ++i) {
      t->AppendRow({Value::Int(i), Value::Int(rng.Uniform(0, 999))});
    }
  }
  if (!db.FinalizeAll().ok()) return 1;

  const char* sql =
      "select a.x, a.y, b.y, sum(c.z) from a, b, c "
      "where a.x = b.x and b.x = c.x "
      "group by a.x, a.y, b.y order by a.x";

  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };

  OptimizerConfig cfg;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  QueryEngine engine(&db, cfg);
  Result<QueryResult> r = engine.Run(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Figure 6: query ===\n%s\n\n=== chosen QEP ===\n%s\n", sql,
              r.value().plan_text.c_str());

  std::vector<const PlanNode*> sorts;
  r.value().plan->CollectKind(OpKind::kSort, &sorts);
  check(sorts.size() == 1, "exactly one sort in the whole plan");
  if (sorts.size() == 1) {
    check(sorts[0]->sort_spec.size() == 2,
          "the sort is on (a.x, a.y) — b.y reduced away via b's key FD");
    check(sorts[0]->children[0]->kind == OpKind::kTableScan,
          "the sort sits directly on table a (pushed below both joins)");
  }
  check(r.value().plan->ContainsKind(OpKind::kStreamGroupBy),
        "the GROUP BY streams off the sorted join output");

  // Contrast: with order optimization disabled, more sorts appear.
  OptimizerConfig off = cfg;
  off.enable_order_optimization = false;
  QueryEngine disabled(&db, off);
  Result<QueryResult> rd = disabled.Run(sql);
  if (!rd.ok()) return 1;
  std::vector<const PlanNode*> sorts_off;
  rd.value().plan->CollectKind(OpKind::kSort, &sorts_off);
  std::printf("\n=== disabled optimizer for contrast ===\n%s\n",
              rd.value().plan_text.c_str());
  check(sorts_off.size() > 1,
        "the disabled optimizer needs multiple sorts for the same query");
  std::printf(
      "\nsimulated elapsed: enabled %.3fs vs disabled %.3fs (ratio %.2f)\n",
      r.value().SimulatedElapsedSeconds(),
      rd.value().SimulatedElapsedSeconds(),
      rd.value().SimulatedElapsedSeconds() /
          r.value().SimulatedElapsedSeconds());

  std::printf("\n%s (%d failures)\n",
              failures == 0 ? "ALL FIGURE-6 CHECKS PASSED"
                            : "FIGURE-6 CHECKS FAILED",
              failures);
  return failures == 0 ? 0 : 1;
}
