// Ablation C: Cover Order's payoff (§4.3, and [Ant93]'s motivation) — when
// GROUP BY and ORDER BY are compatible, one sort serves both; the disabled
// optimizer pays two. Reports sort counts, rows sorted, and simulated time
// for a family of grouped+ordered queries.

#include <cstdio>

#include "common/random.h"
#include "exec/engine.h"

using namespace ordopt;

int main() {
  Database db;
  Rng rng(31);
  {
    TableDef def;
    def.name = "sales";
    def.columns = {{"region", DataType::kInt64},
                   {"product", DataType::kInt64},
                   {"day", DataType::kInt64},
                   {"amount", DataType::kInt64}};
    Table* t = db.CreateTable(def).value();
    for (int i = 0; i < 200000; ++i) {
      t->AppendRow({Value::Int(rng.Uniform(0, 49)),
                    Value::Int(rng.Uniform(0, 499)),
                    Value::Int(rng.Uniform(0, 364)),
                    Value::Int(rng.Uniform(1, 1000))});
    }
  }
  if (!db.FinalizeAll().ok()) return 1;

  struct Case {
    const char* label;
    const char* sql;
  };
  const Case cases[] = {
      {"ORDER BY == GROUP BY prefix",
       "select region, product, sum(amount) as total from sales "
       "group by region, product order by region, product"},
      {"ORDER BY permutes GROUP BY",
       "select region, product, sum(amount) as total from sales "
       "group by region, product order by product"},
      {"ORDER BY DESC inside GROUP BY freedom",
       "select region, product, sum(amount) as total from sales "
       "group by region, product order by product desc, region desc"},
      {"ORDER BY on aggregate (not coverable)",
       "select region, product, sum(amount) as total from sales "
       "group by region, product order by total desc"},
  };

  std::printf("=== Cover Order: one sort for GROUP BY + ORDER BY ===\n\n");
  std::printf("%-38s %10s %12s %12s\n", "query", "mode", "sorts",
              "sim time (s)");
  for (const Case& c : cases) {
    double times[2];
    for (int mode = 0; mode < 2; ++mode) {
      OptimizerConfig cfg;
      cfg.enable_order_optimization = mode == 0;
      cfg.enable_hash_grouping = false;  // isolate the sort story
      cfg.enable_hash_join = false;
      QueryEngine engine(&db, cfg);
      Result<QueryResult> r = engine.Run(c.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      times[mode] = r.value().SimulatedElapsedSeconds();
      std::printf("%-38s %10s %12lld %12.3f\n", mode == 0 ? c.label : "",
                  mode == 0 ? "enabled" : "disabled",
                  static_cast<long long>(r.value().metrics.sorts_performed),
                  times[mode]);
    }
    std::printf("%-38s %10s %25.2fx speedup\n\n", "", "",
                times[1] / times[0]);
  }
  std::printf("Expected shape: coverable cases run one sort when enabled "
              "and two when disabled; the aggregate-ordered case needs the "
              "second sort either way.\n");
  return 0;
}
