// Chaos benchmark: the resilience layer under sustained fault injection.
// Five seeded randomized fault schedules each drive a 64-session mixed
// TPC-D fleet through one QueryService while spill, executor, planner,
// and storage sites misfire; we report per-seed survival rate (queries
// answered OK or failed cleanly with an expected code), retries, breaker
// trips, degraded executions, and p99 latency under faults. Custom main
// (not google-benchmark): the measurement unit is a whole fleet, and the
// output is the JSON consumed by scripts/check.sh --chaos
// (BENCH_chaos.json). Exits non-zero if any invariant breaks: a wrong
// answer, an unexpected failure code, a stuck ticket, or a shared budget
// that does not drain to zero.
//
// Usage: bench_chaos [output.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/str_util.h"
#include "service/query_service.h"
#include "tpcd/tpcd.h"

namespace ordopt {
namespace {

using Canon = std::vector<std::vector<std::string>>;

constexpr int kSessions = 64;
constexpr int kQueriesPerSession = 4;

// Canonical multiset of rendered rows, numerics through double so
// 3 == 3.0 — mirrors tests/query_test_util.h.
Canon Canonicalize(const std::vector<Row>& rows) {
  Canon out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const Value& v : row) {
      if (v.type() == DataType::kInt64 || v.type() == DataType::kDouble) {
        r.push_back(StrFormat("%.6f", v.AsDouble()));
      } else {
        r.push_back(v.ToString());
      }
    }
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ChaosSite {
  const char* name;
  bool can_io;
};
constexpr ChaosSite kChaosSites[] = {
    {"exec.sort.spill.write", true}, {"exec.sort.spill.read", true},
    {"exec.sort.spill.merge", false}, {"exec.operator.next", false},
    {"planner.alloc", false},        {"storage.btree.read", true},
};

// Derives a fault schedule from the seed in the ORDOPT_FAULTS spec grammar
// and arms it. Mirrors tests/test_chaos.cpp.
std::string ArmSeededSchedule(std::mt19937* rng) {
  int arms = 2 + static_cast<int>((*rng)() % 3);
  std::set<int> picked;
  std::string spec;
  for (int i = 0; i < arms; ++i) {
    int site = static_cast<int>((*rng)() % std::size(kChaosSites));
    if (!picked.insert(site).second) continue;
    int64_t fire_after = static_cast<int64_t>((*rng)() % 400);
    int64_t fire_count = 1 + static_cast<int64_t>((*rng)() % 8);
    const char* code =
        (kChaosSites[site].can_io && (*rng)() % 2 == 0) ? "io" : "internal";
    if (!spec.empty()) spec += ',';
    spec += std::string(kChaosSites[site].name) + ":" +
            std::to_string(fire_after) + ":" + std::to_string(fire_count) +
            ":" + code;
  }
  Status armed = FaultInjector::Global().ArmFromSpec(spec);
  if (!armed.ok()) {
    std::fprintf(stderr, "bench_chaos: bad spec %s: %s\n", spec.c_str(),
                 armed.ToString().c_str());
  }
  return spec;
}

bool IsExpectedChaosCode(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
    case StatusCode::kIoError:
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kCancelled:
    case StatusCode::kTimeout:
      return true;
    default:
      return false;
  }
}

struct SeedResult {
  uint32_t seed = 0;
  std::string spec;
  int64_t submitted = 0;
  int64_t ok = 0;
  int64_t clean_failures = 0;
  double survival_rate = 0.0;  // (ok + clean failures) / submitted
  int64_t retried = 0;
  int64_t breaker_trips = 0;
  int64_t breaker_rejected = 0;
  int64_t degraded = 0;
  int64_t quarantined = 0;
  double p99_ms = 0.0;
  bool invariants_ok = true;
};

SeedResult RunSeed(Database* db, const std::vector<std::string>& workload,
                   const std::vector<Canon>& expected, uint32_t seed) {
  SeedResult out;
  out.seed = seed;
  std::mt19937 rng(seed);
  out.spec = ArmSeededSchedule(&rng);

  ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 512;
  config.plan_cache_capacity = 64;
  config.global_budget_bytes = 64 << 20;
  config.engine_config.cost_params.sort_memory_rows = 64;  // force spills
  config.resilience.breaker.failure_threshold = 4;
  config.resilience.breaker.open_seconds = 0.01;
  QueryService service(db, config);

  std::vector<int64_t> session_ids;
  session_ids.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s)
    session_ids.push_back(service.OpenSession());

  // Shared latency histogram: thread-sharded Record, same percentile
  // definition the service's own latency series uses.
  Histogram latency_us;
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> clean_failures{0};
  std::atomic<int64_t> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([&, s] {
      for (int q = 0; q < kQueriesPerSession; ++q) {
        size_t w = (s + q) % workload.size();
        auto t0 = std::chrono::steady_clock::now();
        Result<QueryResult> result =
            service.Execute(session_ids[s], workload[w]);
        auto t1 = std::chrono::steady_clock::now();
        if (result.ok()) {
          ok.fetch_add(1);
          latency_us.Record(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                  .count());
          if (Canonicalize(result.value().rows) != expected[w]) {
            wrong.fetch_add(1);
            std::fprintf(stderr,
                         "bench_chaos: seed %u: wrong rows for query %zu\n",
                         seed, w);
          }
        } else if (IsExpectedChaosCode(result.status().code())) {
          clean_failures.fetch_add(1);
        } else {
          wrong.fetch_add(1);
          std::fprintf(stderr, "bench_chaos: seed %u: unexpected code: %s\n",
                       seed, result.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  FaultInjector::Global().DisarmAll();

  out.submitted = static_cast<int64_t>(kSessions) * kQueriesPerSession;
  out.ok = ok.load();
  out.clean_failures = clean_failures.load();
  out.survival_rate =
      static_cast<double>(out.ok + out.clean_failures) / out.submitted;
  ServiceStats stats = service.stats();
  out.retried = stats.retried;
  out.breaker_rejected = stats.breaker_rejected;
  out.breaker_trips = static_cast<int64_t>(service.resilience().total_trips());
  out.degraded = stats.degraded;
  out.quarantined = stats.quarantined;
  out.p99_ms = latency_us.Snap().Percentile(0.99) / 1000.0;

  // Invariants: every answer accounted for, no wrong rows or alien codes,
  // and the shared budget drains to zero at shutdown.
  bool accounted = stats.completed + stats.failed == stats.admitted &&
                   stats.completed == out.ok;
  service.Shutdown();
  bool drained = service.budget().used_bytes() == 0;
  out.invariants_ok = wrong.load() == 0 && accounted && drained;
  if (!accounted)
    std::fprintf(stderr, "bench_chaos: seed %u: ticket accounting broken\n",
                 seed);
  if (!drained)
    std::fprintf(stderr, "bench_chaos: seed %u: budget did not drain\n", seed);
  return out;
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_chaos.json";

  Database db;
  TpcdConfig tpcd;
  tpcd.scale_factor = 0.002;
  Status load = LoadTpcd(&db, tpcd);
  if (!load.ok()) {
    std::fprintf(stderr, "bench_chaos: %s\n", load.ToString().c_str());
    return 1;
  }

  const std::vector<std::string> workload = {
      tpcd_queries::kQuery3,         tpcd_queries::kPricingSummary,
      tpcd_queries::kDistinctShipdates, tpcd_queries::kLateOrders,
      tpcd_queries::kRegionRevenue,
  };
  QueryEngine reference(&db);
  std::vector<Canon> expected;
  for (const std::string& sql : workload) {
    Result<QueryResult> serial = reference.Run(sql);
    if (!serial.ok()) {
      std::fprintf(stderr, "bench_chaos: reference failed: %s\n",
                   serial.status().ToString().c_str());
      return 1;
    }
    expected.push_back(Canonicalize(serial.value().rows));
  }

  std::vector<SeedResult> results;
  bool all_ok = true;
  for (uint32_t seed : {11u, 23u, 37u, 53u, 71u}) {
    std::fprintf(stderr, "bench_chaos: seed %u (%d sessions)...\n", seed,
                 kSessions);
    results.push_back(RunSeed(&db, workload, expected, seed));
    all_ok = all_ok && results.back().invariants_ok;
  }

  std::string json = StrFormat(
      "{\n  \"benchmark\": \"chaos\",\n  \"workload\": \"tpcd-mixed-5\",\n"
      "  \"workers\": 4,\n  \"sessions\": %d,\n  \"queries_per_session\": "
      "%d,\n  \"seeds\": [\n",
      kSessions, kQueriesPerSession);
  for (size_t i = 0; i < results.size(); ++i) {
    const SeedResult& r = results[i];
    json += StrFormat(
        "    {\"seed\": %u, \"spec\": \"%s\", \"submitted\": %lld, "
        "\"ok\": %lld, \"clean_failures\": %lld, \"survival_rate\": %.3f, "
        "\"retried\": %lld, \"breaker_trips\": %lld, \"breaker_rejected\": "
        "%lld, \"degraded\": %lld, \"quarantined\": %lld, \"p99_ms\": %.3f, "
        "\"invariants_ok\": %s}%s\n",
        r.seed, r.spec.c_str(), static_cast<long long>(r.submitted),
        static_cast<long long>(r.ok), static_cast<long long>(r.clean_failures),
        r.survival_rate, static_cast<long long>(r.retried),
        static_cast<long long>(r.breaker_trips),
        static_cast<long long>(r.breaker_rejected),
        static_cast<long long>(r.degraded),
        static_cast<long long>(r.quarantined), r.p99_ms,
        r.invariants_ok ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  json += StrFormat("  ],\n  \"all_invariants_ok\": %s\n}\n",
                    all_ok ? "true" : "false");

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_chaos: cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_chaos: wrote %s\n", out_path);
  std::fputs(json.c_str(), stdout);
  return all_ok ? 0 : 2;
}

}  // namespace
}  // namespace ordopt

int main(int argc, char** argv) { return ordopt::Main(argc, argv); }
