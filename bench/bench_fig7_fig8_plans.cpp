// Reproduces Figures 7 and 8 (§8.1): the execution plans chosen for TPC-D
// Query 3 by the production optimizer (order optimization enabled) and by
// the disabled baseline, with structural checks on everything the paper
// calls out:
//
//   Figure 7 (production): the sort on o_orderkey sits below the
//   nested-loop join into lineitem's clustered index; it satisfies the
//   GROUP BY through the o_orderkey = l_orderkey equivalence class and the
//   FD {o_orderkey} -> {o_orderdate, o_shippriority}; the probes become
//   clustered (the "ordered nested-loop join").
//
//   Figure 8 (disabled): a merge join on o_orderkey = l_orderkey with a
//   separate full-width sort above it for the GROUP BY.

#include <cstdio>
#include <cstring>

#include "exec/engine.h"
#include "tpcd/tpcd.h"

using namespace ordopt;

namespace {

int failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++failures;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.01;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) sf = std::atof(argv[i] + 5);
  }
  Database db;
  TpcdConfig config;
  config.scale_factor = sf;
  if (!LoadTpcd(&db, config).ok()) return 1;

  // ---- Figure 7 -----------------------------------------------------------
  {
    OptimizerConfig cfg;
    cfg.enable_hash_join = false;
    cfg.enable_hash_grouping = false;
    QueryEngine engine(&db, cfg);
    Result<QueryResult> r = engine.Explain(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    const PlanRef& plan = r.value().plan;
    std::printf("=== Figure 7: Query 3, production (order optimization "
                "enabled) ===\n%s\n",
                r.value().plan_text.c_str());

    std::vector<const PlanNode*> nljs, groups, sorts;
    plan->CollectKind(OpKind::kIndexNLJoin, &nljs);
    plan->CollectKind(OpKind::kStreamGroupBy, &groups);
    plan->CollectKind(OpKind::kSort, &sorts);

    const PlanNode* lineitem_nlj = nullptr;
    for (const PlanNode* j : nljs) {
      if (j->table->name() == "lineitem") lineitem_nlj = j;
    }
    Check(lineitem_nlj != nullptr,
          "lineitem is reached by an index nested-loop join");
    Check(lineitem_nlj != nullptr && lineitem_nlj->ordered_probes,
          "the nested-loop join is ordered (clustered probes)");
    Check(lineitem_nlj != nullptr &&
              lineitem_nlj->table->def()
                  .indexes[static_cast<size_t>(lineitem_nlj->index_ordinal)]
                  .clustered,
          "it probes the clustered l_orderkey index");
    Check(groups.size() == 1, "the GROUP BY streams (no grouping sort)");
    bool sort_below_join = false;
    if (lineitem_nlj != nullptr &&
        lineitem_nlj->children[0]->ContainsKind(OpKind::kSort)) {
      sort_below_join = true;
    }
    Check(sort_below_join || (lineitem_nlj != nullptr &&
                              !lineitem_nlj->children[0]->props.order.empty()),
          "an o_orderkey order is established below the join (sort-ahead)");
    Check(sorts.size() <= 2, "at most two sorts total (group sort avoided)");
  }

  // ---- Figure 8 -----------------------------------------------------------
  {
    OptimizerConfig cfg;
    cfg.enable_order_optimization = false;
    cfg.enable_hash_join = false;
    cfg.enable_hash_grouping = false;
    QueryEngine engine(&db, cfg);
    Result<QueryResult> r = engine.Explain(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    const PlanRef& plan = r.value().plan;
    std::printf("\n=== Figure 8: Query 3, order optimization disabled ===\n"
                "%s\n",
                r.value().plan_text.c_str());

    std::vector<const PlanNode*> merges, groups, sorts;
    plan->CollectKind(OpKind::kMergeJoin, &merges);
    plan->CollectKind(OpKind::kSortGroupBy, &groups);
    plan->CollectKind(OpKind::kSort, &sorts);

    bool lineitem_merge = false;
    for (const PlanNode* m : merges) {
      for (const auto& [l, rcol] : m->join_pairs) {
        (void)l;
        (void)rcol;
        lineitem_merge = true;
      }
    }
    Check(lineitem_merge, "a merge join is used (no ordered NL join)");
    Check(groups.size() == 1,
          "the GROUP BY needs an explicit grouping sort");
    bool full_width = false;
    for (const PlanNode* g : groups) {
      if (g->children[0]->kind == OpKind::kSort &&
          g->children[0]->sort_spec.size() == 3) {
        full_width = true;
      }
    }
    Check(full_width,
          "the grouping sort uses the full 3-column list "
          "(l_orderkey, o_orderdate, o_shippriority)");
    Check(sorts.size() >= 2, "at least two sorts total");
  }

  std::printf("\n%s (%d failures)\n",
              failures == 0 ? "ALL PLAN-SHAPE CHECKS PASSED"
                            : "PLAN-SHAPE CHECKS FAILED",
              failures);
  return failures == 0 ? 0 : 1;
}
