// Reproduces Figure 1 (§3): the QGM and QEP for the paper's introductory
// example
//
//     select a.y, sum(b.y) from a, b where a.x = b.x group by a.y
//
// The figure shows a SELECT box feeding a GROUP BY box, and a QEP with a
// merge join over an index scan of b plus a sorted scan of a, with the
// group-by's sort producing order (a.y). We print both representations and
// check the box stack.

#include <cstdio>

#include "common/random.h"
#include "exec/engine.h"

using namespace ordopt;

int main() {
  Database db;
  Rng rng(3);
  {
    TableDef def;
    def.name = "a";
    def.columns = {{"x", DataType::kInt64}, {"y", DataType::kInt64}};
    Table* t = db.CreateTable(def).value();
    for (int i = 0; i < 3000; ++i) {
      t->AppendRow({Value::Int(rng.Uniform(0, 999)),
                    Value::Int(rng.Uniform(0, 99))});
    }
  }
  {
    TableDef def;
    def.name = "b";
    def.columns = {{"x", DataType::kInt64}, {"y", DataType::kInt64}};
    def.AddUniqueKey({"x"});
    def.AddIndex("b_x", {"x"}, /*unique=*/true, /*clustered=*/true);
    Table* t = db.CreateTable(def).value();
    for (int i = 0; i < 1000; ++i) {
      t->AppendRow({Value::Int(i), Value::Int(rng.Uniform(0, 99))});
    }
  }
  if (!db.FinalizeAll().ok()) return 1;

  const char* sql =
      "select a.y, sum(b.y) from a, b where a.x = b.x group by a.y";

  OptimizerConfig cfg;
  cfg.enable_hash_join = false;  // the paper-era engine profile
  cfg.enable_hash_grouping = false;
  QueryEngine engine(&db, cfg);
  Result<QueryResult> r = engine.Run(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Figure 1: query ===\n%s\n\n", sql);
  std::printf("=== QGM (SELECT box under GROUP BY box) ===\n%s\n",
              r.value().qgm_text.c_str());
  std::printf("=== QEP ===\n%s\n", r.value().plan_text.c_str());
  std::printf("rows: %zu   metrics: %s\n", r.value().rows.size(),
              r.value().metrics.ToString().c_str());

  // Structural expectations from the figure.
  int failures = 0;
  auto check = [&](bool ok, const char* what) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };
  check(r.value().qgm_text.find("GROUP BY box") != std::string::npos,
        "QGM has a GROUP BY box over the SELECT box");
  check(r.value().plan->ContainsKind(OpKind::kMergeJoin) ||
            r.value().plan->ContainsKind(OpKind::kIndexNLJoin),
        "QEP joins a and b with an order-based join");
  check(r.value().plan->ContainsKind(OpKind::kSortGroupBy) ||
            r.value().plan->ContainsKind(OpKind::kStreamGroupBy),
        "QEP uses order-based grouping (sort produces order (a.y))");
  return failures == 0 ? 0 : 1;
}
