// Reproduces Table 1 (§8.1): elapsed time for TPC-D Query 3 with order
// optimization enabled (production DB2) vs disabled, averaged over five
// runs. The paper reports 192 s vs 393 s (ratio 2.04) on a 1 GB database;
// we report simulated elapsed time on the paper's hardware profile
// (1996-class disks + CPU) at a configurable scale factor. The shape to
// check: the production configuration wins by roughly 2x.
//
// Both configurations run the DB2/CS engine profile (no hash join / hash
// aggregation — DB2/CS had neither in 1996); a supplementary run with hash
// operators enabled shows the modern trade-off.
//
// Usage: bench_table1_q3 [--sf=0.02] [--runs=5] [--guard-overhead]
//
// --guard-overhead instead measures the wall-clock cost of the execution
// guardrails on Q3: unlimited QueryLimits (every limit check short-
// circuits) vs generous finite limits (every per-row check is live but
// never trips). The delta is the price of the safety net.

#include <cstdio>
#include <cstring>
#include <string>

#include "exec/engine.h"
#include "tpcd/tpcd.h"

using namespace ordopt;

namespace {

struct ModeResult {
  double sim_seconds = 0;
  double wall_seconds = 0;
  RuntimeMetrics metrics;
  std::string plan;
};

ModeResult RunMode(Database* db, bool order_opt, bool hash_ops, int runs) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = order_opt;
  cfg.enable_hash_join = hash_ops;
  cfg.enable_hash_grouping = hash_ops;
  QueryEngine engine(db, cfg);
  ModeResult out;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.sim_seconds += r.value().SimulatedElapsedSeconds();
    out.wall_seconds += r.value().elapsed_seconds;
    if (i == 0) {
      out.metrics = r.value().metrics;
      out.plan = r.value().plan_text;
    }
  }
  out.sim_seconds /= runs;
  out.wall_seconds /= runs;
  return out;
}

double RunGuardMode(Database* db, QueryLimits limits, int runs) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = true;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  cfg.limits = limits;
  QueryEngine engine(db, cfg);
  double wall = 0;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    wall += r.value().elapsed_seconds;
  }
  return wall / runs;
}

int GuardOverhead(Database* db, int runs) {
  QueryLimits generous;
  generous.deadline_seconds = 3600.0;
  generous.max_rows_scanned = int64_t{1} << 40;
  generous.max_rows_produced = int64_t{1} << 40;
  generous.max_buffered_rows = int64_t{1} << 40;
  generous.max_buffered_bytes = int64_t{1} << 50;

  // Warm-up, then interleave to keep cache/frequency drift symmetric.
  RunGuardMode(db, QueryLimits{}, 1);
  double unlimited = 0, guarded = 0;
  for (int i = 0; i < 3; ++i) {
    unlimited += RunGuardMode(db, QueryLimits{}, runs);
    guarded += RunGuardMode(db, generous, runs);
  }
  unlimited /= 3;
  guarded /= 3;
  double pct = (guarded - unlimited) / unlimited * 100.0;
  std::printf("--- guardrail overhead on Q3 (wall clock, %d runs x3) ---\n",
              runs);
  std::printf("unlimited limits:       %.4fs\n", unlimited);
  std::printf("generous finite limits: %.4fs\n", guarded);
  std::printf("overhead: %+.2f%%   [target: < 2%%]\n", pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.02;
  int runs = 5;
  bool guard_overhead = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) sf = std::atof(argv[i] + 5);
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--guard-overhead") == 0) guard_overhead = true;
  }

  std::printf("=== Table 1: Elapsed Time for Query 3 (TPC-D, SF=%.3f, "
              "%d runs) ===\n\n",
              sf, runs);
  Database db;
  TpcdConfig config;
  config.scale_factor = sf;
  Status st = LoadTpcd(&db, config);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("database: customer=%lld orders=%lld lineitem=%lld rows\n\n",
              static_cast<long long>(db.GetTable("customer")->row_count()),
              static_cast<long long>(db.GetTable("orders")->row_count()),
              static_cast<long long>(db.GetTable("lineitem")->row_count()));

  if (guard_overhead) return GuardOverhead(&db, runs);

  // DB2/CS engine profile: the paper's configuration.
  ModeResult prod = RunMode(&db, /*order_opt=*/true, /*hash=*/false, runs);
  ModeResult disabled =
      RunMode(&db, /*order_opt=*/false, /*hash=*/false, runs);

  std::printf("--- DB2/CS engine profile (no hash operators), simulated "
              "1996 hardware ---\n");
  std::printf("%-22s %14s %14s\n", "", "Production DB2", "Disabled DB2");
  std::printf("%-22s %13.2fs %13.2fs\n", "elapsed (simulated)",
              prod.sim_seconds, disabled.sim_seconds);
  std::printf("%-22s %14lld %14lld\n", "sorts",
              static_cast<long long>(prod.metrics.sorts_performed),
              static_cast<long long>(disabled.metrics.sorts_performed));
  std::printf("%-22s %14lld %14lld\n", "rows sorted",
              static_cast<long long>(prod.metrics.rows_sorted),
              static_cast<long long>(disabled.metrics.rows_sorted));
  std::printf("%-22s %14lld %14lld\n", "rows scanned",
              static_cast<long long>(prod.metrics.rows_scanned),
              static_cast<long long>(disabled.metrics.rows_scanned));
  std::printf("%-22s %14lld %14lld\n", "seq pages",
              static_cast<long long>(prod.metrics.seq_pages),
              static_cast<long long>(disabled.metrics.seq_pages));
  std::printf("%-22s %14lld %14lld\n", "random pages",
              static_cast<long long>(prod.metrics.random_pages),
              static_cast<long long>(disabled.metrics.random_pages));
  double ratio = disabled.sim_seconds / prod.sim_seconds;
  std::printf("\nRatio (disabled / production): %.2f   [paper: 2.04]\n",
              ratio);
  std::printf("Shape check: production wins: %s\n\n",
              ratio > 1.0 ? "YES" : "NO  <-- UNEXPECTED");

  // Supplementary: modern engine profile with hash operators available.
  ModeResult prod_h = RunMode(&db, true, /*hash=*/true, runs);
  ModeResult dis_h = RunMode(&db, false, /*hash=*/true, runs);
  std::printf("--- supplementary: hash join/aggregation available ---\n");
  std::printf("production %.2fs vs disabled %.2fs  (ratio %.2f)\n\n",
              prod_h.sim_seconds, dis_h.sim_seconds,
              dis_h.sim_seconds / prod_h.sim_seconds);

  std::printf("--- production plan (Figure 7 shape) ---\n%s\n",
              prod.plan.c_str());
  std::printf("--- disabled plan (Figure 8 shape) ---\n%s\n",
              disabled.plan.c_str());
  return 0;
}
