// Reproduces Table 1 (§8.1): elapsed time for TPC-D Query 3 with order
// optimization enabled (production DB2) vs disabled, averaged over five
// runs. The paper reports 192 s vs 393 s (ratio 2.04) on a 1 GB database;
// we report simulated elapsed time on the paper's hardware profile
// (1996-class disks + CPU) at a configurable scale factor. The shape to
// check: the production configuration wins by roughly 2x.
//
// Both configurations run the DB2/CS engine profile (no hash join / hash
// aggregation — DB2/CS had neither in 1996); a supplementary run with hash
// operators enabled shows the modern trade-off.
//
// Usage: bench_table1_q3 [--sf=0.02] [--runs=5] [--sort-budget=N]
//                        [--guard-overhead] [--spill-check] [--explain]
//                        [--trace-overhead]
//
// --sort-budget=N sets cost_params.sort_memory_rows for every mode, so a
// small N forces Q3's sorts through the external-merge spill path.
//
// --guard-overhead instead measures the wall-clock cost of the execution
// guardrails on Q3: unlimited QueryLimits (every limit check short-
// circuits) vs generous finite limits (every per-row check is live but
// never trips). The delta is the price of the safety net.
//
// --spill-check instead runs Q3 once in memory and once with the sort
// budget forced below the input size, verifies the two row vectors are
// identical, and reports the spill metrics plus the wall-clock cost of
// spilling.
//
// --explain instead runs Q3 once under EXPLAIN ANALYZE and prints the
// annotated plan plus an est-vs-actual row-count summary with q-errors —
// how well the cost model's cardinalities track reality.
//
// --trace-overhead instead measures the wall-clock cost of optimizer
// tracing on Q3: trace off vs TraceLevel::kOptimizer (identical execution
// path, events recorded at plan time only). Exits nonzero above 2%.
// kFull (per-operator stats) overhead is reported informationally.
//
// --plan-time instead measures planner wall time on Q3 (plan-only, no
// execution): average milliseconds per optimization, plans generated and
// retained, and the reduce-cache hit rate. --json=PATH additionally emits
// the numbers as a JSON object (the check.sh --plan-bench gate reads it).
//
// --batch-sweep instead sweeps the execution batch size (1, 256, 1024,
// 4096) on Q3 and reports exec wall time per size plus the speedup vs
// batch size 1 — the row-at-a-time shim driven through the identical code
// path. Row streams must be identical across sizes. --json=PATH emits the
// numbers (the check.sh --batch gate reads it and enforces >= 1.5x at
// batch size 1024).
//
// --parallel-sweep instead runs Q3 at 1/2/4 exchange workers
// (OptimizerConfig::parallel_workers), asserts every parallel row stream
// is identical to serial, and reports the modeled critical-path speedup
// from per-thread CPU time (this host has one core, so wall clock cannot
// parallelize). --json=PATH emits the numbers (the check.sh --parallel
// gate reads it and enforces >= 1.8x modeled speedup at 4 workers).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "exec/analyze.h"
#include "exec/engine.h"
#include "tpcd/tpcd.h"

using namespace ordopt;

namespace {

struct ModeResult {
  double sim_seconds = 0;
  double wall_seconds = 0;
  RuntimeMetrics metrics;
  std::string plan;
  std::vector<Row> rows;
};

ModeResult RunMode(Database* db, bool order_opt, bool hash_ops, int runs,
                   int64_t sort_budget = 0) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = order_opt;
  cfg.enable_hash_join = hash_ops;
  cfg.enable_hash_grouping = hash_ops;
  if (sort_budget != 0) cfg.cost_params.sort_memory_rows = sort_budget;
  QueryEngine engine(db, cfg);
  ModeResult out;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    out.sim_seconds += r.value().SimulatedElapsedSeconds();
    out.wall_seconds += r.value().elapsed_seconds;
    if (i == 0) {
      out.metrics = r.value().metrics;
      out.plan = r.value().plan_text;
      out.rows = std::move(r.value().rows);
    }
  }
  out.sim_seconds /= runs;
  out.wall_seconds /= runs;
  return out;
}

double RunGuardMode(Database* db, QueryLimits limits, int runs) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = true;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  cfg.limits = limits;
  QueryEngine engine(db, cfg);
  double wall = 0;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    wall += r.value().elapsed_seconds;
  }
  return wall / runs;
}

int GuardOverhead(Database* db, int runs) {
  QueryLimits generous;
  generous.deadline_seconds = 3600.0;
  generous.max_rows_scanned = int64_t{1} << 40;
  generous.max_rows_produced = int64_t{1} << 40;
  generous.max_buffered_rows = int64_t{1} << 40;
  generous.max_buffered_bytes = int64_t{1} << 50;

  // Warm-up, then interleave to keep cache/frequency drift symmetric.
  RunGuardMode(db, QueryLimits{}, 1);
  double unlimited = 0, guarded = 0;
  for (int i = 0; i < 3; ++i) {
    unlimited += RunGuardMode(db, QueryLimits{}, runs);
    guarded += RunGuardMode(db, generous, runs);
  }
  unlimited /= 3;
  guarded /= 3;
  double pct = (guarded - unlimited) / unlimited * 100.0;
  std::printf("--- guardrail overhead on Q3 (wall clock, %d runs x3) ---\n",
              runs);
  std::printf("unlimited limits:       %.4fs\n", unlimited);
  std::printf("generous finite limits: %.4fs\n", guarded);
  std::printf("overhead: %+.2f%%   [target: < 2%%]\n", pct);
  return 0;
}

// Forced-spill correctness + cost check: the acceptance gate for the
// external-merge sort. Q3 with the budget below its sort input must be
// row-identical to the in-memory run and report spilled-run metrics.
int SpillCheck(Database* db, int runs) {
  ModeResult in_memory =
      RunMode(db, /*order_opt=*/true, /*hash=*/false, runs);
  // Q3's largest sort input at SF=0.02 is a few thousand rows; 64 rows
  // (one page) forces dozens of runs through the k-way merge.
  const int64_t budget = 64;
  ModeResult spilled =
      RunMode(db, /*order_opt=*/true, /*hash=*/false, runs, budget);

  std::printf("--- forced-spill check (sort budget = %lld rows) ---\n",
              static_cast<long long>(budget));
  std::printf("%-24s %12s %12s\n", "", "in-memory", "spilled");
  std::printf("%-24s %12zu %12zu\n", "result rows", in_memory.rows.size(),
              spilled.rows.size());
  std::printf("%-24s %11.4fs %11.4fs\n", "elapsed (wall)",
              in_memory.wall_seconds, spilled.wall_seconds);
  std::printf("%-24s %12lld %12lld\n", "spilled runs",
              static_cast<long long>(in_memory.metrics.spill_runs),
              static_cast<long long>(spilled.metrics.spill_runs));
  std::printf("%-24s %12lld %12lld\n", "spilled rows",
              static_cast<long long>(in_memory.metrics.spill_rows),
              static_cast<long long>(spilled.metrics.spill_rows));
  std::printf("%-24s %12lld %12lld\n", "spilled bytes",
              static_cast<long long>(in_memory.metrics.spill_bytes),
              static_cast<long long>(spilled.metrics.spill_bytes));
  std::printf("%-24s %12lld %12lld\n", "I/O retries",
              static_cast<long long>(in_memory.metrics.spill_retries),
              static_cast<long long>(spilled.metrics.spill_retries));
  std::printf("%-24s %12lld %12lld\n", "buffered rows peak",
              static_cast<long long>(in_memory.metrics.rows_buffered_peak),
              static_cast<long long>(spilled.metrics.rows_buffered_peak));
  bool identical = in_memory.rows == spilled.rows;
  bool spilled_something = spilled.metrics.spill_runs > 0;
  std::printf("\nrows identical to in-memory path: %s\n",
              identical ? "YES" : "NO  <-- FAIL");
  std::printf("spill path exercised: %s\n",
              spilled_something ? "YES" : "NO  <-- FAIL");
  return identical && spilled_something ? 0 : 1;
}

// EXPLAIN ANALYZE on Q3: annotated plan + estimate-quality summary.
int ExplainQ3(Database* db) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = true;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  QueryEngine engine(db, cfg);
  Result<QueryResult> r = engine.RunAnalyzed(tpcd_queries::kQuery3);
  if (!r.ok()) {
    std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const QueryResult& q = r.value();
  std::printf("--- EXPLAIN ANALYZE: Query 3, production configuration ---\n");
  std::printf("%s\n", q.analyzed_plan_text.c_str());

  std::vector<EstActualRow> rows = EstVsActualRows(q.plan, q.op_profile);
  std::printf("--- est vs actual rows (q-error = max(est/act, act/est)) "
              "---\n");
  std::printf("%-52s %12s %12s %8s\n", "operator", "est", "act", "q-err");
  double worst = 1.0;
  for (const EstActualRow& row : rows) {
    std::string label = row.label.size() > 52 ? row.label.substr(0, 49) + "..."
                                              : row.label;
    std::printf("%-52s %12.0f %12lld %8.2f\n", label.c_str(), row.est_rows,
                static_cast<long long>(row.act_rows), row.q_error);
    if (row.q_error > worst) worst = row.q_error;
  }
  std::printf("\nworst q-error: %.2f over %zu operators\n", worst,
              rows.size());
  return 0;
}

// Tracing overhead on Q3. The gated comparison is off vs kOptimizer —
// the execution path is bit-identical (no collector reaches the
// operators), so the delta is plan-time event recording and must sit
// within noise. kFull turns on per-operator timing/stat collection and is
// reported for information.
void RunTraceMode(Database* db, TraceLevel level, int runs,
                  std::vector<double>* samples) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = true;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  cfg.trace_level = level;
  QueryEngine engine(db, cfg);
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    samples->push_back(r.value().elapsed_seconds);
  }
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  size_t n = v.size();
  return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

int TraceOverhead(Database* db, int runs) {
  // Wall-clock noise on a ~10ms workload dwarfs a 2% budget, so the
  // estimate must cancel drift rather than average it: each iteration
  // measures all three modes back-to-back (per-mode median of `runs`
  // executions), yielding one paired overhead sample; the gate compares
  // the median across iterations. CPU-frequency drift that spans an
  // iteration shifts both sides of a pair equally and cancels; a mean of
  // unpaired batches let one preempted batch blow past the gate.
  constexpr int kIterations = 9;
  std::vector<double> warm;
  RunTraceMode(db, TraceLevel::kOff, 1, &warm);
  std::vector<double> off_meds, opt_pcts, full_pcts;
  for (int i = 0; i < kIterations; ++i) {
    std::vector<double> off, optimizer, full;
    RunTraceMode(db, TraceLevel::kOff, runs, &off);
    RunTraceMode(db, TraceLevel::kOptimizer, runs, &optimizer);
    RunTraceMode(db, TraceLevel::kFull, runs, &full);
    double o = Median(off);
    off_meds.push_back(o);
    opt_pcts.push_back((Median(optimizer) - o) / o * 100.0);
    full_pcts.push_back((Median(full) - o) / o * 100.0);
  }
  double off_med = Median(off_meds);
  double opt_pct = Median(opt_pcts);
  double full_pct = Median(full_pcts);
  std::printf(
      "--- tracing overhead on Q3 (paired medians, %d runs x%d) ---\n",
      runs, kIterations);
  std::printf("trace off:             %.4fs\n", off_med);
  std::printf("kOptimizer (events):   %+.2f%%  [target: < 2%%]\n", opt_pct);
  std::printf("kFull (op stats):      %+.2f%%  (informational)\n", full_pct);
  return opt_pct < 2.0 ? 0 : 1;
}

// Planning-time microbenchmark: optimize Q3 repeatedly without executing
// it. This is the workload the reduce cache and memo refactor target, so
// the numbers double as the regression baseline for check.sh --plan-bench.
int PlanTime(Database* db, int runs, const std::string& json_path) {
  OptimizerConfig cfg;
  cfg.enable_order_optimization = true;
  cfg.enable_hash_join = false;
  cfg.enable_hash_grouping = false;
  QueryEngine engine(db, cfg);

  // Warm-up (parser/catalog caches, allocator).
  if (!engine.Explain(tpcd_queries::kQuery3).ok()) {
    std::fprintf(stderr, "Q3 plan failed\n");
    return 1;
  }

  const int iters = runs * 20;  // planning is fast; amplify for stable timing
  QueryResult last;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    Result<QueryResult> r = engine.Explain(tpcd_queries::kQuery3);
    if (!r.ok()) {
      std::fprintf(stderr, "Q3 plan failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    if (i == iters - 1) last = std::move(r.value());
  }
  auto end = std::chrono::steady_clock::now();
  double total_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  double avg_ms = total_ms / iters;

  double hit_rate = 0.0;
  int64_t lookups = last.reduce_cache_hits + last.reduce_cache_misses;
  if (lookups > 0) {
    hit_rate = static_cast<double>(last.reduce_cache_hits) / lookups;
  }

  std::printf("--- planning time on Q3 (plan-only, %d iterations) ---\n",
              iters);
  std::printf("avg plan time:        %.4f ms\n", avg_ms);
  std::printf("plans generated:      %lld\n",
              static_cast<long long>(last.plans_generated));
  std::printf("plans retained:       %lld\n",
              static_cast<long long>(last.plans_retained));
  std::printf("reduce-cache hits:    %lld\n",
              static_cast<long long>(last.reduce_cache_hits));
  std::printf("reduce-cache misses:  %lld\n",
              static_cast<long long>(last.reduce_cache_misses));
  std::printf("reduce-cache hit rate: %.1f%%\n", hit_rate * 100.0);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"query\": \"tpcd_q3\",\n"
                 "  \"iterations\": %d,\n"
                 "  \"avg_plan_ms\": %.6f,\n"
                 "  \"plans_generated\": %lld,\n"
                 "  \"plans_retained\": %lld,\n"
                 "  \"reduce_cache_hits\": %lld,\n"
                 "  \"reduce_cache_misses\": %lld,\n"
                 "  \"reduce_cache_hit_rate\": %.6f\n"
                 "}\n",
                 iters, avg_ms, static_cast<long long>(last.plans_generated),
                 static_cast<long long>(last.plans_retained),
                 static_cast<long long>(last.reduce_cache_hits),
                 static_cast<long long>(last.reduce_cache_misses), hit_rate);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Batch-size sweep: exec wall time per batch size, speedup vs the size-1
// row shim. Iterations are paired (every size measured back-to-back inside
// each iteration, medians compared across iterations) so CPU-frequency
// drift cancels instead of accumulating into one size's column.
// Modes measured by the sweep: the legacy row-at-a-time shape
// (OptimizerConfig::row_shim_exec — the pre-vectorization engine, kept as
// the honest baseline) followed by the columnar path at each batch size.
int BatchSweep(Database* db, int runs, const std::string& json_path) {
  constexpr int64_t kSizes[] = {1, 256, 1024, 4096};
  constexpr int kNumSizes = 4;
  constexpr int kNumModes = kNumSizes + 1;  // [0] = row shim baseline
  constexpr int kIterations = 7;

  std::vector<Row> baseline_rows;
  bool rows_identical = true;
  std::vector<double> per_mode_medians[kNumModes];
  // Warm-up: first touch of the tables and the allocator.
  {
    OptimizerConfig cfg;
    cfg.enable_hash_join = false;
    cfg.enable_hash_grouping = false;
    QueryEngine engine(db, cfg);
    if (!engine.Run(tpcd_queries::kQuery3).ok()) return 1;
  }
  for (int it = 0; it < kIterations; ++it) {
    for (int m = 0; m < kNumModes; ++m) {
      OptimizerConfig cfg;
      cfg.enable_order_optimization = true;
      cfg.enable_hash_join = false;
      cfg.enable_hash_grouping = false;
      if (m == 0) {
        cfg.row_shim_exec = true;
      } else {
        cfg.batch_rows = kSizes[m - 1];
      }
      QueryEngine engine(db, cfg);
      std::vector<double> samples;
      for (int i = 0; i < runs; ++i) {
        Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
        if (!r.ok()) {
          std::fprintf(stderr, "Q3 failed in sweep mode %d: %s\n", m,
                       r.status().ToString().c_str());
          return 1;
        }
        samples.push_back(r.value().elapsed_seconds);
        if (it == 0 && i == 0) {
          if (m == 0) {
            baseline_rows = std::move(r.value().rows);
          } else if (r.value().rows != baseline_rows) {
            rows_identical = false;
          }
        }
      }
      per_mode_medians[m].push_back(Median(samples));
    }
  }

  double exec_us[kNumModes];
  for (int m = 0; m < kNumModes; ++m) {
    exec_us[m] = Median(per_mode_medians[m]) * 1e6;
  }

  std::printf("--- batch-size sweep on Q3 (exec wall, %d runs x%d paired "
              "iterations) ---\n",
              runs, kIterations);
  std::printf("%-12s %14s %20s\n", "mode", "exec (us)",
              "speedup vs row shim");
  std::printf("%-12s %14.1f %19s\n", "row shim", exec_us[0], "1.00x");
  for (int s = 0; s < kNumSizes; ++s) {
    std::printf("%-12lld %14.1f %19.2fx\n",
                static_cast<long long>(kSizes[s]), exec_us[s + 1],
                exec_us[0] / exec_us[s + 1]);
  }
  std::printf("\nrow streams identical across all modes: %s\n",
              rows_identical ? "YES" : "NO  <-- FAIL");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"query\": \"tpcd_q3\",\n"
                 "  \"runs\": %d,\n"
                 "  \"iterations\": %d,\n"
                 "  \"rows_identical\": %s,\n"
                 "  \"row_shim\": {\"exec_us\": %.1f},\n"
                 "  \"sizes\": [\n",
                 runs, kIterations, rows_identical ? "true" : "false",
                 exec_us[0]);
    for (int s = 0; s < kNumSizes; ++s) {
      std::fprintf(f,
                   "    {\"batch_rows\": %lld, \"exec_us\": %.1f, "
                   "\"speedup_vs_row_shim\": %.4f}%s\n",
                   static_cast<long long>(kSizes[s]), exec_us[s + 1],
                   exec_us[0] / exec_us[s + 1], s + 1 < kNumSizes ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return rows_identical ? 0 : 1;
}

// Parallel-worker sweep: Q3 at 1/2/4 exchange workers. Correctness is a
// hard gate — every parallel row stream must be identical to serial.
// This container is single-core, so wall clock cannot show a speedup;
// instead the sweep reports the *modeled critical-path speedup* from
// per-thread CPU time: a run's critical path is the main thread's
// execution CPU plus the busiest worker's CPU
// (metrics.worker_busy_ns_max), i.e. the makespan on a machine with at
// least `workers` idle cores. The serial run's critical path is simply
// its thread CPU. Wall clock is reported alongside for honesty — on this
// box it *rises* with workers (thread switching on one core).
int ParallelSweep(Database* db, int runs, const std::string& json_path) {
  constexpr int kWorkers[] = {1, 2, 4};
  constexpr int kNumModes = 3;
  constexpr int kIterations = 7;

  auto thread_cpu_ns = [] {
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  };

  std::vector<Row> serial_rows;
  bool rows_identical = true;
  int64_t exchange_batches[kNumModes] = {0, 0, 0};
  std::vector<double> wall_medians[kNumModes];
  std::vector<double> critical_medians[kNumModes];
  // Warm-up: first touch of the tables and the allocator.
  {
    OptimizerConfig cfg;
    cfg.enable_hash_join = false;
    cfg.enable_hash_grouping = false;
    QueryEngine engine(db, cfg);
    if (!engine.Run(tpcd_queries::kQuery3).ok()) return 1;
  }
  for (int it = 0; it < kIterations; ++it) {
    for (int m = 0; m < kNumModes; ++m) {
      OptimizerConfig cfg;
      cfg.enable_order_optimization = true;
      cfg.enable_hash_join = false;
      cfg.enable_hash_grouping = false;
      cfg.parallel_workers = kWorkers[m];
      QueryEngine engine(db, cfg);
      std::vector<double> walls, criticals;
      for (int i = 0; i < runs; ++i) {
        int64_t cpu_before = thread_cpu_ns();
        Result<QueryResult> r = engine.Run(tpcd_queries::kQuery3);
        int64_t main_cpu = thread_cpu_ns() - cpu_before;
        if (!r.ok()) {
          std::fprintf(stderr, "Q3 failed at %d workers: %s\n", kWorkers[m],
                       r.status().ToString().c_str());
          return 1;
        }
        // Execution critical path: main-thread CPU minus the (serial,
        // identical-across-modes) planning phase, plus the busiest
        // worker thread.
        double plan_ns = r.value().plan_seconds * 1e9;
        double critical = static_cast<double>(main_cpu) - plan_ns +
                          static_cast<double>(
                              r.value().metrics.worker_busy_ns_max);
        walls.push_back(r.value().elapsed_seconds);
        criticals.push_back(critical / 1e9);
        if (it == 0 && i == 0) {
          exchange_batches[m] = r.value().metrics.exchange_batches;
          if (m == 0) {
            serial_rows = std::move(r.value().rows);
          } else if (r.value().rows != serial_rows) {
            rows_identical = false;
          }
        }
      }
      wall_medians[m].push_back(Median(walls));
      critical_medians[m].push_back(Median(criticals));
    }
  }

  double wall_us[kNumModes], critical_us[kNumModes];
  for (int m = 0; m < kNumModes; ++m) {
    wall_us[m] = Median(wall_medians[m]) * 1e6;
    critical_us[m] = Median(critical_medians[m]) * 1e6;
  }

  std::printf("--- parallel-worker sweep on Q3 (%d runs x%d paired "
              "iterations, single-core host) ---\n",
              runs, kIterations);
  std::printf("%-8s %14s %18s %18s %10s\n", "workers", "wall (us)",
              "critical-path (us)", "modeled speedup", "exch bat");
  for (int m = 0; m < kNumModes; ++m) {
    std::printf("%-8d %14.1f %18.1f %17.2fx %10lld\n", kWorkers[m],
                wall_us[m], critical_us[m], critical_us[0] / critical_us[m],
                static_cast<long long>(exchange_batches[m]));
  }
  std::printf("\nrow streams identical to serial: %s\n",
              rows_identical ? "YES" : "NO  <-- FAIL");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"query\": \"tpcd_q3\",\n"
                 "  \"runs\": %d,\n"
                 "  \"iterations\": %d,\n"
                 "  \"rows_identical\": %s,\n"
                 "  \"speedup_model\": \"critical-path from per-thread CPU "
                 "(single-core host)\",\n"
                 "  \"workers\": [\n",
                 runs, kIterations, rows_identical ? "true" : "false");
    for (int m = 0; m < kNumModes; ++m) {
      std::fprintf(f,
                   "    {\"workers\": %d, \"wall_us\": %.1f, "
                   "\"critical_path_us\": %.1f, \"modeled_speedup\": %.4f, "
                   "\"exchange_batches\": %lld}%s\n",
                   kWorkers[m], wall_us[m], critical_us[m],
                   critical_us[0] / critical_us[m],
                   static_cast<long long>(exchange_batches[m]),
                   m + 1 < kNumModes ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return rows_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double sf = 0.02;
  int runs = 5;
  int64_t sort_budget = 0;
  bool guard_overhead = false;
  bool spill_check = false;
  bool explain = false;
  bool trace_overhead = false;
  bool plan_time = false;
  bool batch_sweep = false;
  bool parallel_sweep = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) sf = std::atof(argv[i] + 5);
    if (std::strncmp(argv[i], "--runs=", 7) == 0) {
      runs = std::atoi(argv[i] + 7);
    }
    if (std::strncmp(argv[i], "--sort-budget=", 14) == 0) {
      sort_budget = std::atoll(argv[i] + 14);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--guard-overhead") == 0) guard_overhead = true;
    if (std::strcmp(argv[i], "--spill-check") == 0) spill_check = true;
    if (std::strcmp(argv[i], "--explain") == 0) explain = true;
    if (std::strcmp(argv[i], "--trace-overhead") == 0) trace_overhead = true;
    if (std::strcmp(argv[i], "--plan-time") == 0) plan_time = true;
    if (std::strcmp(argv[i], "--batch-sweep") == 0) batch_sweep = true;
    if (std::strcmp(argv[i], "--parallel-sweep") == 0) parallel_sweep = true;
  }

  std::printf("=== Table 1: Elapsed Time for Query 3 (TPC-D, SF=%.3f, "
              "%d runs) ===\n\n",
              sf, runs);
  Database db;
  TpcdConfig config;
  config.scale_factor = sf;
  Status st = LoadTpcd(&db, config);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("database: customer=%lld orders=%lld lineitem=%lld rows\n\n",
              static_cast<long long>(db.GetTable("customer")->row_count()),
              static_cast<long long>(db.GetTable("orders")->row_count()),
              static_cast<long long>(db.GetTable("lineitem")->row_count()));

  if (guard_overhead) return GuardOverhead(&db, runs);
  if (spill_check) return SpillCheck(&db, runs);
  if (explain) return ExplainQ3(&db);
  if (trace_overhead) return TraceOverhead(&db, runs);
  if (plan_time) return PlanTime(&db, runs, json_path);
  if (batch_sweep) return BatchSweep(&db, runs, json_path);
  if (parallel_sweep) return ParallelSweep(&db, runs, json_path);

  // DB2/CS engine profile: the paper's configuration.
  ModeResult prod =
      RunMode(&db, /*order_opt=*/true, /*hash=*/false, runs, sort_budget);
  ModeResult disabled =
      RunMode(&db, /*order_opt=*/false, /*hash=*/false, runs, sort_budget);

  std::printf("--- DB2/CS engine profile (no hash operators), simulated "
              "1996 hardware ---\n");
  std::printf("%-22s %14s %14s\n", "", "Production DB2", "Disabled DB2");
  std::printf("%-22s %13.2fs %13.2fs\n", "elapsed (simulated)",
              prod.sim_seconds, disabled.sim_seconds);
  std::printf("%-22s %14lld %14lld\n", "sorts",
              static_cast<long long>(prod.metrics.sorts_performed),
              static_cast<long long>(disabled.metrics.sorts_performed));
  std::printf("%-22s %14lld %14lld\n", "rows sorted",
              static_cast<long long>(prod.metrics.rows_sorted),
              static_cast<long long>(disabled.metrics.rows_sorted));
  std::printf("%-22s %14lld %14lld\n", "rows scanned",
              static_cast<long long>(prod.metrics.rows_scanned),
              static_cast<long long>(disabled.metrics.rows_scanned));
  std::printf("%-22s %14lld %14lld\n", "seq pages",
              static_cast<long long>(prod.metrics.seq_pages),
              static_cast<long long>(disabled.metrics.seq_pages));
  std::printf("%-22s %14lld %14lld\n", "random pages",
              static_cast<long long>(prod.metrics.random_pages),
              static_cast<long long>(disabled.metrics.random_pages));
  if (sort_budget != 0) {
    std::printf("%-22s %14lld %14lld\n", "spilled runs",
                static_cast<long long>(prod.metrics.spill_runs),
                static_cast<long long>(disabled.metrics.spill_runs));
    std::printf("%-22s %14lld %14lld\n", "spilled bytes",
                static_cast<long long>(prod.metrics.spill_bytes),
                static_cast<long long>(disabled.metrics.spill_bytes));
  }
  double ratio = disabled.sim_seconds / prod.sim_seconds;
  std::printf("\nRatio (disabled / production): %.2f   [paper: 2.04]\n",
              ratio);
  std::printf("Shape check: production wins: %s\n\n",
              ratio > 1.0 ? "YES" : "NO  <-- UNEXPECTED");

  // Supplementary: modern engine profile with hash operators available.
  ModeResult prod_h = RunMode(&db, true, /*hash=*/true, runs, sort_budget);
  ModeResult dis_h = RunMode(&db, false, /*hash=*/true, runs, sort_budget);
  std::printf("--- supplementary: hash join/aggregation available ---\n");
  std::printf("production %.2fs vs disabled %.2fs  (ratio %.2f)\n\n",
              prod_h.sim_seconds, dis_h.sim_seconds,
              dis_h.sim_seconds / prod_h.sim_seconds);

  std::printf("--- production plan (Figure 7 shape) ---\n%s\n",
              prod.plan.c_str());
  std::printf("--- disabled plan (Figure 8 shape) ---\n%s\n",
              disabled.plan.c_str());
  return 0;
}
