// Ablation E: selectivity estimation quality — equi-depth histograms vs
// the uniform min/max interpolation they replace — on skewed data, and the
// plan damage bad estimates cause. Not a paper experiment (the paper
// predates serious histogram work in DB2), but the cost model's estimates
// gate every order-optimization decision, so the substrate's quality is
// part of the reproduction's credibility.

#include <cstdio>

#include "common/random.h"
#include "exec/engine.h"
#include "optimizer/planner.h"

using namespace ordopt;

namespace {

void Build(Database* db) {
  Rng rng(4242);
  // events: heavily skewed `kind` (90% kind 0), uniform `ts`, plus a
  // dimension table for join-order sensitivity.
  {
    TableDef def;
    def.name = "events";
    def.columns = {{"id", DataType::kInt64},
                   {"kind", DataType::kInt64},
                   {"ts", DataType::kInt64},
                   {"device", DataType::kInt64}};
    def.AddUniqueKey({"id"});
    def.AddIndex("events_kind", {"kind", "ts"});
    Table* t = db->CreateTable(def).value();
    for (int i = 0; i < 100000; ++i) {
      int64_t kind = rng.Chance(0.9) ? 0 : rng.Uniform(1, 99);
      t->AppendRow({Value::Int(i), Value::Int(kind),
                    Value::Int(rng.Uniform(0, 999999)),
                    Value::Int(rng.Uniform(0, 499))});
    }
  }
  {
    TableDef def;
    def.name = "device";
    def.columns = {{"device", DataType::kInt64}, {"site", DataType::kInt64}};
    def.AddUniqueKey({"device"});
    def.AddIndex("device_pk", {"device"}, true, true);
    Table* t = db->CreateTable(def).value();
    for (int i = 0; i < 500; ++i) {
      t->AppendRow({Value::Int(i), Value::Int(rng.Uniform(0, 9))});
    }
  }
  ORDOPT_CHECK(db->FinalizeAll().ok());
}

struct Probe {
  const char* label;
  const char* sql;
};

}  // namespace

int main() {
  Database db;
  Build(&db);

  const Probe probes[] = {
      {"hot key (90% of rows)", "select id from events where kind = 0"},
      {"cold key (~0.1%)", "select id from events where kind = 37"},
      {"wide range", "select id from events where ts < 900000"},
      {"narrow range", "select id from events where ts < 1000"},
      {"range on skewed col", "select id from events where kind > 0"},
  };

  std::printf("=== Estimated vs actual rows: histograms on/off ===\n");
  std::printf("%-26s %12s %14s %14s\n", "predicate", "actual",
              "est (hist)", "est (uniform)");
  for (const Probe& p : probes) {
    double est[2];
    size_t actual = 0;
    for (int mode = 0; mode < 2; ++mode) {
      OptimizerConfig cfg;
      cfg.cost_params.use_histograms = mode == 0;
      QueryEngine engine(&db, cfg);
      auto r = engine.Run(p.sql);
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
      est[mode] = r.value().plan->props.cardinality;
      actual = r.value().rows.size();
    }
    std::printf("%-26s %12zu %14.0f %14.0f\n", p.label, actual, est[0],
                est[1]);
  }

  // Plan sensitivity: with the hot key the index probe is a trap (90% of
  // the table via an unclustered index); the histogram steers to a scan.
  std::printf("\n=== Plan choice under skew ===\n");
  for (int mode = 0; mode < 2; ++mode) {
    OptimizerConfig cfg;
    cfg.cost_params.use_histograms = mode == 0;
    QueryEngine engine(&db, cfg);
    auto r = engine.Run(
        "select d.site, count(*) from events e, device d "
        "where e.device = d.device and e.kind = 0 group by d.site");
    if (!r.ok()) return 1;
    std::printf("--- histograms %s ---\n%s  simulated: %.3fs\n",
                mode == 0 ? "ON" : "OFF", r.value().plan_text.c_str(),
                r.value().SimulatedElapsedSeconds());
  }
  return 0;
}
