// Concurrent-service throughput/latency benchmark: N client sessions
// issue a mixed TPC-D workload against one QueryService and we report
// queries/sec, p50/p99 end-to-end latency, and the plan-cache hit rate
// at 1, 8, and 64 sessions. Custom main (not google-benchmark): the
// measurement unit is a whole closed-loop client fleet, and the output is
// the JSON consumed by scripts/check.sh --service (BENCH_service.json).
//
// Usage: bench_service [output.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/str_util.h"
#include "service/query_service.h"
#include "tpcd/tpcd.h"

namespace ordopt {
namespace {

struct LoadPoint {
  int sessions = 0;
  int64_t queries = 0;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  int64_t shed = 0;
};

double PercentileMs(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * (latencies->size() - 1));
  std::nth_element(latencies->begin(), latencies->begin() + idx,
                   latencies->end());
  return (*latencies)[idx] * 1000.0;
}

LoadPoint RunLoad(Database* db, int sessions, int queries_per_session) {
  const std::vector<std::string> workload = {
      tpcd_queries::kQuery3,
      tpcd_queries::kPricingSummary,
      tpcd_queries::kDistinctShipdates,
      tpcd_queries::kLateOrders,
      tpcd_queries::kRegionRevenue,
  };

  ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 512;
  config.plan_cache_capacity = 64;
  QueryService service(db, config);

  std::vector<int64_t> session_ids;
  session_ids.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    session_ids.push_back(service.OpenSession());
  }

  std::vector<std::vector<double>> per_client_latencies(sessions);
  std::atomic<int64_t> completed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      per_client_latencies[s].reserve(queries_per_session);
      for (int q = 0; q < queries_per_session; ++q) {
        const std::string& sql = workload[(s + q) % workload.size()];
        auto t0 = std::chrono::steady_clock::now();
        Result<QueryResult> result = service.Execute(session_ids[s], sql);
        auto t1 = std::chrono::steady_clock::now();
        if (result.ok()) {
          completed.fetch_add(1);
          per_client_latencies[s].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  std::vector<double> latencies;
  for (const auto& client : per_client_latencies) {
    latencies.insert(latencies.end(), client.begin(), client.end());
  }

  LoadPoint point;
  point.sessions = sessions;
  point.queries = completed.load();
  point.elapsed_seconds = elapsed;
  point.qps = elapsed > 0 ? point.queries / elapsed : 0.0;
  point.p50_ms = PercentileMs(&latencies, 0.50);
  point.p99_ms = PercentileMs(&latencies, 0.99);
  point.cache_hit_rate = service.plan_cache_hit_rate();
  ServiceStats stats = service.stats();
  point.shed = stats.shed_queue_full + stats.shed_session_cap +
               stats.shed_budget;
  return point;
}

// The acceptance workload: one session re-running TPC-D Q3. After the
// first (planning) run, every execution must hit the cache and skip the
// optimizer entirely.
struct RepeatedQ3 {
  int runs = 0;
  int planning_skipped = 0;
  double cache_hit_rate = 0.0;
};

RepeatedQ3 RunRepeatedQ3(Database* db, int runs) {
  ServiceConfig config;
  config.workers = 2;
  config.plan_cache_capacity = 8;
  QueryService service(db, config);
  int64_t session = service.OpenSession();
  RepeatedQ3 result;
  result.runs = runs;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = service.Execute(session, tpcd_queries::kQuery3);
    if (r.ok() && r.value().planned_from_cache) ++result.planning_skipped;
  }
  result.cache_hit_rate = service.plan_cache_hit_rate();
  return result;
}

int Main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_service.json";

  Database db;
  TpcdConfig tpcd;
  tpcd.scale_factor = 0.002;
  Status load = LoadTpcd(&db, tpcd);
  if (!load.ok()) {
    std::fprintf(stderr, "bench_service: %s\n", load.ToString().c_str());
    return 1;
  }

  std::vector<LoadPoint> points;
  for (int sessions : {1, 8, 64}) {
    std::fprintf(stderr, "bench_service: %d session(s)...\n", sessions);
    points.push_back(RunLoad(&db, sessions, /*queries_per_session=*/8));
  }
  std::fprintf(stderr, "bench_service: repeated Q3...\n");
  RepeatedQ3 q3 = RunRepeatedQ3(&db, /*runs=*/20);

  std::string json = "{\n  \"benchmark\": \"service\",\n  \"workload\": "
                     "\"tpcd-mixed-5\",\n  \"workers\": 4,\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json += StrFormat(
        "    {\"sessions\": %d, \"queries\": %lld, \"qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hit_rate\": %.3f, "
        "\"shed\": %lld}%s\n",
        p.sessions, static_cast<long long>(p.queries), p.qps, p.p50_ms,
        p.p99_ms, p.cache_hit_rate, static_cast<long long>(p.shed),
        i + 1 < points.size() ? "," : "");
  }
  json += StrFormat(
      "  ],\n  \"repeated_q3\": {\"runs\": %d, \"planning_skipped\": %d, "
      "\"cache_hit_rate\": %.3f}\n}\n",
      q3.runs, q3.planning_skipped, q3.cache_hit_rate);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_service: wrote %s\n", out_path);
  std::fputs(json.c_str(), stdout);
  return 0;
}

}  // namespace
}  // namespace ordopt

int main(int argc, char** argv) { return ordopt::Main(argc, argv); }
