// Concurrent-service throughput/latency benchmark: N client sessions
// issue a mixed TPC-D workload against one QueryService and we report
// queries/sec, p50/p99 end-to-end latency, and the plan-cache hit rate
// at 1, 8, and 64 sessions. Custom main (not google-benchmark): the
// measurement unit is a whole closed-loop client fleet, and the output is
// the JSON consumed by scripts/check.sh --service (BENCH_service.json).
//
// Latency percentiles come from the shared log-scale Histogram
// (common/metrics.h), so BENCH_*.json and the live `service.latency_*`
// series agree on what p50/p99 mean.
//
// Usage: bench_service [output.json]
//        bench_service --metrics [output.json]
//
// --metrics runs the no-fault 64-session workload twice — once with the
// service's distribution instrumentation off, once with it on plus a
// MetricsReporter sampling the registry to a JSON-lines time series — and
// reports the throughput overhead, the exported registry JSON, and the
// counter-balance invariant (submitted = admitted + shed, admitted =
// completed + failed). scripts/check.sh --metrics gates on the output.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/str_util.h"
#include "service/query_service.h"
#include "tpcd/tpcd.h"

namespace ordopt {
namespace {

constexpr const char* kTimeseriesPath = "BENCH_metrics_timeseries.jsonl";

struct LoadPoint {
  int sessions = 0;
  int64_t queries = 0;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  int64_t shed = 0;
  ServiceStats stats;
  std::string metrics_json;
  int64_t reporter_samples = 0;
};

LoadPoint RunLoad(Database* db, int sessions, int queries_per_session,
                  bool enable_metrics = true,
                  const char* timeseries_path = nullptr) {
  const std::vector<std::string> workload = {
      tpcd_queries::kQuery3,
      tpcd_queries::kPricingSummary,
      tpcd_queries::kDistinctShipdates,
      tpcd_queries::kLateOrders,
      tpcd_queries::kRegionRevenue,
  };

  ServiceConfig config;
  config.workers = 4;
  config.queue_depth = 512;
  config.plan_cache_capacity = 64;
  config.enable_metrics = enable_metrics;
  QueryService service(db, config);

  std::unique_ptr<MetricsReporter> reporter;
  if (timeseries_path != nullptr) {
    reporter = std::make_unique<MetricsReporter>(&service.metrics(),
                                                 timeseries_path,
                                                 /*interval_seconds=*/0.05);
    reporter->Start();
  }

  std::vector<int64_t> session_ids;
  session_ids.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    session_ids.push_back(service.OpenSession());
  }

  // One shared histogram of end-to-end client latency: Record is
  // thread-sharded, so the client fleet feeds it without coordination.
  Histogram latency_us;
  std::atomic<int64_t> completed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(sessions);
  for (int s = 0; s < sessions; ++s) {
    clients.emplace_back([&, s] {
      for (int q = 0; q < queries_per_session; ++q) {
        const std::string& sql = workload[(s + q) % workload.size()];
        auto t0 = std::chrono::steady_clock::now();
        Result<QueryResult> result = service.Execute(session_ids[s], sql);
        auto t1 = std::chrono::steady_clock::now();
        if (result.ok()) {
          completed.fetch_add(1);
          latency_us.Record(
              std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                  .count());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  LoadPoint point;
  point.sessions = sessions;
  point.queries = completed.load();
  point.elapsed_seconds = elapsed;
  point.qps = elapsed > 0 ? point.queries / elapsed : 0.0;
  HistogramSnapshot snap = latency_us.Snap();
  point.p50_ms = snap.Percentile(0.50) / 1000.0;
  point.p99_ms = snap.Percentile(0.99) / 1000.0;
  point.cache_hit_rate = service.plan_cache_hit_rate();
  point.stats = service.stats();
  point.shed = point.stats.shed_queue_full + point.stats.shed_session_cap +
               point.stats.shed_budget;
  if (reporter != nullptr) {
    Status st = reporter->Stop();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_service: reporter: %s\n",
                   st.ToString().c_str());
    }
    point.reporter_samples = reporter->samples();
  }
  point.metrics_json = service.metrics().RenderJson();
  return point;
}

// The acceptance workload: one session re-running TPC-D Q3. After the
// first (planning) run, every execution must hit the cache and skip the
// optimizer entirely.
struct RepeatedQ3 {
  int runs = 0;
  int planning_skipped = 0;
  double cache_hit_rate = 0.0;
};

RepeatedQ3 RunRepeatedQ3(Database* db, int runs) {
  ServiceConfig config;
  config.workers = 2;
  config.plan_cache_capacity = 8;
  QueryService service(db, config);
  int64_t session = service.OpenSession();
  RepeatedQ3 result;
  result.runs = runs;
  for (int i = 0; i < runs; ++i) {
    Result<QueryResult> r = service.Execute(session, tpcd_queries::kQuery3);
    if (r.ok() && r.value().planned_from_cache) ++result.planning_skipped;
  }
  result.cache_hit_rate = service.plan_cache_hit_rate();
  return result;
}

int WriteOut(const char* out_path, const std::string& json) {
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "bench_service: wrote %s\n", out_path);
  std::fputs(json.c_str(), stdout);
  return 0;
}

/// --metrics: the observability overhead + correctness gate.
int MetricsMain(Database* db, const char* out_path) {
  // Warm-up fleet so neither measured run pays first-touch costs (page
  // faults, allocator growth, branch history) that would masquerade as
  // metrics overhead.
  std::fprintf(stderr, "bench_service: warm-up...\n");
  RunLoad(db, /*sessions=*/16, /*queries_per_session=*/4,
          /*enable_metrics=*/false);

  // Alternate off/on rounds and keep each mode's best throughput:
  // run-to-run scheduler noise on a shared host is an order of magnitude
  // larger than the instrumentation cost, and best-of-N cancels it while
  // a single pair would just measure which run drew the unlucky slice.
  constexpr int kRounds = 3;
  LoadPoint base, with;
  for (int round = 0; round < kRounds; ++round) {
    std::fprintf(stderr, "bench_service: round %d, metrics off...\n", round);
    LoadPoint b = RunLoad(db, /*sessions=*/64, /*queries_per_session=*/8,
                          /*enable_metrics=*/false);
    if (b.qps > base.qps) base = b;
    std::fprintf(stderr, "bench_service: round %d, metrics on...\n", round);
    LoadPoint w =
        RunLoad(db, /*sessions=*/64, /*queries_per_session=*/8,
                /*enable_metrics=*/true,
                round + 1 == kRounds ? kTimeseriesPath : nullptr);
    if (w.qps > with.qps || round + 1 == kRounds) {
      // Last round always refreshes the exported registry/time series so
      // the JSON below describes the run that produced the .jsonl file —
      // but keep the better qps for the overhead comparison.
      double best_qps = std::max(w.qps, with.qps);
      with = w;
      with.qps = best_qps;
    }
  }

  double overhead_pct =
      base.qps > 0 ? (base.qps - with.qps) / base.qps * 100.0 : 0.0;
  const ServiceStats& s = with.stats;
  int64_t shed = s.shed_queue_full + s.shed_session_cap + s.shed_budget;
  // Both relations read from ONE registry snapshot (stats()), after every
  // client joined: nothing is still in flight to blur them.
  bool balanced = s.submitted == s.admitted + shed &&
                  s.admitted == s.completed + s.failed;

  std::string json = StrFormat(
      "{\n  \"benchmark\": \"service-metrics\",\n"
      "  \"workload\": \"tpcd-mixed-5\",\n  \"workers\": 4,\n"
      "  \"sessions\": 64,\n"
      "  \"baseline_qps\": %.1f,\n  \"metrics_qps\": %.1f,\n"
      "  \"baseline_p99_ms\": %.3f,\n  \"metrics_p99_ms\": %.3f,\n"
      "  \"overhead_pct\": %.2f,\n  \"reporter_samples\": %lld,\n"
      "  \"timeseries\": \"%s\",\n"
      "  \"balance\": {\"submitted\": %lld, \"admitted\": %lld, "
      "\"shed\": %lld, \"completed\": %lld, \"failed\": %lld, "
      "\"balanced\": %s},\n",
      base.qps, with.qps, base.p99_ms, with.p99_ms, overhead_pct,
      static_cast<long long>(with.reporter_samples), kTimeseriesPath,
      static_cast<long long>(s.submitted), static_cast<long long>(s.admitted),
      static_cast<long long>(shed), static_cast<long long>(s.completed),
      static_cast<long long>(s.failed), balanced ? "true" : "false");
  json += "  \"metrics\": " + with.metrics_json + "\n}\n";
  return WriteOut(out_path, json);
}

int Main(int argc, char** argv) {
  bool metrics_mode = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_mode = true;
    } else {
      out_path = argv[i];
    }
  }
  if (out_path == nullptr) {
    out_path = metrics_mode ? "BENCH_metrics.json" : "BENCH_service.json";
  }

  Database db;
  TpcdConfig tpcd;
  tpcd.scale_factor = 0.002;
  Status load = LoadTpcd(&db, tpcd);
  if (!load.ok()) {
    std::fprintf(stderr, "bench_service: %s\n", load.ToString().c_str());
    return 1;
  }

  if (metrics_mode) return MetricsMain(&db, out_path);

  std::vector<LoadPoint> points;
  for (int sessions : {1, 8, 64}) {
    std::fprintf(stderr, "bench_service: %d session(s)...\n", sessions);
    points.push_back(RunLoad(&db, sessions, /*queries_per_session=*/8));
  }
  std::fprintf(stderr, "bench_service: repeated Q3...\n");
  RepeatedQ3 q3 = RunRepeatedQ3(&db, /*runs=*/20);

  std::string json = "{\n  \"benchmark\": \"service\",\n  \"workload\": "
                     "\"tpcd-mixed-5\",\n  \"workers\": 4,\n  \"points\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    json += StrFormat(
        "    {\"sessions\": %d, \"queries\": %lld, \"qps\": %.1f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"cache_hit_rate\": %.3f, "
        "\"shed\": %lld}%s\n",
        p.sessions, static_cast<long long>(p.queries), p.qps, p.p50_ms,
        p.p99_ms, p.cache_hit_rate, static_cast<long long>(p.shed),
        i + 1 < points.size() ? "," : "");
  }
  json += StrFormat(
      "  ],\n  \"repeated_q3\": {\"runs\": %d, \"planning_skipped\": %d, "
      "\"cache_hit_rate\": %.3f}\n}\n",
      q3.runs, q3.planning_skipped, q3.cache_hit_rate);
  return WriteOut(out_path, json);
}

}  // namespace
}  // namespace ordopt

int main(int argc, char** argv) { return ordopt::Main(argc, argv); }
