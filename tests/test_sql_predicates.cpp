// Tests for the extended predicate language: OR, IN lists, BETWEEN,
// IS [NOT] NULL, NULL literals — including the anti-join pattern over
// LEFT JOIN and reference-evaluator equality.

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "qgm/rewrite.h"
#include "query_test_util.h"

namespace ordopt {
namespace {

class SqlPredicateTest : public ::testing::Test {
 protected:
  void SetUp() override { BuildToyDatabase(&db_, 33, 120); }

  void CheckAllConfigs(const std::string& sql) {
    for (int mode = 0; mode < 3; ++mode) {
      OptimizerConfig cfg;
      if (mode == 1) cfg.enable_order_optimization = false;
      if (mode == 2) {
        cfg.enable_hash_join = false;
        cfg.enable_hash_grouping = false;
      }
      SCOPED_TRACE(StrFormat("mode=%d: %s", mode, sql.c_str()));
      QueryEngine engine(&db_, cfg);
      Result<QueryResult> run = engine.Run(sql);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      auto stmt = ParseSelect(sql);
      ASSERT_TRUE(stmt.ok());
      auto bound = BindQuery(*stmt.value(), db_);
      ASSERT_TRUE(bound.ok());
      MergeDerivedTables(bound.value().get());
      ReferenceEvaluator ref(*bound.value());
      EXPECT_EQ(Canonicalize(run.value().rows),
                Canonicalize(ref.Evaluate().rows))
          << run.value().plan_text;
    }
  }

  Database db_;
};

TEST_F(SqlPredicateTest, ParsesNewForms) {
  EXPECT_TRUE(ParseSelect("select x from t where a = 1 or b = 2").ok());
  EXPECT_TRUE(ParseSelect("select x from t where a in (1, 2, 3)").ok());
  EXPECT_TRUE(
      ParseSelect("select x from t where a between 1 and 5").ok());
  EXPECT_TRUE(ParseSelect("select x from t where a is null").ok());
  EXPECT_TRUE(ParseSelect("select x from t where a is not null").ok());
  EXPECT_TRUE(ParseSelect("select null from t").ok());
  EXPECT_FALSE(ParseSelect("select x from t where a is").ok());
  EXPECT_FALSE(ParseSelect("select x from t where a in ()").ok());
}

TEST_F(SqlPredicateTest, OrPrecedenceBelowAnd) {
  // a OR b AND c parses as a OR (b AND c).
  auto stmt = ParseSelect("select x from t where a = 1 or b = 2 and c = 3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt.value()->where->op, BinOp::kOr);
  EXPECT_EQ(stmt.value()->where->right->op, BinOp::kAnd);
}

TEST_F(SqlPredicateTest, BetweenDesugarsToConjuncts) {
  // BETWEEN splits into two WHERE conjuncts, so an index range scan can
  // absorb both.
  auto stmt =
      ParseSelect("select eno from emp where eno between 10 and 20");
  ASSERT_TRUE(stmt.ok());
  auto q = BindQuery(*stmt.value(), db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->root->predicates.size(), 2u);

  QueryEngine engine(&db_);
  auto r = engine.Run("select eno from emp where eno between 10 and 20");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows.size(), 11u);
}

TEST_F(SqlPredicateTest, InListResults) {
  QueryEngine engine(&db_);
  auto r = engine.Run("select eno from emp where eno in (3, 5, 900)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().rows.size(), 2u);
}

TEST_F(SqlPredicateTest, ReferenceEquality) {
  CheckAllConfigs("select eno from emp where dno = 1 or dno = 3");
  CheckAllConfigs(
      "select eno, salary from emp where salary between 80 and 120 "
      "order by salary");
  CheckAllConfigs("select eno from emp where dno in (0, 2, 4) and age > 30");
  CheckAllConfigs("select eno from emp where dno is null");
  CheckAllConfigs("select eno from emp where dno is not null order by eno");
  CheckAllConfigs(
      "select dno, count(*) from emp where age > 25 or salary > 150 "
      "group by dno");
}

TEST_F(SqlPredicateTest, AntiJoinViaIsNull) {
  // Employees with no tasks: LEFT JOIN + IS NULL on the null side. The
  // IS NULL must NOT convert the outer join to inner.
  auto stmt = ParseSelect(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.tno is null order by e.eno");
  ASSERT_TRUE(stmt.ok());
  auto q = BindQuery(*stmt.value(), db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->root->outer_joins.size(), 1u);  // still outer

  CheckAllConfigs(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.tno is null order by e.eno");

  // Sanity: the anti-join plus the semi side covers all employees.
  QueryEngine engine(&db_);
  auto anti = engine.Run(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.tno is null");
  auto semi = engine.Run(
      "select distinct e.eno from emp e, task t where e.eno = t.eno");
  ASSERT_TRUE(anti.ok());
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(anti.value().rows.size() + semi.value().rows.size(), 120u);
}

TEST_F(SqlPredicateTest, IsNotNullStillConvertsOuterJoin) {
  // IS NOT NULL on the null side rejects padded rows: inner join.
  auto stmt = ParseSelect(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.tno is not null");
  ASSERT_TRUE(stmt.ok());
  auto q = BindQuery(*stmt.value(), db_);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value()->root->outer_joins.empty());
}

TEST_F(SqlPredicateTest, OrOnNullSideBlocksConversion) {
  auto stmt = ParseSelect(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.hours > 5 or e.age > 30");
  ASSERT_TRUE(stmt.ok());
  auto q = BindQuery(*stmt.value(), db_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->root->outer_joins.size(), 1u);
  CheckAllConfigs(
      "select e.eno from emp e left join task t on e.eno = t.eno "
      "where t.hours > 5 or e.age > 30");
}

TEST_F(SqlPredicateTest, NullLiteralInSelect) {
  QueryEngine engine(&db_);
  auto r = engine.Run("select eno, null from emp where eno = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows.size(), 1u);
  EXPECT_TRUE(r.value().rows[0][1].is_null());
}

}  // namespace
}  // namespace ordopt
