// Tests for the key property (§5.2.1): canonical simplification, the
// one-record condition, projection, and join propagation.

#include <gtest/gtest.h>

#include "orderopt/key_property.h"

namespace ordopt {
namespace {

const ColumnId ax(0, 0), ay(0, 1), az(0, 2);
const ColumnId bx(1, 0), by(1, 1);

TEST(KeyProperty, AddAndQuery) {
  KeyProperty kp;
  kp.AddKey(ColumnSet{ax, ay});
  EXPECT_TRUE(kp.IsUniqueOn(ColumnSet{ax, ay}));
  EXPECT_TRUE(kp.IsUniqueOn(ColumnSet{ax, ay, az}));
  EXPECT_FALSE(kp.IsUniqueOn(ColumnSet{ax}));
  EXPECT_FALSE(kp.IsOneRecord());
}

TEST(KeyProperty, SubsetKeySubsumesSuperset) {
  KeyProperty kp;
  kp.AddKey(ColumnSet{ax, ay});
  kp.AddKey(ColumnSet{ax});
  EXPECT_EQ(kp.keys().size(), 1u);
  EXPECT_EQ(kp.keys()[0], (ColumnSet{ax}));
}

TEST(KeyProperty, ConstantBoundColumnDropsOut) {
  // §5.2.1: key columns bound by equality predicates are removed from the
  // canonical key.
  KeyProperty kp;
  kp.AddKey(ColumnSet{ax, ay});
  EquivalenceClasses eq;
  eq.AddConstant(ay, Value::Int(5));
  kp.Simplify(eq);
  ASSERT_EQ(kp.keys().size(), 1u);
  EXPECT_EQ(kp.keys()[0], (ColumnSet{ax}));
}

TEST(KeyProperty, FullyQualifiedKeyFlagsOneRecord) {
  // §5.2.1: "if some key has become fully qualified by equality predicates
  // ... a one-record condition is flagged" and it subsumes everything.
  KeyProperty kp;
  kp.AddKey(ColumnSet{ax});
  kp.AddKey(ColumnSet{ay, az});
  EquivalenceClasses eq;
  eq.AddConstant(ax, Value::Int(5));
  kp.Simplify(eq);
  EXPECT_TRUE(kp.IsOneRecord());
  EXPECT_EQ(kp.keys().size(), 1u);  // everything else discarded
  EXPECT_TRUE(kp.IsUniqueOn(ColumnSet{}));
}

TEST(KeyProperty, EquivalenceHeadRewrite) {
  KeyProperty kp;
  kp.AddKey(ColumnSet{bx});
  EquivalenceClasses eq;
  eq.AddEquivalence(ax, bx);  // head ax
  kp.Simplify(eq);
  ASSERT_EQ(kp.keys().size(), 1u);
  EXPECT_EQ(kp.keys()[0], (ColumnSet{ax}));
}

TEST(KeyProperty, ProjectionDropsKeysWithInvisibleColumns) {
  KeyProperty kp;
  kp.AddKey(ColumnSet{ax, ay});
  kp.AddKey(ColumnSet{az});
  kp.Project(ColumnSet{ax, ay});
  ASSERT_EQ(kp.keys().size(), 1u);
  EXPECT_EQ(kp.keys()[0], (ColumnSet{ax, ay}));
}

TEST(KeyProperty, OneRecordSurvivesProjection) {
  KeyProperty kp = KeyProperty::OneRecord();
  kp.Project(ColumnSet{ax});
  EXPECT_TRUE(kp.IsOneRecord());
}

TEST(KeyPropertyJoin, NToOnePropagatesOuterKeys) {
  // §5.2.1: if a key of the inner is fully qualified by join predicates,
  // each outer row matches at most one inner row: outer keys remain keys.
  KeyProperty outer;
  outer.AddKey(ColumnSet{ax});
  KeyProperty inner;
  inner.AddKey(ColumnSet{bx});
  std::vector<std::pair<ColumnId, ColumnId>> pairs = {{ay, bx}};
  KeyProperty joined = KeyProperty::PropagateJoin(outer, inner, pairs);
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{ax}));
}

TEST(KeyPropertyJoin, OneToNPropagatesInnerKeys) {
  KeyProperty outer;
  outer.AddKey(ColumnSet{ax});
  KeyProperty inner;
  inner.AddKey(ColumnSet{bx, by});
  // Outer's key ax fully qualified: each inner row sees at most one outer.
  std::vector<std::pair<ColumnId, ColumnId>> pairs = {{ax, by}};
  KeyProperty joined = KeyProperty::PropagateJoin(outer, inner, pairs);
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{bx, by}));
  EXPECT_FALSE(joined.IsUniqueOn(ColumnSet{ax}));
}

TEST(KeyPropertyJoin, BothSidesQualifiedPropagatesBoth) {
  KeyProperty outer;
  outer.AddKey(ColumnSet{ax});
  KeyProperty inner;
  inner.AddKey(ColumnSet{bx});
  std::vector<std::pair<ColumnId, ColumnId>> pairs = {{ax, bx}};
  KeyProperty joined = KeyProperty::PropagateJoin(outer, inner, pairs);
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{ax}));
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{bx}));
}

TEST(KeyPropertyJoin, ManyToManyConcatenatesKeys) {
  // §5.2.1: neither side qualified -> all concatenated key pairs K1.K2.
  KeyProperty outer;
  outer.AddKey(ColumnSet{ax});
  KeyProperty inner;
  inner.AddKey(ColumnSet{bx, by});
  std::vector<std::pair<ColumnId, ColumnId>> pairs = {{ay, by}};
  KeyProperty joined = KeyProperty::PropagateJoin(outer, inner, pairs);
  EXPECT_FALSE(joined.IsUniqueOn(ColumnSet{ax}));
  EXPECT_FALSE(joined.IsUniqueOn(ColumnSet{bx, by}));
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{ax, bx, by}));
}

TEST(KeyPropertyJoin, OneRecordOuterIsAlwaysQualified) {
  // The one-record condition acts as the empty key: trivially qualified,
  // so the inner's keys propagate and, if the inner also qualifies, the
  // result is one-record.
  KeyProperty outer = KeyProperty::OneRecord();
  KeyProperty inner;
  inner.AddKey(ColumnSet{bx});
  std::vector<std::pair<ColumnId, ColumnId>> pairs;
  KeyProperty joined = KeyProperty::PropagateJoin(outer, inner, pairs);
  EXPECT_TRUE(joined.IsUniqueOn(ColumnSet{bx}));

  KeyProperty both =
      KeyProperty::PropagateJoin(KeyProperty::OneRecord(),
                                 KeyProperty::OneRecord(), pairs);
  EXPECT_TRUE(both.IsOneRecord());
}

TEST(KeyPropertyJoin, NoKeysAtAll) {
  KeyProperty joined = KeyProperty::PropagateJoin(
      KeyProperty::None(), KeyProperty::None(), {{ax, bx}});
  EXPECT_TRUE(joined.empty());
}

}  // namespace
}  // namespace ordopt
