// Tests for common utilities: Value ordering/hash/dates, ColumnSet,
// Status/Result, string helpers, deterministic PRNG.

#include <gtest/gtest.h>

#include "common/column_id.h"
#include "common/random.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace ordopt {
namespace {

TEST(Value, TotalOrderBasics) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(3).Compare(Value::Int(3)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  // NULL sorts before everything.
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(Value, NumericCrossKindComparison) {
  EXPECT_EQ(Value::Int(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int(3)), 0);
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Str("x").Hash(), Value::Str("x").Hash());
}

TEST(Value, DateRoundTrip) {
  int64_t days = 0;
  ASSERT_TRUE(ParseDate("1995-03-15", &days));
  EXPECT_EQ(FormatDate(days), "1995-03-15");
  ASSERT_TRUE(ParseDate("1970-01-01", &days));
  EXPECT_EQ(days, 0);
  ASSERT_TRUE(ParseDate("1970-01-02", &days));
  EXPECT_EQ(days, 1);
  ASSERT_TRUE(ParseDate("1969-12-31", &days));
  EXPECT_EQ(days, -1);
  ASSERT_TRUE(ParseDate("2000-02-29", &days));  // leap year
  EXPECT_EQ(FormatDate(days), "2000-02-29");
  EXPECT_FALSE(ParseDate("1900-02-29", &days));  // not a leap year
  EXPECT_FALSE(ParseDate("1995-13-01", &days));
  EXPECT_FALSE(ParseDate("bogus", &days));
}

TEST(Value, DateComparison) {
  Value a = Value::DateFromString("1995-03-15");
  Value b = Value::DateFromString("1995-03-16");
  EXPECT_LT(a.Compare(b), 0);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::DateFromString("1996-06-04").ToString(), "1996-06-04");
}

TEST(ColumnSet, BasicOps) {
  ColumnSet s{{0, 2}, {0, 1}, {0, 2}};
  EXPECT_EQ(s.size(), 2u);  // deduplicated
  EXPECT_TRUE(s.Contains({0, 1}));
  EXPECT_FALSE(s.Contains({0, 3}));
  s.Add({1, 0});
  EXPECT_EQ(s.size(), 3u);
  s.Remove({0, 1});
  EXPECT_FALSE(s.Contains({0, 1}));
}

TEST(ColumnSet, SubsetUnionIntersect) {
  ColumnSet a{{0, 0}, {0, 1}};
  ColumnSet b{{0, 0}, {0, 1}, {0, 2}};
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(ColumnSet().IsSubsetOf(a));
  EXPECT_EQ(a.Union(b), b);
  EXPECT_EQ(a.Intersect(b), a);
  EXPECT_EQ(a.Intersect(ColumnSet{{0, 2}}), ColumnSet());
}

TEST(Status, Basics) {
  EXPECT_TRUE(Status::OK().ok());
  Status err = Status::ParseError("bad token");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad token");
}

TEST(Status, EveryFactoryCodeAndToString) {
  struct Case {
    Status status;
    StatusCode code;
    const char* rendered;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument: m"},
      {Status::ParseError("m"), StatusCode::kParseError, "ParseError: m"},
      {Status::BindError("m"), StatusCode::kBindError, "BindError: m"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound: m"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       "AlreadyExists: m"},
      {Status::Unsupported("m"), StatusCode::kUnsupported, "Unsupported: m"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal: m"},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted,
       "ResourceExhausted: m"},
      {Status::Cancelled("m"), StatusCode::kCancelled, "Cancelled: m"},
      {Status::Timeout("m"), StatusCode::kTimeout, "Timeout: m"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_EQ(c.status.ToString(), c.rendered);
  }
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StrUtil, JoinLowerFormat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    int64_t va = a.Uniform(5, 10);
    EXPECT_EQ(va, b.Uniform(5, 10));
    EXPECT_GE(va, 5);
    EXPECT_LE(va, 10);
  }
  Rng c(124);
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (Rng(123).Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace ordopt
