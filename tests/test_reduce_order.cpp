// Tests for Reduce Order (§4.1) — the paper's worked examples plus
// randomized property tests that reduction never changes sort semantics.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "orderopt/operations.h"

namespace ordopt {
namespace {

// Columns of a three-table toy query: a = t0, b = t1, c = t2.
const ColumnId ax(0, 0), ay(0, 1), az(0, 2);
const ColumnId bx(1, 0), by(1, 1);
const ColumnId cx(2, 0);

TEST(ReduceOrder, ConstantColumnRemoved) {
  // §4.1: I = (x, y) with x = 10 applied reduces to (y).
  OrderContext ctx;
  ctx.eq.AddConstant(ax, Value::Int(10));
  OrderSpec spec{{ax}, {ay}};
  OrderSpec reduced = ReduceOrder(spec, ctx);
  EXPECT_EQ(reduced, (OrderSpec{{ay}}));
}

TEST(ReduceOrder, ConstantOnlyOrderReducesToEmpty) {
  // §4.1: with x = 10 applied, I = (x) reduces to the empty order, which
  // any stream satisfies.
  OrderContext ctx;
  ctx.eq.AddConstant(ax, Value::Int(10));
  EXPECT_TRUE(ReduceOrder(OrderSpec{{ax}}, ctx).empty());
}

TEST(ReduceOrder, EquivalenceRewritesToClassHead) {
  // §4.1: x = y applied lets OP = (y, z) be rewritten as (x, z).
  OrderContext ctx;
  ctx.eq.AddEquivalence(ax, bx);  // head is ax (smaller id)
  OrderSpec op{{bx}, {az}};
  OrderSpec reduced = ReduceOrder(op, ctx);
  EXPECT_EQ(reduced, (OrderSpec{{ax}, {az}}));
}

TEST(ReduceOrder, KeyMakesSuffixRedundant) {
  // §4.1: with z a key, I = (z, y) reduces to (z).
  OrderContext ctx;
  ctx.fds.AddKey(ColumnSet{ax}, ColumnSet{ax, ay, az});
  EXPECT_EQ(ReduceOrder(OrderSpec{{ax}, {ay}}, ctx), (OrderSpec{{ax}}));
  EXPECT_EQ(ReduceOrder(OrderSpec{{ax}, {az}, {ay}}, ctx),
            (OrderSpec{{ax}}));
}

TEST(ReduceOrder, DuplicateColumnRemoved) {
  OrderContext ctx;
  OrderSpec spec{{ax}, {ay}, {ax}};
  EXPECT_EQ(ReduceOrder(spec, ctx), (OrderSpec{{ax}, {ay}}));
}

TEST(ReduceOrder, DuplicateViaEquivalence) {
  // (a.x, b.x) with a.x = b.x applied is really one column.
  OrderContext ctx;
  ctx.eq.AddEquivalence(ax, bx);
  EXPECT_EQ(ReduceOrder(OrderSpec{{ax}, {bx}}, ctx), (OrderSpec{{ax}}));
}

TEST(ReduceOrder, DirectionPreserved) {
  OrderContext ctx;
  ctx.eq.AddEquivalence(ax, bx);
  OrderSpec spec{{bx, SortDirection::kDescending}, {ay}};
  OrderSpec reduced = ReduceOrder(spec, ctx);
  ASSERT_EQ(reduced.size(), 2u);
  EXPECT_EQ(reduced.at(0).col, ax);
  EXPECT_EQ(reduced.at(0).dir, SortDirection::kDescending);
}

TEST(ReduceOrder, FdChainNotFollowedInSimpleMode) {
  // Simple mode uses the paper's single-FD subset test: {a}->{b}, {b}->{c}
  // does NOT remove c after (a), but transitive mode does.
  OrderContext ctx;
  ctx.fds.Add(ColumnSet{ax}, ColumnSet{ay});
  ctx.fds.Add(ColumnSet{ay}, ColumnSet{az});
  OrderSpec spec{{ax}, {az}};
  EXPECT_EQ(ReduceOrder(spec, ctx), (OrderSpec{{ax}, {az}}));
  ctx.transitive_fds = true;
  EXPECT_EQ(ReduceOrder(spec, ctx), (OrderSpec{{ax}}));
}

TEST(ReduceOrder, BackwardScanUsesFullPrecedingSet) {
  // (x, y, z) with {x,y}->{z}: z removed even though neither x nor y alone
  // determines it.
  OrderContext ctx;
  ctx.fds.Add(ColumnSet{ax, ay}, ColumnSet{az});
  EXPECT_EQ(ReduceOrder(OrderSpec{{ax}, {ay}, {az}}, ctx),
            (OrderSpec{{ax}, {ay}}));
}

TEST(ReduceOrder, ConstantHeadColumnsInFdAreFree) {
  // FD {x, y} -> {z} with y bound to a constant behaves like {x} -> {z}.
  OrderContext ctx;
  ctx.fds.Add(ColumnSet{ax, ay}, ColumnSet{az});
  ctx.eq.AddConstant(ay, Value::Int(7));
  EXPECT_EQ(ReduceOrder(OrderSpec{{ax}, {az}}, ctx), (OrderSpec{{ax}}));
}

// ---------------------------------------------------------------------------
// Property test: reduction preserves sort semantics. We generate random
// rows that *actually satisfy* a set of constraints (constants, column
// equalities, functional dependencies), derive the OrderContext from those
// constraints, and verify that sorting by the reduced specification yields
// a stream ordered according to the original specification — the
// correctness claim of §4.1's proof.
// ---------------------------------------------------------------------------

struct RandomInstance {
  std::vector<std::vector<int64_t>> rows;  // 6 columns
  OrderContext ctx;
  std::vector<ColumnId> cols;
};

RandomInstance MakeInstance(Rng* rng) {
  RandomInstance inst;
  const int kCols = 6;
  for (int c = 0; c < kCols; ++c) inst.cols.emplace_back(0, c);

  // Base data: uniform small domains so duplicates are common.
  int n = static_cast<int>(rng->Uniform(20, 120));
  inst.rows.assign(static_cast<size_t>(n), std::vector<int64_t>(kCols));
  for (auto& row : inst.rows) {
    for (int c = 0; c < kCols; ++c) row[static_cast<size_t>(c)] =
        rng->Uniform(0, 5);
  }

  // Impose a constant on column 0 half the time.
  if (rng->Chance(0.5)) {
    for (auto& row : inst.rows) row[0] = 3;
    inst.ctx.eq.AddConstant(inst.cols[0], Value::Int(3));
  }
  // Impose col1 == col2 half the time.
  if (rng->Chance(0.5)) {
    for (auto& row : inst.rows) row[2] = row[1];
    inst.ctx.eq.AddEquivalence(inst.cols[1], inst.cols[2]);
  }
  // Impose FD {col3} -> {col4} half the time (col4 = f(col3)).
  if (rng->Chance(0.5)) {
    for (auto& row : inst.rows) row[4] = (row[3] * 7 + 1) % 5;
    inst.ctx.fds.Add(ColumnSet{inst.cols[3]}, ColumnSet{inst.cols[4]});
  }
  // Impose FD {col1, col3} -> {col5} half the time.
  if (rng->Chance(0.5)) {
    for (auto& row : inst.rows) row[5] = (row[1] + row[3]) % 5;
    inst.ctx.fds.Add(ColumnSet{inst.cols[1], inst.cols[3]},
                     ColumnSet{inst.cols[5]});
  }
  return inst;
}

// Comparator for an OrderSpec over the instance's rows.
bool OrderedBy(const std::vector<std::vector<int64_t>>& rows,
               const OrderSpec& spec) {
  for (size_t i = 1; i < rows.size(); ++i) {
    for (const OrderElement& e : spec) {
      int64_t a = rows[i - 1][static_cast<size_t>(e.col.column)];
      int64_t b = rows[i][static_cast<size_t>(e.col.column)];
      if (a == b) continue;
      bool asc_ok = a < b;
      if ((e.dir == SortDirection::kAscending) != asc_ok) return false;
      break;  // strictly ordered at this column
    }
  }
  return true;
}

class ReduceOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReduceOrderProperty, SortingByReducedSatisfiesOriginal) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  RandomInstance inst = MakeInstance(&rng);

  // Random order spec of 1..5 distinct columns with random directions.
  OrderSpec original;
  std::vector<int> perm = {0, 1, 2, 3, 4, 5};
  for (int i = 5; i > 0; --i) {
    std::swap(perm[static_cast<size_t>(i)],
              perm[static_cast<size_t>(rng.Uniform(0, i))]);
  }
  int len = static_cast<int>(rng.Uniform(1, 5));
  for (int i = 0; i < len; ++i) {
    original.Append(OrderElement(inst.cols[static_cast<size_t>(perm[i])],
                                 rng.Chance(0.5)
                                     ? SortDirection::kAscending
                                     : SortDirection::kDescending));
  }

  for (bool transitive : {false, true}) {
    inst.ctx.transitive_fds = transitive;
    OrderSpec reduced = ReduceOrder(original, inst.ctx);

    // Sorting strictly by the reduced spec...
    auto rows = inst.rows;
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<int64_t>& a,
                         const std::vector<int64_t>& b) {
                       for (const OrderElement& e : reduced) {
                         int64_t va = a[static_cast<size_t>(e.col.column)];
                         int64_t vb = b[static_cast<size_t>(e.col.column)];
                         if (va != vb) {
                           return e.dir == SortDirection::kAscending
                                      ? va < vb
                                      : va > vb;
                         }
                       }
                       return false;
                     });
    // ...must leave the stream ordered by the original spec.
    EXPECT_TRUE(OrderedBy(rows, original))
        << "seed=" << GetParam() << " transitive=" << transitive
        << " original=" << original.ToString()
        << " reduced=" << reduced.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ReduceOrderProperty,
                         ::testing::Range(0, 120));

}  // namespace
}  // namespace ordopt
