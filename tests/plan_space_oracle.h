// Plan-space differential oracle: enumerate every candidate plan that
// survived (cost, order) domination for a query, execute them all, and
// assert they produce identical results — modulo the order the query
// actually requested. The optimizer's pruning logic claims all retained
// candidates are semantically interchangeable; this harness makes that
// claim executable. Where the naive reference evaluator is feasible
// (bounded cartesian product), results are additionally checked against it,
// so an error shared by every candidate still surfaces.

#ifndef ORDOPT_TESTS_PLAN_SPACE_ORACLE_H_
#define ORDOPT_TESTS_PLAN_SPACE_ORACLE_H_

#include <string>
#include <vector>

#include "exec/engine.h"
#include "storage/database.h"

namespace ordopt {

struct PlanSpaceOptions {
  /// Maximum candidates enumerated and executed per query.
  size_t budget = 24;
  /// The naive reference evaluator materializes cartesian products; it is
  /// only consulted when the product of base-table sizes stays under this
  /// bound. Differential comparison between candidates always runs.
  size_t reference_row_limit = 2000000;
  /// Execute every candidate under runtime order verification
  /// (OrderCheckOp), so a candidate whose stream disobeys its claimed
  /// properties fails even when its final rows happen to be right.
  bool verify_orders = true;
};

struct PlanSpaceReport {
  std::string name;
  /// Candidates that were enumerated and executed (winner first).
  size_t candidates = 0;
  /// True when the naive reference evaluator was feasible and consulted.
  bool reference_compared = false;
  /// PlanFingerprint of each executed candidate, winner first.
  std::vector<std::string> fingerprints;
  /// Human-readable divergence dumps: empty means every candidate agreed
  /// (and matched the reference where compared). Each entry names the
  /// query, both plan fingerprints, and carries the optimizer trace.
  std::vector<std::string> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Runs the oracle for one query under one optimizer profile. The returned
/// Result is an error only for infrastructure failures (parse/bind/plan);
/// semantic divergences are reported in PlanSpaceReport::divergences so a
/// caller can aggregate them across a catalog.
Result<PlanSpaceReport> RunPlanSpaceOracle(Database* db,
                                           const std::string& name,
                                           const std::string& sql,
                                           const OptimizerConfig& config,
                                           const PlanSpaceOptions& options =
                                               PlanSpaceOptions());

}  // namespace ordopt

#endif  // ORDOPT_TESTS_PLAN_SPACE_ORACLE_H_
